//! Connectivity analysis: connected components and breadth-first search.
//!
//! Community detection behaves differently on disconnected inputs (each
//! component decomposes independently, and isolated vertices carry only
//! teleport flow), so the harness reports component structure alongside
//! Table I, and the tests use components as an independent oracle: on a
//! graph whose planted communities are *disconnected*, every detector must
//! return exactly the components.

use crate::csr::{CsrGraph, NodeId};
use crate::partition::Partition;

/// Result of a component decomposition.
#[derive(Debug, Clone)]
pub struct Components {
    /// Component label per vertex (dense, `0..count`).
    pub partition: Partition,
    /// Number of components.
    pub count: usize,
    /// Size of the largest component.
    pub largest: usize,
}

/// Finds weakly connected components (edge direction ignored) with an
/// iterative BFS over both adjacency directions.
pub fn connected_components(graph: &CsrGraph) -> Components {
    let n = graph.num_nodes();
    let mut labels = vec![u32::MAX; n];
    let mut queue: Vec<NodeId> = Vec::new();
    let mut count = 0u32;

    for start in 0..n as u32 {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        labels[start as usize] = count;
        queue.push(start);
        while let Some(u) = queue.pop() {
            for e in graph.out_neighbors(u).iter() {
                if labels[e.target as usize] == u32::MAX {
                    labels[e.target as usize] = count;
                    queue.push(e.target);
                }
            }
            for e in graph.in_neighbors(u).iter() {
                if labels[e.target as usize] == u32::MAX {
                    labels[e.target as usize] = count;
                    queue.push(e.target);
                }
            }
        }
        count += 1;
    }

    let partition = Partition::from_labels(labels);
    let largest = partition.community_sizes().into_iter().max().unwrap_or(0);
    Components {
        count: partition.num_communities(),
        largest,
        partition,
    }
}

/// Breadth-first distances (in hops, out-edges only) from `source`;
/// unreachable vertices get `u32::MAX`.
pub fn bfs_distances(graph: &CsrGraph, source: NodeId) -> Vec<u32> {
    let n = graph.num_nodes();
    let mut dist = vec![u32::MAX; n];
    dist[source as usize] = 0;
    let mut frontier = vec![source];
    let mut next = Vec::new();
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        for &u in &frontier {
            for e in graph.out_neighbors(u).iter() {
                if dist[e.target as usize] == u32::MAX {
                    dist[e.target as usize] = level;
                    next.push(e.target);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::barabasi_albert;

    #[test]
    fn two_components_found() {
        let mut b = GraphBuilder::undirected(5);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(3, 4, 1.0);
        let c = connected_components(&b.build());
        assert_eq!(c.count, 2);
        assert_eq!(c.largest, 3);
        assert_eq!(c.partition.community_of(0), c.partition.community_of(2));
        assert_ne!(c.partition.community_of(0), c.partition.community_of(3));
    }

    #[test]
    fn isolated_vertices_are_their_own_components() {
        let g = GraphBuilder::undirected(3).build();
        let c = connected_components(&g);
        assert_eq!(c.count, 3);
        assert_eq!(c.largest, 1);
    }

    #[test]
    fn directed_weak_connectivity() {
        // 0 -> 1, 2 -> 1: weakly connected despite no directed path 0 to 2.
        let mut b = GraphBuilder::directed(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(2, 1, 1.0);
        let c = connected_components(&b.build());
        assert_eq!(c.count, 1);
    }

    #[test]
    fn ba_graph_is_connected() {
        let g = barabasi_albert(1000, 2, 3);
        let c = connected_components(&g);
        assert_eq!(
            c.count, 1,
            "preferential attachment builds connected graphs"
        );
    }

    #[test]
    fn bfs_distances_on_path() {
        let mut b = GraphBuilder::undirected(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(2, 3, 1.0);
        let d = bfs_distances(&b.build(), 0);
        assert_eq!(d, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bfs_unreachable() {
        let mut b = GraphBuilder::directed(3);
        b.add_edge(0, 1, 1.0);
        let d = bfs_distances(&b.build(), 1);
        assert_eq!(d[1], 0);
        assert_eq!(d[0], u32::MAX); // directed: no edge back
        assert_eq!(d[2], u32::MAX);
    }
}
