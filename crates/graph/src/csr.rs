//! Compressed sparse row (CSR) weighted graph.
//!
//! The paper's HyPC-Map substrate stores, for every vertex, its outgoing and
//! incoming weighted adjacency. `FindBestCommunity` (Algorithm 1) walks the
//! out-links to accumulate `outFlowToModules` and the in-links to accumulate
//! `inFlowFromModules`, so both directions must be cheap to iterate. We store
//! two CSR structures sharing one node count; for undirected graphs the two
//! are identical views built from the symmetrized edge list.

use serde::{Deserialize, Serialize};

/// Vertex identifier. The paper's largest network (Orkut) has ~3M vertices, so
/// `u32` is sufficient and halves index memory versus `usize` (Rust
/// Performance Book, "Smaller Integers").
pub type NodeId = u32;

/// A single weighted edge endpoint as seen from a source vertex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeRef {
    /// The neighbouring vertex.
    pub target: NodeId,
    /// Edge weight (accumulated over parallel edges at build time).
    pub weight: f64,
}

/// Direction of an adjacency query on a [`CsrGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow edges away from the vertex (`outLinks` in Algorithm 1).
    Out,
    /// Follow edges into the vertex (used for `inFlowFromModules`).
    In,
}

/// Immutable weighted graph in CSR form with both adjacency directions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CsrGraph {
    num_nodes: u32,
    directed: bool,
    /// Out-adjacency row offsets, length `num_nodes + 1`.
    out_offsets: Vec<u64>,
    out_targets: Vec<NodeId>,
    out_weights: Vec<f64>,
    /// In-adjacency row offsets, length `num_nodes + 1`.
    in_offsets: Vec<u64>,
    in_targets: Vec<NodeId>,
    in_weights: Vec<f64>,
}

impl CsrGraph {
    /// Assembles a CSR graph from sorted, deduplicated adjacency arrays.
    ///
    /// This is the low-level constructor used by [`crate::GraphBuilder`];
    /// prefer the builder unless you already hold valid CSR arrays.
    ///
    /// # Panics
    /// Panics if the offsets are not monotone, do not start at 0, do not end
    /// at the target array length, or if any target is out of range.
    #[allow(clippy::too_many_arguments)]
    pub fn from_csr_parts(
        num_nodes: u32,
        directed: bool,
        out_offsets: Vec<u64>,
        out_targets: Vec<NodeId>,
        out_weights: Vec<f64>,
        in_offsets: Vec<u64>,
        in_targets: Vec<NodeId>,
        in_weights: Vec<f64>,
    ) -> Self {
        validate_csr(num_nodes, &out_offsets, &out_targets, &out_weights);
        validate_csr(num_nodes, &in_offsets, &in_targets, &in_weights);
        Self {
            num_nodes,
            directed,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_targets,
            in_weights,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes as usize
    }

    /// Number of directed arcs stored in the out-adjacency. For an undirected
    /// graph each input edge contributes two arcs.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.out_targets.len()
    }

    /// Number of logical edges: arcs for directed graphs, arcs/2 for
    /// undirected graphs (self-loops, which appear once, are counted once).
    pub fn num_edges(&self) -> usize {
        if self.directed {
            self.num_arcs()
        } else {
            let self_loops = (0..self.num_nodes)
                .map(|u| {
                    self.out_neighbors(u)
                        .iter()
                        .filter(|e| e.target == u)
                        .count()
                })
                .sum::<usize>();
            (self.num_arcs() - self_loops) / 2 + self_loops
        }
    }

    /// Whether the graph was built as directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Out-degree of `u` (number of stored arcs, after weight-merging).
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        let u = u as usize;
        (self.out_offsets[u + 1] - self.out_offsets[u]) as usize
    }

    /// In-degree of `u`.
    #[inline]
    pub fn in_degree(&self, u: NodeId) -> usize {
        let u = u as usize;
        (self.in_offsets[u + 1] - self.in_offsets[u]) as usize
    }

    /// Total degree used for the CAM-capacity study (Figure 5): the number of
    /// distinct accumulation keys touched when processing vertex `u`, which is
    /// bounded by out-degree + in-degree.
    #[inline]
    pub fn total_degree(&self, u: NodeId) -> usize {
        self.out_degree(u) + self.in_degree(u)
    }

    /// Iterates the out-neighbourhood of `u` as `(target, weight)` pairs.
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> Neighbors<'_> {
        let (lo, hi) = self.range(&self.out_offsets, u);
        Neighbors {
            targets: &self.out_targets[lo..hi],
            weights: &self.out_weights[lo..hi],
        }
    }

    /// Iterates the in-neighbourhood of `u` as `(source, weight)` pairs.
    #[inline]
    pub fn in_neighbors(&self, u: NodeId) -> Neighbors<'_> {
        let (lo, hi) = self.range(&self.in_offsets, u);
        Neighbors {
            targets: &self.in_targets[lo..hi],
            weights: &self.in_weights[lo..hi],
        }
    }

    /// Neighbourhood in a chosen [`Direction`].
    #[inline]
    pub fn neighbors(&self, u: NodeId, dir: Direction) -> Neighbors<'_> {
        match dir {
            Direction::Out => self.out_neighbors(u),
            Direction::In => self.in_neighbors(u),
        }
    }

    /// Sum of outgoing edge weights of `u` (the random walker's normalization
    /// denominator in the flow model).
    pub fn out_weight(&self, u: NodeId) -> f64 {
        self.out_neighbors(u).weights().iter().sum()
    }

    /// Sum of incoming edge weights of `u`.
    pub fn in_weight(&self, u: NodeId) -> f64 {
        self.in_neighbors(u).weights().iter().sum()
    }

    /// Total weight over all stored arcs.
    pub fn total_arc_weight(&self) -> f64 {
        self.out_weights.iter().sum()
    }

    /// Vertices with no outgoing links (dangling nodes). PageRank must
    /// redistribute their rank mass via teleportation.
    pub fn dangling_nodes(&self) -> Vec<NodeId> {
        (0..self.num_nodes)
            .filter(|&u| self.out_degree(u) == 0)
            .collect()
    }

    /// Iterator over all vertex ids.
    #[inline]
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes
    }

    /// All arcs as `(source, target, weight)` triples, in CSR order.
    pub fn arcs(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.nodes().flat_map(move |u| {
            self.out_neighbors(u)
                .iter()
                .map(move |e| (u, e.target, e.weight))
        })
    }

    #[inline]
    fn range(&self, offsets: &[u64], u: NodeId) -> (usize, usize) {
        let u = u as usize;
        (offsets[u] as usize, offsets[u + 1] as usize)
    }

    /// Raw CSR arrays `(offsets, targets, weights)` of the out-adjacency.
    /// Advanced API for serialization and zero-copy analysis.
    pub fn out_csr(&self) -> (&[u64], &[NodeId], &[f64]) {
        (&self.out_offsets, &self.out_targets, &self.out_weights)
    }

    /// Raw CSR arrays of the in-adjacency. See [`CsrGraph::out_csr`].
    pub fn in_csr(&self) -> (&[u64], &[NodeId], &[f64]) {
        (&self.in_offsets, &self.in_targets, &self.in_weights)
    }
}

fn validate_csr(num_nodes: u32, offsets: &[u64], targets: &[NodeId], weights: &[f64]) {
    assert_eq!(
        offsets.len(),
        num_nodes as usize + 1,
        "offset array must have num_nodes + 1 entries"
    );
    assert_eq!(offsets[0], 0, "offsets must start at 0");
    assert_eq!(
        *offsets.last().unwrap() as usize,
        targets.len(),
        "offsets must end at the arc count"
    );
    assert_eq!(targets.len(), weights.len());
    assert!(
        offsets.windows(2).all(|w| w[0] <= w[1]),
        "offsets must be monotone"
    );
    assert!(
        targets.iter().all(|&t| t < num_nodes),
        "edge target out of range"
    );
}

/// Borrowed view of one vertex's adjacency.
#[derive(Debug, Clone, Copy)]
pub struct Neighbors<'g> {
    targets: &'g [NodeId],
    weights: &'g [f64],
}

impl<'g> Neighbors<'g> {
    /// Number of neighbours in this view.
    #[inline]
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True when the vertex has no neighbours in this direction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// The neighbour ids.
    #[inline]
    pub fn targets(&self) -> &'g [NodeId] {
        self.targets
    }

    /// The matching edge weights.
    #[inline]
    pub fn weights(&self) -> &'g [f64] {
        self.weights
    }

    /// Iterate as [`EdgeRef`]s.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = EdgeRef> + 'g {
        self.targets
            .iter()
            .zip(self.weights.iter())
            .map(|(&target, &weight)| EdgeRef { target, weight })
    }
}

impl<'g> IntoIterator for Neighbors<'g> {
    type Item = EdgeRef;
    type IntoIter = NeighborsIter<'g>;

    fn into_iter(self) -> Self::IntoIter {
        NeighborsIter { view: self, pos: 0 }
    }
}

/// Owning iterator over a [`Neighbors`] view.
pub struct NeighborsIter<'g> {
    view: Neighbors<'g>,
    pos: usize,
}

impl<'g> Iterator for NeighborsIter<'g> {
    type Item = EdgeRef;

    #[inline]
    fn next(&mut self) -> Option<EdgeRef> {
        if self.pos < self.view.len() {
            let e = EdgeRef {
                target: self.view.targets[self.pos],
                weight: self.view.weights[self.pos],
            };
            self.pos += 1;
            Some(e)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.view.len() - self.pos;
        (rem, Some(rem))
    }
}

impl<'g> ExactSizeIterator for NeighborsIter<'g> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle() -> CsrGraph {
        let mut b = GraphBuilder::undirected(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 2.0);
        b.add_edge(2, 0, 3.0);
        b.build()
    }

    #[test]
    fn triangle_basics() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert!(!g.is_directed());
        for u in 0..3 {
            assert_eq!(g.out_degree(u), 2);
            assert_eq!(g.in_degree(u), 2);
            assert_eq!(g.total_degree(u), 4);
        }
    }

    #[test]
    fn weights_symmetric_for_undirected() {
        let g = triangle();
        let w01: f64 = g
            .out_neighbors(0)
            .iter()
            .find(|e| e.target == 1)
            .unwrap()
            .weight;
        let w10: f64 = g
            .out_neighbors(1)
            .iter()
            .find(|e| e.target == 0)
            .unwrap()
            .weight;
        assert_eq!(w01, w10);
        assert_eq!(w01, 1.0);
    }

    #[test]
    fn directed_in_out_distinct() {
        let mut b = GraphBuilder::directed(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 1.0);
        let g = b.build();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.in_degree(1), 1);
        assert_eq!(g.out_degree(1), 0);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn dangling_nodes_found() {
        let mut b = GraphBuilder::directed(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        let g = b.build();
        assert_eq!(g.dangling_nodes(), vec![2, 3]);
    }

    #[test]
    fn arc_iteration_covers_all() {
        let g = triangle();
        let total: f64 = g.arcs().map(|(_, _, w)| w).sum();
        assert!((total - 2.0 * (1.0 + 2.0 + 3.0)).abs() < 1e-12);
        assert_eq!(g.arcs().count(), 6);
    }

    #[test]
    fn out_weight_sums() {
        let g = triangle();
        assert!((g.out_weight(0) - 4.0).abs() < 1e-12);
        assert!((g.in_weight(0) - 4.0).abs() < 1e-12);
        assert!((g.total_arc_weight() - 12.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "edge target out of range")]
    fn invalid_target_rejected() {
        CsrGraph::from_csr_parts(
            1,
            true,
            vec![0, 1],
            vec![5],
            vec![1.0],
            vec![0, 0],
            vec![],
            vec![],
        );
    }

    #[test]
    fn exact_size_iterator() {
        let g = triangle();
        let it = g.out_neighbors(0).into_iter();
        assert_eq!(it.len(), 2);
        assert_eq!(it.count(), 2);
    }

    #[test]
    fn self_loop_counted_once() {
        let mut b = GraphBuilder::undirected(2);
        b.add_edge(0, 0, 1.0);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
    }
}
