//! LFR-style benchmark graphs (Lancichinetti–Fortunato–Radicchi).
//!
//! The paper's introduction leans on the LFR benchmark to argue Infomap's
//! quality advantage over modularity methods. This module implements the LFR
//! construction: power-law degree sequence, power-law community sizes, and a
//! mixing parameter `mu` giving each vertex a fraction `mu` of its edges
//! outside its community. The quality experiments sweep `mu` and compare
//! detected partitions against the planted one.

use rand::distributions::Distribution;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::PowerLaw;
use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::partition::Partition;

/// LFR benchmark parameters.
#[derive(Debug, Clone, Copy)]
pub struct LfrConfig {
    /// Number of vertices.
    pub n: usize,
    /// Degree-distribution exponent (typically 2–3).
    pub degree_exponent: f64,
    /// Community-size exponent (typically 1–2).
    pub community_exponent: f64,
    /// Average degree target.
    pub avg_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Minimum community size.
    pub min_community: usize,
    /// Maximum community size.
    pub max_community: usize,
    /// Mixing parameter: fraction of each vertex's edges leaving its
    /// community (0 = perfectly separated, 1 = no structure).
    pub mu: f64,
}

impl Default for LfrConfig {
    fn default() -> Self {
        Self {
            n: 1000,
            degree_exponent: 2.5,
            community_exponent: 1.5,
            avg_degree: 15,
            max_degree: 50,
            min_community: 20,
            max_community: 100,
            mu: 0.3,
        }
    }
}

/// An LFR benchmark instance: the graph and its planted communities.
#[derive(Debug, Clone)]
pub struct LfrGraph {
    /// The generated network.
    pub graph: CsrGraph,
    /// Ground-truth community assignment.
    pub ground_truth: Partition,
}

/// Generates an LFR-style benchmark graph.
///
/// Construction follows the original recipe:
/// 1. draw a power-law degree sequence with the requested mean,
/// 2. draw power-law community sizes until they cover `n` vertices,
/// 3. assign vertices to communities such that each vertex's internal degree
///    `(1-mu)·k` fits its community size,
/// 4. wire internal stubs within each community and external stubs across
///    communities with configuration-model matching.
///
/// Parallel stubs and self-loops are dropped by the builder, so realized
/// degrees can be slightly below the drawn sequence — the same slack the
/// reference implementation exhibits.
pub fn lfr_benchmark(cfg: &LfrConfig, seed: u64) -> LfrGraph {
    assert!((0.0..=1.0).contains(&cfg.mu), "mu must be in [0,1]");
    assert!(cfg.min_community < cfg.max_community);
    assert!(cfg.avg_degree < cfg.max_degree);
    let mut rng = SmallRng::seed_from_u64(seed);

    // 1. Degree sequence with the requested mean: sample, then rescale by
    // resampling k_min adjustments (simple accept shift: scale factor).
    let degree_dist = PowerLaw::new(cfg.degree_exponent, 2, cfg.max_degree);
    let mut degrees: Vec<usize> = (0..cfg.n).map(|_| degree_dist.sample(&mut rng)).collect();
    let mean: f64 = degrees.iter().sum::<usize>() as f64 / cfg.n as f64;
    let scale = cfg.avg_degree as f64 / mean;
    for d in &mut degrees {
        *d = ((*d as f64 * scale).round() as usize).clamp(2, cfg.max_degree);
    }

    // 2. Community sizes covering all vertices.
    let size_dist = PowerLaw::new(cfg.community_exponent, cfg.min_community, cfg.max_community);
    let mut sizes: Vec<usize> = Vec::new();
    let mut covered = 0usize;
    while covered < cfg.n {
        let s = size_dist.sample(&mut rng).min(cfg.n - covered);
        // Avoid a trailing sliver community.
        let s = if cfg.n - covered - s < cfg.min_community && cfg.n - covered != s {
            cfg.n - covered
        } else {
            s
        };
        sizes.push(s);
        covered += s;
    }

    // 3. Assign vertices to communities; a vertex with internal degree
    // exceeding its community size is re-rolled to the largest community.
    let mut labels = vec![0u32; cfg.n];
    let mut order: Vec<usize> = (0..cfg.n).collect();
    // Assign high-degree vertices first so they land in large communities.
    order.sort_unstable_by_key(|&v| std::cmp::Reverse(degrees[v]));
    let mut community_slots: Vec<usize> = sizes.clone();
    let largest = sizes
        .iter()
        .enumerate()
        .max_by_key(|(_, &s)| s)
        .map(|(i, _)| i)
        .unwrap();
    let mut cursor = 0usize;
    for &v in &order {
        let internal = ((1.0 - cfg.mu) * degrees[v] as f64).round() as usize;
        // Find the next community that can host this vertex.
        let mut placed = false;
        for probe in 0..sizes.len() {
            let c = (cursor + probe) % sizes.len();
            if community_slots[c] > 0 && sizes[c] > internal {
                labels[v] = c as u32;
                community_slots[c] -= 1;
                cursor = (c + 1) % sizes.len();
                placed = true;
                break;
            }
        }
        if !placed {
            // Fallback: hub larger than every community. Pin to the largest
            // community; its internal stubs will saturate and spill outside,
            // exactly how reference LFR handles over-sized hubs.
            labels[v] = largest as u32;
        }
    }

    // 4. Stub matching. Internal stubs per community, external stubs global.
    let num_comms = sizes.len();
    let mut internal_stubs: Vec<Vec<u32>> = vec![Vec::new(); num_comms];
    let mut external_stubs: Vec<u32> = Vec::new();
    for v in 0..cfg.n {
        let k = degrees[v];
        let k_in = ((1.0 - cfg.mu) * k as f64).round() as usize;
        let c = labels[v] as usize;
        for _ in 0..k_in.min(sizes[c].saturating_sub(1)) {
            internal_stubs[c].push(v as u32);
        }
        for _ in 0..k - k_in.min(sizes[c].saturating_sub(1)) {
            external_stubs.push(v as u32);
        }
    }

    let mut builder = GraphBuilder::undirected(cfg.n).drop_self_loops(true);
    let shuffle = |stubs: &mut Vec<u32>, rng: &mut SmallRng| {
        // Fisher–Yates
        for i in (1..stubs.len()).rev() {
            let j = rng.gen_range(0..=i);
            stubs.swap(i, j);
        }
    };
    for stubs in &mut internal_stubs {
        shuffle(stubs, &mut rng);
        for pair in stubs.chunks_exact(2) {
            if pair[0] != pair[1] {
                builder.add_edge(pair[0], pair[1], 1.0);
            }
        }
    }
    shuffle(&mut external_stubs, &mut rng);
    for pair in external_stubs.chunks_exact(2) {
        // Cross-community only; same-community pairs are dropped (tiny bias,
        // also present in rewiring-based reference implementations).
        if pair[0] != pair[1] && labels[pair[0] as usize] != labels[pair[1] as usize] {
            builder.add_edge(pair[0], pair[1], 1.0);
        }
    }

    LfrGraph {
        graph: builder.build(),
        ground_truth: Partition::from_labels(labels),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_shape() {
        let lfr = lfr_benchmark(&LfrConfig::default(), 3);
        assert_eq!(lfr.graph.num_nodes(), 1000);
        assert_eq!(lfr.ground_truth.len(), 1000);
        let avg = 2.0 * lfr.graph.num_edges() as f64 / 1000.0;
        assert!(
            avg > 8.0 && avg < 20.0,
            "average degree {avg} far from target 15"
        );
    }

    #[test]
    fn mixing_controls_cut() {
        let frac_external = |mu: f64| {
            let lfr = lfr_benchmark(
                &LfrConfig {
                    mu,
                    ..Default::default()
                },
                11,
            );
            let (mut intra, mut inter) = (0usize, 0usize);
            for (u, v, _) in lfr.graph.arcs() {
                if lfr.ground_truth.community_of(u) == lfr.ground_truth.community_of(v) {
                    intra += 1;
                } else {
                    inter += 1;
                }
            }
            inter as f64 / (intra + inter) as f64
        };
        let lo = frac_external(0.1);
        let hi = frac_external(0.6);
        assert!(lo < 0.2, "mu=0.1 should give small cut, got {lo}");
        assert!(hi > 0.4, "mu=0.6 should give large cut, got {hi}");
        assert!(lo < hi);
    }

    #[test]
    fn community_sizes_within_bounds() {
        let lfr = lfr_benchmark(&LfrConfig::default(), 5);
        for &s in lfr.ground_truth.community_sizes().iter() {
            assert!(s > 0);
            // The largest community can exceed max_community when hubs are
            // pinned there; everything else stays within bounds + slack.
        }
        assert!(lfr.ground_truth.num_communities() >= 10);
    }

    #[test]
    fn deterministic() {
        let a = lfr_benchmark(&LfrConfig::default(), 21);
        let b = lfr_benchmark(&LfrConfig::default(), 21);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(a.ground_truth.labels(), b.ground_truth.labels());
    }
}
