//! Watts–Strogatz small-world graphs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;

/// Generates a Watts–Strogatz small-world graph: a ring lattice where each
/// vertex connects to its `k` nearest neighbours (`k` even), with each
/// edge rewired to a uniform random endpoint with probability `beta`.
///
/// Small-world graphs have *homogeneous* degree (no hubs) but strong local
/// clustering — the opposite regime from the scale-free social networks,
/// used by the ablation benches to show the CAM-capacity result is a
/// property of degree distributions, not of graphs in general.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(k >= 2 && k.is_multiple_of(2), "k must be even and >= 2");
    assert!(k < n, "ring degree must be below n");
    assert!((0.0..=1.0).contains(&beta), "beta in [0,1]");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::undirected(n).drop_self_loops(true);
    for u in 0..n {
        for j in 1..=k / 2 {
            let v = (u + j) % n;
            let (mut a, mut b) = (u as u32, v as u32);
            if rng.gen::<f64>() < beta {
                // Rewire the far endpoint.
                let mut w = rng.gen_range(0..n as u32);
                let mut guard = 0;
                while (w == a || w == b) && guard < 16 {
                    w = rng.gen_range(0..n as u32);
                    guard += 1;
                }
                b = w;
            }
            if a != b {
                // Keep deterministic canonical order for reproducibility.
                if a > b {
                    std::mem::swap(&mut a, &mut b);
                }
                builder.add_edge(a, b, 1.0);
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::connected_components;
    use crate::degree::{DegreeHistogram, DegreeKind};

    #[test]
    fn lattice_without_rewiring() {
        let g = watts_strogatz(20, 4, 0.0, 1);
        // Pure ring lattice: every vertex has degree exactly k.
        for u in g.nodes() {
            assert_eq!(g.out_degree(u), 4);
        }
        assert_eq!(connected_components(&g).count, 1);
    }

    #[test]
    fn rewiring_keeps_edge_count_close() {
        let g0 = watts_strogatz(500, 6, 0.0, 2);
        let g1 = watts_strogatz(500, 6, 0.3, 2);
        // Rewired duplicates merge, so slightly fewer edges survive.
        assert!(g1.num_edges() <= g0.num_edges());
        assert!(g1.num_edges() as f64 > 0.9 * g0.num_edges() as f64);
    }

    #[test]
    fn degrees_stay_homogeneous() {
        let g = watts_strogatz(2000, 8, 0.1, 3);
        let h = DegreeHistogram::of(&g, DegreeKind::Out);
        // No hubs: max degree within a small factor of the mean.
        assert!(
            (h.max_degree() as f64) < 3.0 * h.mean(),
            "max {} vs mean {}",
            h.max_degree(),
            h.mean()
        );
    }

    #[test]
    fn deterministic() {
        let a = watts_strogatz(100, 4, 0.2, 9);
        let b = watts_strogatz(100, 4, 0.2, 9);
        assert_eq!(a.arcs().collect::<Vec<_>>(), b.arcs().collect::<Vec<_>>());
    }
}
