//! Erdős–Rényi G(n, m) random graphs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;

/// Generates an undirected Erdős–Rényi graph with `n` vertices and `m`
/// uniformly random edges (before parallel-edge merging). ER graphs have
/// *no* community structure and a binomial (light-tailed) degree
/// distribution, making them the control case in the CAM-coverage and
/// quality experiments.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(n >= 2, "need at least two vertices");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::undirected(n).drop_self_loops(true);
    builder.reserve(m);
    let mut added = 0usize;
    while added < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            builder.add_edge(u, v, 1.0);
            added += 1;
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_close() {
        let g = erdos_renyi(1000, 5000, 1);
        assert_eq!(g.num_nodes(), 1000);
        // A few duplicates merge; the bulk must survive.
        assert!(g.num_edges() > 4900 && g.num_edges() <= 5000);
    }

    #[test]
    fn deterministic() {
        let a = erdos_renyi(100, 300, 9);
        let b = erdos_renyi(100, 300, 9);
        assert_eq!(a.arcs().collect::<Vec<_>>(), b.arcs().collect::<Vec<_>>());
    }

    #[test]
    fn light_tailed() {
        let g = erdos_renyi(5000, 25_000, 3);
        let max_deg = g.nodes().map(|u| g.out_degree(u)).max().unwrap();
        // Binomial(n, p) with mean 10: max should stay within a small factor.
        assert!(max_deg < 40, "ER max degree {max_deg} unexpectedly heavy");
    }
}
