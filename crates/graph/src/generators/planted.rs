//! Planted-partition (stochastic block model) graphs with ground truth.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::partition::Partition;

/// Parameters of the planted-partition model.
#[derive(Debug, Clone, Copy)]
pub struct PlantedConfig {
    /// Number of communities.
    pub communities: usize,
    /// Vertices per community.
    pub community_size: usize,
    /// Expected intra-community degree per vertex.
    pub k_in: f64,
    /// Expected inter-community degree per vertex.
    pub k_out: f64,
}

/// Generates an undirected planted-partition graph plus its ground-truth
/// [`Partition`]. Each vertex receives on average `k_in` edges inside its
/// block and `k_out` edges to other blocks; community detection should
/// recover the blocks whenever `k_in` sufficiently exceeds `k_out`.
///
/// This is the workhorse for correctness tests: with a strong signal
/// (`k_in ≫ k_out`) both Infomap and the Louvain baseline must recover the
/// planted communities near-perfectly.
pub fn planted_partition(cfg: &PlantedConfig, seed: u64) -> (CsrGraph, Partition) {
    let PlantedConfig {
        communities,
        community_size,
        k_in,
        k_out,
    } = *cfg;
    assert!(communities >= 2, "need at least two communities");
    assert!(community_size >= 2, "communities must have >= 2 vertices");
    let n = communities * community_size;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::undirected(n).drop_self_loops(true);

    // Expected edge counts: each intra edge contributes degree 2 within a
    // block of size s, so a block needs s*k_in/2 edges.
    let intra_per_block = (community_size as f64 * k_in / 2.0).round() as usize;
    let inter_total = (n as f64 * k_out / 2.0).round() as usize;

    for c in 0..communities {
        let base = (c * community_size) as u32;
        let mut placed = 0usize;
        while placed < intra_per_block {
            let u = base + rng.gen_range(0..community_size as u32);
            let v = base + rng.gen_range(0..community_size as u32);
            if u != v {
                builder.add_edge(u, v, 1.0);
                placed += 1;
            }
        }
    }
    let mut placed = 0usize;
    while placed < inter_total {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v && (u as usize / community_size) != (v as usize / community_size) {
            builder.add_edge(u, v, 1.0);
            placed += 1;
        }
    }

    let labels: Vec<u32> = (0..n).map(|u| (u / community_size) as u32).collect();
    (builder.build(), Partition::from_labels(labels))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PlantedConfig {
        PlantedConfig {
            communities: 4,
            community_size: 50,
            k_in: 10.0,
            k_out: 1.0,
        }
    }

    #[test]
    fn sizes_and_truth() {
        let (g, truth) = planted_partition(&cfg(), 5);
        assert_eq!(g.num_nodes(), 200);
        assert_eq!(truth.num_communities(), 4);
        assert_eq!(truth.len(), 200);
        assert!(truth.community_sizes().iter().all(|&s| s == 50));
    }

    #[test]
    fn intra_edges_dominate() {
        let (g, truth) = planted_partition(&cfg(), 5);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v, _) in g.arcs() {
            if truth.community_of(u) == truth.community_of(v) {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(
            intra > 5 * inter,
            "expected strong community signal: intra {intra}, inter {inter}"
        );
    }

    #[test]
    fn deterministic() {
        let (a, _) = planted_partition(&cfg(), 9);
        let (b, _) = planted_partition(&cfg(), 9);
        assert_eq!(a.arcs().collect::<Vec<_>>(), b.arcs().collect::<Vec<_>>());
    }
}
