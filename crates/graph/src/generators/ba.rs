//! Barabási–Albert preferential attachment.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;

/// Generates an undirected Barabási–Albert graph: `n` vertices, each new
/// vertex attaching to `m` existing vertices with probability proportional to
/// their current degree. The resulting degree distribution follows a power
/// law with exponent ≈ 3, matching the heavy-tailed shape of the paper's
/// social networks (Figure 4).
///
/// Implementation uses the standard repeated-endpoint list trick: sampling a
/// uniform element of the edge-endpoint list is exactly degree-proportional
/// sampling, giving O(n·m) construction.
///
/// # Panics
/// Panics unless `1 <= m < n`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(m >= 1 && m < n, "need 1 <= m < n");
    let mut rng = SmallRng::seed_from_u64(seed);

    // Endpoint list: every arc endpoint appears once, so sampling uniformly
    // from it is degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
    let mut builder = GraphBuilder::undirected(n).drop_self_loops(true);
    builder.reserve(n * m);

    // Seed clique-ish core: connect the first m+1 vertices in a ring so every
    // early vertex has nonzero degree.
    let core = m + 1;
    for u in 0..core {
        let v = (u + 1) % core;
        builder.add_edge(u as u32, v as u32, 1.0);
        endpoints.push(u as u32);
        endpoints.push(v as u32);
    }

    let mut picked: Vec<u32> = Vec::with_capacity(m);
    for u in core..n {
        picked.clear();
        // Rejection-sample m distinct targets; degree-proportional.
        while picked.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            builder.add_edge(u as u32, t, 1.0);
            endpoints.push(u as u32);
            endpoints.push(t);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match() {
        let g = barabasi_albert(500, 3, 42);
        assert_eq!(g.num_nodes(), 500);
        // ring core has m+1 edges; each later vertex adds m.
        assert_eq!(g.num_edges(), 4 + (500 - 4) * 3);
    }

    #[test]
    fn deterministic() {
        let a = barabasi_albert(200, 2, 7);
        let b = barabasi_albert(200, 2, 7);
        assert_eq!(a.arcs().collect::<Vec<_>>(), b.arcs().collect::<Vec<_>>());
    }

    #[test]
    fn different_seeds_differ() {
        let a = barabasi_albert(200, 2, 7);
        let b = barabasi_albert(200, 2, 8);
        assert_ne!(a.arcs().collect::<Vec<_>>(), b.arcs().collect::<Vec<_>>());
    }

    #[test]
    fn has_hub_vertices() {
        let g = barabasi_albert(2000, 2, 1);
        let max_deg = g.nodes().map(|u| g.out_degree(u)).max().unwrap();
        // Preferential attachment must concentrate degree far above the mean.
        assert!(max_deg > 20, "max degree {max_deg} too small for BA");
    }

    #[test]
    fn min_degree_is_m() {
        let g = barabasi_albert(300, 3, 9);
        let min_deg = g.nodes().map(|u| g.out_degree(u)).min().unwrap();
        assert!(
            min_deg >= 2,
            "every vertex attaches with >= m-1 distinct edges"
        );
    }
}
