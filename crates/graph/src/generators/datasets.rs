//! Synthetic stand-ins for the paper's Table I datasets.
//!
//! The six SNAP networks are not redistributable inside this repository, so
//! each is replaced by a deterministic LFR-style synthetic network whose
//! vertex count, average degree, and power-law tail match the original at a
//! configurable down-scale factor (DESIGN.md, substitution 1). All measured
//! effects — software-hash pressure, CAM overflow rates, branch behaviour —
//! are functions of the degree distribution and community-merge dynamics
//! that these stand-ins preserve.

use super::lfr::{lfr_benchmark, LfrConfig};
use crate::csr::CsrGraph;
use crate::partition::Partition;

/// Identifier for each of the paper's six networks (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperNetwork {
    /// com-Amazon: 334,863 vertices, 925,872 edges.
    Amazon,
    /// com-DBLP: 317,080 vertices, 1,049,866 edges.
    Dblp,
    /// com-YouTube: 1,134,890 vertices, 2,987,624 edges.
    YouTube,
    /// soc-Pokec: 1,632,803 vertices, 30,622,564 edges.
    Pokec,
    /// soc-LiveJournal: 3,997,962 vertices, 34,681,189 edges.
    LiveJournal,
    /// com-Orkut: 3,072,441 vertices, 117,185,083 edges.
    Orkut,
}

impl PaperNetwork {
    /// Lower-case display name used throughout the harness output.
    pub fn name(self) -> &'static str {
        match self {
            PaperNetwork::Amazon => "amazon",
            PaperNetwork::Dblp => "dblp",
            PaperNetwork::YouTube => "youtube",
            PaperNetwork::Pokec => "soc-pokec",
            PaperNetwork::LiveJournal => "livejournal",
            PaperNetwork::Orkut => "orkut",
        }
    }

    /// Vertex count reported in Table I of the paper.
    pub fn paper_vertices(self) -> usize {
        match self {
            PaperNetwork::Amazon => 334_863,
            PaperNetwork::Dblp => 317_080,
            PaperNetwork::YouTube => 1_134_890,
            PaperNetwork::Pokec => 1_632_803,
            PaperNetwork::LiveJournal => 3_997_962,
            PaperNetwork::Orkut => 3_072_441,
        }
    }

    /// Edge count reported in Table I of the paper.
    pub fn paper_edges(self) -> usize {
        match self {
            PaperNetwork::Amazon => 925_872,
            PaperNetwork::Dblp => 1_049_866,
            PaperNetwork::YouTube => 2_987_624,
            PaperNetwork::Pokec => 30_622_564,
            PaperNetwork::LiveJournal => 34_681_189,
            PaperNetwork::Orkut => 117_185_083,
        }
    }

    /// Average degree implied by Table I.
    pub fn avg_degree(self) -> f64 {
        2.0 * self.paper_edges() as f64 / self.paper_vertices() as f64
    }

    /// All six networks, in Table I order.
    pub fn all() -> [PaperNetwork; 6] {
        [
            PaperNetwork::Amazon,
            PaperNetwork::Dblp,
            PaperNetwork::YouTube,
            PaperNetwork::Pokec,
            PaperNetwork::LiveJournal,
            PaperNetwork::Orkut,
        ]
    }

    /// The five networks used in the hash-operation comparison (Table V /
    /// Figure 6): everything except LiveJournal.
    pub fn hash_comparison_set() -> [PaperNetwork; 5] {
        [
            PaperNetwork::Amazon,
            PaperNetwork::Dblp,
            PaperNetwork::YouTube,
            PaperNetwork::Pokec,
            PaperNetwork::Orkut,
        ]
    }
}

/// Recipe for synthesizing one stand-in network.
#[derive(Debug, Clone)]
pub struct NetworkSpec {
    /// Which paper network this stands in for.
    pub network: PaperNetwork,
    /// Down-scale denominator: the stand-in has `paper_vertices / scale_div`
    /// vertices with the *paper's* average degree.
    pub scale_div: usize,
    /// Degree power-law exponent (Figure 4 fits of social networks sit
    /// between roughly 2 and 3).
    pub degree_exponent: f64,
    /// LFR mixing parameter.
    pub mu: f64,
    /// Generation seed; fixed per network for reproducibility.
    pub seed: u64,
}

impl NetworkSpec {
    /// Default recipe for a network at the given scale divisor.
    pub fn new(network: PaperNetwork, scale_div: usize) -> Self {
        assert!(scale_div >= 1);
        // Denser social networks (Pokec/Orkut) have flatter tails; the
        // co-purchase/co-author graphs (Amazon/DBLP) are steeper.
        let degree_exponent = match network {
            PaperNetwork::Amazon | PaperNetwork::Dblp => 2.8,
            PaperNetwork::YouTube => 2.2,
            _ => 2.4,
        };
        Self {
            network,
            scale_div,
            degree_exponent,
            mu: 0.25,
            seed: 0xA5A0_0000 + network as u64,
        }
    }

    /// Vertex count of the stand-in.
    pub fn num_vertices(&self) -> usize {
        (self.network.paper_vertices() / self.scale_div).max(1000)
    }

    /// Target average degree (matches the paper network exactly, because the
    /// hash-table working-set per vertex is the degree, not the graph size).
    pub fn avg_degree(&self) -> usize {
        (self.network.avg_degree().round() as usize).max(3)
    }

    /// Materializes the stand-in graph and its planted communities.
    pub fn generate(&self) -> (CsrGraph, Partition) {
        let n = self.num_vertices();
        let avg = self.avg_degree();
        // Max degree: SNAP hubs reach tens of thousands of neighbours
        // (Orkut's max degree is ~33k on 3.1M vertices, roughly n^0.7).
        // Scale hubs superlinearly in n so that, at realistic harness
        // scales, the largest neighbourhoods of the *dense* networks
        // overflow an 8KB CAM exactly as the paper's Section IV-C overflow
        // analysis requires; the sparse co-purchase/co-author graphs keep
        // modest hubs (real max degrees: Amazon 549, DBLP 343) and the
        // paper reports overflow cost only for Pokec and Orkut.
        let hub_factor = match self.network {
            PaperNetwork::Pokec | PaperNetwork::Orkut | PaperNetwork::LiveJournal => 2.0,
            PaperNetwork::YouTube => 0.85,
            _ => 1.0,
        };
        let max_degree = ((n as f64).powf(0.65) * hub_factor) as usize;
        let max_degree = max_degree.max(4 * avg).min(n / 2).max(avg + 2);
        let cfg = LfrConfig {
            n,
            degree_exponent: self.degree_exponent,
            community_exponent: 1.5,
            avg_degree: avg,
            max_degree,
            min_community: (avg * 2).max(10),
            max_community: ((avg * 20).max(50)).min(n / 2),
            mu: self.mu,
        };
        let lfr = lfr_benchmark(&cfg, self.seed);
        (lfr.graph, lfr.ground_truth)
    }
}

/// Generates one stand-in network at a given scale divisor.
pub fn synth_network(network: PaperNetwork, scale_div: usize) -> (CsrGraph, Partition) {
    NetworkSpec::new(network, scale_div).generate()
}

/// Specs for every Table I network at a common scale divisor.
pub fn paper_networks(scale_div: usize) -> Vec<NetworkSpec> {
    PaperNetwork::all()
        .into_iter()
        .map(|n| NetworkSpec::new(n, scale_div))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_constants() {
        assert_eq!(PaperNetwork::Orkut.paper_vertices(), 3_072_441);
        assert_eq!(PaperNetwork::Amazon.paper_edges(), 925_872);
        assert!((PaperNetwork::Orkut.avg_degree() - 76.28).abs() < 0.1);
    }

    #[test]
    fn standin_matches_degree() {
        let spec = NetworkSpec::new(PaperNetwork::Amazon, 64);
        let (g, truth) = spec.generate();
        assert_eq!(g.num_nodes(), spec.num_vertices());
        let avg = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        let target = spec.avg_degree() as f64;
        assert!(
            (avg - target).abs() / target < 0.5,
            "avg degree {avg} vs target {target}"
        );
        assert!(truth.num_communities() > 1);
    }

    #[test]
    fn all_six_listed() {
        let specs = paper_networks(128);
        assert_eq!(specs.len(), 6);
        let names: Vec<_> = specs.iter().map(|s| s.network.name()).collect();
        assert!(names.contains(&"orkut") && names.contains(&"soc-pokec"));
    }

    #[test]
    fn deterministic_standins() {
        let (a, _) = synth_network(PaperNetwork::Dblp, 256);
        let (b, _) = synth_network(PaperNetwork::Dblp, 256);
        assert_eq!(a.num_edges(), b.num_edges());
    }
}
