//! Deterministic, seeded graph generators.
//!
//! The paper evaluates on six SNAP social networks (Table I). Those exact
//! datasets are not redistributable here, so the harness synthesizes
//! *stand-ins* whose properties drive every measured effect: power-law degree
//! distributions (Figure 4), sparsity, and community structure. Each
//! generator takes an explicit seed and is deterministic across runs and
//! platforms.

mod ba;
mod datasets;
mod er;
mod lfr;
mod planted;
mod rmat;
mod ws;

pub use ba::barabasi_albert;
pub use datasets::{paper_networks, synth_network, NetworkSpec, PaperNetwork};
pub use er::erdos_renyi;
pub use lfr::{lfr_benchmark, LfrConfig, LfrGraph};
pub use planted::{planted_partition, PlantedConfig};
pub use rmat::{rmat, RmatConfig};
pub use ws::watts_strogatz;

use rand::distributions::Distribution;
use rand::Rng;

/// Samples from a discrete power law `P(k) ∝ k^-alpha` on `[k_min, k_max]`
/// via inverse-CDF on the continuous approximation, rounded down.
///
/// Used by the LFR-style generator for both degree and community-size
/// sequences, matching Lancichinetti–Fortunato–Radicchi's construction.
#[derive(Debug, Clone, Copy)]
pub struct PowerLaw {
    alpha: f64,
    k_min: f64,
    k_max: f64,
}

impl PowerLaw {
    /// Creates a sampler for exponent `alpha > 1` over `[k_min, k_max]`.
    ///
    /// # Panics
    /// Panics unless `alpha > 1.0` and `1 <= k_min < k_max`.
    pub fn new(alpha: f64, k_min: usize, k_max: usize) -> Self {
        assert!(alpha > 1.0, "power-law exponent must exceed 1");
        assert!(k_min >= 1 && k_min < k_max, "need 1 <= k_min < k_max");
        Self {
            alpha,
            k_min: k_min as f64,
            k_max: k_max as f64 + 1.0,
        }
    }
}

impl Distribution<usize> for PowerLaw {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        // Inverse CDF of the truncated continuous Pareto distribution.
        let u: f64 = rng.gen();
        let a = 1.0 - self.alpha;
        let lo = self.k_min.powf(a);
        let hi = self.k_max.powf(a);
        let x = (lo + u * (hi - lo)).powf(1.0 / a);
        (x.floor() as usize).clamp(self.k_min as usize, self.k_max as usize - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn power_law_in_range() {
        let pl = PowerLaw::new(2.5, 2, 100);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let k = pl.sample(&mut rng);
            assert!((2..=100).contains(&k));
        }
    }

    #[test]
    fn power_law_is_heavy_tailed() {
        // For alpha=2.5 on [2,1000], the small values dominate: the median
        // must land near k_min while the max reaches far beyond it.
        let pl = PowerLaw::new(2.5, 2, 1000);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut samples: Vec<usize> = (0..50_000).map(|_| pl.sample(&mut rng)).collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let max = *samples.last().unwrap();
        assert!(median <= 4, "median {median} should hug k_min");
        assert!(max >= 100, "max {max} should stretch into the tail");
    }

    #[test]
    #[should_panic(expected = "exponent must exceed 1")]
    fn alpha_validated() {
        PowerLaw::new(1.0, 2, 10);
    }
}
