//! Recursive-matrix (R-MAT / Kronecker) generator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;

/// R-MAT quadrant probabilities. The Graph500 defaults `(0.57, 0.19, 0.19,
/// 0.05)` produce skewed, community-flavoured scale-free graphs similar to
/// large social networks such as soc-Pokec and Orkut.
#[derive(Debug, Clone, Copy)]
pub struct RmatConfig {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Average number of (pre-dedup) edges per vertex.
    pub edge_factor: usize,
    /// Quadrant probabilities; must sum to 1.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Generate a directed graph.
    pub directed: bool,
}

impl RmatConfig {
    /// Graph500 reference parameters at the given scale.
    pub fn graph500(scale: u32, edge_factor: usize) -> Self {
        Self {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            directed: false,
        }
    }
}

/// Generates an R-MAT graph with `2^scale` vertices and roughly
/// `edge_factor * 2^scale` edges (fewer after parallel-edge merging).
///
/// Each edge is placed by recursively descending the adjacency matrix,
/// choosing a quadrant per level with probabilities `(a, b, c, 1-a-b-c)` and
/// light parameter noise per level (as in the original R-MAT paper) to avoid
/// degree-distribution oscillations.
pub fn rmat(cfg: &RmatConfig, seed: u64) -> CsrGraph {
    let RmatConfig {
        scale,
        edge_factor,
        a,
        b,
        c,
        directed,
    } = *cfg;
    let d = 1.0 - a - b - c;
    assert!(d >= 0.0, "quadrant probabilities exceed 1");
    assert!((1..32).contains(&scale), "scale out of range");
    let n = 1usize << scale;
    let m = n * edge_factor;

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = if directed {
        GraphBuilder::directed(n)
    } else {
        GraphBuilder::undirected(n)
    }
    .drop_self_loops(true);
    builder.reserve(m);

    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for level in 0..scale {
            // ±10% multiplicative noise keeps the recursion from producing
            // artificial striping (Chakrabarti et al. 2004).
            let noise = |p: f64, rng: &mut SmallRng| p * (0.9 + 0.2 * rng.gen::<f64>());
            let (na, nb, nc) = (noise(a, &mut rng), noise(b, &mut rng), noise(c, &mut rng));
            let nd = noise(d, &mut rng);
            let total = na + nb + nc + nd;
            let r: f64 = rng.gen::<f64>() * total;
            let half = 1usize << (scale - 1 - level);
            if r < na {
                // top-left: nothing to add
            } else if r < na + nb {
                v += half;
            } else if r < na + nb + nc {
                u += half;
            } else {
                u += half;
                v += half;
            }
        }
        if u != v {
            builder.add_edge(u as u32, v as u32, 1.0);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_is_power_of_two() {
        let g = rmat(&RmatConfig::graph500(10, 8), 3);
        assert_eq!(g.num_nodes(), 1024);
        assert!(g.num_edges() > 1024); // most of 8192 survive dedup
    }

    #[test]
    fn deterministic() {
        let a = rmat(&RmatConfig::graph500(8, 4), 11);
        let b = rmat(&RmatConfig::graph500(8, 4), 11);
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.arcs().collect::<Vec<_>>(), b.arcs().collect::<Vec<_>>());
    }

    #[test]
    fn skewed_degrees() {
        let g = rmat(&RmatConfig::graph500(12, 8), 5);
        let max_deg = g.nodes().map(|u| g.out_degree(u)).max().unwrap();
        let avg = g.num_arcs() as f64 / g.num_nodes() as f64;
        assert!(
            max_deg as f64 > 8.0 * avg,
            "R-MAT should concentrate degree: max {max_deg}, avg {avg}"
        );
    }

    #[test]
    fn directed_mode() {
        let cfg = RmatConfig {
            directed: true,
            ..RmatConfig::graph500(8, 4)
        };
        let g = rmat(&cfg, 2);
        assert!(g.is_directed());
    }
}
