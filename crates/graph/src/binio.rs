//! Compact binary serialization of graphs and partitions.
//!
//! The harness regenerates large synthetic stand-ins for every experiment
//! binary; caching them as binary CSR dumps makes repeated runs start in
//! milliseconds. The format is little-endian, versioned, and
//! self-describing enough to fail loudly on mismatch:
//!
//! ```text
//! magic "ASAG" | version u32 | num_nodes u32 | directed u8 |
//! out: arcs u64, offsets [u64], targets [u32], weights [f64] |
//! in:  arcs u64, offsets [u64], targets [u32], weights [f64]
//! ```
//!
//! Partitions serialize as `magic "ASAP" | version | len u32 | labels [u32]`.

use std::io::{self, Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::csr::CsrGraph;
use crate::partition::Partition;

const GRAPH_MAGIC: &[u8; 4] = b"ASAG";
const PARTITION_MAGIC: &[u8; 4] = b"ASAP";
const VERSION: u32 = 1;

fn put_csr(buf: &mut BytesMut, offsets: &[u64], targets: &[u32], weights: &[f64]) {
    buf.put_u64_le(targets.len() as u64);
    for &x in offsets {
        buf.put_u64_le(x);
    }
    for &t in targets {
        buf.put_u32_le(t);
    }
    for &w in weights {
        buf.put_f64_le(w);
    }
}

fn get_csr(buf: &mut Bytes, num_nodes: usize) -> io::Result<(Vec<u64>, Vec<u32>, Vec<f64>)> {
    let need = |buf: &Bytes, n: usize| -> io::Result<()> {
        if buf.remaining() < n {
            Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated graph blob",
            ))
        } else {
            Ok(())
        }
    };
    need(buf, 8)?;
    let arcs = buf.get_u64_le() as usize;
    need(buf, (num_nodes + 1) * 8 + arcs * 12)?;
    let mut offsets = Vec::with_capacity(num_nodes + 1);
    for _ in 0..=num_nodes {
        offsets.push(buf.get_u64_le());
    }
    let mut targets = Vec::with_capacity(arcs);
    for _ in 0..arcs {
        targets.push(buf.get_u32_le());
    }
    let mut weights = Vec::with_capacity(arcs);
    for _ in 0..arcs {
        weights.push(buf.get_f64_le());
    }
    Ok((offsets, targets, weights))
}

/// Serializes a graph to a writer.
pub fn write_graph<W: Write>(graph: &CsrGraph, mut writer: W) -> io::Result<()> {
    let mut buf = BytesMut::new();
    buf.put_slice(GRAPH_MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(graph.num_nodes() as u32);
    buf.put_u8(graph.is_directed() as u8);
    let (oo, ot, ow) = graph.out_csr();
    put_csr(&mut buf, oo, ot, ow);
    let (io_, it, iw) = graph.in_csr();
    put_csr(&mut buf, io_, it, iw);
    writer.write_all(&buf)
}

/// Deserializes a graph written by [`write_graph`].
pub fn read_graph<R: Read>(mut reader: R) -> io::Result<CsrGraph> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut buf = Bytes::from(raw);
    if buf.remaining() < 13 || &buf.copy_to_bytes(4)[..] != GRAPH_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad graph magic",
        ));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported graph blob version {version}"),
        ));
    }
    let num_nodes = buf.get_u32_le();
    let directed = buf.get_u8() != 0;
    let (oo, ot, ow) = get_csr(&mut buf, num_nodes as usize)?;
    let (io_, it, iw) = get_csr(&mut buf, num_nodes as usize)?;
    Ok(CsrGraph::from_csr_parts(
        num_nodes, directed, oo, ot, ow, io_, it, iw,
    ))
}

/// Serializes a partition to a writer.
pub fn write_partition<W: Write>(partition: &Partition, mut writer: W) -> io::Result<()> {
    let mut buf = BytesMut::with_capacity(12 + partition.len() * 4);
    buf.put_slice(PARTITION_MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(partition.len() as u32);
    for &l in partition.labels() {
        buf.put_u32_le(l);
    }
    writer.write_all(&buf)
}

/// Deserializes a partition written by [`write_partition`].
pub fn read_partition<R: Read>(mut reader: R) -> io::Result<Partition> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut buf = Bytes::from(raw);
    if buf.remaining() < 12 || &buf.copy_to_bytes(4)[..] != PARTITION_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad partition magic",
        ));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported partition blob version {version}"),
        ));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len * 4 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "truncated partition blob",
        ));
    }
    let labels = (0..len).map(|_| buf.get_u32_le()).collect();
    Ok(Partition::from_labels(labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barabasi_albert, planted_partition, PlantedConfig};

    #[test]
    fn graph_round_trip() {
        let g = barabasi_albert(500, 3, 7);
        let mut blob = Vec::new();
        write_graph(&g, &mut blob).unwrap();
        let back = read_graph(blob.as_slice()).unwrap();
        assert_eq!(g.num_nodes(), back.num_nodes());
        assert_eq!(g.num_edges(), back.num_edges());
        assert_eq!(
            g.arcs().collect::<Vec<_>>(),
            back.arcs().collect::<Vec<_>>()
        );
        assert_eq!(g.is_directed(), back.is_directed());
    }

    #[test]
    fn directed_round_trip() {
        use crate::builder::GraphBuilder;
        let mut b = GraphBuilder::directed(4);
        b.add_edge(0, 1, 2.5);
        b.add_edge(3, 0, 1.0);
        let g = b.build();
        let mut blob = Vec::new();
        write_graph(&g, &mut blob).unwrap();
        let back = read_graph(blob.as_slice()).unwrap();
        assert!(back.is_directed());
        assert_eq!(back.in_degree(0), 1);
        assert_eq!(back.out_neighbors(0).iter().next().unwrap().weight, 2.5);
    }

    #[test]
    fn partition_round_trip() {
        let (_, p) = planted_partition(
            &PlantedConfig {
                communities: 3,
                community_size: 10,
                k_in: 4.0,
                k_out: 1.0,
            },
            2,
        );
        let mut blob = Vec::new();
        write_partition(&p, &mut blob).unwrap();
        let back = read_partition(blob.as_slice()).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn corrupt_blobs_rejected() {
        assert!(read_graph(&b"nope"[..]).is_err());
        assert!(read_partition(&b"ASAPxxxx"[..]).is_err());
        // Truncated after the header.
        let g = barabasi_albert(50, 2, 1);
        let mut blob = Vec::new();
        write_graph(&g, &mut blob).unwrap();
        blob.truncate(blob.len() / 2);
        assert!(read_graph(blob.as_slice()).is_err());
    }

    #[test]
    fn version_checked() {
        let g = barabasi_albert(20, 2, 1);
        let mut blob = Vec::new();
        write_graph(&g, &mut blob).unwrap();
        blob[4] = 99; // clobber version
        let err = read_graph(blob.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }
}
