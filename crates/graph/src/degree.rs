//! Degree-distribution analytics backing Figures 4 and 5.
//!
//! Figure 4 plots the (heavily skewed) degree histograms of LiveJournal,
//! Pokec, and YouTube; Figure 5 turns those into the fraction of vertices
//! whose neighbour list fits in a core-local CAM of 1–8 KB. Both reduce to
//! simple functions of the degree sequence computed here.

use crate::csr::CsrGraph;

/// Degree histogram: `counts[k]` is the number of vertices with degree `k`.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeHistogram {
    counts: Vec<u64>,
    num_nodes: u64,
}

/// Which degree to histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegreeKind {
    /// Out-degree only. For undirected graphs this is the conventional
    /// neighbour count, and it bounds the CAM working set of one
    /// accumulation phase of Algorithm 2 (out-flow and in-flow are
    /// accumulated in separate phases, each gathered before the next).
    Out,
    /// In-degree only.
    In,
    /// Out + in. Note that undirected graphs store both arc directions, so
    /// this is twice the conventional degree there.
    Total,
}

impl DegreeHistogram {
    /// Builds the histogram of the chosen degree over all vertices.
    pub fn of(graph: &CsrGraph, kind: DegreeKind) -> Self {
        let mut counts: Vec<u64> = Vec::new();
        for u in graph.nodes() {
            let d = match kind {
                DegreeKind::Out => graph.out_degree(u),
                DegreeKind::In => graph.in_degree(u),
                DegreeKind::Total => graph.total_degree(u),
            };
            if d >= counts.len() {
                counts.resize(d + 1, 0);
            }
            counts[d] += 1;
        }
        Self {
            counts,
            num_nodes: graph.num_nodes() as u64,
        }
    }

    /// `counts[k]` slice; index = degree.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Largest observed degree.
    pub fn max_degree(&self) -> usize {
        self.counts.len().saturating_sub(1)
    }

    /// Mean degree.
    pub fn mean(&self) -> f64 {
        let total: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(k, &c)| k as u64 * c)
            .sum();
        total as f64 / self.num_nodes as f64
    }

    /// Complementary CDF: fraction of vertices with degree > `k`.
    pub fn ccdf(&self, k: usize) -> f64 {
        let above: u64 = self.counts.iter().skip(k + 1).sum();
        above as f64 / self.num_nodes as f64
    }

    /// Fraction of vertices with degree ≤ `k` (Figure 5's y-axis).
    pub fn coverage(&self, k: usize) -> f64 {
        1.0 - self.ccdf(k)
    }

    /// Log-binned `(degree, count)` series for plotting Figure 4 on log-log
    /// axes: bins are powers of `base` (use 2.0), each reported at its
    /// geometric centre with the *average* count per integer degree in the
    /// bin so power-law slopes remain unbiased.
    pub fn log_binned(&self, base: f64) -> Vec<(f64, f64)> {
        assert!(base > 1.0);
        let mut out = Vec::new();
        let mut lo = 1usize;
        while lo <= self.max_degree() {
            let hi = ((lo as f64 * base).ceil() as usize).max(lo + 1);
            let span = hi - lo;
            let total: u64 = self.counts.iter().skip(lo).take(span).sum();
            if total > 0 {
                let centre = (lo as f64 * (hi - 1) as f64).sqrt();
                out.push((centre, total as f64 / span as f64));
            }
            lo = hi;
        }
        out
    }

    /// Maximum-likelihood power-law exponent fit (Clauset–Shalizi–Newman
    /// discrete MLE approximation) for degrees ≥ `k_min`:
    /// `alpha = 1 + n / Σ ln(k / (k_min - 0.5))`.
    pub fn power_law_alpha(&self, k_min: usize) -> Option<f64> {
        assert!(k_min >= 1);
        let mut n = 0u64;
        let mut log_sum = 0.0f64;
        for (k, &c) in self.counts.iter().enumerate().skip(k_min) {
            if c > 0 {
                n += c;
                log_sum += c as f64 * (k as f64 / (k_min as f64 - 0.5)).ln();
            }
        }
        if n < 10 || log_sum <= 0.0 {
            return None;
        }
        Some(1.0 + n as f64 / log_sum)
    }
}

/// Result row of the CAM-coverage study (Figure 5).
#[derive(Debug, Clone, PartialEq)]
pub struct CamCoverage {
    /// CAM capacity in bytes.
    pub capacity_bytes: usize,
    /// Number of key/value entries that capacity holds.
    pub entries: usize,
    /// Fraction of vertices whose accumulation working set fits without
    /// overflowing.
    pub fraction_covered: f64,
}

/// Computes, for each CAM capacity, the fraction of vertices whose
/// neighbourhood accumulation fits entirely on-chip (Figure 5).
///
/// A vertex's working set is bounded by its degree in the accumulated
/// direction: each distinct neighbouring *module* needs one CAM entry, and
/// the number of distinct modules is at most the degree. `entry_bytes` is
/// the CAM line size per key/value pair (the paper's ASA stores a 32-bit key
/// and 64-bit partial sum; we default to 16 bytes with padding).
pub fn cam_coverage(
    graph: &CsrGraph,
    capacities_bytes: &[usize],
    entry_bytes: usize,
    kind: DegreeKind,
) -> Vec<CamCoverage> {
    assert!(entry_bytes > 0);
    let hist = DegreeHistogram::of(graph, kind);
    capacities_bytes
        .iter()
        .map(|&cap| {
            let entries = cap / entry_bytes;
            CamCoverage {
                capacity_bytes: cap,
                entries,
                fraction_covered: hist.coverage(entries),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::barabasi_albert;
    use crate::GraphBuilder;

    fn star(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::undirected(n);
        for v in 1..n as u32 {
            b.add_edge(0, v, 1.0);
        }
        b.build()
    }

    #[test]
    fn star_histogram() {
        let g = star(11);
        let h = DegreeHistogram::of(&g, DegreeKind::Out);
        assert_eq!(h.counts()[1], 10);
        assert_eq!(h.counts()[10], 1);
        assert_eq!(h.max_degree(), 10);
        assert!((h.mean() - 20.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn ccdf_and_coverage() {
        let g = star(11);
        let h = DegreeHistogram::of(&g, DegreeKind::Out);
        assert!((h.ccdf(1) - 1.0 / 11.0).abs() < 1e-12);
        assert!((h.coverage(1) - 10.0 / 11.0).abs() < 1e-12);
        assert_eq!(h.coverage(10), 1.0);
    }

    #[test]
    fn total_degree_counts_both_directions() {
        let mut b = GraphBuilder::directed(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(2, 1, 1.0);
        let g = b.build();
        let h = DegreeHistogram::of(&g, DegreeKind::Total);
        assert_eq!(h.counts()[2], 1); // vertex 1: in-degree 2
        assert_eq!(h.counts()[1], 2); // vertices 0 and 2
    }

    #[test]
    fn ba_power_law_fit() {
        let g = barabasi_albert(20_000, 3, 13);
        let h = DegreeHistogram::of(&g, DegreeKind::Out);
        let alpha = h.power_law_alpha(6).expect("enough tail mass");
        // BA's theoretical exponent is 3; MLE with finite n lands nearby.
        assert!(
            (2.2..4.2).contains(&alpha),
            "BA exponent fit {alpha} outside plausible band"
        );
    }

    #[test]
    fn cam_coverage_monotone() {
        let g = barabasi_albert(5_000, 4, 3);
        let rows = cam_coverage(&g, &[1024, 2048, 4096, 8192], 16, DegreeKind::Out);
        assert_eq!(rows.len(), 4);
        for w in rows.windows(2) {
            assert!(w[0].fraction_covered <= w[1].fraction_covered);
        }
        // Headline claim of the paper: 8KB covers > 99% on power-law graphs.
        assert!(rows[3].fraction_covered > 0.99);
        // And 1KB already covers > 82%.
        assert!(rows[0].fraction_covered > 0.82);
    }

    #[test]
    fn log_binning_conserves_mass() {
        let g = barabasi_albert(2_000, 3, 5);
        let h = DegreeHistogram::of(&g, DegreeKind::Out);
        let binned = h.log_binned(2.0);
        assert!(!binned.is_empty());
        // Bin centres strictly increase.
        for w in binned.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }
}
