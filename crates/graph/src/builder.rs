//! Mutable edge-list accumulator that compiles to [`CsrGraph`].
//!
//! Parallel edges are merged by *summing* their weights, matching the paper's
//! `Convert2SuperNode` kernel: "If multiple vertices of one super node are
//! connected to another super node, a single super edge is created with
//! accumulated edge weights."

use crate::csr::{CsrGraph, NodeId};

/// Streaming graph builder.
///
/// Edges may be added in any order; `build` sorts, deduplicates (summing
/// weights of parallel edges) and produces both adjacency directions.
///
/// ```
/// use asa_graph::GraphBuilder;
/// let mut b = GraphBuilder::undirected(4);
/// b.add_edge(0, 1, 1.0);
/// b.add_edge(1, 0, 2.0); // parallel to (0,1): weights merge to 3.0
/// b.add_edge(2, 3, 1.0);
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.out_neighbors(0).iter().next().unwrap().weight, 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_nodes: u32,
    directed: bool,
    drop_self_loops: bool,
    edges: Vec<(NodeId, NodeId, f64)>,
}

impl GraphBuilder {
    /// New builder for a directed graph with `num_nodes` vertices.
    pub fn directed(num_nodes: usize) -> Self {
        Self::new(num_nodes, true)
    }

    /// New builder for an undirected graph with `num_nodes` vertices.
    ///
    /// Each added edge `(u, v)` produces the two arcs `u→v` and `v→u`; the
    /// pair is normalized so `(u, v)` and `(v, u)` merge.
    pub fn undirected(num_nodes: usize) -> Self {
        Self::new(num_nodes, false)
    }

    fn new(num_nodes: usize, directed: bool) -> Self {
        assert!(num_nodes <= u32::MAX as usize, "node count exceeds u32");
        Self {
            num_nodes: num_nodes as u32,
            directed,
            drop_self_loops: false,
            edges: Vec::new(),
        }
    }

    /// Discard self-loops instead of storing them (SNAP social networks are
    /// loop-free; generators may emit loops that callers want dropped).
    pub fn drop_self_loops(mut self, yes: bool) -> Self {
        self.drop_self_loops = yes;
        self
    }

    /// Number of vertices this builder was created with.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes as usize
    }

    /// Number of raw (pre-merge) edges added so far.
    pub fn num_raw_edges(&self) -> usize {
        self.edges.len()
    }

    /// Reserve capacity for `n` additional edges.
    pub fn reserve(&mut self, n: usize) {
        self.edges.reserve(n);
    }

    /// Adds one weighted edge. For undirected builders the endpoint order is
    /// irrelevant.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range or the weight is not finite
    /// and positive.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: f64) {
        assert!(
            u < self.num_nodes && v < self.num_nodes,
            "endpoint out of range"
        );
        assert!(
            weight.is_finite() && weight > 0.0,
            "edge weight must be finite and positive"
        );
        if u == v && self.drop_self_loops {
            return;
        }
        if self.directed || u <= v {
            self.edges.push((u, v, weight));
        } else {
            self.edges.push((v, u, weight));
        }
    }

    /// Adds every edge of an iterator.
    pub fn extend_edges<I: IntoIterator<Item = (NodeId, NodeId, f64)>>(&mut self, it: I) {
        for (u, v, w) in it {
            self.add_edge(u, v, w);
        }
    }

    /// Compiles the accumulated edges into an immutable [`CsrGraph`].
    pub fn build(mut self) -> CsrGraph {
        // Merge parallel edges: sort by (u, v) and fold equal keys.
        self.edges.sort_unstable_by_key(|a| (a.0, a.1));
        let mut merged: Vec<(NodeId, NodeId, f64)> = Vec::with_capacity(self.edges.len());
        for (u, v, w) in self.edges.drain(..) {
            match merged.last_mut() {
                Some(last) if last.0 == u && last.1 == v => last.2 += w,
                _ => merged.push((u, v, w)),
            }
        }

        // Expand to arcs.
        let mut arcs: Vec<(NodeId, NodeId, f64)> =
            Vec::with_capacity(merged.len() * if self.directed { 1 } else { 2 });
        for &(u, v, w) in &merged {
            arcs.push((u, v, w));
            if !self.directed && u != v {
                arcs.push((v, u, w));
            }
        }

        let (out_offsets, out_targets, out_weights) =
            arcs_to_csr(self.num_nodes, arcs.iter().copied());
        let (in_offsets, in_targets, in_weights) =
            arcs_to_csr(self.num_nodes, arcs.iter().map(|&(u, v, w)| (v, u, w)));

        CsrGraph::from_csr_parts(
            self.num_nodes,
            self.directed,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_targets,
            in_weights,
        )
    }
}

/// Counting-sort arcs by source into CSR arrays, keeping targets sorted per
/// row (inputs are expected pre-sorted for the out direction; the in
/// direction is re-sorted here).
fn arcs_to_csr<I>(num_nodes: u32, arcs: I) -> (Vec<u64>, Vec<NodeId>, Vec<f64>)
where
    I: Iterator<Item = (NodeId, NodeId, f64)> + Clone,
{
    let n = num_nodes as usize;
    let mut counts = vec![0u64; n + 1];
    let mut num_arcs = 0usize;
    for (u, _, _) in arcs.clone() {
        counts[u as usize + 1] += 1;
        num_arcs += 1;
    }
    for i in 0..n {
        counts[i + 1] += counts[i];
    }
    let offsets = counts.clone();
    let mut cursor = counts;
    let mut targets = vec![0 as NodeId; num_arcs];
    let mut weights = vec![0f64; num_arcs];
    for (u, v, w) in arcs {
        let slot = cursor[u as usize] as usize;
        targets[slot] = v;
        weights[slot] = w;
        cursor[u as usize] += 1;
    }
    // Sort each row by target so lookups and comparisons are deterministic.
    for u in 0..n {
        let (lo, hi) = (offsets[u] as usize, offsets[u + 1] as usize);
        let row: &mut [NodeId] = &mut targets[lo..hi];
        if row.windows(2).all(|w| w[0] <= w[1]) {
            continue;
        }
        let mut idx: Vec<usize> = (0..row.len()).collect();
        idx.sort_unstable_by_key(|&i| row[i]);
        let t_sorted: Vec<NodeId> = idx.iter().map(|&i| row[i]).collect();
        let w_sorted: Vec<f64> = idx.iter().map(|&i| weights[lo + i]).collect();
        targets[lo..hi].copy_from_slice(&t_sorted);
        weights[lo..hi].copy_from_slice(&w_sorted);
    }
    (offsets, targets, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_edges_merge() {
        let mut b = GraphBuilder::directed(2);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 1, 2.5);
        let g = b.build();
        assert_eq!(g.num_arcs(), 1);
        assert_eq!(g.out_neighbors(0).iter().next().unwrap().weight, 3.5);
    }

    #[test]
    fn undirected_normalizes_endpoints() {
        let mut b = GraphBuilder::undirected(2);
        b.add_edge(1, 0, 1.0);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_neighbors(0).iter().next().unwrap().weight, 2.0);
    }

    #[test]
    fn drop_self_loops_works() {
        let mut b = GraphBuilder::undirected(2).drop_self_loops(true);
        b.add_edge(0, 0, 1.0);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn rows_are_sorted() {
        let mut b = GraphBuilder::directed(5);
        for v in [4, 2, 3, 1] {
            b.add_edge(0, v, 1.0);
        }
        let g = b.build();
        let row: Vec<u32> = g.out_neighbors(0).iter().map(|e| e.target).collect();
        assert_eq!(row, vec![1, 2, 3, 4]);
        // in-adjacency of each target contains 0
        for v in 1..5 {
            assert_eq!(g.in_neighbors(v).iter().next().unwrap().target, 0);
        }
    }

    #[test]
    fn empty_graph_builds() {
        let g = GraphBuilder::undirected(3).build();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 0);
        assert!(g.out_neighbors(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "endpoint out of range")]
    fn out_of_range_rejected() {
        let mut b = GraphBuilder::directed(2);
        b.add_edge(0, 2, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn bad_weight_rejected() {
        let mut b = GraphBuilder::directed(2);
        b.add_edge(0, 1, f64::NAN);
    }

    #[test]
    fn extend_edges_bulk() {
        let mut b = GraphBuilder::directed(3);
        b.extend_edges(vec![(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]);
        assert_eq!(b.num_raw_edges(), 3);
        let g = b.build();
        assert_eq!(g.num_arcs(), 3);
    }
}
