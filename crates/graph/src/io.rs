//! SNAP-format edge-list I/O.
//!
//! The paper's datasets (Table I) come from the SNAP collection, distributed
//! as whitespace-separated edge lists with `#` comment headers. This module
//! reads and writes that format (optionally with a third weight column) so
//! real datasets can replace the synthetic stand-ins without code changes.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;

/// Errors arising while parsing an edge list.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line could not be parsed; carries the 1-based line number and text.
    Parse(usize, String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse(line, text) => write!(f, "parse error on line {line}: {text:?}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Options controlling edge-list parsing.
#[derive(Debug, Clone)]
pub struct ReadOptions {
    /// Build a directed graph (SNAP's soc-Pokec and LiveJournal are directed;
    /// Amazon/DBLP/YouTube/Orkut are undirected).
    pub directed: bool,
    /// Drop self-loops while reading.
    pub drop_self_loops: bool,
    /// Default weight for 2-column lines.
    pub default_weight: f64,
}

impl Default for ReadOptions {
    fn default() -> Self {
        Self {
            directed: false,
            drop_self_loops: true,
            default_weight: 1.0,
        }
    }
}

/// Reads a SNAP edge list from any reader. Vertex ids are densified: arbitrary
/// (possibly sparse) external ids are relabeled to `0..n` in first-seen order.
/// Returns the graph and the external-id table (`result.1[i]` is the original
/// id of internal vertex `i`).
pub fn read_edge_list<R: Read>(
    reader: R,
    opts: &ReadOptions,
) -> Result<(CsrGraph, Vec<u64>), IoError> {
    let reader = BufReader::new(reader);
    let mut remap: HashMap<u64, u32> = HashMap::new();
    let mut external: Vec<u64> = Vec::new();
    let mut edges: Vec<(u32, u32, f64)> = Vec::new();

    let intern = |id: u64, remap: &mut HashMap<u64, u32>, external: &mut Vec<u64>| -> u32 {
        *remap.entry(id).or_insert_with(|| {
            external.push(id);
            (external.len() - 1) as u32
        })
    };

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let (Some(a), Some(b)) = (it.next(), it.next()) else {
            return Err(IoError::Parse(lineno + 1, line));
        };
        let u: u64 = a
            .parse()
            .map_err(|_| IoError::Parse(lineno + 1, line.clone()))?;
        let v: u64 = b
            .parse()
            .map_err(|_| IoError::Parse(lineno + 1, line.clone()))?;
        let w: f64 = match it.next() {
            Some(ws) => ws
                .parse()
                .map_err(|_| IoError::Parse(lineno + 1, line.clone()))?,
            None => opts.default_weight,
        };
        let ui = intern(u, &mut remap, &mut external);
        let vi = intern(v, &mut remap, &mut external);
        edges.push((ui, vi, w));
    }

    let n = external.len();
    let mut builder = if opts.directed {
        GraphBuilder::directed(n)
    } else {
        GraphBuilder::undirected(n)
    }
    .drop_self_loops(opts.drop_self_loops);
    builder.reserve(edges.len());
    builder.extend_edges(edges);
    Ok((builder.build(), external))
}

/// Reads an edge list from a file path. See [`read_edge_list`].
pub fn read_edge_list_file<P: AsRef<Path>>(
    path: P,
    opts: &ReadOptions,
) -> Result<(CsrGraph, Vec<u64>), IoError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file, opts)
}

/// Writes a graph as a SNAP-style edge list (tab-separated, weight column
/// included when any weight differs from 1.0). Undirected edges are written
/// once with `u <= v`.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, writer: W) -> io::Result<()> {
    let mut out = BufWriter::new(writer);
    writeln!(
        out,
        "# infomap-asa edge list: {} nodes, {} edges, {}",
        graph.num_nodes(),
        graph.num_edges(),
        if graph.is_directed() {
            "directed"
        } else {
            "undirected"
        }
    )?;
    let weighted = graph.arcs().any(|(_, _, w)| w != 1.0);
    for (u, v, w) in graph.arcs() {
        if !graph.is_directed() && v < u {
            continue;
        }
        if weighted {
            writeln!(out, "{u}\t{v}\t{w}")?;
        } else {
            writeln!(out, "{u}\t{v}")?;
        }
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# Directed graph: example
# FromNodeId ToNodeId
0 1
1 2
2 0
10 0
";

    #[test]
    fn reads_snap_format() {
        let (g, ext) = read_edge_list(SAMPLE.as_bytes(), &ReadOptions::default()).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(ext, vec![0, 1, 2, 10]);
    }

    #[test]
    fn directed_read() {
        let opts = ReadOptions {
            directed: true,
            ..Default::default()
        };
        let (g, _) = read_edge_list(SAMPLE.as_bytes(), &opts).unwrap();
        assert!(g.is_directed());
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.in_degree(0), 2);
    }

    #[test]
    fn weighted_column_parsed() {
        let (g, _) =
            read_edge_list("0 1 2.5\n1 2 0.5\n".as_bytes(), &ReadOptions::default()).unwrap();
        assert_eq!(g.out_neighbors(0).iter().next().unwrap().weight, 2.5);
    }

    #[test]
    fn bad_line_reports_position() {
        let err =
            read_edge_list("0 1\nnot numbers\n".as_bytes(), &ReadOptions::default()).unwrap_err();
        match err {
            IoError::Parse(2, _) => {}
            other => panic!("expected parse error on line 2, got {other}"),
        }
    }

    #[test]
    fn round_trip() {
        let (g, _) = read_edge_list(SAMPLE.as_bytes(), &ReadOptions::default()).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let (g2, _) = read_edge_list(buf.as_slice(), &ReadOptions::default()).unwrap();
        assert_eq!(g.num_nodes(), g2.num_nodes());
        assert_eq!(g.num_edges(), g2.num_edges());
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let (g, _) = read_edge_list("0 0\n0 1\n".as_bytes(), &ReadOptions::default()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }
}
