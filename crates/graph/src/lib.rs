//! Graph substrate for the Infomap-ASA reproduction.
//!
//! This crate provides everything the paper's evaluation needs from its graph
//! layer:
//!
//! * a compact weighted [CSR](csr::CsrGraph) representation with both out- and
//!   in-adjacency (Infomap's `FindBestCommunity` accumulates flow in both
//!   directions, Algorithm 1 of the paper),
//! * a mutable [builder](builder::GraphBuilder) that deduplicates parallel
//!   edges by accumulating weights (the paper's `Convert2SuperNode` semantics),
//! * SNAP-format edge-list [I/O](io) so real datasets drop in when available,
//! * seeded, deterministic [generators] for scale-free networks
//!   (Barabási–Albert, R-MAT), random graphs (Erdős–Rényi), and
//!   community-structured benchmarks (planted partition, LFR-style), used to
//!   synthesize stand-ins for the six SNAP networks in Table I,
//! * [degree analytics](degree): histograms, CCDFs, power-law tail fits
//!   (Figure 4) and the CAM-capacity coverage study (Figure 5),
//! * [partitions](partition) with relabeling and per-community bookkeeping.
//!
//! All generators take explicit seeds and are deterministic across runs, which
//! the simulation harness relies on when comparing the Baseline and ASA
//! pipelines event-for-event.

pub mod binio;
pub mod builder;
pub mod clustering;
pub mod connectivity;
pub mod csr;
pub mod degree;
pub mod delta;
pub mod fingerprint;
pub mod generators;
pub mod io;
pub mod kcore;
pub mod partition;
pub mod reorder;
pub mod stats;
pub mod subgraph;

pub use builder::GraphBuilder;
pub use csr::{CsrGraph, EdgeRef, NodeId};
pub use delta::{DeltaGraph, EdgeDelta};
pub use fingerprint::{fnv1a64, Fnv64};
pub use partition::Partition;
pub use reorder::{degree_order, renumber, VertexPermutation};
pub use stats::GraphStats;
