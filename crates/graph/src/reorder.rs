//! Vertex renumbering for cache-friendly sweep schedules.
//!
//! The Infomap local-move sweep walks vertices and scatters flow into
//! per-module slots indexed by neighbour labels. When vertex ids are
//! assigned in input order (whatever the dataset shipped), consecutive
//! sweep iterations jump across unrelated CSR rows and label ranges. A
//! degree-ordered renumbering places high-degree hubs — whose rows and
//! label neighbourhoods are touched by the most sweep iterations — in a
//! dense, low id range, so their adjacency and label lines stay resident
//! while the long tail streams past.
//!
//! The permutation is explicit and invertible: detectors run on the
//! renumbered graph and map the final partition back with
//! [`VertexPermutation::map_partition_back`], so renumbering is invisible
//! to callers except for speed. The structural fingerprint *does* change
//! (ids are part of the byte stream); quality metrics do not — the
//! renumbered graph is isomorphic by construction.

use crate::csr::{CsrGraph, NodeId};
use crate::partition::Partition;

/// An explicit vertex bijection `old id -> new id` plus its inverse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexPermutation {
    /// `forward[old] = new`.
    forward: Vec<NodeId>,
    /// `inverse[new] = old`.
    inverse: Vec<NodeId>,
}

impl VertexPermutation {
    /// The identity permutation on `n` vertices.
    pub fn identity(n: usize) -> Self {
        let forward: Vec<NodeId> = (0..n as NodeId).collect();
        Self {
            inverse: forward.clone(),
            forward,
        }
    }

    /// Builds a permutation from its forward map (`forward[old] = new`).
    ///
    /// # Panics
    /// Panics if `forward` is not a bijection on `0..forward.len()`.
    pub fn from_forward(forward: Vec<NodeId>) -> Self {
        let n = forward.len();
        let mut inverse = vec![NodeId::MAX; n];
        for (old, &new) in forward.iter().enumerate() {
            assert!(
                (new as usize) < n && inverse[new as usize] == NodeId::MAX,
                "forward map is not a bijection on 0..{n} (old {old} -> new {new})"
            );
            inverse[new as usize] = old as NodeId;
        }
        Self { forward, inverse }
    }

    /// Number of vertices the permutation acts on.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether the permutation is over the empty vertex set.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// New id of old vertex `u`.
    #[inline]
    pub fn apply(&self, u: NodeId) -> NodeId {
        self.forward[u as usize]
    }

    /// Old id of new vertex `v`.
    #[inline]
    pub fn invert(&self, v: NodeId) -> NodeId {
        self.inverse[v as usize]
    }

    /// The forward map (`forward[old] = new`).
    pub fn forward(&self) -> &[NodeId] {
        &self.forward
    }

    /// The inverse map (`inverse[new] = old`).
    pub fn inverse(&self) -> &[NodeId] {
        &self.inverse
    }

    /// Maps a partition of the *renumbered* graph back onto original
    /// vertex ids: `result[old] = partition[forward[old]]`, densified in
    /// first-seen order ([`Partition::from_labels`]). Co-membership — and
    /// with it community sizes and any label-insensitive quality metric —
    /// is preserved exactly.
    pub fn map_partition_back(&self, partition: &Partition) -> Partition {
        assert_eq!(partition.len(), self.len(), "partition/permutation size");
        let labels = partition.labels();
        Partition::from_labels(
            self.forward
                .iter()
                .map(|&new| labels[new as usize])
                .collect(),
        )
    }
}

/// The degree-ordered permutation of `graph`: new ids are assigned by
/// descending total degree (out + in), ties broken by ascending old id so
/// the result is deterministic.
pub fn degree_order(graph: &CsrGraph) -> VertexPermutation {
    let n = graph.num_nodes();
    let mut by_degree: Vec<NodeId> = (0..n as NodeId).collect();
    by_degree.sort_by_key(|&u| (std::cmp::Reverse(graph.total_degree(u)), u));
    // `by_degree[new] = old` is exactly the inverse map.
    let mut forward = vec![0 as NodeId; n];
    for (new, &old) in by_degree.iter().enumerate() {
        forward[old as usize] = new as NodeId;
    }
    VertexPermutation {
        forward,
        inverse: by_degree,
    }
}

/// Applies `perm` to `graph`, producing the isomorphic renumbered graph:
/// vertex `u` becomes `perm.apply(u)` and every adjacency row is relabeled
/// and re-sorted by target id. Arc weights are moved, never recombined, so
/// flow computations on the renumbered graph see the exact same multiset
/// of weighted arcs.
pub fn renumber(graph: &CsrGraph, perm: &VertexPermutation) -> CsrGraph {
    assert_eq!(graph.num_nodes(), perm.len(), "graph/permutation size");
    let (oo, ot, ow) = graph.out_csr();
    let (io, it, iw) = graph.in_csr();
    let (out_offsets, out_targets, out_weights) = permute_csr(oo, ot, ow, perm);
    let (in_offsets, in_targets, in_weights) = permute_csr(io, it, iw, perm);
    CsrGraph::from_csr_parts(
        graph.num_nodes() as NodeId,
        graph.is_directed(),
        out_offsets,
        out_targets,
        out_weights,
        in_offsets,
        in_targets,
        in_weights,
    )
}

/// Relabels one CSR direction under `perm`: row `new` is old row
/// `perm.invert(new)` with targets mapped forward and re-sorted ascending
/// (weights carried along pairwise).
fn permute_csr(
    offsets: &[u64],
    targets: &[NodeId],
    weights: &[f64],
    perm: &VertexPermutation,
) -> (Vec<u64>, Vec<NodeId>, Vec<f64>) {
    let n = perm.len();
    let mut new_offsets = Vec::with_capacity(n + 1);
    let mut new_targets = Vec::with_capacity(targets.len());
    let mut new_weights = Vec::with_capacity(weights.len());
    let mut row: Vec<(NodeId, f64)> = Vec::new();
    new_offsets.push(0u64);
    for new in 0..n as NodeId {
        let old = perm.invert(new) as usize;
        let (s, e) = (offsets[old] as usize, offsets[old + 1] as usize);
        row.clear();
        row.extend(
            targets[s..e]
                .iter()
                .zip(&weights[s..e])
                .map(|(&t, &w)| (perm.apply(t), w)),
        );
        // Old rows are deduplicated and perm is a bijection, so targets
        // stay unique — sorting by target alone is deterministic.
        row.sort_unstable_by_key(|&(t, _)| t);
        new_targets.extend(row.iter().map(|&(t, _)| t));
        new_weights.extend(row.iter().map(|&(_, w)| w));
        new_offsets.push(new_targets.len() as u64);
    }
    (new_offsets, new_targets, new_weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// Deterministic LCG test graph (undirected, weighted).
    fn test_graph(n: u32, arcs: u32, directed: bool) -> CsrGraph {
        let mut b = if directed {
            GraphBuilder::directed(n as usize)
        } else {
            GraphBuilder::undirected(n as usize)
        };
        let mut s = 0x2545F4914F6CDD1Du64;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..arcs {
            let u = (rng() % n as u64) as u32;
            let v = (rng() % n as u64) as u32;
            if u != v {
                b.add_edge(u, v, 1.0 + (rng() % 8) as f64 * 0.25);
            }
        }
        b.build()
    }

    /// Weighted directed modularity of `partition` on `graph` — a quality
    /// functional that only sees community labels and arc weights, so it
    /// must be invariant under renumber + map-back.
    fn modularity(graph: &CsrGraph, partition: &Partition) -> f64 {
        let total: f64 = graph.total_arc_weight();
        let mut q = 0.0;
        for (u, v, w) in graph.arcs() {
            if partition.community_of(u) == partition.community_of(v) {
                q += w / total;
            }
        }
        for u in graph.nodes() {
            let c = partition.community_of(u);
            for v in graph.nodes() {
                if partition.community_of(v) == c {
                    q -= (graph.out_weight(u) / total) * (graph.in_weight(v) / total);
                }
            }
        }
        q
    }

    #[test]
    fn permutation_round_trips() {
        let g = test_graph(100, 400, false);
        let perm = degree_order(&g);
        assert_eq!(perm.len(), g.num_nodes());
        for u in 0..g.num_nodes() as NodeId {
            assert_eq!(perm.invert(perm.apply(u)), u);
            assert_eq!(perm.apply(perm.invert(u)), u);
        }
        // from_forward rebuilds the identical inverse.
        let rebuilt = VertexPermutation::from_forward(perm.forward().to_vec());
        assert_eq!(rebuilt, perm);
    }

    #[test]
    #[should_panic(expected = "not a bijection")]
    fn from_forward_rejects_non_bijection() {
        VertexPermutation::from_forward(vec![0, 0, 1]);
    }

    #[test]
    fn degree_order_is_monotone_and_deterministic() {
        let g = test_graph(200, 900, true);
        let perm = degree_order(&g);
        let degs: Vec<usize> = (0..g.num_nodes() as NodeId)
            .map(|new| g.total_degree(perm.invert(new)))
            .collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]), "degree-descending");
        assert_eq!(perm, degree_order(&g), "deterministic");
        // Ties broken by ascending old id.
        for w in 0..g.num_nodes().saturating_sub(1) {
            let (a, b) = (perm.invert(w as NodeId), perm.invert(w as NodeId + 1));
            if g.total_degree(a) == g.total_degree(b) {
                assert!(a < b, "tie at new ids {w},{} broke on old id", w + 1);
            }
        }
    }

    #[test]
    fn renumber_is_isomorphic() {
        for directed in [false, true] {
            let g = test_graph(120, 500, directed);
            let perm = degree_order(&g);
            let r = renumber(&g, &perm);
            assert_eq!(r.num_nodes(), g.num_nodes());
            assert_eq!(r.num_arcs(), g.num_arcs());
            assert_eq!(r.is_directed(), g.is_directed());
            // The weighted arc multiset is preserved under the relabeling.
            let mut orig: Vec<(NodeId, NodeId, u64)> = g
                .arcs()
                .map(|(u, v, w)| (perm.apply(u), perm.apply(v), w.to_bits()))
                .collect();
            let mut renum: Vec<(NodeId, NodeId, u64)> =
                r.arcs().map(|(u, v, w)| (u, v, w.to_bits())).collect();
            orig.sort_unstable();
            renum.sort_unstable();
            assert_eq!(orig, renum, "directed={directed}");
            // Degrees follow their vertex.
            for u in 0..g.num_nodes() as NodeId {
                assert_eq!(g.total_degree(u), r.total_degree(perm.apply(u)));
            }
        }
    }

    #[test]
    fn fingerprint_changes_but_quality_is_invariant() {
        let g = test_graph(80, 320, false);
        let perm = degree_order(&g);
        let r = renumber(&g, &perm);
        // Ids are part of the fingerprint byte stream: renumbering a graph
        // whose input order is not already degree-sorted must change it.
        assert_ne!(perm, VertexPermutation::identity(g.num_nodes()));
        assert_ne!(g.fingerprint(), r.fingerprint());
        // A partition found on the renumbered graph maps back with its
        // quality untouched (same labels, same weighted arcs).
        let part_renum =
            Partition::from_labels((0..r.num_nodes() as NodeId).map(|v| v % 7).collect());
        let part_orig = perm.map_partition_back(&part_renum);
        // Labels are densified on the way back; co-membership is what the
        // map equation sees, and it must survive the round trip exactly.
        for u in 0..g.num_nodes() as NodeId {
            for v in 0..g.num_nodes() as NodeId {
                assert_eq!(
                    part_orig.community_of(u) == part_orig.community_of(v),
                    part_renum.community_of(perm.apply(u))
                        == part_renum.community_of(perm.apply(v)),
                    "co-membership broke at ({u},{v})"
                );
            }
        }
        let mut sizes_o = part_orig.community_sizes();
        let mut sizes_r = part_renum.community_sizes();
        sizes_o.sort_unstable();
        sizes_r.sort_unstable();
        assert_eq!(sizes_o, sizes_r);
        let (qo, qr) = (modularity(&g, &part_orig), modularity(&r, &part_renum));
        assert!((qo - qr).abs() < 1e-12, "quality drifted: {qo} vs {qr}");
    }

    #[test]
    fn identity_renumber_is_identical_bytes() {
        let g = test_graph(60, 240, true);
        let r = renumber(&g, &VertexPermutation::identity(g.num_nodes()));
        assert_eq!(g.fingerprint(), r.fingerprint());
    }
}
