//! Induced subgraphs and per-community extraction.
//!
//! After community detection, downstream analysis usually continues on a
//! single community (e.g. re-running detection inside the giant community,
//! or inspecting a protein module). These helpers materialize induced
//! subgraphs with an id mapping back to the parent graph.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, NodeId};
use crate::partition::Partition;

/// An induced subgraph plus the mapping from its dense vertex ids back to
/// the parent graph's ids.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// The extracted graph with vertices renumbered `0..k`.
    pub graph: CsrGraph,
    /// `original[i]` is the parent-graph id of subgraph vertex `i`.
    pub original: Vec<NodeId>,
}

/// Extracts the subgraph induced by `vertices` (need not be sorted;
/// duplicates are ignored). Edges are kept when both endpoints are in the
/// set, with their weights.
pub fn induced_subgraph(graph: &CsrGraph, vertices: &[NodeId]) -> Subgraph {
    let mut original: Vec<NodeId> = vertices.to_vec();
    original.sort_unstable();
    original.dedup();
    let mut dense = vec![u32::MAX; graph.num_nodes()];
    for (i, &v) in original.iter().enumerate() {
        dense[v as usize] = i as u32;
    }

    let mut builder = if graph.is_directed() {
        GraphBuilder::directed(original.len())
    } else {
        GraphBuilder::undirected(original.len())
    };
    for &u in &original {
        let du = dense[u as usize];
        for e in graph.out_neighbors(u).iter() {
            let dv = dense[e.target as usize];
            if dv == u32::MAX {
                continue;
            }
            // Undirected arcs appear in both directions; keep one.
            if !graph.is_directed() && e.target < u {
                continue;
            }
            builder.add_edge(du, dv, e.weight);
        }
    }
    Subgraph {
        graph: builder.build(),
        original,
    }
}

/// Extracts the subgraph induced by community `c` of `partition`.
pub fn community_subgraph(graph: &CsrGraph, partition: &Partition, c: u32) -> Subgraph {
    assert_eq!(graph.num_nodes(), partition.len());
    let members: Vec<NodeId> = (0..graph.num_nodes() as u32)
        .filter(|&u| partition.community_of(u) == c)
        .collect();
    induced_subgraph(graph, &members)
}

/// Extracts every community's subgraph, indexed by community label.
pub fn all_community_subgraphs(graph: &CsrGraph, partition: &Partition) -> Vec<Subgraph> {
    (0..partition.num_communities() as u32)
        .map(|c| community_subgraph(graph, partition, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> CsrGraph {
        let mut b = GraphBuilder::undirected(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            b.add_edge(u, v, 1.0);
        }
        b.build()
    }

    #[test]
    fn induced_triangle() {
        let g = two_triangles();
        let sub = induced_subgraph(&g, &[0, 1, 2]);
        assert_eq!(sub.graph.num_nodes(), 3);
        assert_eq!(sub.graph.num_edges(), 3); // bridge (2,3) dropped
        assert_eq!(sub.original, vec![0, 1, 2]);
    }

    #[test]
    fn community_extraction() {
        let g = two_triangles();
        let p = Partition::from_labels(vec![0, 0, 0, 1, 1, 1]);
        let subs = all_community_subgraphs(&g, &p);
        assert_eq!(subs.len(), 2);
        for sub in &subs {
            assert_eq!(sub.graph.num_nodes(), 3);
            assert_eq!(sub.graph.num_edges(), 3);
        }
        assert_eq!(subs[1].original, vec![3, 4, 5]);
    }

    #[test]
    fn duplicates_and_order_normalized() {
        let g = two_triangles();
        let sub = induced_subgraph(&g, &[2, 0, 2, 1, 0]);
        assert_eq!(sub.graph.num_nodes(), 3);
        assert_eq!(sub.original, vec![0, 1, 2]);
    }

    #[test]
    fn directed_subgraph_preserves_direction() {
        let mut b = GraphBuilder::directed(4);
        b.add_edge(0, 1, 2.0);
        b.add_edge(1, 0, 3.0);
        b.add_edge(1, 2, 1.0);
        let g = b.build();
        let sub = induced_subgraph(&g, &[0, 1]);
        assert!(sub.graph.is_directed());
        assert_eq!(sub.graph.num_edges(), 2);
        let w01 = sub.graph.out_neighbors(0).iter().next().unwrap().weight;
        assert_eq!(w01, 2.0);
    }

    #[test]
    fn empty_selection() {
        let g = two_triangles();
        let sub = induced_subgraph(&g, &[]);
        assert_eq!(sub.graph.num_nodes(), 0);
        assert_eq!(sub.graph.num_edges(), 0);
    }

    #[test]
    fn weights_preserved() {
        let mut b = GraphBuilder::undirected(3);
        b.add_edge(0, 1, 2.5);
        b.add_edge(1, 2, 4.0);
        let g = b.build();
        let sub = induced_subgraph(&g, &[0, 1]);
        assert_eq!(
            sub.graph.out_neighbors(0).iter().next().unwrap().weight,
            2.5
        );
    }
}
