//! Summary statistics used in harness output (Table I columns and more).

use serde::{Deserialize, Serialize};

use crate::csr::CsrGraph;
use crate::degree::{DegreeHistogram, DegreeKind};

/// Descriptive statistics of a graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraphStats {
    /// Vertex count.
    pub num_nodes: usize,
    /// Edge count (undirected edges or directed arcs).
    pub num_edges: usize,
    /// Directedness flag.
    pub directed: bool,
    /// Mean out-degree (for undirected graphs this is the conventional mean
    /// degree `2|E|/|V|`, since both arc directions are stored).
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Number of vertices with no out-links.
    pub dangling: usize,
    /// MLE power-law exponent of the total-degree tail, when fittable.
    pub power_law_alpha: Option<f64>,
}

impl GraphStats {
    /// Computes statistics for `graph`. The power-law fit uses `k_min` equal
    /// to twice the mean degree, a common heuristic for tail onset.
    pub fn of(graph: &CsrGraph) -> Self {
        let hist = DegreeHistogram::of(graph, DegreeKind::Out);
        let mean = hist.mean();
        let k_min = (2.0 * mean).ceil().max(2.0) as usize;
        GraphStats {
            num_nodes: graph.num_nodes(),
            num_edges: graph.num_edges(),
            directed: graph.is_directed(),
            avg_degree: mean,
            max_degree: hist.max_degree(),
            dangling: graph.dangling_nodes().len(),
            power_law_alpha: hist.power_law_alpha(k_min),
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} ({}) avg_deg={:.2} max_deg={} dangling={}",
            self.num_nodes,
            self.num_edges,
            if self.directed {
                "directed"
            } else {
                "undirected"
            },
            self.avg_degree,
            self.max_degree,
            self.dangling,
        )?;
        if let Some(alpha) = self.power_law_alpha {
            write!(f, " alpha={alpha:.2}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::barabasi_albert;

    #[test]
    fn stats_of_ba() {
        let g = barabasi_albert(3000, 3, 17);
        let s = GraphStats::of(&g);
        assert_eq!(s.num_nodes, 3000);
        assert!(!s.directed);
        assert!(s.avg_degree > 5.0 && s.avg_degree < 7.0);
        assert!(s.max_degree > 20);
        assert_eq!(s.dangling, 0);
        let text = s.to_string();
        assert!(text.contains("|V|=3000"));
    }
}
