//! k-core decomposition.
//!
//! The core number of a vertex is the largest `k` such that the vertex
//! survives repeatedly peeling every vertex of degree < `k`. Social
//! networks have deep cores concentrated around their hubs; the harness
//! reports core depth alongside the degree statistics as another structural
//! fingerprint of the Table I stand-ins, and the peeling order is a useful
//! processing order for load-balanced graph mining.

use crate::csr::{CsrGraph, NodeId};

/// Result of the decomposition.
#[derive(Debug, Clone)]
pub struct CoreDecomposition {
    /// Core number per vertex.
    pub core: Vec<u32>,
    /// Maximum core number (the graph's degeneracy).
    pub degeneracy: u32,
    /// Vertices in peeling order (non-decreasing core number) — the
    /// degeneracy ordering.
    pub order: Vec<NodeId>,
}

/// Computes core numbers with the Batagelj–Zaveršnik bucket-peeling
/// algorithm, O(n + m). Degrees are undirected (out-degree of the
/// symmetric CSR); for directed graphs this is the weak decomposition.
pub fn kcore_decomposition(graph: &CsrGraph) -> CoreDecomposition {
    let n = graph.num_nodes();
    if n == 0 {
        return CoreDecomposition {
            core: Vec::new(),
            degeneracy: 0,
            order: Vec::new(),
        };
    }
    let mut degree: Vec<u32> = (0..n as u32).map(|u| graph.out_degree(u) as u32).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0) as usize;

    // Bucket sort vertices by degree.
    let mut bin = vec![0usize; max_deg + 2];
    for &d in &degree {
        bin[d as usize + 1] += 1;
    }
    for i in 0..=max_deg {
        bin[i + 1] += bin[i];
    }
    let mut pos = vec![0usize; n]; // position of each vertex in `vert`
    let mut vert = vec![0 as NodeId; n]; // vertices sorted by degree
    {
        let mut cursor = bin.clone();
        for v in 0..n as u32 {
            let d = degree[v as usize] as usize;
            pos[v as usize] = cursor[d];
            vert[cursor[d]] = v;
            cursor[d] += 1;
        }
    }

    // Peel in degree order, decrementing neighbours in place.
    for i in 0..n {
        let v = vert[i];
        for e in graph.out_neighbors(v).iter() {
            let u = e.target;
            if degree[u as usize] > degree[v as usize] {
                let du = degree[u as usize] as usize;
                // Swap u with the first vertex of its bucket, then shrink
                // the bucket boundary.
                let pu = pos[u as usize];
                let pw = bin[du];
                let w = vert[pw];
                if u != w {
                    vert.swap(pu, pw);
                    pos[u as usize] = pw;
                    pos[w as usize] = pu;
                }
                bin[du] += 1;
                degree[u as usize] -= 1;
            }
        }
    }

    let degeneracy = degree.iter().copied().max().unwrap_or(0);
    CoreDecomposition {
        core: degree,
        degeneracy,
        order: vert,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::{barabasi_albert, erdos_renyi};

    #[test]
    fn clique_core_numbers() {
        // K5: every vertex has core number 4.
        let mut b = GraphBuilder::undirected(5);
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b.add_edge(u, v, 1.0);
            }
        }
        let d = kcore_decomposition(&b.build());
        assert_eq!(d.degeneracy, 4);
        assert!(d.core.iter().all(|&c| c == 4));
    }

    #[test]
    fn clique_with_tail() {
        // K4 on {0..3} plus a path 3-4-5: core numbers 3,3,3,3,1,1.
        let mut b = GraphBuilder::undirected(6);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_edge(u, v, 1.0);
            }
        }
        b.add_edge(3, 4, 1.0);
        b.add_edge(4, 5, 1.0);
        let d = kcore_decomposition(&b.build());
        assert_eq!(d.core, vec![3, 3, 3, 3, 1, 1]);
        assert_eq!(d.degeneracy, 3);
    }

    #[test]
    fn peeling_order_is_valid_degeneracy_order() {
        let g = barabasi_albert(500, 3, 9);
        let d = kcore_decomposition(&g);
        // Core numbers never decrease along the peeling order.
        for w in d.order.windows(2) {
            assert!(d.core[w[0] as usize] <= d.core[w[1] as usize]);
        }
        // Every vertex's core <= its degree.
        for u in g.nodes() {
            assert!(d.core[u as usize] as usize <= g.out_degree(u));
        }
        // BA with m=3: the whole graph is at least a 2-core (the seed ring
        // plus m>=2 attachments), and max core >= m.
        assert!(d.degeneracy >= 3);
    }

    #[test]
    fn core_subgraph_min_degree_invariant() {
        // Inside the k-core induced subgraph, every vertex has >= k
        // neighbours — the defining property.
        let g = erdos_renyi(300, 1800, 4);
        let d = kcore_decomposition(&g);
        let k = d.degeneracy;
        let members: Vec<u32> = (0..g.num_nodes() as u32)
            .filter(|&u| d.core[u as usize] >= k)
            .collect();
        assert!(!members.is_empty());
        let inside: std::collections::HashSet<u32> = members.iter().copied().collect();
        for &u in &members {
            let deg_in = g
                .out_neighbors(u)
                .iter()
                .filter(|e| inside.contains(&e.target))
                .count();
            assert!(
                deg_in >= k as usize,
                "vertex {u} has only {deg_in} neighbours inside the {k}-core"
            );
        }
    }

    #[test]
    fn isolated_vertices_are_zero_core() {
        let g = GraphBuilder::undirected(4).build();
        let d = kcore_decomposition(&g);
        assert_eq!(d.core, vec![0, 0, 0, 0]);
        assert_eq!(d.degeneracy, 0);
    }
}
