//! Stable structural fingerprints for graphs.
//!
//! The serving layer keys its result cache by `(graph fingerprint, config
//! hash)`, so the fingerprint must be (a) deterministic across runs and
//! platforms, and (b) sensitive to anything that changes what Infomap
//! computes: node count, directedness, adjacency structure, and edge
//! weights. FNV-1a over the CSR arrays gives exactly that with no
//! dependencies — two graphs built from the same edge list always hash
//! identically (the builder canonicalizes adjacency order), while
//! relabelled/isomorphic graphs hash differently, which is correct for a
//! cache: Infomap's output labels differ too.

use crate::csr::CsrGraph;

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher over byte slices.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs `bytes` into the running hash.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an `f64` by its IEEE-754 bit pattern (exact, no rounding).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a 64-bit hash of a byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

impl CsrGraph {
    /// A stable 64-bit structural fingerprint: FNV-1a over the node count,
    /// directedness, and the out-adjacency CSR arrays (offsets, targets,
    /// and weight bit patterns). The in-adjacency is derived from the same
    /// edges, so hashing one direction covers both.
    ///
    /// Identical inputs fingerprint identically across runs and processes;
    /// any change to structure or weights — including relabelling the
    /// vertices of an isomorphic graph — changes the fingerprint.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.num_nodes() as u64);
        h.write_u64(u64::from(self.is_directed()));
        let (offsets, targets, weights) = self.out_csr();
        for &o in offsets {
            h.write_u64(o);
        }
        for &t in targets {
            h.write_u64(u64::from(t));
        }
        for &w in weights {
            h.write_f64(w);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    const EDGES: &[(u32, u32)] = &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)];

    fn graph_from(edges: &[(u32, u32)], n: usize) -> CsrGraph {
        let mut b = GraphBuilder::undirected(n);
        for &(u, v) in edges {
            b.add_edge(u, v, 1.0);
        }
        b.build()
    }

    #[test]
    fn fnv_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn identical_input_is_stable_across_builds() {
        let a = graph_from(EDGES, 6).fingerprint();
        let b = graph_from(EDGES, 6).fingerprint();
        assert_eq!(a, b);
        // Insertion order does not matter: the builder canonicalizes
        // adjacency, so the same edge *set* is the same graph.
        let mut shuffled: Vec<(u32, u32)> = EDGES.to_vec();
        shuffled.reverse();
        assert_eq!(a, graph_from(&shuffled, 6).fingerprint());
    }

    #[test]
    fn isomorphic_relabelling_changes_fingerprint() {
        // A star with a tail, relabelled by swapping vertices 0 and 1
        // (which is not an automorphism: the hub moves). The graphs are
        // isomorphic but the vertex identities — and hence Infomap's
        // output labels — differ, so the cache must treat them as distinct.
        let star: &[(u32, u32)] = &[(0, 1), (0, 2), (0, 3), (3, 4)];
        let swap = |u: u32| match u {
            0 => 1,
            1 => 0,
            u => u,
        };
        let relabelled: Vec<(u32, u32)> = star.iter().map(|&(u, v)| (swap(u), swap(v))).collect();
        let a = graph_from(star, 5).fingerprint();
        let b = graph_from(&relabelled, 5).fingerprint();
        assert_ne!(a, b);
    }

    #[test]
    fn weights_and_direction_matter() {
        let base = graph_from(EDGES, 6).fingerprint();

        let mut b = GraphBuilder::undirected(6);
        for &(u, v) in EDGES {
            b.add_edge(u, v, 2.0);
        }
        assert_ne!(base, b.build().fingerprint());

        let mut d = GraphBuilder::directed(6);
        for &(u, v) in EDGES {
            d.add_edge(u, v, 1.0);
        }
        assert_ne!(base, d.build().fingerprint());

        // An extra isolated vertex changes the node count.
        assert_ne!(base, graph_from(EDGES, 7).fingerprint());
    }
}
