//! Dynamic-graph deltas: batched edge mutations over an immutable CSR
//! base, with a fingerprint *chain* identifying graph versions.
//!
//! The static pipeline treats a [`CsrGraph`] as immutable — every
//! mutation would otherwise mean a full rebuild plus a brand-new
//! fingerprint, invalidating every cache keyed on the old one. This
//! module adds the streaming vocabulary:
//!
//! * [`EdgeDelta`] — one batch of arc insertions (with weights) and
//!   deletions, the unit a client ships per update.
//! * [`DeltaGraph`] — a base `CsrGraph` plus a canonical *net overlay* of
//!   applied batches. Adjacency queries merge the base row with its
//!   overlay patches lazily; [`DeltaGraph::compact`] periodically folds
//!   the overlay back into a fresh CSR.
//! * The **fingerprint chain** — [`DeltaGraph::chain_fingerprint`] is the
//!   FNV of the chain *anchor* (the base fingerprint at the last rebase)
//!   concatenated with the canonicalized net overlay. Because the overlay
//!   is net (insertions and deletions cancel against the base), the chain
//!   head is a function of effective content: an empty net overlay hashes
//!   to the anchor itself, so deleting arcs and re-inserting them at
//!   their original weights restores the previous chain head, and
//!   compaction — which only rebases — never changes the chain. Caches
//!   and routers key graph *versions* on this value.
//!
//! Weight semantics mirror [`crate::GraphBuilder`]: inserting an arc that
//! already exists accumulates weight; deleting removes the arc entirely.
//! The vertex set is fixed by the base graph.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::csr::{CsrGraph, EdgeRef, NodeId};
use crate::fingerprint::Fnv64;

/// One batch of edge mutations. Deletions apply before insertions, so a
/// single batch can atomically re-weight an arc (`delete` + `insert`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeDelta {
    inserts: Vec<(NodeId, NodeId, f64)>,
    deletes: Vec<(NodeId, NodeId)>,
}

impl EdgeDelta {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues an arc insertion. For an existing arc the weight
    /// *accumulates* (builder semantics).
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite weight.
    pub fn insert(&mut self, u: NodeId, v: NodeId, w: f64) -> &mut Self {
        assert!(
            w > 0.0 && w.is_finite(),
            "edge weight must be positive and finite, got {w}"
        );
        self.inserts.push((u, v, w));
        self
    }

    /// Queues an arc deletion. Deleting an absent arc is a no-op.
    pub fn delete(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.deletes.push((u, v));
        self
    }

    /// Whether the batch holds no operations at all.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Number of queued operations (insertions plus deletions).
    pub fn num_ops(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Queued insertions, in submission order.
    pub fn inserts(&self) -> &[(NodeId, NodeId, f64)] {
        &self.inserts
    }

    /// Queued deletions, in submission order.
    pub fn deletes(&self) -> &[(NodeId, NodeId)] {
        &self.deletes
    }

    /// Every vertex incident to an operation, sorted and deduplicated.
    /// This seeds the incremental optimizer's touched frontier.
    pub fn endpoints(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .inserts
            .iter()
            .flat_map(|&(u, v, _)| [u, v])
            .chain(self.deletes.iter().flat_map(|&(u, v)| [u, v]))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// A base [`CsrGraph`] plus the canonical net overlay of every
/// [`EdgeDelta`] applied since the last rebase. See the module docs.
#[derive(Debug, Clone)]
pub struct DeltaGraph {
    base: Arc<CsrGraph>,
    /// Chain fingerprint at the last rebase (construction or
    /// [`DeltaGraph::compact`]). With an empty overlay this *is* the
    /// chain head.
    anchor: u64,
    /// Net per-arc patches keyed by directed `(source, target)`:
    /// `Some(w)` overrides the arc's weight to `w`, `None` deletes it.
    /// Undirected patches are stored mirrored (both directions), so row
    /// queries are a single range scan; the chain fingerprint
    /// canonicalizes by hashing only the `source <= target` half.
    overlay: BTreeMap<(NodeId, NodeId), Option<f64>>,
    /// Batches folded in since the last rebase (compaction-policy input).
    batches_since_compact: usize,
}

impl DeltaGraph {
    /// Wraps `base` with an empty overlay. The chain head starts at
    /// `base.fingerprint()`.
    pub fn new(base: Arc<CsrGraph>) -> Self {
        let anchor = base.fingerprint();
        DeltaGraph {
            base,
            anchor,
            overlay: BTreeMap::new(),
            batches_since_compact: 0,
        }
    }

    /// The base CSR the overlay patches against.
    pub fn base(&self) -> &Arc<CsrGraph> {
        &self.base
    }

    /// Vertex count (fixed by the base graph).
    pub fn num_nodes(&self) -> usize {
        self.base.num_nodes()
    }

    /// Whether the base graph is directed.
    pub fn is_directed(&self) -> bool {
        self.base.is_directed()
    }

    /// Net overlay patch count (directed entries; mirrored pairs count
    /// twice). Zero means the view is byte-identical to the base.
    pub fn pending_patches(&self) -> usize {
        self.overlay.len()
    }

    /// Batches applied since the last rebase.
    pub fn batches_since_compact(&self) -> usize {
        self.batches_since_compact
    }

    /// The chain *anchor*: the chain fingerprint at the last rebase.
    /// Routing keys on this — every version of one update stream shares
    /// it, which is what keeps the stream shard-affine.
    pub fn anchor_fingerprint(&self) -> u64 {
        self.anchor
    }

    /// The chain head identifying the current version: the anchor when
    /// the net overlay is empty, else FNV over anchor ∥ canonical
    /// overlay.
    pub fn chain_fingerprint(&self) -> u64 {
        chain_of(self.anchor, &self.overlay, self.is_directed())
    }

    /// The chain head `apply(delta)` would produce, without mutating
    /// anything.
    pub fn fingerprint_after(&self, delta: &EdgeDelta) -> u64 {
        let mut overlay = self.overlay.clone();
        self.fold(&mut overlay, delta);
        chain_of(self.anchor, &overlay, self.is_directed())
    }

    /// Folds one batch into the net overlay and returns the new chain
    /// head.
    ///
    /// # Panics
    /// Panics if an operation references a vertex outside the base
    /// graph's vertex set.
    pub fn apply(&mut self, delta: &EdgeDelta) -> u64 {
        // Split the borrow: fold writes a detached map, never `self`.
        let mut overlay = std::mem::take(&mut self.overlay);
        self.fold(&mut overlay, delta);
        self.overlay = overlay;
        if !delta.is_empty() {
            self.batches_since_compact += 1;
        }
        self.chain_fingerprint()
    }

    /// Applies `delta`'s operations onto `overlay` (deletions first),
    /// normalizing away patches that restore an arc to its base weight.
    fn fold(&self, overlay: &mut BTreeMap<(NodeId, NodeId), Option<f64>>, delta: &EdgeDelta) {
        let n = self.num_nodes() as NodeId;
        let mirror = !self.is_directed();
        for &(u, v) in delta.deletes() {
            assert!(u < n && v < n, "delete ({u},{v}) outside 0..{n}");
            for (s, t) in arc_and_mirror(u, v, mirror) {
                if self.base_weight(s, t).is_some() {
                    overlay.insert((s, t), None);
                } else {
                    // Absent in the base: absence is the default state.
                    overlay.remove(&(s, t));
                }
            }
        }
        for &(u, v, w) in delta.inserts() {
            assert!(u < n && v < n, "insert ({u},{v}) outside 0..{n}");
            for (s, t) in arc_and_mirror(u, v, mirror) {
                let current = match overlay.get(&(s, t)) {
                    Some(&patch) => patch.unwrap_or(0.0),
                    None => self.base_weight(s, t).unwrap_or(0.0),
                };
                let next = current + w;
                // A patch that lands exactly on the base weight is a
                // no-op: drop it so the overlay stays net (this is what
                // makes delete-then-reinsert restore the chain head).
                if self.base_weight(s, t).map(f64::to_bits) == Some(next.to_bits()) {
                    overlay.remove(&(s, t));
                } else {
                    overlay.insert((s, t), Some(next));
                }
            }
        }
    }

    /// The base graph's weight for arc `(u, v)`, if present.
    fn base_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let row = self.base.out_neighbors(u);
        let i = row.targets().binary_search(&v).ok()?;
        Some(row.weights()[i])
    }

    /// Effective weight of arc `(u, v)` in the merged view, if present.
    pub fn arc_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        match self.overlay.get(&(u, v)) {
            Some(&patch) => patch,
            None => self.base_weight(u, v),
        }
    }

    /// The merged out-adjacency row of `u`: base row patched by the
    /// overlay, sorted by target. This is the lazily merged view — no
    /// CSR is materialized.
    pub fn out_row(&self, u: NodeId) -> Vec<EdgeRef> {
        let row = self.base.out_neighbors(u);
        let patches = self.overlay.range((u, 0)..=(u, NodeId::MAX));
        let mut out = Vec::with_capacity(row.len());
        let (targets, weights) = (row.targets(), row.weights());
        let mut i = 0;
        for (&(_, t), &patch) in patches {
            while i < targets.len() && targets[i] < t {
                out.push(EdgeRef {
                    target: targets[i],
                    weight: weights[i],
                });
                i += 1;
            }
            if i < targets.len() && targets[i] == t {
                i += 1; // patched: base entry superseded
            }
            if let Some(w) = patch {
                out.push(EdgeRef {
                    target: t,
                    weight: w,
                });
            }
        }
        while i < targets.len() {
            out.push(EdgeRef {
                target: targets[i],
                weight: weights[i],
            });
            i += 1;
        }
        out
    }

    /// Merged arc count (what `materialize().num_arcs()` will report).
    pub fn num_arcs(&self) -> usize {
        let delta: isize = self
            .overlay
            .iter()
            .map(|(&(u, v), &patch)| match patch {
                None => -1,
                Some(_) if self.base_weight(u, v).is_none() => 1,
                Some(_) => 0,
            })
            .sum();
        (self.base.num_arcs() as isize + delta) as usize
    }

    /// Iterates every merged arc as `(source, target, weight)`, row by
    /// row in target order.
    pub fn arcs(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        (0..self.num_nodes() as NodeId).flat_map(move |u| {
            self.out_row(u)
                .into_iter()
                .map(move |e| (u, e.target, e.weight))
        })
    }

    /// Materializes the merged view into a fresh [`CsrGraph`] without
    /// touching the overlay. Untouched rows are copied verbatim from the
    /// base CSR.
    pub fn materialize(&self) -> CsrGraph {
        let n = self.num_nodes() as u32;
        let (out_offsets, out_targets, out_weights) =
            merge_csr(self.base.out_csr(), n, |u| self.out_patches(u));
        let (in_offsets, in_targets, in_weights) = if self.is_directed() {
            // Directed: in-rows are patched by the transposed overlay.
            let mut transposed: Vec<((NodeId, NodeId), Option<f64>)> = self
                .overlay
                .iter()
                .map(|(&(u, v), &p)| ((v, u), p))
                .collect();
            transposed.sort_unstable_by_key(|&(k, _)| k);
            merge_csr(self.base.in_csr(), n, |u| {
                let lo = transposed.partition_point(|&((s, _), _)| s < u);
                let hi = transposed.partition_point(|&((s, _), _)| s <= u);
                transposed[lo..hi]
                    .iter()
                    .map(|&((_, t), p)| (t, p))
                    .collect()
            })
        } else {
            // Undirected: the overlay is mirrored, so in == out.
            (
                out_offsets.clone(),
                out_targets.clone(),
                out_weights.clone(),
            )
        };
        CsrGraph::from_csr_parts(
            n,
            self.is_directed(),
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_targets,
            in_weights,
        )
    }

    /// Overlay patches for row `u`, in target order.
    fn out_patches(&self, u: NodeId) -> Vec<(NodeId, Option<f64>)> {
        self.overlay
            .range((u, 0)..=(u, NodeId::MAX))
            .map(|(&(_, t), &p)| (t, p))
            .collect()
    }

    /// Folds the overlay into a fresh base CSR (rebase) and returns it.
    /// The chain head is **unchanged** — the new anchor is the old chain
    /// head, so caches keyed on [`DeltaGraph::chain_fingerprint`] keep
    /// hitting across compactions.
    pub fn compact(&mut self) -> Arc<CsrGraph> {
        if !self.overlay.is_empty() {
            self.anchor = self.chain_fingerprint();
            self.base = Arc::new(self.materialize());
            self.overlay.clear();
        }
        self.batches_since_compact = 0;
        Arc::clone(&self.base)
    }
}

/// The arc plus its mirror for undirected graphs (a self-loop mirrors to
/// itself and is emitted once).
fn arc_and_mirror(u: NodeId, v: NodeId, mirror: bool) -> impl Iterator<Item = (NodeId, NodeId)> {
    let second = (mirror && u != v).then_some((v, u));
    std::iter::once((u, v)).chain(second)
}

/// FNV over anchor ∥ canonical overlay: each patch contributes its
/// endpoints, a delete/override tag, and the weight bit pattern. For
/// undirected graphs only the `source <= target` half participates (the
/// mirrored entries are redundant).
fn chain_of(anchor: u64, overlay: &BTreeMap<(NodeId, NodeId), Option<f64>>, directed: bool) -> u64 {
    if overlay.is_empty() {
        return anchor;
    }
    let mut h = Fnv64::new();
    h.write_u64(anchor);
    for (&(u, v), &patch) in overlay {
        if !directed && u > v {
            continue;
        }
        h.write_u64(u as u64);
        h.write_u64(v as u64);
        match patch {
            None => h.write_u64(0),
            Some(w) => {
                h.write_u64(1);
                h.write_f64(w);
            }
        }
    }
    h.finish()
}

/// Merges one direction's base CSR with per-row patch lists into new CSR
/// arrays. `patches(u)` returns row `u`'s patches sorted by target.
fn merge_csr(
    base: (&[u64], &[NodeId], &[f64]),
    n: u32,
    patches: impl Fn(NodeId) -> Vec<(NodeId, Option<f64>)>,
) -> (Vec<u64>, Vec<NodeId>, Vec<f64>) {
    let (offsets, targets, weights) = base;
    let mut out_offsets = Vec::with_capacity(n as usize + 1);
    let mut out_targets = Vec::with_capacity(targets.len());
    let mut out_weights = Vec::with_capacity(weights.len());
    out_offsets.push(0u64);
    for u in 0..n {
        let (lo, hi) = (
            offsets[u as usize] as usize,
            offsets[u as usize + 1] as usize,
        );
        let row_patches = patches(u);
        if row_patches.is_empty() {
            out_targets.extend_from_slice(&targets[lo..hi]);
            out_weights.extend_from_slice(&weights[lo..hi]);
        } else {
            let mut i = lo;
            for (t, patch) in row_patches {
                while i < hi && targets[i] < t {
                    out_targets.push(targets[i]);
                    out_weights.push(weights[i]);
                    i += 1;
                }
                if i < hi && targets[i] == t {
                    i += 1;
                }
                if let Some(w) = patch {
                    out_targets.push(t);
                    out_weights.push(w);
                }
            }
            out_targets.extend_from_slice(&targets[i..hi]);
            out_weights.extend_from_slice(&weights[i..hi]);
        }
        out_offsets.push(out_targets.len() as u64);
    }
    (out_offsets, out_targets, out_weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond() -> Arc<CsrGraph> {
        let mut b = GraphBuilder::undirected(5);
        for &(u, v, w) in &[
            (0u32, 1u32, 1.0),
            (1, 2, 2.0),
            (2, 3, 1.5),
            (3, 0, 1.0),
            (0, 2, 0.5),
        ] {
            b.add_edge(u, v, w);
        }
        Arc::new(b.build())
    }

    /// Rebuilds the merged graph through the builder (ground truth).
    fn rebuilt(dg: &DeltaGraph) -> CsrGraph {
        let mut b = if dg.is_directed() {
            GraphBuilder::directed(dg.num_nodes())
        } else {
            GraphBuilder::undirected(dg.num_nodes())
        };
        for (u, v, w) in dg.arcs() {
            if dg.is_directed() || u <= v {
                b.add_edge(u, v, w);
            }
        }
        b.build()
    }

    #[test]
    fn empty_overlay_is_the_base() {
        let base = diamond();
        let dg = DeltaGraph::new(Arc::clone(&base));
        assert_eq!(dg.chain_fingerprint(), base.fingerprint());
        assert_eq!(dg.num_arcs(), base.num_arcs());
        let mat = dg.materialize();
        assert_eq!(mat.fingerprint(), base.fingerprint());
    }

    #[test]
    fn insert_delete_merge_matches_builder() {
        let dg_base = diamond();
        let mut dg = DeltaGraph::new(dg_base);
        let mut d = EdgeDelta::new();
        d.insert(1, 3, 4.0) // new edge
            .insert(0, 1, 1.0) // accumulate onto existing (→ 2.0)
            .delete(0, 2); // drop existing
        dg.apply(&d);

        let mut b = GraphBuilder::undirected(5);
        for &(u, v, w) in &[(0u32, 1u32, 2.0), (1, 2, 2.0), (2, 3, 1.5), (3, 0, 1.0)] {
            b.add_edge(u, v, w);
        }
        b.add_edge(1, 3, 4.0);
        let want = b.build();

        assert_eq!(dg.num_arcs(), want.num_arcs());
        assert_eq!(dg.materialize().fingerprint(), want.fingerprint());
        assert_eq!(rebuilt(&dg).fingerprint(), want.fingerprint());
        // Lazily merged rows agree with the materialized CSR.
        let mat = dg.materialize();
        for u in 0..5u32 {
            let lazy: Vec<(u32, u64)> = dg
                .out_row(u)
                .iter()
                .map(|e| (e.target, e.weight.to_bits()))
                .collect();
            let full: Vec<(u32, u64)> = mat
                .out_neighbors(u)
                .iter()
                .map(|e| (e.target, e.weight.to_bits()))
                .collect();
            assert_eq!(lazy, full, "row {u}");
        }
    }

    #[test]
    fn chain_head_tracks_net_content() {
        let base = diamond();
        let mut dg = DeltaGraph::new(Arc::clone(&base));
        let base_fp = base.fingerprint();

        let mut del = EdgeDelta::new();
        del.delete(0, 1).delete(2, 3);
        let after_del = dg.apply(&del);
        assert_ne!(after_del, base_fp);

        // Reinsert at original weights: net overlay empties, chain head
        // returns to the anchor.
        let mut ins = EdgeDelta::new();
        ins.insert(0, 1, 1.0).insert(2, 3, 1.5);
        let restored = dg.apply(&ins);
        assert_eq!(restored, base_fp);
        assert_eq!(dg.pending_patches(), 0);

        // Same net mutation by a different path → same chain head.
        let mut a = DeltaGraph::new(Arc::clone(&base));
        let mut b = DeltaGraph::new(base);
        let mut one = EdgeDelta::new();
        one.insert(1, 3, 2.0);
        let mut two_a = EdgeDelta::new();
        two_a.insert(1, 3, 0.5);
        let mut two_b = EdgeDelta::new();
        two_b.insert(1, 3, 1.5);
        let head_a = {
            a.apply(&two_a);
            a.apply(&two_b)
        };
        assert_eq!(head_a, b.apply(&one));
    }

    #[test]
    fn fingerprint_after_previews_apply() {
        let mut dg = DeltaGraph::new(diamond());
        let mut d = EdgeDelta::new();
        d.insert(4, 0, 3.0).delete(1, 2);
        let preview = dg.fingerprint_after(&d);
        assert_eq!(dg.apply(&d), preview);
    }

    #[test]
    fn compaction_preserves_chain_identity() {
        let mut dg = DeltaGraph::new(diamond());
        let mut d = EdgeDelta::new();
        d.insert(4, 2, 1.0).delete(0, 1);
        let head = dg.apply(&d);
        let merged_before = dg.materialize().fingerprint();

        let compacted = dg.compact();
        assert_eq!(
            dg.chain_fingerprint(),
            head,
            "compaction must not move the chain"
        );
        assert_eq!(
            dg.anchor_fingerprint(),
            head,
            "rebased anchor is the old head"
        );
        assert_eq!(dg.pending_patches(), 0);
        assert_eq!(compacted.fingerprint(), merged_before);
        // The raw CSR fingerprint of the compacted graph is *not* the
        // chain head — exactly the mismatch chain keying exists to fix.
        assert_ne!(compacted.fingerprint(), head);

        // Post-compaction deltas chain off the new anchor.
        let mut d2 = EdgeDelta::new();
        d2.insert(3, 4, 2.0);
        let head2 = dg.apply(&d2);
        assert_ne!(head2, head);
        let mut undo = EdgeDelta::new();
        undo.delete(3, 4);
        assert_eq!(dg.apply(&undo), head, "undo returns to the rebased anchor");
    }

    #[test]
    fn directed_in_csr_patched() {
        let mut b = GraphBuilder::directed(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(2, 3, 1.0);
        let mut dg = DeltaGraph::new(Arc::new(b.build()));
        let mut d = EdgeDelta::new();
        d.insert(3, 0, 2.0).delete(1, 2);
        dg.apply(&d);
        let mat = dg.materialize();
        assert_eq!(mat.in_degree(0), 1);
        assert_eq!(mat.in_degree(2), 0);
        assert_eq!(mat.out_degree(3), 1);
        // in-CSR consistency: every arc appears in both directions' CSRs.
        let mut want = GraphBuilder::directed(4);
        want.add_edge(0, 1, 1.0);
        want.add_edge(2, 3, 1.0);
        want.add_edge(3, 0, 2.0);
        assert_eq!(mat.fingerprint(), want.build().fingerprint());
    }

    #[test]
    fn delete_absent_and_empty_delta_are_noops() {
        let base = diamond();
        let mut dg = DeltaGraph::new(Arc::clone(&base));
        let head = dg.chain_fingerprint();
        assert_eq!(dg.apply(&EdgeDelta::new()), head);
        assert_eq!(dg.batches_since_compact(), 0);
        let mut d = EdgeDelta::new();
        d.delete(0, 4); // never existed
        assert_eq!(dg.apply(&d), head);
        assert_eq!(dg.num_arcs(), base.num_arcs());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_endpoint_panics() {
        let mut dg = DeltaGraph::new(diamond());
        let mut d = EdgeDelta::new();
        d.insert(0, 99, 1.0);
        dg.apply(&d);
    }
}
