//! Local clustering and degree-mixing analytics.
//!
//! Together with the degree distribution (Figure 4), these summarize what
//! makes the paper's social networks "social": heavy-tailed degrees,
//! non-trivial triangle density, and (for friendship graphs) assortative
//! degree mixing. The harness prints them alongside Table I so stand-ins
//! can be compared structurally against published SNAP statistics.

use crate::csr::{CsrGraph, NodeId};

/// Local clustering coefficient of vertex `u`: the fraction of its
/// neighbour pairs that are themselves connected. 0 for degree < 2.
///
/// Uses sorted-adjacency merge intersection, O(Σ_w d(w)) per vertex.
pub fn local_clustering(graph: &CsrGraph, u: NodeId) -> f64 {
    let neighbors: Vec<NodeId> = graph
        .out_neighbors(u)
        .iter()
        .map(|e| e.target)
        .filter(|&v| v != u)
        .collect();
    let k = neighbors.len();
    if k < 2 {
        return 0.0;
    }
    let mut links = 0usize;
    for &v in &neighbors {
        // Count neighbours of v that are also neighbours of u (merge walk;
        // both adjacency lists are sorted by construction).
        let vs: Vec<NodeId> = graph.out_neighbors(v).iter().map(|e| e.target).collect();
        let (mut i, mut j) = (0usize, 0usize);
        while i < neighbors.len() && j < vs.len() {
            match neighbors[i].cmp(&vs[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    links += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    // Each triangle edge was counted from both endpoints.
    links as f64 / (k * (k - 1)) as f64
}

/// Average local clustering coefficient (Watts–Strogatz definition).
pub fn average_clustering(graph: &CsrGraph) -> f64 {
    let n = graph.num_nodes();
    if n == 0 {
        return 0.0;
    }
    let total: f64 = graph.nodes().map(|u| local_clustering(graph, u)).sum();
    total / n as f64
}

/// Degree assortativity: the Pearson correlation of degrees across edges
/// (Newman 2002). Positive for social networks (hubs befriend hubs),
/// negative for technological/biological ones. Returns 0 when undefined
/// (no edges or zero variance).
pub fn degree_assortativity(graph: &CsrGraph) -> f64 {
    let mut n = 0f64;
    let mut sum_xy = 0f64;
    let mut sum_x = 0f64;
    let mut sum_y = 0f64;
    let mut sum_x2 = 0f64;
    let mut sum_y2 = 0f64;
    for (u, v, _) in graph.arcs() {
        let (du, dv) = (graph.out_degree(u) as f64, graph.out_degree(v) as f64);
        n += 1.0;
        sum_xy += du * dv;
        sum_x += du;
        sum_y += dv;
        sum_x2 += du * du;
        sum_y2 += dv * dv;
    }
    if n == 0.0 {
        return 0.0;
    }
    let cov = sum_xy / n - (sum_x / n) * (sum_y / n);
    let var_x = sum_x2 / n - (sum_x / n).powi(2);
    let var_y = sum_y2 / n - (sum_y / n).powi(2);
    let denom = (var_x * var_y).sqrt();
    if denom <= 1e-15 {
        0.0
    } else {
        (cov / denom).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::{barabasi_albert, watts_strogatz};

    fn triangle_plus_tail() -> CsrGraph {
        // Triangle 0-1-2 with a tail 2-3.
        let mut b = GraphBuilder::undirected(4);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (2, 3)] {
            b.add_edge(u, v, 1.0);
        }
        b.build()
    }

    #[test]
    fn clustering_of_known_graph() {
        let g = triangle_plus_tail();
        assert!((local_clustering(&g, 0) - 1.0).abs() < 1e-12);
        assert!((local_clustering(&g, 1) - 1.0).abs() < 1e-12);
        // Vertex 2 has 3 neighbours, one connected pair of 3 possible.
        assert!((local_clustering(&g, 2) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(local_clustering(&g, 3), 0.0);
        let avg = average_clustering(&g);
        assert!((avg - (1.0 + 1.0 + 1.0 / 3.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn complete_graph_fully_clustered() {
        let mut b = GraphBuilder::undirected(5);
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b.add_edge(u, v, 1.0);
            }
        }
        let g = b.build();
        assert!((average_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_world_beats_random_rewiring() {
        // WS with low beta keeps the lattice's high clustering.
        let lattice = watts_strogatz(500, 6, 0.0, 1);
        let rewired = watts_strogatz(500, 6, 0.9, 1);
        let c_lat = average_clustering(&lattice);
        let c_rew = average_clustering(&rewired);
        assert!(c_lat > 0.5, "ring lattice clustering {c_lat}");
        assert!(c_lat > 2.0 * c_rew, "{c_lat} vs {c_rew}");
    }

    #[test]
    fn ba_is_degree_disassortative() {
        // Preferential attachment yields mildly negative assortativity
        // (young low-degree vertices attach to old hubs).
        let g = barabasi_albert(3000, 3, 5);
        let r = degree_assortativity(&g);
        assert!(r < 0.05, "BA assortativity should be ~<=0, got {r}");
        assert!(r > -0.5);
    }

    #[test]
    fn star_is_maximally_disassortative() {
        let mut b = GraphBuilder::undirected(6);
        for v in 1..6u32 {
            b.add_edge(0, v, 1.0);
        }
        let g = b.build();
        assert!((degree_assortativity(&g) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_safe() {
        let g = GraphBuilder::undirected(3).build();
        assert_eq!(average_clustering(&g), 0.0);
        assert_eq!(degree_assortativity(&g), 0.0);
    }
}
