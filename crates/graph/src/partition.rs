//! Community assignments (partitions) of a vertex set.

use serde::{Deserialize, Serialize};

use crate::csr::NodeId;

/// A disjoint community assignment: every vertex carries exactly one label.
///
/// Labels are kept dense (`0..num_communities`) by [`Partition::from_labels`],
/// which renumbers arbitrary input labels in first-seen order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    labels: Vec<u32>,
    num_communities: u32,
}

impl Partition {
    /// Singleton partition: every vertex in its own community (Infomap's
    /// starting state — "each vertex belongs to its own community/module").
    pub fn singletons(n: usize) -> Self {
        Self {
            labels: (0..n as u32).collect(),
            num_communities: n as u32,
        }
    }

    /// All vertices in one community.
    pub fn uniform(n: usize) -> Self {
        Self {
            labels: vec![0; n],
            num_communities: if n == 0 { 0 } else { 1 },
        }
    }

    /// Builds a partition from arbitrary labels, densifying them to
    /// `0..num_communities` in first-seen order.
    pub fn from_labels(labels: Vec<u32>) -> Self {
        let mut remap: Vec<u32> = Vec::new();
        let max = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut table = vec![u32::MAX; max];
        let mut dense = Vec::with_capacity(labels.len());
        for &l in &labels {
            let slot = &mut table[l as usize];
            if *slot == u32::MAX {
                *slot = remap.len() as u32;
                remap.push(l);
            }
            dense.push(*slot);
        }
        Self {
            labels: dense,
            num_communities: remap.len() as u32,
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True for an empty vertex set.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of distinct communities.
    pub fn num_communities(&self) -> usize {
        self.num_communities as usize
    }

    /// The community of vertex `u`.
    #[inline]
    pub fn community_of(&self, u: NodeId) -> u32 {
        self.labels[u as usize]
    }

    /// Raw label slice.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Moves vertex `u` to community `c`. The caller must re-densify (via
    /// [`Partition::compact`]) before relying on `num_communities`.
    pub fn assign(&mut self, u: NodeId, c: u32) {
        self.labels[u as usize] = c;
        if c >= self.num_communities {
            self.num_communities = c + 1;
        }
    }

    /// Renumbers labels densely (dropping empty communities) and returns the
    /// number of communities after compaction.
    pub fn compact(&mut self) -> usize {
        let compacted = Self::from_labels(std::mem::take(&mut self.labels));
        *self = compacted;
        self.num_communities()
    }

    /// Sizes of each community, indexed by label.
    pub fn community_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_communities as usize];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Members of each community, indexed by label.
    pub fn community_members(&self) -> Vec<Vec<NodeId>> {
        let mut members = vec![Vec::new(); self.num_communities as usize];
        for (u, &l) in self.labels.iter().enumerate() {
            members[l as usize].push(u as NodeId);
        }
        members
    }

    /// Composes a coarse partition over supernodes back onto the original
    /// vertices: `self` maps vertices→supernodes, `coarse` maps
    /// supernodes→modules; the result maps vertices→modules. This is the
    /// paper's `UpdateMembers` kernel.
    pub fn project(&self, coarse: &Partition) -> Partition {
        assert_eq!(
            self.num_communities(),
            coarse.len(),
            "coarse partition must cover the supernodes of self"
        );
        let labels = self
            .labels
            .iter()
            .map(|&s| coarse.community_of(s))
            .collect();
        Partition::from_labels(labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_and_uniform() {
        let s = Partition::singletons(4);
        assert_eq!(s.num_communities(), 4);
        let u = Partition::uniform(4);
        assert_eq!(u.num_communities(), 1);
        assert_eq!(u.community_of(3), 0);
    }

    #[test]
    fn densification() {
        let p = Partition::from_labels(vec![7, 7, 3, 9, 3]);
        assert_eq!(p.num_communities(), 3);
        assert_eq!(p.labels(), &[0, 0, 1, 2, 1]);
    }

    #[test]
    fn sizes_and_members() {
        let p = Partition::from_labels(vec![0, 1, 0, 1, 1]);
        assert_eq!(p.community_sizes(), vec![2, 3]);
        let members = p.community_members();
        assert_eq!(members[0], vec![0, 2]);
        assert_eq!(members[1], vec![1, 3, 4]);
    }

    #[test]
    fn assign_then_compact() {
        let mut p = Partition::singletons(3);
        p.assign(0, 2); // labels now [2, 1, 2]
        assert_eq!(p.compact(), 2);
        assert_eq!(p.labels(), &[0, 1, 0]);
    }

    #[test]
    fn projection_composes() {
        // vertices -> supernodes
        let fine = Partition::from_labels(vec![0, 0, 1, 1, 2]);
        // supernodes -> modules
        let coarse = Partition::from_labels(vec![0, 0, 1]);
        let projected = fine.project(&coarse);
        assert_eq!(projected.labels(), &[0, 0, 0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "must cover the supernodes")]
    fn projection_shape_checked() {
        let fine = Partition::from_labels(vec![0, 1]);
        let coarse = Partition::from_labels(vec![0]);
        let _ = fine.project(&coarse);
    }
}
