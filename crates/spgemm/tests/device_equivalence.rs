//! SpGEMM × device matrix: every accumulation device must produce the
//! same product, and the ASA device must beat the software hash on the
//! simulated machine — reproducing the accelerator's original use case.

use asa_accel::{AsaAccumulator, AsaConfig};
use asa_graph::generators::barabasi_albert;
use asa_hashsim::ChainedAccumulator;
use asa_simarch::accum::OracleAccumulator;
use asa_simarch::events::NullSink;
use asa_simarch::{CoreModel, MachineConfig};
use asa_spgemm::{spgemm, spgemm_flops, CsrMatrix};
use proptest::prelude::*;

#[test]
fn all_devices_agree_on_a_squared() {
    // A² of a scale-free adjacency matrix: skewed row lengths, the classic
    // SpGEMM stress case.
    let g = barabasi_albert(300, 3, 11);
    let a = CsrMatrix::from_graph(&g);
    let mut sink = NullSink;

    let oracle = spgemm(&a, &a, &mut OracleAccumulator::default(), &mut sink);
    let chained = spgemm(&a, &a, &mut ChainedAccumulator::new(), &mut sink);
    let asa = spgemm(
        &a,
        &a,
        &mut AsaAccumulator::new(AsaConfig::paper_default()),
        &mut sink,
    );
    // Tiny CAM: heavy overflow, same answer.
    let tiny = spgemm(
        &a,
        &a,
        &mut AsaAccumulator::new(AsaConfig {
            cam_bytes: 8 * 16,
            entry_bytes: 16,
            ..AsaConfig::paper_default()
        }),
        &mut sink,
    );

    assert_eq!(oracle, chained);
    assert_eq!(oracle, asa);
    assert_eq!(oracle, tiny);
    assert!(oracle.nnz() > a.nnz(), "A^2 of a connected graph fans out");
    assert!(spgemm_flops(&a, &a) as usize >= oracle.nnz());
}

#[test]
fn asa_speeds_up_spgemm_on_the_simulated_machine() {
    let g = barabasi_albert(400, 4, 3);
    let a = CsrMatrix::from_graph(&g);
    let mcfg = MachineConfig::baseline(1);

    let mut base_core = CoreModel::new(&mcfg);
    let baseline = spgemm(&a, &a, &mut ChainedAccumulator::new(), &mut base_core);
    let base_report = base_core.take_report();

    let mut asa_core = CoreModel::new(&mcfg);
    let accel = spgemm(
        &a,
        &a,
        &mut AsaAccumulator::new(AsaConfig::paper_default()),
        &mut asa_core,
    );
    let asa_report = asa_core.take_report();

    assert_eq!(baseline, accel);
    let speedup = base_report.cycles / asa_report.cycles;
    assert!(
        speedup > 1.5,
        "ASA should clearly accelerate its original workload: {speedup:.2}x"
    );
    assert!(base_report.mispredictions > asa_report.mispredictions);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn spgemm_devices_agree_on_random_matrices(
        seed_a in 0u64..1000,
        seed_b in 1000u64..2000,
        cam_entries in 1usize..32,
    ) {
        let a = CsrMatrix::random(18, 22, 0.18, seed_a);
        let b = CsrMatrix::random(22, 15, 0.22, seed_b);
        let mut sink = NullSink;
        let oracle = spgemm(&a, &b, &mut OracleAccumulator::default(), &mut sink);
        let mut asa = AsaAccumulator::new(AsaConfig {
            cam_bytes: cam_entries * 16,
            entry_bytes: 16,
            ..AsaConfig::paper_default()
        });
        let got = spgemm(&a, &b, &mut asa, &mut sink);
        // Floating-point sums may associate differently through the
        // overflow merge; compare densely with tolerance.
        let (dl, dr) = (oracle.to_dense(), got.to_dense());
        for (rl, rr) in dl.iter().zip(dr.iter()) {
            for (x, y) in rl.iter().zip(rr.iter()) {
                prop_assert!((x - y).abs() < 1e-9, "{x} vs {y}");
            }
        }
    }
}
