//! Compressed sparse row matrices.

use asa_graph::CsrGraph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A sparse `rows × cols` matrix of `f64` in CSR form.
///
/// Column indices within each row are kept sorted and unique; values of
/// duplicate triplets are summed at construction.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_offsets: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a matrix from `(row, col, value)` triplets; duplicates sum.
    ///
    /// # Panics
    /// Panics if any index is out of range or a value is not finite.
    pub fn from_triplets(rows: usize, cols: usize, mut triplets: Vec<(u32, u32, f64)>) -> Self {
        assert!(cols <= u32::MAX as usize && rows <= u32::MAX as usize);
        for &(r, c, v) in &triplets {
            assert!(
                (r as usize) < rows && (c as usize) < cols,
                "index out of range"
            );
            assert!(v.is_finite(), "matrix values must be finite");
        }
        triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut merged: Vec<(u32, u32, f64)> = Vec::with_capacity(triplets.len());
        for (r, c, v) in triplets {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        let mut row_offsets = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(merged.len());
        let mut values = Vec::with_capacity(merged.len());
        for (r, c, v) in merged {
            row_offsets[r as usize + 1] += 1;
            col_idx.push(c);
            values.push(v);
        }
        for i in 0..rows {
            row_offsets[i + 1] += row_offsets[i];
        }
        Self {
            rows,
            cols,
            row_offsets,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The `(column, value)` entries of row `r`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let (lo, hi) = (self.row_offsets[r], self.row_offsets[r + 1]);
        self.col_idx[lo..hi]
            .iter()
            .zip(self.values[lo..hi].iter())
            .map(|(&c, &v)| (c, v))
    }

    /// Number of nonzeros in row `r`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_offsets[r + 1] - self.row_offsets[r]
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Self::from_triplets(n, n, (0..n as u32).map(|i| (i, i, 1.0)).collect())
    }

    /// A uniformly random sparse matrix with expected `density` fraction
    /// of nonzeros, values in `(0, 1]`, deterministic in `seed`.
    pub fn random(rows: usize, cols: usize, density: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&density));
        let mut rng = SmallRng::seed_from_u64(seed);
        let expected = ((rows * cols) as f64 * density).round() as usize;
        let triplets = (0..expected)
            .map(|_| {
                (
                    rng.gen_range(0..rows as u32),
                    rng.gen_range(0..cols as u32),
                    rng.gen::<f64>().max(1e-3),
                )
            })
            .collect();
        Self::from_triplets(rows, cols, triplets)
    }

    /// The weighted adjacency matrix of a graph (out-edges as rows) —
    /// the bridge between the graph substrate and SpGEMM workloads: `A²`
    /// of an adjacency matrix counts weighted 2-paths, a classic
    /// real-world SpGEMM input with power-law row lengths.
    pub fn from_graph(graph: &CsrGraph) -> Self {
        let n = graph.num_nodes();
        let triplets = graph.arcs().collect();
        Self::from_triplets(n, n, triplets)
    }

    /// Transpose.
    pub fn transpose(&self) -> CsrMatrix {
        let triplets = (0..self.rows)
            .flat_map(|r| self.row(r).map(move |(c, v)| (c, r as u32, v)))
            .collect();
        CsrMatrix::from_triplets(self.cols, self.rows, triplets)
    }

    /// Dense representation (row-major), for small-matrix oracles.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut dense = vec![vec![0.0; self.cols]; self.rows];
        for (r, row) in dense.iter_mut().enumerate() {
            for (c, v) in self.row(r) {
                row[c as usize] += v;
            }
        }
        dense
    }

    /// Maximum row nonzero count (the CAM working-set bound for the
    /// accumulation of one output row of `self · B` is B-dependent, but
    /// `A`'s row lengths drive the accumulate stream length).
    pub fn max_row_nnz(&self) -> usize {
        (0..self.rows).map(|r| self.row_nnz(r)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asa_graph::GraphBuilder;

    #[test]
    fn triplets_dedup_and_sort() {
        let m = CsrMatrix::from_triplets(
            2,
            3,
            vec![(0, 2, 1.0), (0, 0, 2.0), (0, 2, 0.5), (1, 1, 3.0)],
        );
        assert_eq!(m.nnz(), 3);
        let row0: Vec<_> = m.row(0).collect();
        assert_eq!(row0, vec![(0, 2.0), (2, 1.5)]);
        assert_eq!(m.row_nnz(1), 1);
    }

    #[test]
    fn identity_and_dense() {
        let i = CsrMatrix::identity(3);
        assert_eq!(i.nnz(), 3);
        let d = i.to_dense();
        for (r, row) in d.iter().enumerate() {
            for (c, &x) in row.iter().enumerate() {
                assert_eq!(x, if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_round_trip() {
        let m = CsrMatrix::random(20, 13, 0.15, 5);
        let back = m.transpose().transpose();
        assert_eq!(m, back);
    }

    #[test]
    fn random_density_close() {
        let m = CsrMatrix::random(100, 100, 0.05, 9);
        // Collisions merge a few entries; the bulk must survive.
        assert!(m.nnz() > 400 && m.nnz() <= 500);
        assert_eq!(m.rows(), 100);
    }

    #[test]
    fn adjacency_from_graph() {
        let mut b = GraphBuilder::directed(3);
        b.add_edge(0, 1, 2.0);
        b.add_edge(1, 2, 3.0);
        let m = CsrMatrix::from_graph(&b.build());
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.row(0).next(), Some((1, 2.0)));
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn bounds_checked() {
        CsrMatrix::from_triplets(2, 2, vec![(0, 5, 1.0)]);
    }
}
