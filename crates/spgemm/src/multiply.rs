//! Gustavson SpGEMM over the accumulation-device interface.

use asa_simarch::accum::FlowAccumulator;
use asa_simarch::events::{EventSink, InstrClass};

use crate::matrix::CsrMatrix;

/// Synthetic addresses of the B-matrix row data touched during expansion.
const B_ROW_BASE: u64 = 0xC000_0000;
/// Loop-continuation branch sites.
const SITE_A_LOOP: u32 = 0x400;
const SITE_B_LOOP: u32 = 0x401;

/// Computes `C = A · B` row-wise (Gustavson): for each row `i` of `A`, the
/// partial products `a_ik · b_kj` are accumulated per output column `j` in
/// the device, then gathered as row `i` of `C`.
///
/// The accumulation stream per output row is identical (up to transpose)
/// to the column-wise formulation ASA was designed for, and identical in
/// *shape* to one Infomap `FindBestCommunity` vertex: `begin`, a burst of
/// `accumulate(key, value)` with skewed key multiplicity, one `gather`.
///
/// # Panics
/// Panics when the inner dimensions disagree.
pub fn spgemm<A: FlowAccumulator, S: EventSink>(
    a: &CsrMatrix,
    b: &CsrMatrix,
    acc: &mut A,
    sink: &mut S,
) -> CsrMatrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let mut triplets: Vec<(u32, u32, f64)> = Vec::new();
    let mut row: Vec<(u32, f64)> = Vec::new();

    for i in 0..a.rows() {
        acc.begin(sink);
        for (k, a_ik) in a.row(i) {
            sink.branch(SITE_A_LOOP, true);
            // Load A's entry and B's row pointer.
            sink.instr(InstrClass::Alu, 2);
            sink.mem_read(B_ROW_BASE + k as u64 * 8);
            for (j, b_kj) in b.row(k as usize) {
                sink.branch(SITE_B_LOOP, true);
                // Stream B's row (sequential loads) and form the partial
                // product.
                sink.mem_read(B_ROW_BASE + 0x1000_0000 + (k as u64 * 997 + j as u64) * 12);
                sink.instr(InstrClass::Float, 1); // a_ik * b_kj
                acc.accumulate(j, a_ik * b_kj, sink);
            }
            sink.branch(SITE_B_LOOP, false);
        }
        sink.branch(SITE_A_LOOP, false);
        acc.gather(&mut row, sink);
        row.sort_unstable_by_key(|&(j, _)| j);
        triplets.extend(row.iter().map(|&(j, v)| (i as u32, j, v)));
    }
    CsrMatrix::from_triplets(a.rows(), b.cols(), triplets)
}

/// Parallel `C = A · B` with one accumulation device per worker thread —
/// the multi-core deployment the paper's per-core CAMs imply ("each
/// thread has its own core-local CAM"). Rows are block-partitioned across
/// `devices.len()` workers; no instrumentation (devices run against null
/// sinks), so this is the *native* parallel path.
pub fn spgemm_parallel<A: FlowAccumulator + Send>(
    a: &CsrMatrix,
    b: &CsrMatrix,
    devices: &mut [A],
) -> CsrMatrix {
    use asa_simarch::events::NullSink;
    use rayon::prelude::*;

    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert!(!devices.is_empty(), "need at least one device");
    let workers = devices.len();
    let ranges = asa_simarch::machine::block_partition(a.rows(), workers);

    let triplets: Vec<(u32, u32, f64)> = devices
        .par_iter_mut()
        .enumerate()
        .map(|(w, acc)| {
            let mut sink = NullSink;
            let mut row = Vec::new();
            let mut out = Vec::new();
            for i in ranges[w].clone() {
                acc.begin(&mut sink);
                for (k, a_ik) in a.row(i) {
                    for (j, b_kj) in b.row(k as usize) {
                        acc.accumulate(j, a_ik * b_kj, &mut sink);
                    }
                }
                acc.gather(&mut row, &mut sink);
                row.sort_unstable_by_key(|&(j, _)| j);
                out.extend(row.iter().map(|&(j, v)| (i as u32, j, v)));
            }
            out
        })
        .flatten()
        .collect();
    CsrMatrix::from_triplets(a.rows(), b.cols(), triplets)
}

/// Number of useful multiply-adds in `A · B` (the standard SpGEMM
/// work metric: Σ over nonzeros `a_ik` of `nnz(B_k)`).
pub fn spgemm_flops(a: &CsrMatrix, b: &CsrMatrix) -> u64 {
    assert_eq!(a.cols(), b.rows());
    (0..a.rows())
        .flat_map(|i| a.row(i))
        .map(|(k, _)| b.row_nnz(k as usize) as u64)
        .sum()
}

/// Sparse matrix-vector product `y = A · x` (no device involvement; used
/// by tests and as a cheap oracle building block).
pub fn spmv(a: &CsrMatrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(a.cols(), x.len());
    (0..a.rows())
        .map(|i| a.row(i).map(|(c, v)| v * x[c as usize]).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asa_simarch::accum::OracleAccumulator;
    use asa_simarch::events::NullSink;

    fn dense_mul(a: &CsrMatrix, b: &CsrMatrix) -> Vec<Vec<f64>> {
        let (da, db) = (a.to_dense(), b.to_dense());
        let mut c = vec![vec![0.0; b.cols()]; a.rows()];
        for i in 0..a.rows() {
            for k in 0..a.cols() {
                if da[i][k] != 0.0 {
                    for j in 0..b.cols() {
                        c[i][j] += da[i][k] * db[k][j];
                    }
                }
            }
        }
        c
    }

    fn assert_dense_eq(c: &CsrMatrix, d: &[Vec<f64>]) {
        let dc = c.to_dense();
        for (row_c, row_d) in dc.iter().zip(d) {
            for (x, y) in row_c.iter().zip(row_d) {
                assert!((x - y).abs() < 1e-9, "{x} != {y}");
            }
        }
    }

    #[test]
    fn matches_dense_reference() {
        let a = CsrMatrix::random(25, 30, 0.15, 1);
        let b = CsrMatrix::random(30, 20, 0.2, 2);
        let c = spgemm(&a, &b, &mut OracleAccumulator::default(), &mut NullSink);
        assert_eq!(c.rows(), 25);
        assert_eq!(c.cols(), 20);
        assert_dense_eq(&c, &dense_mul(&a, &b));
    }

    #[test]
    fn identity_is_neutral() {
        let a = CsrMatrix::random(15, 15, 0.2, 3);
        let i = CsrMatrix::identity(15);
        let ai = spgemm(&a, &i, &mut OracleAccumulator::default(), &mut NullSink);
        assert_eq!(ai, a);
        let ia = spgemm(&i, &a, &mut OracleAccumulator::default(), &mut NullSink);
        assert_eq!(ia, a);
    }

    #[test]
    fn flops_metric() {
        // A = [1 1; 0 1] row nnz (2,1); B identity: flops = nnz(A) = 3.
        let a = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 1, 1.0), (1, 1, 1.0)]);
        let i = CsrMatrix::identity(2);
        assert_eq!(spgemm_flops(&a, &i), 3);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = CsrMatrix::random(10, 8, 0.3, 4);
        let x: Vec<f64> = (0..8).map(|i| i as f64 * 0.5).collect();
        let y = spmv(&a, &x);
        let d = a.to_dense();
        for i in 0..10 {
            let want: f64 = (0..8).map(|j| d[i][j] * x[j]).sum();
            assert!((y[i] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        use crate::multiply::spgemm_parallel;
        let a = CsrMatrix::random(40, 40, 0.12, 6);
        let sequential = spgemm(&a, &a, &mut OracleAccumulator::default(), &mut NullSink);
        let mut devices: Vec<OracleAccumulator> =
            (0..4).map(|_| OracleAccumulator::default()).collect();
        let parallel = spgemm_parallel(&a, &a, &mut devices);
        assert_eq!(sequential, parallel);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_rejected() {
        let a = CsrMatrix::identity(3);
        let b = CsrMatrix::identity(4);
        spgemm(&a, &b, &mut OracleAccumulator::default(), &mut NullSink);
    }
}
