//! Sparse general matrix-matrix multiplication (SpGEMM) over the
//! generalized ASA accumulation interface.
//!
//! ASA (Chao et al., TACO 2022) was designed to accelerate the *sparse
//! accumulation* inside column-wise SpGEMM. The paper reproduced by this
//! workspace generalizes ASA's interface so any hash-accumulation-heavy
//! application can use it, and demonstrates that with Infomap. This crate
//! closes the loop from the other side: it implements ASA's **original**
//! workload — Gustavson-style row-wise SpGEMM — against the *same*
//! [`FlowAccumulator`](asa_simarch::FlowAccumulator) contract the Infomap
//! kernel uses. One device model, two applications; exactly the
//! generalization the paper claims.
//!
//! The row-formulation used here is the transpose-dual of the paper's
//! column-wise formulation (identical accumulation stream per output
//! row/column), and each output row is one `begin → accumulate* → gather`
//! round — the same device lifecycle as one Infomap vertex.

pub mod matrix;
pub mod multiply;

pub use matrix::CsrMatrix;
pub use multiply::{spgemm, spgemm_flops, spgemm_parallel, spmv};
