//! Bounded per-shard store of live [`IncrementalState`]s for
//! dynamic-graph update streams.
//!
//! A stream is named by its chain *anchor* — the base snapshot's
//! fingerprint — crossed with the config hash, because a stream's chain
//! head moves on every batch while its anchor only moves on a
//! server-side compaction rebase the router never sees. Entries evict
//! LRU under the capacity bound; an evicted stream is not an error, its
//! next update simply pays one cold full run to re-seed. Lookups and
//! evictions feed the engine-wide `serve.partition.*` counters, and the
//! live-entry count backs the `serve.partition.store` gauge.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use asa_infomap::IncrementalState;
use asa_obs::Counter;

/// Identity of one update stream: `(chain anchor, config hash)`.
pub type StreamKey = (u64, u64);

struct Entry {
    state: Arc<Mutex<IncrementalState>>,
    last_used: u64,
}

struct Inner {
    map: HashMap<StreamKey, Entry>,
    tick: u64,
}

/// Bounded LRU map from update streams to their live incremental state.
/// One per engine shard; streams route by anchor so a stream's state
/// lives on exactly one shard.
pub struct PartitionStore {
    inner: Mutex<Inner>,
    capacity: usize,
    /// Lock-free mirror of the entry count, for gauge reads.
    live: AtomicUsize,
    hits: Counter,
    misses: Counter,
    evicted: Counter,
}

impl std::fmt::Debug for PartitionStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionStore")
            .field("capacity", &self.capacity)
            .field("live", &self.len())
            .finish()
    }
}

impl PartitionStore {
    /// A store holding at most `capacity` live streams (0 disables it:
    /// every update then runs cold). Counters are fed on every lookup and
    /// eviction.
    pub fn with_counters(
        capacity: usize,
        hits: Counter,
        misses: Counter,
        evicted: Counter,
    ) -> Self {
        PartitionStore {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity,
            live: AtomicUsize::new(0),
            hits,
            misses,
            evicted,
        }
    }

    /// The stream's live state, bumping its LRU position. Counts a hit or
    /// a miss.
    pub fn get(&self, key: StreamKey) -> Option<Arc<Mutex<IncrementalState>>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.incr();
                Some(Arc::clone(&entry.state))
            }
            None => {
                self.misses.incr();
                None
            }
        }
    }

    /// Installs (or replaces) the stream's live state, evicting the
    /// least-recently-used stream when the store is full. With zero
    /// capacity this is a no-op.
    pub fn insert(&self, key: StreamKey, state: Arc<Mutex<IncrementalState>>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
            {
                inner.map.remove(&victim);
                self.evicted.incr();
            }
        }
        inner.map.insert(
            key,
            Entry {
                state,
                last_used: tick,
            },
        );
        self.live.store(inner.map.len(), Ordering::Relaxed);
    }

    /// Live streams in the store.
    pub fn len(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Whether the store holds no live stream.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asa_graph::GraphBuilder;
    use asa_infomap::{CancelToken, IncrementalConfig, InfomapConfig};
    use asa_obs::Obs;

    fn state() -> Arc<Mutex<IncrementalState>> {
        let mut b = GraphBuilder::undirected(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            b.add_edge(u, v, 1.0);
        }
        let (st, _) = IncrementalState::new(
            Arc::new(b.build()),
            InfomapConfig::default(),
            IncrementalConfig::default(),
            &Obs::disabled(),
            &CancelToken::none(),
        );
        Arc::new(Mutex::new(st))
    }

    fn store(capacity: usize) -> (PartitionStore, Counter, Counter, Counter) {
        let obs = Obs::new_enabled();
        let (h, m, e) = (
            obs.counter("t.hits"),
            obs.counter("t.misses"),
            obs.counter("t.evicted"),
        );
        (
            PartitionStore::with_counters(capacity, h.clone(), m.clone(), e.clone()),
            h,
            m,
            e,
        )
    }

    #[test]
    fn lru_evicts_stalest_stream() {
        let (store, hits, misses, evicted) = store(2);
        let shared = state();
        store.insert((1, 0), Arc::clone(&shared));
        store.insert((2, 0), Arc::clone(&shared));
        assert!(store.get((1, 0)).is_some()); // bumps stream 1
        store.insert((3, 0), shared); // evicts stream 2
        assert_eq!(store.len(), 2);
        assert!(store.get((1, 0)).is_some());
        assert!(store.get((2, 0)).is_none(), "stream 2 was the LRU victim");
        assert!(store.get((3, 0)).is_some());
        assert_eq!(hits.value(), 3);
        assert_eq!(misses.value(), 1);
        assert_eq!(evicted.value(), 1);
    }

    #[test]
    fn zero_capacity_disables_the_store() {
        let (store, _, misses, _) = store(0);
        store.insert((1, 0), state());
        assert!(store.is_empty());
        assert!(store.get((1, 0)).is_none());
        assert_eq!(misses.value(), 1);
    }
}
