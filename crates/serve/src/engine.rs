//! The serving engine: admission control → bounded queue → worker pool →
//! Infomap, with a result cache in front and a degradation ladder under
//! load.
//!
//! Lifecycle of a request (see DESIGN.md § Serving layer for the diagram):
//!
//! 1. **Admission** ([`ServeEngine::submit`]): the request is keyed by
//!    `(graph fingerprint, config hash)` and looked up in the cache — a
//!    hit resolves immediately without queueing. A miss enqueues into the
//!    request's priority class; a full class rejects with
//!    [`Outcome::Overloaded`] *now* instead of building unbounded backlog.
//! 2. **Dequeue**: workers drain interactive before batch. A request whose
//!    deadline already expired resolves [`Outcome::DeadlineExceeded`]
//!    without running.
//! 3. **Degradation ladder**: under queue pressure, batch requests run
//!    with lowered quality knobs (first fewer outer refinement loops, then
//!    also fewer sweeps) before anything is shed. Interactive requests are
//!    never degraded by pressure.
//! 4. **Run**: Infomap executes with a [`CancelToken`] carrying the
//!    request deadline; an expiry mid-run stops at the next sweep boundary
//!    and the best partition found so far returns as
//!    [`Outcome::Degraded`].
//! 5. **Cache fill**: only full-quality, uninterrupted results are
//!    cached — degraded partitions must never be served to a later caller
//!    who asked for full quality.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use asa_graph::fnv1a64;
use asa_infomap::{detect_communities_cancellable, CancelToken, InfomapConfig, InfomapResult};
use asa_obs::{Counter, Gauge, Hist, Obs, TraceId};

use crate::cache::{CacheKey, ResultCache};
use crate::queue::{JobQueue, PushError};
use crate::request::{
    DegradeReason, JobHandle, Outcome, Priority, Request, Response, ResponseSlot,
};

/// Stable 64-bit hash of an Infomap configuration, for cache keying.
/// FNV-1a over the `Debug` rendering: every field participates, and the
/// rendering is deterministic for a given build.
pub fn config_hash(cfg: &InfomapConfig) -> u64 {
    fnv1a64(format!("{cfg:?}").as_bytes())
}

/// Engine sizing and policy knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the queue. Each runs one request at a time;
    /// the requests themselves still use the shared rayon pool internally.
    pub workers: usize,
    /// Bound on queued interactive requests; submissions beyond it shed.
    pub queue_capacity_interactive: usize,
    /// Bound on queued batch requests.
    pub queue_capacity_batch: usize,
    /// Total result-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Cache shard count (lock-splitting; capacity divides across shards).
    pub cache_shards: usize,
    /// Cache entry time-to-live.
    pub cache_ttl: Duration,
    /// Queue depth at which batch requests start running degraded
    /// (ladder rung 1; rung 2 engages at twice this depth).
    pub degrade_depth: usize,
    /// Telemetry handle. Serving metrics (queue depth gauge, per-class
    /// latency histograms, shed/degrade/cache counters) register here;
    /// pass a disabled handle to keep metrics readable via
    /// [`ServeEngine::stats`] without any sink wiring.
    pub obs: Obs,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism().map_or(2, |p| p.get().min(8)),
            queue_capacity_interactive: 64,
            queue_capacity_batch: 256,
            cache_capacity: 128,
            cache_shards: 8,
            cache_ttl: Duration::from_secs(300),
            degrade_depth: 8,
            obs: Obs::disabled(),
        }
    }
}

/// Serving-level metric handles. Built from the configured [`Obs`] when it
/// is enabled, or from a private enabled handle otherwise, so
/// [`ServeEngine::stats`] always has live numbers to read.
#[derive(Debug, Clone)]
struct Metrics {
    submitted: Counter,
    completed: Counter,
    shed: Counter,
    degraded_pressure: Counter,
    degraded_deadline: Counter,
    deadline_exceeded: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_expired: Counter,
    cache_evicted: Counter,
    queue_depth: Gauge,
    latency_interactive_us: Hist,
    latency_batch_us: Hist,
}

impl Metrics {
    fn new(obs: &Obs) -> Self {
        Metrics {
            submitted: obs.counter("serve.submitted"),
            completed: obs.counter("serve.completed"),
            shed: obs.counter("serve.shed"),
            degraded_pressure: obs.counter("serve.degraded.pressure"),
            degraded_deadline: obs.counter("serve.degraded.deadline"),
            deadline_exceeded: obs.counter("serve.deadline_exceeded"),
            cache_hits: obs.counter("serve.cache.hits"),
            cache_misses: obs.counter("serve.cache.misses"),
            cache_expired: obs.counter("serve.cache.expired"),
            cache_evicted: obs.counter("serve.cache.evicted"),
            queue_depth: obs.gauge("serve.queue.depth"),
            latency_interactive_us: obs.hist("serve.latency_us.interactive"),
            latency_batch_us: obs.hist("serve.latency_us.batch"),
        }
    }

    fn latency(&self, priority: Priority) -> &Hist {
        match priority {
            Priority::Interactive => &self.latency_interactive_us,
            Priority::Batch => &self.latency_batch_us,
        }
    }
}

/// Per-class latency summary inside [`EngineStats`], estimated from the
/// log-bucketed latency histogram via [`Hist::quantile`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyStats {
    /// Requests that resolved in this class.
    pub count: u64,
    /// Median latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
}

impl LatencyStats {
    fn from_hist(hist: &Hist) -> Self {
        LatencyStats {
            count: hist.count(),
            p50_us: hist.p50(),
            p95_us: hist.p95(),
            p99_us: hist.p99(),
        }
    }
}

/// Point-in-time engine statistics, readable at any moment.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Requests submitted (including shed ones).
    pub submitted: u64,
    /// Requests resolved with a result (`Ok` or `Degraded`).
    pub completed: u64,
    /// Requests rejected at admission (`Overloaded`).
    pub shed: u64,
    /// Results degraded by the load-pressure ladder.
    pub degraded_pressure: u64,
    /// Results degraded by a mid-run deadline expiry.
    pub degraded_deadline: u64,
    /// Requests that expired before any work ran.
    pub deadline_exceeded: u64,
    /// Requests answered from the cache.
    pub cache_hits: u64,
    /// Requests that had to run Infomap.
    pub cache_misses: u64,
    /// Cache entries dropped because their TTL elapsed.
    pub cache_expired: u64,
    /// Live cache entries evicted by LRU capacity pressure.
    pub cache_evicted: u64,
    /// Queue depth when the stats were read.
    pub queue_depth_last: u64,
    /// Highest queue depth ever observed.
    pub queue_depth_max: u64,
    /// Interactive-class latency summary.
    pub latency_interactive: LatencyStats,
    /// Batch-class latency summary.
    pub latency_batch: LatencyStats,
}

impl EngineStats {
    /// Cache hit rate over resolved lookups, 0 when nothing resolved.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of submissions rejected at admission.
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.shed as f64 / self.submitted as f64
        }
    }
}

/// One queued unit of work.
struct Job {
    request: Request,
    key: CacheKey,
    slot: Arc<ResponseSlot>,
    submitted: Instant,
    deadline: Option<Instant>,
    /// Flight-recorder id minted at admission; [`TraceId::NONE`] when the
    /// configured [`Obs`] has no recorder attached (every trace call is
    /// then a no-op).
    trace: TraceId,
}

struct Shared {
    cfg: ServeConfig,
    queue: JobQueue<Job>,
    cache: ResultCache,
    metrics: Metrics,
}

/// The in-process community-detection service. See the module docs.
///
/// ```
/// use std::sync::Arc;
/// use asa_graph::GraphBuilder;
/// use asa_serve::{Outcome, Request, ServeConfig, ServeEngine};
///
/// let mut b = GraphBuilder::undirected(6);
/// for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
///     b.add_edge(u, v, 1.0);
/// }
/// let graph = Arc::new(b.build());
///
/// let engine = ServeEngine::start(ServeConfig::default());
/// let response = engine.submit(Request::interactive(Arc::clone(&graph))).wait();
/// let result = response.outcome.result().expect("full-quality result");
/// assert_eq!(result.num_communities(), 2);
///
/// // Same graph + config again: served from the cache.
/// let again = engine.submit(Request::interactive(graph)).wait();
/// assert!(again.cache_hit);
/// let stats = engine.shutdown();
/// assert_eq!(stats.cache_hits, 1);
/// ```
pub struct ServeEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("workers", &self.workers.len())
            .field("queue_depth", &self.shared.queue.depth())
            .finish()
    }
}

impl ServeEngine {
    /// Starts the worker pool and returns the running engine.
    pub fn start(cfg: ServeConfig) -> Self {
        let metrics_obs = if cfg.obs.enabled() {
            cfg.obs.clone()
        } else {
            // Private registry so `stats()` works without telemetry wiring.
            Obs::new_enabled()
        };
        let metrics = Metrics::new(&metrics_obs);
        let shared = Arc::new(Shared {
            queue: JobQueue::new(cfg.queue_capacity_interactive, cfg.queue_capacity_batch),
            cache: ResultCache::with_counters(
                cfg.cache_capacity,
                cfg.cache_shards,
                cfg.cache_ttl,
                metrics.cache_expired.clone(),
                metrics.cache_evicted.clone(),
            ),
            metrics,
            cfg,
        });
        let workers = (0..shared.cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("asa-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serve worker")
            })
            .collect();
        ServeEngine { shared, workers }
    }

    /// Submits a request. Never blocks: cache hits and admission
    /// rejections resolve the handle before this returns; everything else
    /// resolves when a worker finishes the job. Every submission
    /// terminates in exactly one [`Outcome`].
    ///
    /// When the configured [`Obs`] carries a flight recorder, a
    /// [`TraceId`] is minted here and threaded through every lifecycle
    /// stage as async trace events (`request` envelope, `cache_probe`,
    /// `queue`, `dispatch`, `execute`, `respond`); the id comes back in
    /// [`Response::trace_id`].
    pub fn submit(&self, request: Request) -> JobHandle {
        let m = &self.shared.metrics;
        let obs = &self.shared.cfg.obs;
        m.submitted.incr();
        let submitted = Instant::now();
        let slot = Arc::new(ResponseSlot::default());
        let handle = JobHandle {
            slot: Arc::clone(&slot),
        };
        let key = (request.graph.fingerprint(), config_hash(&request.config));
        let trace = obs.mint_trace_id();
        obs.trace_async_begin(trace, "request", "request");

        // Admission-time cache check: hits never consume queue capacity.
        obs.trace_async_begin(trace, "cache_probe", "request");
        let admission_hit = self.shared.cache.get(&key);
        obs.trace_async_end(trace, "cache_probe", "request");
        if let Some(hit) = admission_hit {
            m.cache_hits.incr();
            m.completed.incr();
            let total = submitted.elapsed();
            m.latency(request.priority).record(total.as_micros() as u64);
            slot.fill(Response {
                outcome: Outcome::Ok(hit),
                queued: Duration::ZERO,
                service: Duration::ZERO,
                total,
                cache_hit: true,
                trace_id: trace.0,
            });
            obs.trace_async_end(trace, "request", "request");
            return handle;
        }

        let priority = request.priority;
        let deadline = request.deadline.map(|d| submitted + d);
        let job = Job {
            request,
            key,
            slot,
            submitted,
            deadline,
            trace,
        };
        obs.trace_async_begin(trace, "queue", "request");
        match self.shared.queue.push(priority, job) {
            Ok(depth) => {
                m.queue_depth.set(depth as u64);
                obs.trace_counter("serve.queue.depth", depth as i64);
            }
            Err(PushError::Full(job) | PushError::Closed(job)) => {
                m.shed.incr();
                obs.trace_async_end(trace, "queue", "request");
                job.slot.fill(Response {
                    outcome: Outcome::Overloaded,
                    queued: Duration::ZERO,
                    service: Duration::ZERO,
                    total: submitted.elapsed(),
                    cache_hit: false,
                    trace_id: trace.0,
                });
                obs.trace_async_end(trace, "request", "request");
            }
        }
        handle
    }

    /// Current queue depth (both classes).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Live engine statistics.
    pub fn stats(&self) -> EngineStats {
        let m = &self.shared.metrics;
        EngineStats {
            submitted: m.submitted.value(),
            completed: m.completed.value(),
            shed: m.shed.value(),
            degraded_pressure: m.degraded_pressure.value(),
            degraded_deadline: m.degraded_deadline.value(),
            deadline_exceeded: m.deadline_exceeded.value(),
            cache_hits: m.cache_hits.value(),
            cache_misses: m.cache_misses.value(),
            cache_expired: m.cache_expired.value(),
            cache_evicted: m.cache_evicted.value(),
            queue_depth_last: self.shared.queue.depth() as u64,
            queue_depth_max: m.queue_depth.max(),
            latency_interactive: LatencyStats::from_hist(&m.latency_interactive_us),
            latency_batch: LatencyStats::from_hist(&m.latency_batch_us),
        }
    }

    /// Graceful shutdown: stops admission, drains every queued job
    /// (each still resolves normally), joins the workers, and returns the
    /// final statistics.
    pub fn shutdown(mut self) -> EngineStats {
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.stats()
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// The degradation ladder. Rung 0 is the requested configuration; rung 1
/// drops refinement (`outer_loops = 1`); rung 2 additionally halves the
/// sweep budget. Levels are untouched — coarsening is what makes large
/// graphs tractable at all.
fn degraded_config(cfg: &InfomapConfig, rung: u8) -> InfomapConfig {
    let mut out = cfg.clone();
    if rung >= 1 {
        out.outer_loops = 1;
    }
    if rung >= 2 {
        out.max_sweeps = (cfg.max_sweeps / 2).max(2);
    }
    out
}

fn worker_loop(shared: &Shared) {
    let m = &shared.metrics;
    let obs = &shared.cfg.obs;
    while let Some((priority, job)) = shared.queue.pop() {
        let trace = job.trace;
        // The queue stage spans push (submitter thread) to pop (here);
        // async events pair across threads by (name, id).
        obs.trace_async_end(trace, "queue", "request");
        obs.trace_async_begin(trace, "dispatch", "request");
        // Spans and instants recorded on this thread while the job runs
        // (degradation rungs, infomap levels/sweeps) attribute to it.
        let _scope = obs.trace_scope(trace);
        let depth = shared.queue.depth();
        m.queue_depth.set(depth as u64);
        obs.trace_counter("serve.queue.depth", depth as i64);
        let dequeued = Instant::now();
        let queued = dequeued - job.submitted;

        // Expired while queued: no work, no partial result.
        if job.deadline.is_some_and(|d| dequeued >= d) {
            m.deadline_exceeded.incr();
            m.latency(priority).record(queued.as_micros() as u64);
            obs.trace_async_end(trace, "dispatch", "request");
            job.slot.fill(Response {
                outcome: Outcome::DeadlineExceeded,
                queued,
                service: Duration::ZERO,
                total: queued,
                cache_hit: false,
                trace_id: trace.0,
            });
            obs.trace_async_end(trace, "request", "request");
            continue;
        }

        // A hit may have landed while this job waited.
        if let Some(hit) = shared.cache.get(&job.key) {
            m.cache_hits.incr();
            m.completed.incr();
            let total = job.submitted.elapsed();
            m.latency(priority).record(total.as_micros() as u64);
            obs.trace_async_end(trace, "dispatch", "request");
            job.slot.fill(Response {
                outcome: Outcome::Ok(hit),
                queued,
                service: Duration::ZERO,
                total,
                cache_hit: true,
                trace_id: trace.0,
            });
            obs.trace_async_end(trace, "request", "request");
            continue;
        }
        m.cache_misses.incr();

        // Degradation ladder, batch class only.
        let rung = if priority == Priority::Batch && shared.cfg.degrade_depth > 0 {
            if depth >= shared.cfg.degrade_depth * 2 {
                2
            } else if depth >= shared.cfg.degrade_depth {
                1
            } else {
                0
            }
        } else {
            0
        };
        let effective = if rung > 0 {
            m.degraded_pressure.incr();
            obs.trace_instant(
                if rung == 1 {
                    "serve.degrade.rung1"
                } else {
                    "serve.degrade.rung2"
                },
                "serve",
            );
            degraded_config(&job.request.config, rung)
        } else {
            job.request.config.clone()
        };
        let cancel = match job.deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::none(),
        };

        // Per-request runs stay off the metric/sink path by default:
        // per-sweep record streams from concurrent requests would
        // interleave uselessly and dominate the serving telemetry. With a
        // flight recorder attached, though, the run gets the real handle
        // so its level/sweep spans land on this worker's trace track
        // tagged with the request id (the `_scope` above).
        let run_obs = if obs.trace_enabled() {
            obs.clone()
        } else {
            Obs::disabled()
        };
        obs.trace_async_end(trace, "dispatch", "request");
        obs.trace_async_begin(trace, "execute", "request");
        let t = Instant::now();
        let result =
            detect_communities_cancellable(&job.request.graph, &effective, &run_obs, &cancel);
        let service = t.elapsed();
        obs.trace_async_end(trace, "execute", "request");
        obs.trace_async_begin(trace, "respond", "request");
        let interrupted = result.interrupted;
        if interrupted {
            m.degraded_deadline.incr();
        }
        let result: Arc<InfomapResult> = Arc::new(result);

        // Only cache what a fresh full-quality run would have produced.
        if !interrupted && rung == 0 {
            shared.cache.insert(job.key, Arc::clone(&result));
        }

        let outcome = if interrupted {
            Outcome::Degraded {
                result,
                reason: DegradeReason::Deadline,
            }
        } else if rung > 0 {
            Outcome::Degraded {
                result,
                reason: DegradeReason::LoadPressure,
            }
        } else {
            Outcome::Ok(result)
        };
        m.completed.incr();
        let total = job.submitted.elapsed();
        m.latency(priority).record(total.as_micros() as u64);
        job.slot.fill(Response {
            outcome,
            queued,
            service,
            total,
            cache_hit: false,
            trace_id: trace.0,
        });
        obs.trace_async_end(trace, "respond", "request");
        obs.trace_async_end(trace, "request", "request");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asa_graph::{CsrGraph, GraphBuilder};

    fn two_triangles() -> Arc<CsrGraph> {
        let mut b = GraphBuilder::undirected(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            b.add_edge(u, v, 1.0);
        }
        Arc::new(b.build())
    }

    #[test]
    fn ok_result_and_cache_hit() {
        let engine = ServeEngine::start(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let graph = two_triangles();
        let first = engine
            .submit(Request::interactive(Arc::clone(&graph)))
            .wait();
        assert!(!first.cache_hit);
        let r1 = first.outcome.result().expect("ok").clone();
        assert_eq!(r1.num_communities(), 2);

        let second = engine.submit(Request::batch(Arc::clone(&graph))).wait();
        assert!(second.cache_hit, "same graph+config must hit the cache");
        assert!(Arc::ptr_eq(second.outcome.result().unwrap(), &r1));

        // A different config is a different key.
        let other_cfg = InfomapConfig {
            outer_loops: 1,
            ..InfomapConfig::default()
        };
        let third = engine
            .submit(Request::interactive(graph).with_config(other_cfg))
            .wait();
        assert!(!third.cache_hit);

        let stats = engine.shutdown();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 2);
        assert!(stats.latency_interactive.count >= 2);
    }

    #[test]
    fn zero_queue_capacity_sheds() {
        let engine = ServeEngine::start(ServeConfig {
            workers: 1,
            queue_capacity_interactive: 0,
            queue_capacity_batch: 0,
            cache_capacity: 0,
            ..ServeConfig::default()
        });
        let response = engine.submit(Request::interactive(two_triangles())).wait();
        assert!(matches!(response.outcome, Outcome::Overloaded));
        let stats = engine.shutdown();
        assert_eq!(stats.shed, 1);
        assert!((stats.shed_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expired_deadline_resolves_without_running() {
        let engine = ServeEngine::start(ServeConfig {
            workers: 1,
            cache_capacity: 0,
            ..ServeConfig::default()
        });
        let response = engine
            .submit(Request::batch(two_triangles()).with_deadline(Duration::ZERO))
            .wait();
        assert!(matches!(response.outcome, Outcome::DeadlineExceeded));
        assert_eq!(response.service, Duration::ZERO);
        let stats = engine.shutdown();
        assert_eq!(stats.deadline_exceeded, 1);
    }

    #[test]
    fn degraded_config_ladder() {
        let cfg = InfomapConfig::default();
        let r1 = degraded_config(&cfg, 1);
        assert_eq!(r1.outer_loops, 1);
        assert_eq!(r1.max_sweeps, cfg.max_sweeps);
        let r2 = degraded_config(&cfg, 2);
        assert_eq!(r2.outer_loops, 1);
        assert_eq!(r2.max_sweeps, cfg.max_sweeps / 2);
        assert_eq!(degraded_config(&cfg, 0).max_sweeps, cfg.max_sweeps);
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let engine = ServeEngine::start(ServeConfig {
            workers: 1,
            cache_capacity: 0,
            ..ServeConfig::default()
        });
        let graph = two_triangles();
        let handles: Vec<_> = (0..16)
            .map(|_| engine.submit(Request::batch(Arc::clone(&graph))))
            .collect();
        let stats = engine.shutdown();
        for h in handles {
            let response = h.try_get().expect("resolved by shutdown");
            assert!(response.outcome.result().is_some());
        }
        assert_eq!(stats.completed, 16);
    }
}
