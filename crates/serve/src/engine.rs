//! The serving engine: admission control → graph-affinity routing across
//! engine shards → bounded per-shard queues → worker sets → Infomap, with
//! one process-wide result cache in front and a degradation ladder under
//! load.
//!
//! Lifecycle of a request (see DESIGN.md § Serving layer and § Sharded
//! serving for the diagrams):
//!
//! 1. **Routing**: the request's graph fingerprint picks its shard —
//!    home shard `fingerprint % shards`, widened to a round-robined
//!    routing set once the graph proves hot ([`crate::shard::Router`]).
//! 2. **Admission** ([`ServeEngine::submit`]): the request is keyed by
//!    `(graph fingerprint, config hash)` and looked up in the shared
//!    cache — a hit resolves immediately without queueing. A miss
//!    enqueues into the routed shard's priority class; a full class
//!    rejects with [`Outcome::Overloaded`] *now* instead of building
//!    unbounded backlog.
//! 3. **Dequeue**: each shard's workers drain interactive before batch.
//!    An idle shard steals the oldest batch job from the deepest foreign
//!    backlog (interactive jobs stay affine). A request whose deadline
//!    already expired resolves [`Outcome::DeadlineExceeded`] without
//!    running.
//! 4. **Degradation ladder**: under queue pressure, batch requests run
//!    with lowered quality knobs (first fewer outer refinement loops, then
//!    also fewer sweeps) before anything is shed. Interactive requests are
//!    never degraded by pressure.
//! 5. **Run**: Infomap executes with a [`CancelToken`] carrying the
//!    request deadline; an expiry mid-run stops at the next sweep boundary
//!    and the best partition found so far returns as
//!    [`Outcome::Degraded`]. With [`ServeConfig::dist_ranks`] ≥ 1 the run
//!    uses the rank-partitioned distributed engine (bit-identical results,
//!    plus communication accounting mirrored into `serve.dist.*`).
//! 6. **Cache fill**: only full-quality, uninterrupted results are
//!    cached — degraded partitions must never be served to a later caller
//!    who asked for full quality. The cache is engine-wide, so a replica
//!    shard never recomputes what another shard already answered.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use asa_graph::fnv1a64;
use asa_infomap::incremental::IncrementalOutcome;
use asa_infomap::{
    detect_communities_cancellable, detect_communities_distributed_cancellable, CancelToken,
    IncrementalConfig, IncrementalState, InfomapConfig, InfomapResult,
};
use asa_obs::blackbox::{self, SectionGuard};
use asa_obs::{intern_name, Counter, Gauge, HealthState, Hist, Obs, SloConfig, SloEngine, TraceId};

use crate::cache::{CacheKey, ResultCache};
use crate::queue::{JobQueue, Popped, PushError};
use crate::request::{
    DegradeReason, JobHandle, Outcome, Priority, Request, RequestKind, Response, ResponseSlot,
    UpdateInfo,
};
use crate::shard::{ReplicationConfig, RouteDecision, Router, ShardStats};
use crate::store::PartitionStore;

/// Stable 64-bit hash of an Infomap configuration, for cache keying.
/// FNV-1a over the `Debug` rendering: every field participates, and the
/// rendering is deterministic for a given build.
pub fn config_hash(cfg: &InfomapConfig) -> u64 {
    fnv1a64(format!("{cfg:?}").as_bytes())
}

/// Shard-count default: `ASA_SERVE_SHARDS` when set (CI runs the test
/// suite at 1 and 4), else a single shard.
fn env_shards() -> usize {
    std::env::var("ASA_SERVE_SHARDS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// How long an idle shard worker waits on its own queue before trying to
/// steal from a foreign backlog.
const STEAL_POLL: Duration = Duration::from_millis(2);

/// Engine sizing and policy knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Engine shards. Each shard has its own bounded two-class queue and
    /// worker set; requests route to `graph fingerprint % shards`.
    /// Defaults to `ASA_SERVE_SHARDS` when set, else 1.
    pub shards: usize,
    /// Worker threads *per shard*. Each runs one request at a time; the
    /// requests themselves still use the shared rayon pool internally.
    pub workers: usize,
    /// Bound on queued interactive requests *per shard*; submissions
    /// beyond it shed.
    pub queue_capacity_interactive: usize,
    /// Bound on queued batch requests per shard.
    pub queue_capacity_batch: usize,
    /// Whether idle shards steal batch-class jobs from foreign backlogs.
    /// Interactive jobs are never stolen regardless.
    pub steal: bool,
    /// Hot-graph replication policy (`threshold: 0` disables it, making
    /// routing pure deterministic affinity).
    pub replication: ReplicationConfig,
    /// Emulated ranks for the shard-internal distributed engine; 0 runs
    /// the plain host engine. Results are bit-identical either way.
    pub dist_ranks: usize,
    /// Total result-cache entries (0 disables caching). The cache is
    /// process-wide — one instance shared by every shard.
    pub cache_capacity: usize,
    /// Cache shard count (lock-splitting; capacity divides across shards).
    pub cache_shards: usize,
    /// Cache entry time-to-live.
    pub cache_ttl: Duration,
    /// Queue depth (on the request's own shard) at which batch requests
    /// start running degraded (ladder rung 1; rung 2 engages at twice
    /// this depth).
    pub degrade_depth: usize,
    /// Live [`IncrementalState`]s each shard keeps for update streams
    /// (LRU-bounded; 0 disables reuse, making every update a cold full
    /// run).
    pub partition_store_capacity: usize,
    /// Delta batches a stream accumulates before its overlay is compacted
    /// back into a fresh base CSR. Compaction preserves chain identity,
    /// so cached results stay addressable.
    pub partition_compact_batches: usize,
    /// Quality-guard knobs (drift budget, frontier budget) for the
    /// incremental Infomap path behind [`RequestKind::Update`].
    pub incremental: IncrementalConfig,
    /// Telemetry handle. Serving metrics (queue depth gauges, per-class
    /// latency histograms, shed/degrade/cache/steal counters) register
    /// here; pass a disabled handle to keep metrics readable via
    /// [`ServeEngine::stats`] without any sink wiring.
    pub obs: Obs,
    /// Declarative service-level objectives evaluated on every collector
    /// tick (`None` disables the health engine). Requires a collector on
    /// `obs` ([`Obs::attach_collector`]) to fire automatically; overall
    /// health surfaces as the `serve.health` gauge (0 healthy, 1
    /// degraded, 2 critical), state transitions emit `slo.*` instants
    /// into the flight recorder (attach it *before* `start`), and the
    /// human-readable report prints at shutdown.
    pub slo: Option<SloConfig>,
    /// Black-box flight-data path. When set (default: `ASA_BLACKBOX_OUT`
    /// when present) and the configured [`Obs`] is enabled, the engine
    /// installs a panic hook at `start` and writes one JSON diagnostic
    /// bundle there on any panic and again on graceful [`shutdown`]
    /// (reason `"shutdown"`). The bundle carries the flight-recorder
    /// drain, time-series tails, metric/resource snapshots, the folded
    /// profile, and the engine's own `serve.shards` / `serve.slo`
    /// sections.
    ///
    /// [`shutdown`]: ServeEngine::shutdown
    pub blackbox_out: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: env_shards(),
            workers: std::thread::available_parallelism().map_or(2, |p| p.get().min(8)),
            queue_capacity_interactive: 64,
            queue_capacity_batch: 256,
            steal: true,
            replication: ReplicationConfig::default(),
            dist_ranks: 0,
            cache_capacity: 128,
            cache_shards: 8,
            cache_ttl: Duration::from_secs(300),
            degrade_depth: 8,
            partition_store_capacity: 32,
            partition_compact_batches: 8,
            incremental: IncrementalConfig::default(),
            obs: Obs::disabled(),
            slo: None,
            blackbox_out: std::env::var_os("ASA_BLACKBOX_OUT").map(PathBuf::from),
        }
    }
}

/// Engine-wide metric handles. Built from the configured [`Obs`] when it
/// is enabled, or from a private enabled handle otherwise, so
/// [`ServeEngine::stats`] always has live numbers to read.
#[derive(Debug, Clone)]
struct Metrics {
    submitted: Counter,
    completed: Counter,
    shed: Counter,
    degraded_pressure: Counter,
    degraded_deadline: Counter,
    deadline_exceeded: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_expired: Counter,
    cache_evicted: Counter,
    steals: Counter,
    replications: Counter,
    dist_messages: Counter,
    dist_update_bytes: Counter,
    dist_supersteps: Counter,
    dist_cut_arcs: Counter,
    partition_hits: Counter,
    partition_misses: Counter,
    partition_evicted: Counter,
    update_incremental: Counter,
    update_fallback: Counter,
    update_cold: Counter,
    queue_depth: Gauge,
    partition_store: Gauge,
    /// Quality-guard fallbacks per 1000 warm updates, for SLO objectives
    /// over the fallback rate (gauges are integers, hence permille).
    update_fallback_permille: Gauge,
    latency_interactive_us: Hist,
    latency_batch_us: Hist,
}

impl Metrics {
    fn new(obs: &Obs) -> Self {
        Metrics {
            submitted: obs.counter("serve.submitted"),
            completed: obs.counter("serve.completed"),
            shed: obs.counter("serve.shed"),
            degraded_pressure: obs.counter("serve.degraded.pressure"),
            degraded_deadline: obs.counter("serve.degraded.deadline"),
            deadline_exceeded: obs.counter("serve.deadline_exceeded"),
            cache_hits: obs.counter("serve.cache.hits"),
            cache_misses: obs.counter("serve.cache.misses"),
            cache_expired: obs.counter("serve.cache.expired"),
            cache_evicted: obs.counter("serve.cache.evicted"),
            steals: obs.counter("serve.steals"),
            replications: obs.counter("serve.replications"),
            dist_messages: obs.counter("serve.dist.messages"),
            dist_update_bytes: obs.counter("serve.dist.update_bytes"),
            dist_supersteps: obs.counter("serve.dist.supersteps"),
            dist_cut_arcs: obs.counter("serve.dist.cut_arcs"),
            partition_hits: obs.counter("serve.partition.hits"),
            partition_misses: obs.counter("serve.partition.misses"),
            partition_evicted: obs.counter("serve.partition.evicted"),
            update_incremental: obs.counter("serve.update.incremental"),
            update_fallback: obs.counter("serve.update.fallback"),
            update_cold: obs.counter("serve.update.cold"),
            queue_depth: obs.gauge("serve.queue.depth"),
            partition_store: obs.gauge("serve.partition.store"),
            update_fallback_permille: obs.gauge("serve.update.fallback_permille"),
            latency_interactive_us: obs.hist("serve.latency_us.interactive"),
            latency_batch_us: obs.hist("serve.latency_us.batch"),
        }
    }

    fn latency(&self, priority: Priority) -> &Hist {
        match priority {
            Priority::Interactive => &self.latency_interactive_us,
            Priority::Batch => &self.latency_batch_us,
        }
    }
}

/// One engine shard: its queue plus the per-shard metric handles
/// (`serve.shard.N.*`; names interned once per shard index).
struct Shard {
    queue: JobQueue<Job>,
    /// Live incremental states of the update streams homed here. The
    /// store belongs to the shard (not the worker), so a stolen update
    /// job still reads and writes its routed shard's streams.
    store: PartitionStore,
    /// Interned `serve.shard.N.queue.depth`, doubling as the gauge name
    /// and the flight-recorder counter-track name for this shard.
    depth_name: &'static str,
    queue_depth: Gauge,
    partition_store: Gauge,
    executed_local: Counter,
    steals_in: Counter,
    steals_out: Counter,
    cache_hits: Counter,
    /// Cache hits on this shard while it was the graph's home shard.
    cache_hits_home: Counter,
    /// Cache hits on this shard while it served as a replica (routed
    /// here by round-robin over a hot graph's grown routing set).
    cache_hits_replica: Counter,
    /// Cache hits observed by a stolen job (executed off its routed
    /// shard; the hit still attributes to the routed shard's counter).
    cache_hits_stolen: Counter,
    shed: Counter,
    replicas_hosted: Counter,
}

impl Shard {
    fn new(i: usize, cfg: &ServeConfig, obs: &Obs, metrics: &Metrics) -> Self {
        let name = |suffix: &str| intern_name(&format!("serve.shard.{i}.{suffix}"));
        let depth_name = name("queue.depth");
        Shard {
            queue: JobQueue::new(cfg.queue_capacity_interactive, cfg.queue_capacity_batch),
            store: PartitionStore::with_counters(
                cfg.partition_store_capacity,
                metrics.partition_hits.clone(),
                metrics.partition_misses.clone(),
                metrics.partition_evicted.clone(),
            ),
            depth_name,
            queue_depth: obs.gauge(depth_name),
            partition_store: obs.gauge(name("partition.store")),
            executed_local: obs.counter(name("executed")),
            steals_in: obs.counter(name("steals_in")),
            steals_out: obs.counter(name("steals_out")),
            cache_hits: obs.counter(name("cache.hits")),
            cache_hits_home: obs.counter(name("cache.hits.home")),
            cache_hits_replica: obs.counter(name("cache.hits.replica")),
            cache_hits_stolen: obs.counter(name("cache.hits.stolen")),
            shed: obs.counter(name("shed")),
            replicas_hosted: obs.counter(name("replicas")),
        }
    }

    /// Records one cache hit on this (routed) shard with its affinity
    /// attribution. Exactly one of the three sub-counters moves per hit,
    /// so `cache_hits == home + replica + stolen` is a per-shard
    /// invariant.
    fn note_cache_hit(&self, home: bool, stolen: bool) {
        self.cache_hits.incr();
        if stolen {
            self.cache_hits_stolen.incr();
        } else if home {
            self.cache_hits_home.incr();
        } else {
            self.cache_hits_replica.incr();
        }
    }

    fn stats(&self, index: usize) -> ShardStats {
        ShardStats {
            shard: index,
            queue_depth_last: self.queue.depth() as u64,
            queue_depth_max: self.queue_depth.max(),
            executed_local: self.executed_local.value(),
            steals_in: self.steals_in.value(),
            steals_out: self.steals_out.value(),
            cache_hits: self.cache_hits.value(),
            cache_hits_home: self.cache_hits_home.value(),
            cache_hits_replica: self.cache_hits_replica.value(),
            cache_hits_stolen: self.cache_hits_stolen.value(),
            shed: self.shed.value(),
            replicas_hosted: self.replicas_hosted.value(),
        }
    }
}

/// Per-class latency summary inside [`EngineStats`], estimated from the
/// log-bucketed latency histogram via [`Hist::quantile`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyStats {
    /// Requests that resolved in this class.
    pub count: u64,
    /// Median latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
}

impl LatencyStats {
    fn from_hist(hist: &Hist) -> Self {
        LatencyStats {
            count: hist.count(),
            p50_us: hist.p50(),
            p95_us: hist.p95(),
            p99_us: hist.p99(),
        }
    }
}

/// Point-in-time engine statistics, readable at any moment: engine-wide
/// aggregates plus one [`ShardStats`] per shard.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Requests submitted (including shed ones).
    pub submitted: u64,
    /// Requests resolved with a result (`Ok` or `Degraded`).
    pub completed: u64,
    /// Requests rejected at admission (`Overloaded`).
    pub shed: u64,
    /// Results degraded by the load-pressure ladder.
    pub degraded_pressure: u64,
    /// Results degraded by a mid-run deadline expiry.
    pub degraded_deadline: u64,
    /// Requests that expired before any work ran.
    pub deadline_exceeded: u64,
    /// Requests answered from the cache.
    pub cache_hits: u64,
    /// Requests that had to run Infomap.
    pub cache_misses: u64,
    /// Cache entries dropped because their TTL elapsed.
    pub cache_expired: u64,
    /// Live cache entries evicted by LRU capacity pressure.
    pub cache_evicted: u64,
    /// Batch jobs stolen by idle shards from foreign backlogs.
    pub steals: u64,
    /// Routing-set growth events (a hot graph gaining a replica shard).
    pub replications: u64,
    /// Label-update messages the distributed engine would have sent
    /// (0 unless [`ServeConfig::dist_ranks`] ≥ 1).
    pub dist_messages: u64,
    /// Bytes in those label-update messages.
    pub dist_update_bytes: u64,
    /// Distributed supersteps executed across all requests.
    pub dist_supersteps: u64,
    /// Cut arcs across rank layouts built by distributed runs.
    pub dist_cut_arcs: u64,
    /// Update-stream lookups that found live incremental state.
    pub partition_hits: u64,
    /// Update-stream lookups that found none (cold seeds).
    pub partition_misses: u64,
    /// Live streams evicted from partition stores by LRU pressure.
    pub partition_evicted: u64,
    /// Live streams across every shard's partition store when the stats
    /// were read.
    pub partition_live: u64,
    /// Warm updates answered by the frontier-restricted incremental pass.
    pub update_incremental: u64,
    /// Warm updates the quality guard forced to a full multilevel run.
    pub update_fallback: u64,
    /// Updates that had to seed stream state with a cold full run.
    pub update_cold: u64,
    /// Total queue depth (all shards) when the stats were read.
    pub queue_depth_last: u64,
    /// Highest *total* queue depth ever observed at a submit.
    pub queue_depth_max: u64,
    /// Interactive-class latency summary.
    pub latency_interactive: LatencyStats,
    /// Batch-class latency summary.
    pub latency_batch: LatencyStats,
    /// Per-shard breakdown, indexed by shard.
    pub shards: Vec<ShardStats>,
}

impl EngineStats {
    /// Cache hit rate over resolved lookups, 0 when nothing resolved.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of submissions rejected at admission.
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.shed as f64 / self.submitted as f64
        }
    }
}

/// One queued unit of work.
struct Job {
    request: Request,
    key: CacheKey,
    slot: Arc<ResponseSlot>,
    submitted: Instant,
    deadline: Option<Instant>,
    /// Shard the router assigned (the queue this job was pushed to).
    shard: usize,
    /// The graph's home shard (`fingerprint % shards`); differs from
    /// `shard` exactly when routing picked a replica. Drives the
    /// cache-hit affinity attribution.
    home: usize,
    /// Flight-recorder id minted at admission; [`TraceId::NONE`] when the
    /// configured [`Obs`] has no recorder attached (every trace call is
    /// then a no-op).
    trace: TraceId,
}

struct Shared {
    cfg: ServeConfig,
    router: Router,
    shards: Vec<Shard>,
    /// One process-wide cache shared by every shard: a replicated hot
    /// graph never recomputes a result another shard already answered.
    cache: ResultCache,
    metrics: Metrics,
    /// One-shot black-box drill: the next dequeued job panics its worker
    /// before taking any lock, exercising the panic-hook bundle path.
    /// Armed only by [`ServeEngine::inject_panic`] (tests/CI).
    panic_drill: AtomicBool,
}

impl Shared {
    fn total_depth(&self) -> usize {
        self.shards.iter().map(|s| s.queue.depth()).sum()
    }

    /// Updates the per-shard and engine-wide depth telemetry after a
    /// push/pop/steal touched `shard`'s queue.
    fn note_depth(&self, shard: usize) {
        let s = &self.shards[shard];
        let depth = s.queue.depth();
        s.queue_depth.set(depth as u64);
        self.cfg.obs.trace_counter(s.depth_name, depth as i64);
        let total = self.total_depth();
        self.metrics.queue_depth.set(total as u64);
        self.cfg
            .obs
            .trace_counter("serve.queue.depth", total as i64);
    }

    /// Updates the per-shard and engine-wide partition-store gauges after
    /// `shard`'s store gained or evicted a stream.
    fn note_partitions(&self, shard: usize) {
        let s = &self.shards[shard];
        s.partition_store.set(s.store.len() as u64);
        let total: usize = self.shards.iter().map(|s| s.store.len()).sum();
        self.metrics.partition_store.set(total as u64);
        self.cfg
            .obs
            .trace_counter("serve.partition.store", total as i64);
    }
}

/// The in-process community-detection service. See the module docs.
///
/// ```
/// use std::sync::Arc;
/// use asa_graph::GraphBuilder;
/// use asa_serve::{Outcome, Request, ServeConfig, ServeEngine};
///
/// let mut b = GraphBuilder::undirected(6);
/// for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
///     b.add_edge(u, v, 1.0);
/// }
/// let graph = Arc::new(b.build());
///
/// let engine = ServeEngine::start(ServeConfig::default());
/// let response = engine.submit(Request::interactive(Arc::clone(&graph))).wait();
/// let result = response.outcome.result().expect("full-quality result");
/// assert_eq!(result.num_communities(), 2);
///
/// // Same graph + config again: served from the shared cache.
/// let again = engine.submit(Request::interactive(graph)).wait();
/// assert!(again.cache_hit);
/// let stats = engine.shutdown();
/// assert_eq!(stats.cache_hits, 1);
/// ```
pub struct ServeEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// The SLO health engine, shared with the collector's tick observer.
    /// The observer holds its own `Arc` (never an `Obs` clone — that
    /// would cycle the obs registry back to itself through the store).
    slo: Option<Arc<Mutex<SloEngine>>>,
    /// Black-box section registrations (`serve.shards`, `serve.slo`);
    /// dropping the engine unregisters them from the process-global
    /// bundle table.
    _sections: Vec<SectionGuard>,
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("shards", &self.shared.shards.len())
            .field("workers", &self.workers.len())
            .field("queue_depth", &self.shared.total_depth())
            .finish()
    }
}

impl ServeEngine {
    /// Starts every shard's worker set and returns the running engine.
    pub fn start(mut cfg: ServeConfig) -> Self {
        cfg.shards = cfg.shards.max(1);
        let metrics_obs = if cfg.obs.enabled() {
            cfg.obs.clone()
        } else {
            // Private registry so `stats()` works without telemetry wiring.
            Obs::new_enabled()
        };
        let metrics = Metrics::new(&metrics_obs);
        // SLO health engine: evaluated after every collector tick via a
        // store observer. The closure captures the engine Arc, the
        // health gauge, and the recorder resolved *now* — attach the
        // flight recorder before `start` if transition instants are
        // wanted — but never the Obs handle itself (cycle avoidance).
        let slo = cfg.slo.clone().map(|slo_cfg| {
            let engine = Arc::new(Mutex::new(SloEngine::new(slo_cfg)));
            let health_gauge = metrics_obs.gauge("serve.health");
            let recorder = metrics_obs.recorder();
            if let Some(store) = metrics_obs.timeseries() {
                let eng = Arc::clone(&engine);
                store.add_observer(Box::new(move |store| {
                    let state = eng.lock().unwrap().evaluate(store, recorder.as_deref());
                    health_gauge.set(state.as_gauge());
                }));
            }
            engine
        });
        let shards = (0..cfg.shards)
            .map(|i| Shard::new(i, &cfg, &metrics_obs, &metrics))
            .collect();
        let shared = Arc::new(Shared {
            router: Router::new(cfg.shards, cfg.replication.clone()),
            shards,
            cache: ResultCache::with_counters(
                cfg.cache_capacity,
                cfg.cache_shards,
                cfg.cache_ttl,
                metrics.cache_expired.clone(),
                metrics.cache_evicted.clone(),
            ),
            metrics,
            cfg,
            panic_drill: AtomicBool::new(false),
        });
        // Black-box wiring. Section closures capture a `Weak<Shared>` (a
        // dead engine renders `null`, never keeps shards alive) and the
        // SLO engine Arc — never an `Obs` clone, which would cycle the
        // registry through the process-global section table.
        let mut sections = Vec::new();
        if shared.cfg.obs.enabled() {
            let weak: Weak<Shared> = Arc::downgrade(&shared);
            sections.push(blackbox::register_section("serve.shards", move || {
                render_shards_section(&weak)
            }));
            let slo = slo.clone();
            sections.push(blackbox::register_section("serve.slo", move || {
                render_slo_section(slo.as_deref())
            }));
        }
        if let Some(path) = &shared.cfg.blackbox_out {
            if shared.cfg.obs.enabled() {
                blackbox::install_panic_hook(&shared.cfg.obs, path);
            }
        }
        let workers = (0..shared.cfg.shards)
            .flat_map(|shard| (0..shared.cfg.workers.max(1)).map(move |w| (shard, w)))
            .map(|(shard, w)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("asa-serve-{shard}-{w}"))
                    .spawn(move || worker_loop(&shared, shard))
                    .expect("spawn serve worker")
            })
            .collect();
        ServeEngine {
            shared,
            workers,
            slo,
            _sections: sections,
        }
    }

    /// Arms the one-shot black-box drill: the next job any worker
    /// dequeues panics before touching a lock, exercising the panic hook
    /// installed for [`ServeConfig::blackbox_out`]. Test/CI plumbing —
    /// not part of the serving API.
    #[doc(hidden)]
    pub fn inject_panic(&self) {
        self.shared.panic_drill.store(true, Ordering::Relaxed);
    }

    /// Submits a request. Never blocks: cache hits and admission
    /// rejections resolve the handle before this returns; everything else
    /// resolves when a worker finishes the job. Every submission
    /// terminates in exactly one [`Outcome`].
    ///
    /// When the configured [`Obs`] carries a flight recorder, a
    /// [`TraceId`] is minted here and threaded through every lifecycle
    /// stage as async trace events (`request` envelope, `cache_probe`,
    /// `queue`, `dispatch`, `execute`, `respond`); the id comes back in
    /// [`Response::trace_id`].
    pub fn submit(&self, request: Request) -> JobHandle {
        let m = &self.shared.metrics;
        let obs = &self.shared.cfg.obs;
        m.submitted.incr();
        let submitted = Instant::now();
        let slot = Arc::new(ResponseSlot::default());
        let handle = JobHandle {
            slot: Arc::clone(&slot),
        };
        let fingerprint = request.graph.fingerprint();
        let key = (fingerprint, config_hash(&request.config));
        let trace = obs.mint_trace_id();
        obs.trace_async_begin(trace, "request", "request");

        // Update streams route by chain anchor (the base fingerprint all
        // versions of the stream share) straight to the home shard — the
        // stream's live state resides there, so replication would only
        // scatter it. For updates `key` is the *stream* key; the result
        // cache is probed in `run_update` under the per-version chain
        // fingerprint, which is unknowable before the stream state is
        // consulted.
        let is_update = matches!(request.kind, RequestKind::Update(_));
        let routed = if is_update {
            let home = self.shared.router.home(fingerprint);
            RouteDecision {
                shard: home,
                home,
                replicas: 1,
                replicated_now: false,
            }
        } else {
            self.shared.router.route(fingerprint)
        };
        if routed.replicated_now {
            m.replications.incr();
            // The replica just added is the newest member of the routing
            // set: `home + (replicas - 1)`, wrapping.
            let grown = (routed.home + routed.replicas as usize - 1) % self.shared.shards.len();
            self.shared.shards[grown].replicas_hosted.incr();
            obs.trace_instant("serve.shard.replicate", "serve");
        }
        let shard = &self.shared.shards[routed.shard];

        // Admission-time cache check: hits never consume queue capacity.
        // The cache is engine-wide, so a hit lands no matter which shard
        // computed the entry.
        let admission_hit = if is_update {
            None
        } else {
            obs.trace_async_begin(trace, "cache_probe", "request");
            let hit = self.shared.cache.get(&key);
            obs.trace_async_end(trace, "cache_probe", "request");
            hit
        };
        if let Some(hit) = admission_hit {
            m.cache_hits.incr();
            shard.note_cache_hit(routed.shard == routed.home, false);
            m.completed.incr();
            let total = submitted.elapsed();
            m.latency(request.priority).record(total.as_micros() as u64);
            slot.fill(Response {
                outcome: Outcome::Ok(hit),
                queued: Duration::ZERO,
                service: Duration::ZERO,
                total,
                cache_hit: true,
                trace_id: trace.0,
                shard: routed.shard,
                stolen: false,
                update: None,
            });
            obs.trace_async_end(trace, "request", "request");
            return handle;
        }

        let priority = request.priority;
        let deadline = request.deadline.map(|d| submitted + d);
        let job = Job {
            request,
            key,
            slot,
            submitted,
            deadline,
            shard: routed.shard,
            home: routed.home,
            trace,
        };
        obs.trace_async_begin(trace, "queue", "request");
        match shard.queue.push(priority, job) {
            Ok(_) => self.shared.note_depth(routed.shard),
            Err(PushError::Full(job) | PushError::Closed(job)) => {
                m.shed.incr();
                shard.shed.incr();
                obs.trace_async_end(trace, "queue", "request");
                job.slot.fill(Response {
                    outcome: Outcome::Overloaded,
                    queued: Duration::ZERO,
                    service: Duration::ZERO,
                    total: submitted.elapsed(),
                    cache_hit: false,
                    trace_id: trace.0,
                    shard: routed.shard,
                    stolen: false,
                    update: None,
                });
                obs.trace_async_end(trace, "request", "request");
            }
        }
        handle
    }

    /// Current total queue depth across every shard (both classes).
    pub fn queue_depth(&self) -> usize {
        self.shared.total_depth()
    }

    /// Current per-shard queue depths, indexed by shard.
    pub fn shard_depths(&self) -> Vec<usize> {
        self.shared.shards.iter().map(|s| s.queue.depth()).collect()
    }

    /// Live engine statistics: engine-wide aggregates plus the per-shard
    /// breakdown.
    pub fn stats(&self) -> EngineStats {
        let m = &self.shared.metrics;
        EngineStats {
            submitted: m.submitted.value(),
            completed: m.completed.value(),
            shed: m.shed.value(),
            degraded_pressure: m.degraded_pressure.value(),
            degraded_deadline: m.degraded_deadline.value(),
            deadline_exceeded: m.deadline_exceeded.value(),
            cache_hits: m.cache_hits.value(),
            cache_misses: m.cache_misses.value(),
            cache_expired: m.cache_expired.value(),
            cache_evicted: m.cache_evicted.value(),
            steals: m.steals.value(),
            replications: m.replications.value(),
            dist_messages: m.dist_messages.value(),
            dist_update_bytes: m.dist_update_bytes.value(),
            dist_supersteps: m.dist_supersteps.value(),
            dist_cut_arcs: m.dist_cut_arcs.value(),
            partition_hits: m.partition_hits.value(),
            partition_misses: m.partition_misses.value(),
            partition_evicted: m.partition_evicted.value(),
            partition_live: self
                .shared
                .shards
                .iter()
                .map(|s| s.store.len() as u64)
                .sum(),
            update_incremental: m.update_incremental.value(),
            update_fallback: m.update_fallback.value(),
            update_cold: m.update_cold.value(),
            queue_depth_last: self.shared.total_depth() as u64,
            queue_depth_max: m.queue_depth.max(),
            latency_interactive: LatencyStats::from_hist(&m.latency_interactive_us),
            latency_batch: LatencyStats::from_hist(&m.latency_batch_us),
            shards: self
                .shared
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| s.stats(i))
                .collect(),
        }
    }

    /// Current overall SLO health; [`HealthState::Healthy`] when no SLO
    /// configuration was given (nothing can burn).
    pub fn health(&self) -> HealthState {
        self.slo
            .as_ref()
            .map_or(HealthState::Healthy, |s| s.lock().unwrap().state())
    }

    /// The human-readable SLO health report (overall state, per-objective
    /// status, transition history); `None` without an SLO configuration.
    pub fn slo_report(&self) -> Option<String> {
        self.slo.as_ref().map(|s| s.lock().unwrap().report())
    }

    /// Graceful shutdown: stops admission on every shard, drains every
    /// queued job (each still resolves normally), joins the workers,
    /// prints the SLO health report (when objectives were configured),
    /// and returns the final statistics.
    pub fn shutdown(mut self) -> EngineStats {
        for shard in &self.shared.shards {
            shard.queue.close();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(report) = self.slo_report() {
            eprintln!("{report}");
        }
        // Final black-box bundle: everything drained and joined, so the
        // flight recorder, queues and stores are quiescent. The panic
        // hook is disarmed afterwards — the engine it pointed at is gone.
        if let Some(path) = &self.shared.cfg.blackbox_out {
            if self.shared.cfg.obs.enabled() {
                if let Err(e) = blackbox::write_bundle(path, &self.shared.cfg.obs, "shutdown") {
                    eprintln!("serve: black-box bundle write failed: {e}");
                }
                blackbox::clear_panic_hook();
            }
        }
        self.stats()
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        for shard in &self.shared.shards {
            shard.queue.close();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// The degradation ladder. Rung 0 is the requested configuration; rung 1
/// drops refinement (`outer_loops = 1`); rung 2 additionally halves the
/// sweep budget. Levels are untouched — coarsening is what makes large
/// graphs tractable at all.
fn degraded_config(cfg: &InfomapConfig, rung: u8) -> InfomapConfig {
    let mut out = cfg.clone();
    if rung >= 1 {
        out.outer_loops = 1;
    }
    if rung >= 2 {
        out.max_sweeps = (cfg.max_sweeps / 2).max(2);
    }
    out
}

/// `HealthState` as the lowercase token used in black-box sections.
fn health_name(state: HealthState) -> &'static str {
    match state {
        HealthState::Healthy => "healthy",
        HealthState::Degraded => "degraded",
        HealthState::Critical => "critical",
    }
}

/// Minimal JSON string escaping for the static names embedded in
/// black-box sections.
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// `serve.shards` black-box section: per-shard queue depth and
/// partition-store occupancy at dump time. Renders `null` once the engine
/// is gone (the closure only holds a `Weak`).
fn render_shards_section(shared: &Weak<Shared>) -> String {
    use std::fmt::Write as _;
    let Some(shared) = shared.upgrade() else {
        return "null".to_string();
    };
    let mut out = String::from("[");
    for (i, s) in shared.shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"shard\":{i},\"queue_depth\":{},\"queue_depth_max\":{},\"store\":{},\
             \"executed\":{},\"shed\":{}}}",
            s.queue.depth(),
            s.queue_depth.max(),
            s.store.len(),
            s.executed_local.value(),
            s.shed.value(),
        );
    }
    out.push(']');
    out
}

/// `serve.slo` black-box section: overall health, per-objective states
/// and the transition history. Uses `try_lock` — a panicking evaluator
/// thread must never deadlock its own hook — and recovers a poisoned
/// engine (the state is plain data, still worth dumping).
fn render_slo_section(slo: Option<&Mutex<SloEngine>>) -> String {
    use std::fmt::Write as _;
    let Some(slo) = slo else {
        return "null".to_string();
    };
    let eng = match slo.try_lock() {
        Ok(g) => g,
        Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
        Err(std::sync::TryLockError::WouldBlock) => return "\"unavailable\"".to_string(),
    };
    let mut out = String::new();
    let _ = write!(out, "{{\"state\":\"{}\"", health_name(eng.state()));
    out.push_str(",\"objectives\":[");
    for (i, (name, state)) in eng.objective_states().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"state\":\"{}\"}}",
            json_escape(name),
            health_name(*state),
        );
    }
    out.push_str("],\"transitions\":[");
    for (i, tr) in eng.transitions().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"t_us\":{},\"from\":\"{}\",\"to\":\"{}\"}}",
            tr.t_us,
            health_name(tr.from),
            health_name(tr.to),
        );
    }
    out.push_str("]}");
    out
}

/// Picks the deepest foreign batch backlog and steals its oldest job.
/// Returns `None` when no shard has stealable work.
fn steal_one(shared: &Shared, thief: usize) -> Option<Job> {
    let victim = shared
        .shards
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != thief)
        .map(|(i, s)| (i, s.queue.batch_depth()))
        .filter(|&(_, depth)| depth > 0)
        .max_by_key(|&(_, depth)| depth)?
        .0;
    let job = shared.shards[victim].queue.steal_batch()?;
    shared.metrics.steals.incr();
    shared.shards[thief].steals_in.incr();
    shared.shards[victim].steals_out.incr();
    shared.cfg.obs.trace_instant("serve.steal", "serve");
    shared.note_depth(victim);
    Some(job)
}

fn worker_loop(shared: &Shared, me: usize) {
    let steal = shared.cfg.steal && shared.cfg.shards > 1;
    loop {
        match shared.shards[me].queue.pop_wait(STEAL_POLL) {
            Popped::Item(priority, job) => {
                shared.note_depth(me);
                shared.shards[me].executed_local.incr();
                run_job(shared, me, priority, job, false);
            }
            Popped::Empty => {
                if steal {
                    if let Some(job) = steal_one(shared, me) {
                        run_job(shared, me, Priority::Batch, job, true);
                    }
                }
            }
            Popped::Closed => break,
        }
    }
    // Shutdown drain: this shard's queue is closed and empty, but foreign
    // backlogs may still hold batch work — keep stealing until every
    // stealable job is gone so shutdown resolves all admitted work even
    // when a shard has more backlog than its own workers can clear.
    // (Queues are all closed by now, so emptiness is permanent.)
    if steal {
        while let Some(job) = steal_one(shared, me) {
            run_job(shared, me, Priority::Batch, job, true);
        }
    }
}

/// Runs one dequeued (or stolen) job to its terminal outcome. `me` is the
/// executing shard; `job.shard` is the routed one (they differ exactly
/// when `stolen`).
fn run_job(shared: &Shared, me: usize, priority: Priority, job: Job, stolen: bool) {
    // Black-box drill: fire before any lock or trace state is held, so
    // the panic hook renders the bundle from a clean worker stack.
    if shared.panic_drill.swap(false, Ordering::Relaxed) {
        panic!("blackbox drill: injected worker panic");
    }
    if matches!(job.request.kind, RequestKind::Update(_)) {
        return run_update(shared, me, priority, job, stolen);
    }
    let m = &shared.metrics;
    let obs = &shared.cfg.obs;
    let trace = job.trace;
    // The queue stage spans push (submitter thread) to pop (here);
    // async events pair across threads by (name, id).
    obs.trace_async_end(trace, "queue", "request");
    obs.trace_async_begin(trace, "dispatch", "request");
    // Spans and instants recorded on this thread while the job runs
    // (degradation rungs, infomap levels/sweeps) attribute to it.
    let _scope = obs.trace_scope(trace);
    // Pressure is judged where the job waited: its routed shard's queue.
    let depth = shared.shards[job.shard].queue.depth();
    let dequeued = Instant::now();
    let queued = dequeued - job.submitted;

    // Expired while queued: no work, no partial result.
    if job.deadline.is_some_and(|d| dequeued >= d) {
        m.deadline_exceeded.incr();
        m.latency(priority).record(queued.as_micros() as u64);
        obs.trace_async_end(trace, "dispatch", "request");
        job.slot.fill(Response {
            outcome: Outcome::DeadlineExceeded,
            queued,
            service: Duration::ZERO,
            total: queued,
            cache_hit: false,
            trace_id: trace.0,
            shard: if stolen { me } else { job.shard },
            stolen,
            update: None,
        });
        obs.trace_async_end(trace, "request", "request");
        return;
    }

    // A hit may have landed while this job waited — possibly filled by a
    // different shard, since the cache is engine-wide.
    if let Some(hit) = shared.cache.get(&job.key) {
        m.cache_hits.incr();
        shared.shards[job.shard].note_cache_hit(job.shard == job.home, stolen);
        m.completed.incr();
        let total = job.submitted.elapsed();
        m.latency(priority).record(total.as_micros() as u64);
        obs.trace_async_end(trace, "dispatch", "request");
        job.slot.fill(Response {
            outcome: Outcome::Ok(hit),
            queued,
            service: Duration::ZERO,
            total,
            cache_hit: true,
            trace_id: trace.0,
            shard: if stolen { me } else { job.shard },
            stolen,
            update: None,
        });
        obs.trace_async_end(trace, "request", "request");
        return;
    }
    m.cache_misses.incr();

    // Degradation ladder, batch class only.
    let rung = if priority == Priority::Batch && shared.cfg.degrade_depth > 0 {
        if depth >= shared.cfg.degrade_depth * 2 {
            2
        } else if depth >= shared.cfg.degrade_depth {
            1
        } else {
            0
        }
    } else {
        0
    };
    let effective = if rung > 0 {
        m.degraded_pressure.incr();
        obs.trace_instant(
            if rung == 1 {
                "serve.degrade.rung1"
            } else {
                "serve.degrade.rung2"
            },
            "serve",
        );
        degraded_config(&job.request.config, rung)
    } else {
        job.request.config.clone()
    };
    let cancel = match job.deadline {
        Some(d) => CancelToken::with_deadline(d),
        None => CancelToken::none(),
    };

    // Per-request runs stay off the metric/sink path by default:
    // per-sweep record streams from concurrent requests would
    // interleave uselessly and dominate the serving telemetry. With a
    // flight recorder attached, though, the run gets the real handle
    // so its level/sweep spans land on this worker's trace track
    // tagged with the request id (the `_scope` above).
    let run_obs = if obs.trace_enabled() {
        obs.clone()
    } else {
        Obs::disabled()
    };
    obs.trace_async_end(trace, "dispatch", "request");
    obs.trace_async_begin(trace, "execute", "request");
    let t = Instant::now();
    let result = if shared.cfg.dist_ranks >= 1 {
        let (result, comm) = detect_communities_distributed_cancellable(
            &job.request.graph,
            &effective,
            shared.cfg.dist_ranks,
            &run_obs,
            &cancel,
        );
        m.dist_messages.add(comm.messages);
        m.dist_update_bytes.add(comm.update_bytes);
        m.dist_supersteps.add(comm.supersteps as u64);
        m.dist_cut_arcs.add(comm.cut_arcs);
        result
    } else {
        detect_communities_cancellable(&job.request.graph, &effective, &run_obs, &cancel)
    };
    let service = t.elapsed();
    obs.trace_async_end(trace, "execute", "request");
    obs.trace_async_begin(trace, "respond", "request");
    let interrupted = result.interrupted;
    if interrupted {
        m.degraded_deadline.incr();
    }
    let result: Arc<InfomapResult> = Arc::new(result);

    // Only cache what a fresh full-quality run would have produced.
    if !interrupted && rung == 0 {
        shared.cache.insert(job.key, Arc::clone(&result));
    }

    let outcome = if interrupted {
        Outcome::Degraded {
            result,
            reason: DegradeReason::Deadline,
        }
    } else if rung > 0 {
        Outcome::Degraded {
            result,
            reason: DegradeReason::LoadPressure,
        }
    } else {
        Outcome::Ok(result)
    };
    m.completed.incr();
    let total = job.submitted.elapsed();
    m.latency(priority).record(total.as_micros() as u64);
    job.slot.fill(Response {
        outcome,
        queued,
        service,
        total,
        cache_hit: false,
        trace_id: trace.0,
        shard: if stolen { me } else { job.shard },
        stolen,
        update: None,
    });
    obs.trace_async_end(trace, "respond", "request");
    obs.trace_async_end(trace, "request", "request");
}

/// Runs one dequeued (or stolen) streaming-update job to its terminal
/// outcome. The stream's state lives on the *routed* shard's partition
/// store (`job.shard`), so a stolen job still operates on the right
/// stream; concurrent updates to one stream serialize on the state's
/// mutex and fold in submission-arrival order.
fn run_update(shared: &Shared, me: usize, priority: Priority, job: Job, stolen: bool) {
    let m = &shared.metrics;
    let obs = &shared.cfg.obs;
    let trace = job.trace;
    obs.trace_async_end(trace, "queue", "request");
    obs.trace_async_begin(trace, "dispatch", "request");
    let _scope = obs.trace_scope(trace);
    let dequeued = Instant::now();
    let queued = dequeued - job.submitted;
    let shard = if stolen { me } else { job.shard };

    if job.deadline.is_some_and(|d| dequeued >= d) {
        m.deadline_exceeded.incr();
        m.latency(priority).record(queued.as_micros() as u64);
        obs.trace_async_end(trace, "dispatch", "request");
        job.slot.fill(Response {
            outcome: Outcome::DeadlineExceeded,
            queued,
            service: Duration::ZERO,
            total: queued,
            cache_hit: false,
            trace_id: trace.0,
            shard,
            stolen,
            update: None,
        });
        obs.trace_async_end(trace, "request", "request");
        return;
    }

    let RequestKind::Update(ref delta) = job.request.kind else {
        unreachable!("run_update dispatches on RequestKind::Update");
    };
    let cancel = match job.deadline {
        Some(d) => CancelToken::with_deadline(d),
        None => CancelToken::none(),
    };
    let run_obs = if obs.trace_enabled() {
        obs.clone()
    } else {
        Obs::disabled()
    };
    obs.trace_async_end(trace, "dispatch", "request");
    obs.trace_async_begin(trace, "execute", "request");
    let t = Instant::now();

    // The stream's live state, seeded with a full run on first contact
    // (or after an eviction / config change).
    let store = &shared.shards[job.shard].store;
    let (state_arc, cold) = match store.get(job.key) {
        Some(state) => (state, false),
        None => {
            m.update_cold.incr();
            let (state, _) = IncrementalState::new(
                Arc::clone(&job.request.graph),
                job.request.config.clone(),
                shared.cfg.incremental.clone(),
                &run_obs,
                &cancel,
            );
            let state = Arc::new(Mutex::new(state));
            store.insert(job.key, Arc::clone(&state));
            (state, true)
        }
    };
    shared.note_partitions(job.shard);

    let mut state = state_arc.lock().unwrap();
    let chain = state.fingerprint_after(delta);
    let cache_key = (chain, job.key.1);

    // A net no-op delta (empty, or edits cancelling the pending overlay)
    // leaves the chain head in place, so the shared result cache may
    // already hold this exact version+config — serve it without running.
    // Chain-advancing deltas always run: the stream state must advance
    // with them.
    if chain == state.chain_fingerprint() {
        if let Some(hit) = shared.cache.get(&cache_key) {
            drop(state);
            m.cache_hits.incr();
            shared.shards[job.shard].note_cache_hit(job.shard == job.home, stolen);
            m.completed.incr();
            let total = job.submitted.elapsed();
            m.latency(priority).record(total.as_micros() as u64);
            obs.trace_async_end(trace, "execute", "request");
            job.slot.fill(Response {
                outcome: Outcome::Ok(hit),
                queued,
                service: t.elapsed(),
                total,
                cache_hit: true,
                trace_id: trace.0,
                shard,
                stolen,
                update: Some(UpdateInfo {
                    incremental: !cold,
                    fallback: None,
                    cold,
                    frontier_size: 0,
                    ripple_rounds: 0,
                    chain_fingerprint: chain,
                }),
            });
            obs.trace_async_end(trace, "request", "request");
            return;
        }
    }
    m.cache_misses.incr();

    let IncrementalOutcome {
        result,
        fallback,
        frontier_size,
        ripple_rounds,
        chain_fingerprint,
    } = state.apply(delta, &run_obs, &cancel);
    debug_assert_eq!(chain_fingerprint, chain);
    if state.graph().batches_since_compact() > shared.cfg.partition_compact_batches {
        state.compact();
    }
    drop(state);
    let service = t.elapsed();
    obs.trace_async_end(trace, "execute", "request");
    obs.trace_async_begin(trace, "respond", "request");

    // Warm updates feed the fallback-rate telemetry (cold seeds are full
    // runs by construction, not guard decisions).
    if !cold {
        if fallback.is_none() {
            m.update_incremental.incr();
        } else {
            m.update_fallback.incr();
        }
        let warm = m.update_incremental.value() + m.update_fallback.value();
        m.update_fallback_permille
            .set(m.update_fallback.value() * 1000 / warm.max(1));
    }

    let interrupted = result.interrupted;
    if interrupted {
        m.degraded_deadline.incr();
    }
    let result: Arc<InfomapResult> = Arc::new(result);
    // Cache under the *chain* fingerprint: server-side compaction rebases
    // the overlay without moving the chain, so warm entries survive it.
    if !interrupted {
        shared.cache.insert(cache_key, Arc::clone(&result));
    }
    let outcome = if interrupted {
        Outcome::Degraded {
            result,
            reason: DegradeReason::Deadline,
        }
    } else {
        Outcome::Ok(result)
    };
    m.completed.incr();
    let total = job.submitted.elapsed();
    m.latency(priority).record(total.as_micros() as u64);
    job.slot.fill(Response {
        outcome,
        queued,
        service,
        total,
        cache_hit: false,
        trace_id: trace.0,
        shard,
        stolen,
        update: Some(UpdateInfo {
            incremental: !cold && fallback.is_none(),
            fallback,
            cold,
            frontier_size,
            ripple_rounds,
            chain_fingerprint,
        }),
    });
    obs.trace_async_end(trace, "respond", "request");
    obs.trace_async_end(trace, "request", "request");
}

#[cfg(test)]
mod tests {
    use super::*;
    use asa_graph::{CsrGraph, GraphBuilder};

    fn two_triangles() -> Arc<CsrGraph> {
        let mut b = GraphBuilder::undirected(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            b.add_edge(u, v, 1.0);
        }
        Arc::new(b.build())
    }

    #[test]
    fn ok_result_and_cache_hit() {
        let engine = ServeEngine::start(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let graph = two_triangles();
        let first = engine
            .submit(Request::interactive(Arc::clone(&graph)))
            .wait();
        assert!(!first.cache_hit);
        let r1 = first.outcome.result().expect("ok").clone();
        assert_eq!(r1.num_communities(), 2);

        let second = engine.submit(Request::batch(Arc::clone(&graph))).wait();
        assert!(second.cache_hit, "same graph+config must hit the cache");
        assert!(Arc::ptr_eq(second.outcome.result().unwrap(), &r1));

        // A different config is a different key.
        let other_cfg = InfomapConfig {
            outer_loops: 1,
            ..InfomapConfig::default()
        };
        let third = engine
            .submit(Request::interactive(graph).with_config(other_cfg))
            .wait();
        assert!(!third.cache_hit);

        let stats = engine.shutdown();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 2);
        assert!(stats.latency_interactive.count >= 2);
    }

    #[test]
    fn zero_queue_capacity_sheds() {
        let engine = ServeEngine::start(ServeConfig {
            workers: 1,
            queue_capacity_interactive: 0,
            queue_capacity_batch: 0,
            cache_capacity: 0,
            ..ServeConfig::default()
        });
        let response = engine.submit(Request::interactive(two_triangles())).wait();
        assert!(matches!(response.outcome, Outcome::Overloaded));
        let stats = engine.shutdown();
        assert_eq!(stats.shed, 1);
        assert!((stats.shed_rate() - 1.0).abs() < 1e-12);
        let per_shard: u64 = stats.shards.iter().map(|s| s.shed).sum();
        assert_eq!(per_shard, 1, "the shed attributes to the routed shard");
    }

    #[test]
    fn expired_deadline_resolves_without_running() {
        let engine = ServeEngine::start(ServeConfig {
            workers: 1,
            cache_capacity: 0,
            ..ServeConfig::default()
        });
        let response = engine
            .submit(Request::batch(two_triangles()).with_deadline(Duration::ZERO))
            .wait();
        assert!(matches!(response.outcome, Outcome::DeadlineExceeded));
        assert_eq!(response.service, Duration::ZERO);
        let stats = engine.shutdown();
        assert_eq!(stats.deadline_exceeded, 1);
    }

    #[test]
    fn degraded_config_ladder() {
        let cfg = InfomapConfig::default();
        let r1 = degraded_config(&cfg, 1);
        assert_eq!(r1.outer_loops, 1);
        assert_eq!(r1.max_sweeps, cfg.max_sweeps);
        let r2 = degraded_config(&cfg, 2);
        assert_eq!(r2.outer_loops, 1);
        assert_eq!(r2.max_sweeps, cfg.max_sweeps / 2);
        assert_eq!(degraded_config(&cfg, 0).max_sweeps, cfg.max_sweeps);
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let engine = ServeEngine::start(ServeConfig {
            workers: 1,
            cache_capacity: 0,
            ..ServeConfig::default()
        });
        let graph = two_triangles();
        let handles: Vec<_> = (0..16)
            .map(|_| engine.submit(Request::batch(Arc::clone(&graph))))
            .collect();
        let stats = engine.shutdown();
        for h in handles {
            let response = h.try_get().expect("resolved by shutdown");
            assert!(response.outcome.result().is_some());
        }
        assert_eq!(stats.completed, 16);
    }

    /// Six 4-cliques in a ring, weakly linked through their base
    /// vertices: big enough that an intra-clique edit stays well inside
    /// the incremental path's frontier budget.
    fn clique_chain() -> Arc<CsrGraph> {
        let mut b = GraphBuilder::undirected(24);
        for c in 0..6u32 {
            let base = c * 4;
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_edge(base + i, base + j, 8.0);
                }
            }
            b.add_edge(base, ((c + 1) % 6) * 4, 0.1);
        }
        Arc::new(b.build())
    }

    #[test]
    fn update_stream_cold_then_incremental() {
        let engine = ServeEngine::start(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let graph = clique_chain();

        let mut d1 = asa_graph::EdgeDelta::new();
        d1.insert(1, 2, 0.5);
        let first = engine
            .submit(Request::update(Arc::clone(&graph), d1))
            .wait();
        let u1 = first.update.expect("update info on update responses");
        assert!(u1.cold, "first contact seeds the stream");
        assert!(!u1.incremental);
        assert!(first.outcome.result().is_some());

        let mut d2 = asa_graph::EdgeDelta::new();
        d2.insert(5, 6, 0.5);
        let second = engine
            .submit(Request::update(Arc::clone(&graph), d2))
            .wait();
        let u2 = second.update.expect("update info");
        assert!(!u2.cold, "stream state is live now");
        assert!(u2.incremental, "local edit resolves incrementally");
        assert!(u2.frontier_size > 0);
        assert_ne!(u2.chain_fingerprint, u1.chain_fingerprint);

        let stats = engine.shutdown();
        assert_eq!(stats.update_cold, 1);
        assert_eq!(stats.update_incremental, 1);
        assert_eq!(stats.partition_misses, 1);
        assert_eq!(stats.partition_hits, 1);
        assert_eq!(stats.partition_live, 1);
    }

    #[test]
    fn compaction_preserves_cache_identity() {
        // Compact the stream's overlay after every batch; a warm repeat
        // of the same version must still hit the shared result cache,
        // i.e. the chain fingerprint — the cache key — survives
        // compaction even though the rebased CSR re-fingerprints.
        let engine = ServeEngine::start(ServeConfig {
            workers: 1,
            partition_compact_batches: 0,
            ..ServeConfig::default()
        });
        let graph = two_triangles();
        let mut d = asa_graph::EdgeDelta::new();
        d.insert(0, 4, 0.5).delete(5, 3);
        let first = engine.submit(Request::update(Arc::clone(&graph), d)).wait();
        assert!(!first.cache_hit);
        let chain = first.update.unwrap().chain_fingerprint;
        let r1 = first.outcome.result().unwrap().clone();

        // Same version again (empty delta keeps the chain head in place).
        let second = engine
            .submit(Request::update(graph, asa_graph::EdgeDelta::new()))
            .wait();
        assert!(second.cache_hit, "compaction must not move the cache key");
        let u2 = second.update.unwrap();
        assert_eq!(u2.chain_fingerprint, chain);
        assert!(Arc::ptr_eq(second.outcome.result().unwrap(), &r1));
        engine.shutdown();
    }

    #[test]
    fn destructive_update_reports_full_fallback() {
        let engine = ServeEngine::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let graph = clique_chain();
        // Seed the stream, then densify everything: the old partition is
        // globally invalid, so the quality guard must fall back.
        engine
            .submit(Request::update(
                Arc::clone(&graph),
                asa_graph::EdgeDelta::new(),
            ))
            .wait();
        let mut d = asa_graph::EdgeDelta::new();
        for u in 0..24u32 {
            for v in (u + 1)..24 {
                d.insert(u, v, 6.0);
            }
        }
        let response = engine.submit(Request::update(graph, d)).wait();
        let info = response.update.expect("update info");
        assert!(!info.cold);
        assert!(!info.incremental);
        assert!(info.fallback.is_some());
        assert!(response.outcome.result().is_some());
        let stats = engine.shutdown();
        assert_eq!(stats.update_fallback, 1);
    }

    #[test]
    fn dist_ranks_matches_host_engine_bit_for_bit() {
        let graph = two_triangles();
        let host = ServeEngine::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let dist = ServeEngine::start(ServeConfig {
            workers: 1,
            dist_ranks: 3,
            ..ServeConfig::default()
        });
        let a = host.submit(Request::interactive(Arc::clone(&graph))).wait();
        let b = dist.submit(Request::interactive(graph)).wait();
        let (ra, rb) = (a.outcome.result().unwrap(), b.outcome.result().unwrap());
        assert_eq!(ra.partition.labels(), rb.partition.labels());
        assert!(ra.codelength.to_bits() == rb.codelength.to_bits());
        host.shutdown();
        let stats = dist.shutdown();
        assert!(stats.dist_supersteps > 0, "comm accounting surfaced");
    }
}
