//! Sharded LRU result cache with TTL.
//!
//! Keys are `(graph fingerprint, config hash)` — see
//! [`asa_graph::CsrGraph::fingerprint`] and [`crate::config_hash`]. Shards
//! are independent mutexed maps selected by key hash, so concurrent
//! workers rarely contend; within a shard, recency is a monotone tick
//! bumped on every hit and eviction removes the least-recently-used entry
//! (a linear scan — per-shard capacities are small by design, and a scan
//! over a dozen entries is cheaper than maintaining an intrusive list).
//! Entries older than the TTL are treated as absent and dropped on touch.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use asa_infomap::InfomapResult;
use asa_obs::Counter;

/// Cache key: `(graph fingerprint, config hash)`.
pub type CacheKey = (u64, u64);

#[derive(Debug)]
struct Entry {
    value: Arc<InfomapResult>,
    inserted: Instant,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<CacheKey, Entry>,
}

/// Sharded LRU+TTL cache for detection results. See the module docs.
#[derive(Debug)]
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    ttl: Duration,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Entries dropped because their TTL elapsed (on touch or as a
    /// preferred eviction victim) — distinct from capacity pressure.
    expired: AtomicU64,
    /// Live entries evicted by LRU capacity pressure.
    evicted: AtomicU64,
    /// Optional telemetry mirrors of the two drop counts
    /// (`serve.cache.expired` / `serve.cache.evicted` when attached by
    /// the engine; disabled no-ops otherwise).
    on_expired: Counter,
    on_evicted: Counter,
}

impl ResultCache {
    /// A cache of at most `capacity` entries spread over `shards` shards
    /// (each shard holds `ceil(capacity / shards)`), expiring entries
    /// `ttl` after insertion. `capacity == 0` disables caching entirely.
    pub fn new(capacity: usize, shards: usize, ttl: Duration) -> Self {
        Self::with_counters(
            capacity,
            shards,
            ttl,
            Counter::disabled(),
            Counter::disabled(),
        )
    }

    /// [`ResultCache::new`] with telemetry counters mirroring TTL-expiry
    /// drops (`on_expired`) and LRU-capacity evictions (`on_evicted`).
    pub fn with_counters(
        capacity: usize,
        shards: usize,
        ttl: Duration,
        on_expired: Counter,
        on_evicted: Counter,
    ) -> Self {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.div_ceil(shards);
        ResultCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity,
            ttl,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            on_expired,
            on_evicted,
        }
    }

    fn count_expired(&self) {
        self.expired.fetch_add(1, Ordering::Relaxed);
        self.on_expired.incr();
    }

    fn count_evicted(&self) {
        self.evicted.fetch_add(1, Ordering::Relaxed);
        self.on_evicted.incr();
    }

    fn shard_of(&self, key: &CacheKey) -> &Mutex<Shard> {
        // The fingerprint halves are already well-mixed FNV output; fold
        // them and take the low bits.
        let h = key.0 ^ key.1.rotate_left(32);
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Looks up `key`, refreshing its recency on a hit. Expired entries
    /// are removed and count as misses.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<InfomapResult>> {
        if self.per_shard_capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut shard = self.shard_of(key).lock().unwrap();
        let hit = match shard.map.get_mut(key) {
            Some(entry) if entry.inserted.elapsed() <= self.ttl => {
                entry.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            Some(_) => {
                shard.map.remove(key);
                self.count_expired();
                None
            }
            None => None,
        };
        drop(shard);
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Inserts (or replaces) `key`, evicting the shard's least-recently
    /// used entry when the shard is full.
    pub fn insert(&self, key: CacheKey, value: Arc<InfomapResult>) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let mut shard = self.shard_of(&key).lock().unwrap();
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        if !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard_capacity {
            // Prefer dropping anything already expired; otherwise the LRU.
            let victim = shard
                .map
                .iter()
                .min_by_key(|(_, e)| (e.inserted.elapsed() <= self.ttl, e.last_used))
                .map(|(k, e)| (*k, e.inserted.elapsed() > self.ttl));
            if let Some((victim, was_expired)) = victim {
                shard.map.remove(&victim);
                if was_expired {
                    self.count_expired();
                } else {
                    self.count_evicted();
                }
            }
        }
        shard.map.insert(
            key,
            Entry {
                value,
                inserted: Instant::now(),
                last_used: tick,
            },
        );
    }

    /// Entries currently resident (including not-yet-collected expired
    /// ones).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime `(hits, misses)` across all shards.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Lifetime `(ttl_expired, lru_evicted)` drop counts across all
    /// shards: entries dropped because their TTL elapsed vs live entries
    /// evicted purely by capacity pressure.
    pub fn eviction_stats(&self) -> (u64, u64) {
        (
            self.expired.load(Ordering::Relaxed),
            self.evicted.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asa_graph::GraphBuilder;
    use asa_infomap::{detect_communities, InfomapConfig};

    fn result() -> Arc<InfomapResult> {
        let mut b = GraphBuilder::undirected(4);
        for &(u, v) in &[(0, 1), (1, 2), (2, 3)] {
            b.add_edge(u, v, 1.0);
        }
        Arc::new(detect_communities(&b.build(), &InfomapConfig::default()))
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache = ResultCache::new(8, 2, Duration::from_secs(60));
        let value = result();
        assert!(cache.get(&(1, 1)).is_none());
        cache.insert((1, 1), Arc::clone(&value));
        let got = cache.get(&(1, 1)).expect("hit");
        assert!(Arc::ptr_eq(&got, &value));
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn ttl_expires_entries() {
        let cache = ResultCache::new(8, 1, Duration::from_millis(10));
        cache.insert((1, 1), result());
        assert!(cache.get(&(1, 1)).is_some());
        std::thread::sleep(Duration::from_millis(20));
        assert!(cache.get(&(1, 1)).is_none(), "entry must expire after TTL");
        assert!(cache.is_empty(), "expired entry is dropped on touch");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Single shard, capacity 2: touch (1,_) then insert a third key;
        // (2,_) is the LRU victim.
        let cache = ResultCache::new(2, 1, Duration::from_secs(60));
        cache.insert((1, 0), result());
        cache.insert((2, 0), result());
        assert!(cache.get(&(1, 0)).is_some());
        cache.insert((3, 0), result());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&(1, 0)).is_some(), "recently used survives");
        assert!(cache.get(&(2, 0)).is_none(), "LRU entry evicted");
        assert!(cache.get(&(3, 0)).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = ResultCache::new(0, 4, Duration::from_secs(60));
        cache.insert((1, 1), result());
        assert!(cache.get(&(1, 1)).is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn shards_partition_the_keyspace() {
        let cache = ResultCache::new(64, 8, Duration::from_secs(60));
        for k in 0..64u64 {
            cache.insert((k, k.wrapping_mul(0x9e37)), result());
        }
        assert!(cache.len() > 32, "most inserts must be resident");
        let mut hits = 0;
        for k in 0..64u64 {
            if cache.get(&(k, k.wrapping_mul(0x9e37))).is_some() {
                hits += 1;
            }
        }
        assert!(hits > 32);
    }
}
