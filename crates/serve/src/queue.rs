//! Bounded MPMC job queue with two priority classes.
//!
//! One mutex + condvar over a pair of `VecDeque`s. Admission control is
//! the point: `push` never blocks and never grows past the per-class
//! bound — a full class rejects immediately so the caller can shed the
//! request ([`crate::Outcome::Overloaded`]) instead of building an
//! unbounded backlog. Consumers (`pop`) drain interactive work strictly
//! before batch work and block when both classes are empty.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::request::Priority;

#[derive(Debug)]
struct Inner<T> {
    interactive: VecDeque<T>,
    batch: VecDeque<T>,
    closed: bool,
}

impl<T> Inner<T> {
    fn depth(&self) -> usize {
        self.interactive.len() + self.batch.len()
    }
}

/// Rejection returned by [`JobQueue::push`], handing the item back.
#[derive(Debug)]
pub enum PushError<T> {
    /// The class's queue is at capacity.
    Full(T),
    /// The queue was closed; no new work is admitted.
    Closed(T),
}

/// Bounded two-class MPMC queue. See the module docs.
#[derive(Debug)]
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: [usize; 2],
}

fn class_index(priority: Priority) -> usize {
    match priority {
        Priority::Interactive => 0,
        Priority::Batch => 1,
    }
}

impl<T> JobQueue<T> {
    /// A queue admitting at most `cap_interactive` queued interactive and
    /// `cap_batch` queued batch items.
    pub fn new(cap_interactive: usize, cap_batch: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                interactive: VecDeque::new(),
                batch: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: [cap_interactive, cap_batch],
        }
    }

    /// Admits `item` into its class, or rejects without blocking.
    /// On success returns the total queue depth after the push.
    pub fn push(&self, priority: Priority, item: T) -> Result<usize, PushError<T>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        let class = match priority {
            Priority::Interactive => &mut inner.interactive,
            Priority::Batch => &mut inner.batch,
        };
        if class.len() >= self.capacity[class_index(priority)] {
            return Err(PushError::Full(item));
        }
        class.push_back(item);
        let depth = inner.depth();
        drop(inner);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Takes the next item, interactive class first. Blocks while both
    /// classes are empty; returns `None` once the queue is closed *and*
    /// drained, so workers exit only after finishing admitted work.
    pub fn pop(&self) -> Option<(Priority, T)> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.interactive.pop_front() {
                return Some((Priority::Interactive, item));
            }
            if let Some(item) = inner.batch.pop_front() {
                return Some((Priority::Batch, item));
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap();
        }
    }

    /// Current total depth across both classes.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().depth()
    }

    /// Stops admission and wakes every blocked consumer. Items already
    /// queued are still drained by `pop`.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_class_priority_across() {
        let q = JobQueue::new(8, 8);
        q.push(Priority::Batch, 10).unwrap();
        q.push(Priority::Interactive, 1).unwrap();
        q.push(Priority::Batch, 11).unwrap();
        q.push(Priority::Interactive, 2).unwrap();
        assert_eq!(q.depth(), 4);
        assert_eq!(q.pop(), Some((Priority::Interactive, 1)));
        assert_eq!(q.pop(), Some((Priority::Interactive, 2)));
        assert_eq!(q.pop(), Some((Priority::Batch, 10)));
        assert_eq!(q.pop(), Some((Priority::Batch, 11)));
    }

    #[test]
    fn bounded_per_class() {
        let q = JobQueue::new(1, 2);
        q.push(Priority::Interactive, 1).unwrap();
        assert!(matches!(
            q.push(Priority::Interactive, 2),
            Err(PushError::Full(2))
        ));
        // Batch capacity is independent of the interactive class.
        q.push(Priority::Batch, 3).unwrap();
        q.push(Priority::Batch, 4).unwrap();
        assert!(matches!(
            q.push(Priority::Batch, 5),
            Err(PushError::Full(5))
        ));
        assert_eq!(q.depth(), 3);
    }

    #[test]
    fn close_rejects_then_drains() {
        let q = JobQueue::new(4, 4);
        q.push(Priority::Batch, 7).unwrap();
        q.close();
        assert!(matches!(
            q.push(Priority::Interactive, 1),
            Err(PushError::Closed(1))
        ));
        assert_eq!(q.pop(), Some((Priority::Batch, 7)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let q = Arc::new(JobQueue::new(4, 4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        q.push(Priority::Interactive, 42).unwrap();
        q.push(Priority::Batch, 43).unwrap();
        q.close();
        let mut got: Vec<Option<(Priority, i32)>> =
            consumers.into_iter().map(|c| c.join().unwrap()).collect();
        got.sort_by_key(|r| r.map(|(_, v)| v));
        assert_eq!(
            got,
            vec![
                None,
                Some((Priority::Interactive, 42)),
                Some((Priority::Batch, 43)),
            ]
        );
    }

    #[test]
    fn zero_capacity_sheds_everything() {
        let q = JobQueue::new(0, 0);
        assert!(matches!(
            q.push(Priority::Interactive, 1),
            Err(PushError::Full(1))
        ));
        assert!(matches!(
            q.push(Priority::Batch, 2),
            Err(PushError::Full(2))
        ));
    }
}
