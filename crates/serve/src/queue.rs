//! Bounded MPMC job queue with two priority classes.
//!
//! One mutex + condvar over a pair of `VecDeque`s. Admission control is
//! the point: `push` never blocks and never grows past the per-class
//! bound — a full class rejects immediately so the caller can shed the
//! request ([`crate::Outcome::Overloaded`]) instead of building an
//! unbounded backlog. Consumers (`pop`) drain interactive work strictly
//! before batch work and block when both classes are empty.
//!
//! Sharded engines add two more access patterns: [`JobQueue::pop_wait`]
//! (bounded wait, so an idle shard worker can interleave steal attempts
//! with waiting on its own queue) and [`JobQueue::steal_batch`] (a
//! non-blocking take of the *oldest* queued batch item, used by foreign
//! shards — interactive items are never stealable, they stay affine to
//! the shard whose caches are warm for their graph).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::request::Priority;

#[derive(Debug)]
struct Inner<T> {
    interactive: VecDeque<T>,
    batch: VecDeque<T>,
    closed: bool,
}

impl<T> Inner<T> {
    fn depth(&self) -> usize {
        self.interactive.len() + self.batch.len()
    }
}

/// Rejection returned by [`JobQueue::push`], handing the item back.
#[derive(Debug)]
pub enum PushError<T> {
    /// The class's queue is at capacity.
    Full(T),
    /// The queue was closed; no new work is admitted.
    Closed(T),
}

/// Outcome of a bounded-wait dequeue ([`JobQueue::pop_wait`]).
#[derive(Debug, PartialEq, Eq)]
pub enum Popped<T> {
    /// An item was taken (interactive class first, FIFO within a class).
    Item(Priority, T),
    /// The wait elapsed with both classes empty; the queue is still open.
    Empty,
    /// The queue is closed *and* drained — no item will ever appear again.
    Closed,
}

/// Bounded two-class MPMC queue. See the module docs.
#[derive(Debug)]
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: [usize; 2],
}

fn class_index(priority: Priority) -> usize {
    match priority {
        Priority::Interactive => 0,
        Priority::Batch => 1,
    }
}

impl<T> JobQueue<T> {
    /// A queue admitting at most `cap_interactive` queued interactive and
    /// `cap_batch` queued batch items.
    pub fn new(cap_interactive: usize, cap_batch: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                interactive: VecDeque::new(),
                batch: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: [cap_interactive, cap_batch],
        }
    }

    /// Admits `item` into its class, or rejects without blocking.
    /// On success returns the total queue depth after the push.
    pub fn push(&self, priority: Priority, item: T) -> Result<usize, PushError<T>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        let class = match priority {
            Priority::Interactive => &mut inner.interactive,
            Priority::Batch => &mut inner.batch,
        };
        if class.len() >= self.capacity[class_index(priority)] {
            return Err(PushError::Full(item));
        }
        class.push_back(item);
        let depth = inner.depth();
        drop(inner);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Takes the next item, interactive class first. Blocks while both
    /// classes are empty; returns `None` once the queue is closed *and*
    /// drained, so workers exit only after finishing admitted work.
    pub fn pop(&self) -> Option<(Priority, T)> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.interactive.pop_front() {
                return Some((Priority::Interactive, item));
            }
            if let Some(item) = inner.batch.pop_front() {
                return Some((Priority::Batch, item));
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap();
        }
    }

    /// [`JobQueue::pop`] with a bounded wait: returns [`Popped::Empty`]
    /// when `timeout` elapses with nothing queued, so the caller can go
    /// try to steal from another shard instead of blocking here forever.
    pub fn pop_wait(&self, timeout: Duration) -> Popped<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.interactive.pop_front() {
                return Popped::Item(Priority::Interactive, item);
            }
            if let Some(item) = inner.batch.pop_front() {
                return Popped::Item(Priority::Batch, item);
            }
            if inner.closed {
                return Popped::Closed;
            }
            let (guard, wait) = self.ready.wait_timeout(inner, timeout).unwrap();
            inner = guard;
            if wait.timed_out() && inner.interactive.is_empty() && inner.batch.is_empty() {
                return if inner.closed {
                    Popped::Closed
                } else {
                    Popped::Empty
                };
            }
        }
    }

    /// Non-blocking take of the oldest queued *batch* item, for work
    /// stealing by a foreign shard. Interactive items are never exposed:
    /// they stay affine to their routed shard. Stealing the oldest item
    /// (the same end the owner pops) preserves batch FIFO fairness — the
    /// job most at risk of expiring in place is the one that leaves.
    pub fn steal_batch(&self) -> Option<T> {
        self.inner.lock().unwrap().batch.pop_front()
    }

    /// Current total depth across both classes.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().depth()
    }

    /// Current `(interactive, batch)` depths.
    pub fn depths(&self) -> (usize, usize) {
        let inner = self.inner.lock().unwrap();
        (inner.interactive.len(), inner.batch.len())
    }

    /// Current batch-class depth only (the stealable backlog).
    pub fn batch_depth(&self) -> usize {
        self.inner.lock().unwrap().batch.len()
    }

    /// Stops admission and wakes every blocked consumer. Items already
    /// queued are still drained by `pop`.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_class_priority_across() {
        let q = JobQueue::new(8, 8);
        q.push(Priority::Batch, 10).unwrap();
        q.push(Priority::Interactive, 1).unwrap();
        q.push(Priority::Batch, 11).unwrap();
        q.push(Priority::Interactive, 2).unwrap();
        assert_eq!(q.depth(), 4);
        assert_eq!(q.pop(), Some((Priority::Interactive, 1)));
        assert_eq!(q.pop(), Some((Priority::Interactive, 2)));
        assert_eq!(q.pop(), Some((Priority::Batch, 10)));
        assert_eq!(q.pop(), Some((Priority::Batch, 11)));
    }

    #[test]
    fn bounded_per_class() {
        let q = JobQueue::new(1, 2);
        q.push(Priority::Interactive, 1).unwrap();
        assert!(matches!(
            q.push(Priority::Interactive, 2),
            Err(PushError::Full(2))
        ));
        // Batch capacity is independent of the interactive class.
        q.push(Priority::Batch, 3).unwrap();
        q.push(Priority::Batch, 4).unwrap();
        assert!(matches!(
            q.push(Priority::Batch, 5),
            Err(PushError::Full(5))
        ));
        assert_eq!(q.depth(), 3);
    }

    #[test]
    fn close_rejects_then_drains() {
        let q = JobQueue::new(4, 4);
        q.push(Priority::Batch, 7).unwrap();
        q.close();
        assert!(matches!(
            q.push(Priority::Interactive, 1),
            Err(PushError::Closed(1))
        ));
        assert_eq!(q.pop(), Some((Priority::Batch, 7)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let q = Arc::new(JobQueue::new(4, 4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        q.push(Priority::Interactive, 42).unwrap();
        q.push(Priority::Batch, 43).unwrap();
        q.close();
        let mut got: Vec<Option<(Priority, i32)>> =
            consumers.into_iter().map(|c| c.join().unwrap()).collect();
        got.sort_by_key(|r| r.map(|(_, v)| v));
        assert_eq!(
            got,
            vec![
                None,
                Some((Priority::Interactive, 42)),
                Some((Priority::Batch, 43)),
            ]
        );
    }

    #[test]
    fn steal_takes_oldest_batch_never_interactive() {
        let q = JobQueue::new(4, 4);
        q.push(Priority::Interactive, 1).unwrap();
        q.push(Priority::Batch, 10).unwrap();
        q.push(Priority::Batch, 11).unwrap();
        assert_eq!(q.steal_batch(), Some(10), "steal the oldest batch item");
        assert_eq!(q.steal_batch(), Some(11));
        assert_eq!(q.steal_batch(), None, "interactive items are not stealable");
        assert_eq!(q.depths(), (1, 0));
        assert_eq!(q.pop(), Some((Priority::Interactive, 1)));
    }

    #[test]
    fn pop_wait_times_out_then_delivers_then_closes() {
        let q = JobQueue::new(4, 4);
        assert_eq!(q.pop_wait(Duration::from_millis(5)), Popped::Empty);
        q.push(Priority::Batch, 9).unwrap();
        assert_eq!(
            q.pop_wait(Duration::from_millis(5)),
            Popped::Item(Priority::Batch, 9)
        );
        q.close();
        assert_eq!(q.pop_wait(Duration::from_millis(5)), Popped::Closed);
    }

    #[test]
    fn pop_wait_drains_before_reporting_closed() {
        let q = JobQueue::new(4, 4);
        q.push(Priority::Batch, 3).unwrap();
        q.close();
        assert_eq!(
            q.pop_wait(Duration::from_millis(5)),
            Popped::Item(Priority::Batch, 3)
        );
        assert_eq!(q.pop_wait(Duration::from_millis(5)), Popped::Closed);
    }

    #[test]
    fn zero_capacity_sheds_everything() {
        let q = JobQueue::new(0, 0);
        assert!(matches!(
            q.push(Priority::Interactive, 1),
            Err(PushError::Full(1))
        ));
        assert!(matches!(
            q.push(Priority::Batch, 2),
            Err(PushError::Full(2))
        ));
    }
}
