//! `asa-serve` — an in-process, production-style serving layer over the
//! ASA Infomap engine.
//!
//! The library crates answer "partition this graph"; this crate answers
//! "partition graphs *for many concurrent callers, under load, with
//! latency promises*". It adds the four mechanisms a service needs that
//! a library does not:
//!
//! * **Admission control** — a bounded two-class priority queue
//!   ([`queue::JobQueue`]). Interactive requests dequeue before batch
//!   ones; a full class rejects with [`Outcome::Overloaded`] at submit
//!   time rather than queueing unboundedly.
//! * **Result caching** — a sharded LRU+TTL cache
//!   ([`cache::ResultCache`]) keyed by `(graph fingerprint, config
//!   hash)`, so repeated requests for the same graph are answered in
//!   microseconds.
//! * **Deadlines & cancellation** — a request deadline rides into the
//!   engine as an [`asa_infomap::CancelToken`]; a run that outlives it
//!   stops at the next sweep boundary and returns its best partition as
//!   [`Outcome::Degraded`].
//! * **Graceful degradation** — under queue pressure, batch requests run
//!   with lowered quality knobs before anything is shed.
//! * **Sharding** — N engine shards ([`shard::Router`]), each with its own
//!   queue and workers. Requests route by graph fingerprint so repeated
//!   queries land where that graph's state is warm; hot graphs replicate
//!   onto additional shards, and idle shards steal batch work so skew
//!   doesn't strand capacity. One process-wide [`cache::ResultCache`] is
//!   shared across all shards.
//!
//! * **Streaming updates** — [`Request::update`] ships an
//!   [`asa_graph::EdgeDelta`] against a live stream: updates route by
//!   the stream's chain anchor, per-shard [`store::PartitionStore`]s
//!   keep [`asa_infomap::IncrementalState`] warm, results cache under
//!   the chain fingerprint, and a quality guard falls back to a full
//!   run when codelength drift escapes its budget — reported per
//!   response as [`request::UpdateInfo`].
//!
//! * **SLO health** — declarative objectives over the continuous
//!   time-series ([`ServeConfig::slo`] + an attached obs collector):
//!   multi-window burn-rate evaluation drives a
//!   Healthy → Degraded → Critical state machine with hysteresis,
//!   surfaced as the `serve.health` gauge, flight-recorder `slo.*`
//!   instants on transitions, and a shutdown health report.
//!
//! Entry points: [`ServeEngine::start`], [`ServeEngine::submit`],
//! [`Request`]. See `DESIGN.md` § "Serving layer", § "Sharded serving"
//! and § "Continuous telemetry & SLO engine" for the architecture
//! diagrams and the degradation ladder.

pub mod cache;
pub mod engine;
pub mod queue;
pub mod request;
pub mod shard;
pub mod store;

pub use cache::{CacheKey, ResultCache};
pub use engine::{config_hash, EngineStats, LatencyStats, ServeConfig, ServeEngine};
pub use queue::{JobQueue, Popped, PushError};
pub use request::{
    DegradeReason, JobHandle, Outcome, Priority, Request, RequestKind, Response, UpdateInfo,
};
pub use shard::{ReplicationConfig, RouteDecision, Router, ShardStats};
pub use store::PartitionStore;
