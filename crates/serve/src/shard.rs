//! Graph-affinity routing across engine shards, with hot-graph
//! replication.
//!
//! The router answers one question at admission time: *which shard runs
//! this request?* The base policy is pure affinity — shard
//! `fingerprint % shards` — so every request for a graph lands where that
//! graph's working state (result-cache entries it recently produced,
//! warm `ScratchPool` scratch, term caches, the CSR arrays themselves in
//! that worker's cache hierarchy) is already resident. Affinity is
//! deterministic: at a fixed shard count the same fingerprint always has
//! the same *home* shard.
//!
//! Affinity alone strands capacity under skew: one viral graph saturates
//! its home shard while the others idle. Two mechanisms relieve that,
//! borrowing the partition-and-communicate discipline of spatial
//! architectures — keep work where its state lives, and account every
//! departure from that:
//!
//! * **Replication** (here): the router tracks per-fingerprint arrival
//!   rates in a sliding window. When a graph's arrivals within the window
//!   cross the configured threshold, its *routing set* grows by one shard
//!   (consecutive shards after the home, wrapping), up to the configured
//!   maximum, and subsequent requests round-robin across the set. Each
//!   added replica warms up on first use; the shared result cache means a
//!   replica never recomputes what another shard already answered.
//! * **Work stealing** (in the engine's worker loop): an idle shard takes
//!   the oldest *batch* job from the deepest foreign backlog. Interactive
//!   jobs are never stolen — their latency budget is exactly what the
//!   warm-shard affinity protects.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Hot-graph replication policy. Embedded in
/// [`crate::ServeConfig`]; `threshold == 0` disables replication so the
/// router is pure deterministic affinity.
#[derive(Debug, Clone)]
pub struct ReplicationConfig {
    /// Arrivals for one fingerprint within [`ReplicationConfig::window`]
    /// that trigger growing its routing set by one shard. `0` disables
    /// replication entirely.
    pub threshold: u32,
    /// Sliding arrival-rate window.
    pub window: Duration,
    /// Hard cap on a fingerprint's routing-set size (clamped to the shard
    /// count at engine start).
    pub max_replicas: usize,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            threshold: 16,
            window: Duration::from_secs(1),
            max_replicas: 4,
        }
    }
}

/// Per-fingerprint arrival tracking.
#[derive(Debug)]
struct HotEntry {
    window_start: Instant,
    arrivals: u32,
    /// Routing-set size, 1 = home shard only. Sticky for the engine's
    /// lifetime: once a graph proved hot enough to replicate, collapsing
    /// its set again would just re-cool the extra shard.
    replicas: u32,
    /// Round-robin cursor over the routing set.
    rr: u32,
}

/// Where the router sent a request, and whether this arrival grew the
/// graph's routing set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// Shard the request was routed to.
    pub shard: usize,
    /// Deterministic home shard of the fingerprint.
    pub home: usize,
    /// Routing-set size after this arrival.
    pub replicas: u32,
    /// Whether this arrival crossed the threshold and added a replica.
    pub replicated_now: bool,
}

/// Fingerprint → shard router. See the module docs.
#[derive(Debug)]
pub struct Router {
    shards: usize,
    replication: ReplicationConfig,
    table: Mutex<HashMap<u64, HotEntry>>,
}

/// Bound on tracked fingerprints; crossing it evicts entries whose window
/// lapsed without replication (a cold graph needs no routing state).
const TABLE_CAP: usize = 1024;

impl Router {
    /// A router over `shards` shards with the given replication policy.
    pub fn new(shards: usize, mut replication: ReplicationConfig) -> Self {
        let shards = shards.max(1);
        replication.max_replicas = replication.max_replicas.clamp(1, shards);
        Router {
            shards,
            replication,
            table: Mutex::new(HashMap::new()),
        }
    }

    /// Deterministic home shard of a fingerprint.
    pub fn home(&self, fingerprint: u64) -> usize {
        (fingerprint % self.shards as u64) as usize
    }

    /// Routes one arrival. With replication disabled (or a single shard)
    /// this is exactly `home(fingerprint)` with no state touched.
    pub fn route(&self, fingerprint: u64) -> RouteDecision {
        let home = self.home(fingerprint);
        if self.shards == 1 || self.replication.threshold == 0 {
            return RouteDecision {
                shard: home,
                home,
                replicas: 1,
                replicated_now: false,
            };
        }
        let now = Instant::now();
        let mut table = self.table.lock().unwrap();
        if table.len() >= TABLE_CAP && !table.contains_key(&fingerprint) {
            let window = self.replication.window;
            table.retain(|_, e| e.replicas > 1 || now.duration_since(e.window_start) <= window);
        }
        let entry = table.entry(fingerprint).or_insert(HotEntry {
            window_start: now,
            arrivals: 0,
            replicas: 1,
            rr: 0,
        });
        if now.duration_since(entry.window_start) > self.replication.window {
            entry.window_start = now;
            entry.arrivals = 0;
        }
        entry.arrivals += 1;
        let mut replicated_now = false;
        if entry.arrivals >= self.replication.threshold
            && (entry.replicas as usize) < self.replication.max_replicas
        {
            entry.replicas += 1;
            entry.arrivals = 0;
            entry.window_start = now;
            replicated_now = true;
        }
        let shard = if entry.replicas <= 1 {
            home
        } else {
            let offset = entry.rr % entry.replicas;
            entry.rr = entry.rr.wrapping_add(1);
            (home + offset as usize) % self.shards
        };
        RouteDecision {
            shard,
            home,
            replicas: entry.replicas,
            replicated_now,
        }
    }

    /// Current routing-set size of a fingerprint (1 when untracked).
    pub fn replicas_of(&self, fingerprint: u64) -> u32 {
        self.table
            .lock()
            .unwrap()
            .get(&fingerprint)
            .map_or(1, |e| e.replicas)
    }
}

/// Point-in-time statistics of one engine shard, inside
/// [`crate::EngineStats`].
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Queue depth when the stats were read.
    pub queue_depth_last: u64,
    /// Highest queue depth this shard ever observed.
    pub queue_depth_max: u64,
    /// Requests this shard's workers executed from their own queue.
    pub executed_local: u64,
    /// Batch jobs this shard's workers stole *from* other shards and ran.
    pub steals_in: u64,
    /// Batch jobs other shards stole out of this shard's queue.
    pub steals_out: u64,
    /// Requests answered from the cache on this shard's path (admission
    /// hits while routed here, plus late hits at dequeue). Always equals
    /// `cache_hits_home + cache_hits_replica + cache_hits_stolen`.
    pub cache_hits: u64,
    /// Cache hits while this shard was the graph's home shard
    /// (`fingerprint % shards`).
    pub cache_hits_home: u64,
    /// Cache hits while this shard served as a replica in a hot graph's
    /// grown routing set.
    pub cache_hits_replica: u64,
    /// Cache hits observed by jobs stolen out of this shard's backlog
    /// (executed elsewhere; attribution stays with the routed shard).
    pub cache_hits_stolen: u64,
    /// Submissions rejected because this shard's queue class was full.
    pub shed: u64,
    /// Hot fingerprints whose routing set grew onto this shard.
    pub replicas_hosted: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn affinity_only(shards: usize) -> Router {
        Router::new(
            shards,
            ReplicationConfig {
                threshold: 0,
                ..ReplicationConfig::default()
            },
        )
    }

    #[test]
    fn routing_is_deterministic_affinity() {
        let router = affinity_only(4);
        for fp in [0u64, 1, 5, 7, 1 << 40, u64::MAX] {
            let first = router.route(fp);
            assert_eq!(first.shard, (fp % 4) as usize);
            assert_eq!(first.home, first.shard);
            assert_eq!(first.replicas, 1);
            for _ in 0..32 {
                assert_eq!(router.route(fp), first, "same fp → same shard, always");
            }
        }
    }

    #[test]
    fn hot_fingerprint_replicates_and_round_robins() {
        let router = Router::new(
            4,
            ReplicationConfig {
                threshold: 8,
                window: Duration::from_secs(60),
                max_replicas: 3,
            },
        );
        let fp = 42u64; // home shard 2
        let mut replications = 0;
        let mut shards_seen = std::collections::HashSet::new();
        for _ in 0..64 {
            let d = router.route(fp);
            shards_seen.insert(d.shard);
            replications += u32::from(d.replicated_now);
        }
        assert_eq!(replications, 2, "threshold crossed once per added replica");
        assert_eq!(router.replicas_of(fp), 3);
        assert_eq!(
            shards_seen,
            [2usize, 3, 0].into_iter().collect(),
            "routing set = consecutive shards after home, wrapping"
        );
        // A cold fingerprint is untouched by the hot one's routing set.
        assert_eq!(router.route(1).shard, 1);
    }

    #[test]
    fn replication_respects_shard_count_cap() {
        let router = Router::new(
            2,
            ReplicationConfig {
                threshold: 1,
                window: Duration::from_secs(60),
                max_replicas: 16, // clamped to 2
            },
        );
        for _ in 0..32 {
            router.route(9);
        }
        assert_eq!(router.replicas_of(9), 2);
    }

    #[test]
    fn slow_arrivals_never_replicate() {
        let router = Router::new(
            4,
            ReplicationConfig {
                threshold: 3,
                window: Duration::from_millis(10),
                max_replicas: 4,
            },
        );
        for _ in 0..3 {
            let d = router.route(7);
            assert!(!d.replicated_now);
            assert_eq!(d.replicas, 1);
            std::thread::sleep(Duration::from_millis(15)); // window lapses
        }
        assert_eq!(router.replicas_of(7), 1);
    }

    #[test]
    fn single_shard_short_circuits() {
        let router = Router::new(1, ReplicationConfig::default());
        for fp in 0..32u64 {
            assert_eq!(router.route(fp).shard, 0);
        }
        assert!(router.table.lock().unwrap().is_empty(), "no state tracked");
    }
}
