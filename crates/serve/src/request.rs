//! Request/response vocabulary of the serving layer.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use asa_graph::{CsrGraph, EdgeDelta};
use asa_infomap::incremental::FallbackReason;
use asa_infomap::{InfomapConfig, InfomapResult};

/// Scheduling class of a request. Interactive requests are drained before
/// batch requests and are never quality-degraded under load; batch
/// requests absorb the degradation ladder first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive; dequeued first, never degraded by load pressure.
    Interactive,
    /// Throughput work; degraded (fewer outer loops / sweeps) before the
    /// engine sheds anything.
    Batch,
}

impl Priority {
    /// Stable lowercase name for telemetry labels.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        }
    }
}

/// What a request asks the engine to do.
#[derive(Debug, Clone)]
pub enum RequestKind {
    /// Partition [`Request::graph`] from scratch (the classic request).
    Detect,
    /// Apply an edge-delta batch to the dynamic-graph stream anchored at
    /// [`Request::graph`]'s fingerprint and re-optimize incrementally.
    /// The stream's live [`asa_infomap::IncrementalState`] is kept in the
    /// home shard's partition store; update streams route by the chain
    /// *anchor* (the base fingerprint, shared by all versions of the
    /// stream) so they stay shard-affine, and are never replicated.
    Update(EdgeDelta),
}

/// One community-detection request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The graph to partition. `Arc` so the caller, queue, and cache can
    /// share one copy. For [`RequestKind::Update`] this is the stream's
    /// *base snapshot*: its fingerprint is the chain anchor that names
    /// (and routes) the stream, and it seeds the incremental state on
    /// first contact.
    pub graph: Arc<CsrGraph>,
    /// Requested Infomap parameters. The engine may lower `outer_loops` /
    /// `max_sweeps` for batch requests under load (the response reports
    /// this as [`Outcome::Degraded`]).
    pub config: InfomapConfig,
    /// Scheduling class.
    pub priority: Priority,
    /// Optional completion deadline, relative to submission. A request
    /// that expires in the queue terminates [`Outcome::DeadlineExceeded`];
    /// one that expires mid-run stops at the next sweep boundary and
    /// returns the best partition found so far as [`Outcome::Degraded`].
    pub deadline: Option<Duration>,
    /// What to do: a from-scratch detection or a streaming update.
    pub kind: RequestKind,
}

impl Request {
    /// An interactive request with default parameters and no deadline.
    pub fn interactive(graph: Arc<CsrGraph>) -> Self {
        Self::new(graph, Priority::Interactive)
    }

    /// A batch request with default parameters and no deadline.
    pub fn batch(graph: Arc<CsrGraph>) -> Self {
        Self::new(graph, Priority::Batch)
    }

    /// A streaming update: apply `delta` to the dynamic-graph stream
    /// anchored at `base`'s fingerprint and re-optimize incrementally
    /// (interactive class, default parameters, no deadline). The first
    /// update a shard sees for a stream seeds its incremental state with
    /// one full run on `base`; later updates reuse the live partition.
    /// [`Response::update`] reports how the update resolved.
    pub fn update(base: Arc<CsrGraph>, delta: EdgeDelta) -> Self {
        Request {
            kind: RequestKind::Update(delta),
            ..Self::new(base, Priority::Interactive)
        }
    }

    fn new(graph: Arc<CsrGraph>, priority: Priority) -> Self {
        Request {
            graph,
            config: InfomapConfig::default(),
            priority,
            deadline: None,
            kind: RequestKind::Detect,
        }
    }

    /// Sets the completion deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the Infomap configuration.
    pub fn with_config(mut self, config: InfomapConfig) -> Self {
        self.config = config;
        self
    }
}

/// Why a result was served at reduced quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The deadline expired mid-run; the run stopped at a sweep boundary
    /// and this is the best partition found by then.
    Deadline,
    /// Queue pressure made the engine lower the request's quality knobs
    /// (batch class only) before running it.
    LoadPressure,
}

/// Terminal state of a request. Every submitted request resolves to
/// exactly one of these.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Full-quality result at the requested configuration.
    Ok(Arc<InfomapResult>),
    /// A complete, valid partition at reduced quality.
    Degraded {
        /// The (still complete and valid) partition.
        result: Arc<InfomapResult>,
        /// What forced the reduction.
        reason: DegradeReason,
    },
    /// Rejected at admission: the queue for this priority class was full.
    Overloaded,
    /// The deadline expired before any work ran; there is no partial
    /// result to return.
    DeadlineExceeded,
}

impl Outcome {
    /// The partition-bearing result, if any.
    pub fn result(&self) -> Option<&Arc<InfomapResult>> {
        match self {
            Outcome::Ok(r) | Outcome::Degraded { result: r, .. } => Some(r),
            Outcome::Overloaded | Outcome::DeadlineExceeded => None,
        }
    }

    /// Stable lowercase name for telemetry and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Outcome::Ok(_) => "ok",
            Outcome::Degraded { .. } => "degraded",
            Outcome::Overloaded => "overloaded",
            Outcome::DeadlineExceeded => "deadline_exceeded",
        }
    }
}

/// How a streaming update resolved; `Some` on [`RequestKind::Update`]
/// responses that carry a result, `None` otherwise.
#[derive(Debug, Clone, Copy)]
pub struct UpdateInfo {
    /// Whether the frontier-restricted incremental pass answered this
    /// update. `false` for the quality guard's full-multilevel fallback
    /// *and* for the cold full run that seeds a stream's state.
    pub incremental: bool,
    /// The quality guard's reason when it forced the fallback (`None` for
    /// incremental answers and cold seeds).
    pub fallback: Option<FallbackReason>,
    /// Whether this update found no live state (first contact, an evicted
    /// stream, or a config change) and had to seed one with a full run.
    pub cold: bool,
    /// Initial touched frontier of the incremental pass.
    pub frontier_size: usize,
    /// Frontier-restricted sweeps the incremental pass executed.
    pub ripple_rounds: usize,
    /// Chain fingerprint of the graph version this response describes.
    /// Result-cache entries for update streams key on this value, so it
    /// is stable across server-side compactions of the delta overlay.
    pub chain_fingerprint: u64,
}

/// Completed response: the outcome plus where the request's time went.
#[derive(Debug, Clone)]
pub struct Response {
    /// Terminal state.
    pub outcome: Outcome,
    /// Time spent queued (zero for cache hits and admission rejections).
    pub queued: Duration,
    /// Time spent running Infomap (zero unless a worker ran the request).
    pub service: Duration,
    /// Submission-to-completion wall time.
    pub total: Duration,
    /// Whether the result came from the cache.
    pub cache_hit: bool,
    /// Flight-recorder trace id minted for this request at admission, for
    /// correlating the response with its track in an exported Chrome
    /// trace (see `asa_obs::chrome`). Zero when the engine's [`asa_obs::Obs`]
    /// handle has no recorder attached.
    pub trace_id: u64,
    /// Engine shard that resolved the request: the routed shard for
    /// admission-path resolutions (cache hits, sheds) and queue-path runs,
    /// or the stealing shard when a foreign worker ran it.
    pub shard: usize,
    /// Whether a foreign shard's worker stole and ran this (batch) request
    /// instead of its routed shard.
    pub stolen: bool,
    /// Streaming-update resolution details ([`RequestKind::Update`]
    /// only).
    pub update: Option<UpdateInfo>,
}

/// Shared completion slot between a [`JobHandle`] and the worker that
/// resolves it.
#[derive(Debug, Default)]
pub(crate) struct ResponseSlot {
    state: Mutex<Option<Response>>,
    ready: Condvar,
}

impl ResponseSlot {
    pub(crate) fn fill(&self, response: Response) {
        let mut state = self.state.lock().unwrap();
        debug_assert!(state.is_none(), "a request resolves exactly once");
        *state = Some(response);
        self.ready.notify_all();
    }
}

/// Caller-side handle to an in-flight request.
#[derive(Debug, Clone)]
pub struct JobHandle {
    pub(crate) slot: Arc<ResponseSlot>,
}

impl JobHandle {
    /// Blocks until the request resolves and returns its response.
    pub fn wait(&self) -> Response {
        let mut state = self.slot.state.lock().unwrap();
        loop {
            if let Some(response) = state.as_ref() {
                return response.clone();
            }
            state = self.slot.ready.wait(state).unwrap();
        }
    }

    /// The response, if the request already resolved.
    pub fn try_get(&self) -> Option<Response> {
        self.slot.state.lock().unwrap().clone()
    }
}
