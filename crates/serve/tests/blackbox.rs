//! Black-box flight-data acceptance: a deliberately panicked worker
//! triggers the panic hook, which dumps one JSON diagnostic bundle with
//! every layer present (flight recorder, time-series tails, SLO states,
//! resource snapshot, folded profile, engine sections); a later graceful
//! shutdown overwrites it with a `"shutdown"`-reason bundle.
//!
//! The panic hook and the section table are process-global, so this file
//! keeps everything in one `#[test]` — parallel tests would race over
//! which path the hook is armed with.

use std::sync::Arc;
use std::time::{Duration, Instant};

use asa_graph::{CsrGraph, GraphBuilder};
use asa_obs::{Objective, Obs, SloConfig, Stat, TimeSeriesConfig};
use asa_serve::{Request, ServeConfig, ServeEngine};

fn two_triangles() -> Arc<CsrGraph> {
    let mut b = GraphBuilder::undirected(6);
    for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
        b.add_edge(u, v, 1.0);
    }
    Arc::new(b.build())
}

#[test]
fn forced_panic_then_shutdown_write_complete_bundles() {
    let dir = std::env::temp_dir().join(format!("asa-blackbox-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("blackbox.json");

    // Every observability layer attached, all on manual ticks (hours-long
    // intervals) so the bundle contents are deterministic.
    let obs = Obs::new_enabled();
    obs.attach_recorder(1 << 12);
    obs.attach_collector(TimeSeriesConfig {
        resolution: Duration::from_secs(3600),
        slots: 64,
    });
    obs.attach_profiler(Duration::from_secs(3600));

    let slo = SloConfig {
        objectives: vec![Objective::at_most(
            "queue_depth",
            "serve.queue.depth",
            Stat::Max,
            1e9,
            0.05,
            0.2,
        )],
        degrade_after: 1,
        critical_after: 100,
        recover_after: 2,
    };
    let engine = ServeEngine::start(ServeConfig {
        shards: 1,
        workers: 2,
        cache_capacity: 0,
        obs: obs.clone(),
        slo: Some(slo),
        blackbox_out: Some(path.clone()),
        ..ServeConfig::default()
    });

    // Populate every layer: one real request (flight-recorder events,
    // latency histograms), a collector tick (time-series points + SLO
    // evaluation), and a profiler tick with a span open (folded stacks).
    let graph = two_triangles();
    let response = engine
        .submit(Request::interactive(Arc::clone(&graph)))
        .wait();
    assert!(response.outcome.result().is_some());
    assert!(obs.tick_collector());
    {
        let _s = obs.span("blackbox.test.work");
        assert!(obs.tick_profiler());
    }

    // Arm the drill and submit: the worker that dequeues this job panics
    // before running it, so its handle never resolves — do NOT wait on it.
    engine.inject_panic();
    let _doomed = engine.submit(Request::batch(Arc::clone(&graph)));

    // The panic hook writes the bundle from the dying worker thread.
    let deadline = Instant::now() + Duration::from_secs(10);
    let bundle = loop {
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(v) = serde_json::from_str::<serde_json::Value>(&text) {
                break v;
            }
        }
        assert!(Instant::now() < deadline, "panic bundle never appeared");
        std::thread::sleep(Duration::from_millis(10));
    };

    assert_eq!(bundle["bundle"], "asa-blackbox");
    assert_eq!(bundle["version"].as_u64(), Some(1));
    let reason = bundle["reason"].as_str().unwrap();
    assert!(reason.starts_with("panic:"), "{reason}");
    assert!(reason.contains("blackbox drill"), "{reason}");

    // Flight recorder: the completed request left begin/end event pairs.
    let threads = bundle["flight_recorder"]["threads"].as_array().unwrap();
    let events: usize = threads
        .iter()
        .map(|t| t["events"].as_array().unwrap().len())
        .sum();
    assert!(events > 0, "flight recorder drained empty");

    // Time-series tails: the manual tick produced at least one point in
    // at least one series.
    let ts = &bundle["timeseries"];
    assert!(ts["ticks"].as_u64().unwrap() >= 1, "{ts:?}");
    assert!(!ts["series"].as_array().unwrap().is_empty());

    // Folded profile: the ticked span is in there.
    let prof = &bundle["profile"];
    assert!(prof["samples"].as_u64().unwrap() >= 1, "{prof:?}");
    let folded = prof["folded"].as_array().unwrap();
    assert!(
        folded
            .iter()
            .any(|l| l.as_str().unwrap().contains("blackbox.test.work")),
        "{folded:?}"
    );

    // Resource + metrics snapshots render (metrics carry serve counters).
    assert!(bundle["metrics"]["counters"].as_array().is_some());
    assert!(
        !matches!(bundle["resource"], serde_json::Value::Null) || cfg!(not(target_os = "linux"))
    );

    // Engine sections: per-shard occupancy and the SLO state machine.
    let shards = bundle["sections"]["serve.shards"].as_array().unwrap();
    assert_eq!(shards.len(), 1);
    assert!(shards[0]["queue_depth"].as_u64().is_some());
    assert!(shards[0]["store"].as_u64().is_some());
    let slo_section = &bundle["sections"]["serve.slo"];
    assert_eq!(slo_section["state"], "healthy");
    assert_eq!(slo_section["objectives"][0]["name"], "queue_depth");

    // Graceful shutdown: remaining workers drain, the bundle is
    // overwritten with reason "shutdown", and the hook is disarmed.
    engine.shutdown();
    let text = std::fs::read_to_string(&path).unwrap();
    let bundle: serde_json::Value = serde_json::from_str(&text).unwrap();
    assert_eq!(bundle["reason"], "shutdown");
    assert!(bundle["sections"]["serve.shards"].as_array().is_some());

    std::fs::remove_dir_all(&dir).ok();
}
