//! Integration coverage of the sharded engine: routing determinism,
//! work-stealing liveness, steal-vs-affinity invariants under concurrent
//! submit/shutdown, per-shard statistics, and the per-shard
//! flight-recorder counter tracks.
//!
//! Tests that pin shard counts construct an explicit [`ServeConfig`]
//! rather than relying on `ASA_SERVE_SHARDS` (which parametrizes the
//! *default*-config suites in CI).

use std::sync::Arc;
use std::time::Duration;

use asa_graph::{CsrGraph, GraphBuilder};
use asa_obs::{Obs, TraceKind};
use asa_serve::{Outcome, Priority, ReplicationConfig, Request, Router, ServeConfig, ServeEngine};

fn clique_ring(cliques: usize, size: usize, seed: u64) -> Arc<CsrGraph> {
    let n = cliques * size;
    let mut b = GraphBuilder::undirected(n);
    for c in 0..cliques {
        let base = (c * size) as u32;
        for i in 0..size as u32 {
            for j in (i + 1)..size as u32 {
                b.add_edge(base + i, base + j, 1.0 + ((seed + j as u64) % 3) as f64);
            }
        }
        b.add_edge(base, (((c + 1) % cliques) * size) as u32, 0.5);
    }
    Arc::new(b.build())
}

/// Pure-affinity replication policy (threshold 0 disables replication).
fn no_replication() -> ReplicationConfig {
    ReplicationConfig {
        threshold: 0,
        ..ReplicationConfig::default()
    }
}

fn sharded_config(shards: usize) -> ServeConfig {
    ServeConfig {
        shards,
        workers: 1,
        steal: false,
        replication: no_replication(),
        cache_capacity: 0, // force every request to run
        ..ServeConfig::default()
    }
}

#[test]
fn routing_is_deterministic_per_fingerprint() {
    // Affinity only: no stealing, no replication. Every submission of a
    // graph must execute on its fingerprint's home shard, run after run.
    let engine = ServeEngine::start(sharded_config(4));
    let router = Router::new(4, no_replication());
    let graphs: Vec<Arc<CsrGraph>> = (0..5).map(|s| clique_ring(4 + s as usize, 5, s)).collect();
    for graph in &graphs {
        let home = router.home(graph.fingerprint());
        for _ in 0..3 {
            let r = engine.submit(Request::batch(Arc::clone(graph))).wait();
            assert!(r.outcome.result().is_some());
            assert!(!r.stolen);
            assert_eq!(
                r.shard, home,
                "same fingerprint must land on the same shard at a fixed shard count"
            );
        }
    }
    let stats = engine.shutdown();
    // Work executed only on the shards the fingerprints map to.
    for s in &stats.shards {
        let homes_here = graphs
            .iter()
            .filter(|g| router.home(g.fingerprint()) == s.shard)
            .count();
        assert_eq!(s.executed_local as usize, 3 * homes_here, "{s:?}");
        assert_eq!(s.steals_in, 0);
        assert_eq!(s.steals_out, 0);
    }
    assert_eq!(stats.steals, 0);
    assert_eq!(stats.replications, 0);
}

#[test]
fn idle_shard_steals_batch_backlog() {
    // Two shards, one worker each, stealing on. Every job targets one
    // graph — one home shard — so the other shard is idle and must drain
    // the backlog by stealing.
    let engine = ServeEngine::start(ServeConfig {
        steal: true,
        ..sharded_config(2)
    });
    let graph = clique_ring(8, 6, 3);
    let home = Router::new(2, no_replication()).home(graph.fingerprint());
    let thief = 1 - home;
    let handles: Vec<_> = (0..12)
        .map(|_| engine.submit(Request::batch(Arc::clone(&graph))))
        .collect();
    let mut stolen = 0usize;
    for h in handles {
        let r = h.wait();
        assert!(r.outcome.result().is_some());
        if r.stolen {
            stolen += 1;
            assert_eq!(r.shard, thief, "a stolen job reports its executing shard");
        } else {
            assert_eq!(r.shard, home);
        }
    }
    let stats = engine.shutdown();
    assert!(stolen > 0, "the idle shard must relieve the busy one");
    assert_eq!(stats.steals as usize, stolen);
    assert_eq!(stats.shards[thief].steals_in as usize, stolen);
    assert_eq!(stats.shards[home].steals_out as usize, stolen);
    assert_eq!(
        stats.shards[home].executed_local + stats.steals,
        12,
        "local execution + steals account for every job"
    );
}

#[test]
fn interactive_stays_affine_even_with_stealing_on() {
    // Interactive backlog on one shard, stealing enabled: the idle shard
    // must NOT take interactive work — affinity is the latency promise.
    let engine = ServeEngine::start(ServeConfig {
        steal: true,
        ..sharded_config(2)
    });
    let graph = clique_ring(8, 6, 4);
    let home = Router::new(2, no_replication()).home(graph.fingerprint());
    let handles: Vec<_> = (0..8)
        .map(|_| engine.submit(Request::interactive(Arc::clone(&graph))))
        .collect();
    for h in handles {
        let r = h.wait();
        assert!(r.outcome.result().is_some());
        assert!(!r.stolen, "interactive jobs are never stolen");
        assert_eq!(r.shard, home);
    }
    let stats = engine.shutdown();
    assert_eq!(stats.steals, 0);
    assert_eq!(stats.shards[home].executed_local, 8);
}

#[test]
fn hot_graph_replication_spreads_shards() {
    // Aggressive replication: a burst on one fingerprint grows its
    // routing set, so executions spread beyond the home shard without
    // stealing. Cache off so round-robined requests actually run.
    let engine = ServeEngine::start(ServeConfig {
        replication: ReplicationConfig {
            threshold: 4,
            window: Duration::from_secs(60),
            max_replicas: 3,
        },
        ..sharded_config(4)
    });
    let graph = clique_ring(6, 5, 5);
    let handles: Vec<_> = (0..24)
        .map(|_| engine.submit(Request::batch(Arc::clone(&graph))))
        .collect();
    let mut shards_seen = std::collections::HashSet::new();
    for h in handles {
        let r = h.wait();
        assert!(r.outcome.result().is_some());
        assert!(!r.stolen);
        shards_seen.insert(r.shard);
    }
    let stats = engine.shutdown();
    assert_eq!(stats.replications, 2, "threshold crossed once per replica");
    assert_eq!(shards_seen.len(), 3, "routing set round-robins 3 shards");
    let hosted: u64 = stats.shards.iter().map(|s| s.replicas_hosted).sum();
    assert_eq!(hosted, 2);
}

#[test]
fn steal_vs_affinity_invariants_under_concurrent_submit_and_shutdown() {
    // Hammer a 3-shard engine from 4 submitter threads while the main
    // thread shuts it down mid-stream. Invariants: every request
    // terminates in exactly one outcome, interactive work is never
    // stolen, and a response's shard differs from its home only when
    // marked stolen.
    let engine = Arc::new(ServeEngine::start(ServeConfig {
        shards: 3,
        workers: 1,
        steal: true,
        replication: no_replication(),
        cache_capacity: 8,
        queue_capacity_interactive: 4,
        queue_capacity_batch: 8,
        ..ServeConfig::default()
    }));
    let router = Router::new(3, no_replication());
    let graphs: Vec<Arc<CsrGraph>> = (0..4).map(|s| clique_ring(5, 5, 30 + s)).collect();

    let submitters: Vec<_> = (0..4)
        .map(|t: usize| {
            let engine = Arc::clone(&engine);
            let graphs = graphs.clone();
            std::thread::spawn(move || {
                let mut out = Vec::new();
                for i in 0..32 {
                    let graph = Arc::clone(&graphs[(t + i) % graphs.len()]);
                    let fp = graph.fingerprint();
                    let req = if i % 3 == 0 {
                        Request::interactive(graph)
                    } else {
                        Request::batch(graph)
                    };
                    out.push((req.priority, fp, engine.submit(req)));
                }
                out
            })
        })
        .collect();

    // Shut down while submitters are likely still pushing: late submits
    // resolve Overloaded (closed queues), queued ones drain.
    std::thread::sleep(Duration::from_millis(5));
    let all: Vec<_> = submitters
        .into_iter()
        .flat_map(|s| s.join().expect("submitter must not panic"))
        .collect();
    let engine = Arc::try_unwrap(engine).unwrap_or_else(|_| panic!("all clones dropped"));
    let stats = engine.shutdown();

    let mut terminated = 0usize;
    for (priority, fp, handle) in &all {
        let r = handle.try_get().expect("shutdown resolves every request");
        terminated += 1;
        match r.outcome {
            Outcome::Ok(_) | Outcome::Degraded { .. } => {
                if *priority == Priority::Interactive {
                    assert!(!r.stolen, "interactive must stay affine");
                }
                if r.stolen {
                    assert_ne!(r.shard, router.home(*fp));
                } else {
                    assert_eq!(r.shard, router.home(*fp), "unstolen runs on the home shard");
                }
            }
            Outcome::Overloaded | Outcome::DeadlineExceeded => {}
        }
    }
    assert_eq!(terminated, all.len());
    assert_eq!(stats.submitted as usize, all.len());
    assert_eq!(
        stats.completed + stats.shed + stats.deadline_exceeded,
        stats.submitted,
        "accounting must balance: {stats:?}"
    );
    let local: u64 = stats.shards.iter().map(|s| s.executed_local).sum();
    let steals_in: u64 = stats.shards.iter().map(|s| s.steals_in).sum();
    let steals_out: u64 = stats.shards.iter().map(|s| s.steals_out).sum();
    assert_eq!(steals_in, stats.steals);
    assert_eq!(steals_out, stats.steals);
    assert!(local + steals_in >= stats.completed - stats.cache_hits);
}

#[test]
fn cache_hits_attribute_to_the_home_shard_under_pure_affinity() {
    // Affinity-only routing with the cache on: every repeat hit lands on
    // (and attributes to) the graph's home shard as a *home* hit.
    let engine = ServeEngine::start(ServeConfig {
        cache_capacity: 64,
        ..sharded_config(2)
    });
    let graph = clique_ring(4, 5, 7);
    let home = Router::new(2, no_replication()).home(graph.fingerprint());
    for i in 0..4 {
        let r = engine.submit(Request::batch(Arc::clone(&graph))).wait();
        assert_eq!(r.cache_hit, i > 0, "first computes, the rest hit");
    }
    let stats = engine.shutdown();
    assert_eq!(stats.cache_hits, 3);
    let s = &stats.shards[home];
    assert_eq!(s.cache_hits, 3);
    assert_eq!(
        s.cache_hits_home, 3,
        "pure affinity: all hits are home hits"
    );
    assert_eq!(s.cache_hits_replica, 0);
    assert_eq!(s.cache_hits_stolen, 0);
    let other = &stats.shards[1 - home];
    assert_eq!(other.cache_hits, 0);
    for s in &stats.shards {
        assert_eq!(
            s.cache_hits,
            s.cache_hits_home + s.cache_hits_replica + s.cache_hits_stolen,
            "affinity split must account for every hit: {s:?}"
        );
    }
}

#[test]
fn replica_routed_hits_attribute_as_replica_hits() {
    // Aggressive replication with the cache on: once the hot graph's
    // routing set grows, round-robined submissions hit the cache while
    // routed to a *replica* shard, and attribute there as replica hits.
    let engine = ServeEngine::start(ServeConfig {
        replication: ReplicationConfig {
            threshold: 3,
            window: Duration::from_secs(60),
            max_replicas: 2,
        },
        cache_capacity: 64,
        ..sharded_config(2)
    });
    let graph = clique_ring(5, 5, 11);
    let home = Router::new(2, no_replication()).home(graph.fingerprint());
    for _ in 0..12 {
        let r = engine.submit(Request::batch(Arc::clone(&graph))).wait();
        assert!(r.outcome.result().is_some());
    }
    let stats = engine.shutdown();
    assert!(
        stats.replications >= 1,
        "the burst must trigger replication"
    );
    let replica_hits: u64 = stats.shards.iter().map(|s| s.cache_hits_replica).sum();
    assert!(
        replica_hits > 0,
        "round-robined admissions must hit on the replica shard: {:?}",
        stats.shards
    );
    // Replica hits land off the home shard; home hits on it.
    assert_eq!(stats.shards[home].cache_hits_replica, 0);
    assert!(stats.shards[home].cache_hits_home > 0);
    assert_eq!(stats.shards[1 - home].cache_hits_home, 0);
    for s in &stats.shards {
        assert_eq!(
            s.cache_hits,
            s.cache_hits_home + s.cache_hits_replica + s.cache_hits_stolen
        );
    }
}

#[test]
fn stolen_jobs_report_their_late_cache_hits_as_stolen() {
    // Engineered steal-then-hit: the home shard's single worker is pinned
    // down by interactive fillers (never stealable), while two identical
    // batch jobs for the target graph wait behind them. The idle shard
    // steals the first (computes, fills the cache), then steals the
    // second — which now finds the cache filled. That late hit must
    // attribute to the *routed* shard's stolen-hit counter.
    let engine = ServeEngine::start(ServeConfig {
        steal: true,
        cache_capacity: 64,
        ..sharded_config(2)
    });
    let target = clique_ring(2, 4, 13);
    let router = Router::new(2, no_replication());
    let home = router.home(target.fingerprint());

    // Fillers routed to the same home shard, structurally distinct (so
    // none hits the cache) and big enough that the home worker stays
    // busy while the thief clears both batch jobs.
    let fillers: Vec<Arc<CsrGraph>> = (0..40u64)
        .map(|s| clique_ring(8 + s as usize, 8, 100 + s))
        .filter(|g| router.home(g.fingerprint()) == home)
        .take(6)
        .collect();
    assert!(fillers.len() == 6, "need 6 home-routed filler graphs");
    let mut handles: Vec<_> = fillers
        .iter()
        .map(|g| engine.submit(Request::interactive(Arc::clone(g))))
        .collect();
    handles.push(engine.submit(Request::batch(Arc::clone(&target))));
    handles.push(engine.submit(Request::batch(Arc::clone(&target))));
    for h in handles {
        assert!(h.wait().outcome.result().is_some());
    }
    let stats = engine.shutdown();
    let s = &stats.shards[home];
    assert!(
        s.cache_hits_stolen > 0,
        "the second stolen job must observe the first one's cache fill: {:?}",
        stats.shards
    );
    assert_eq!(
        s.cache_hits,
        s.cache_hits_home + s.cache_hits_replica + s.cache_hits_stolen
    );
}

#[test]
fn per_shard_depth_counter_tracks_recorded() {
    // With a flight recorder attached, pushes emit both the aggregate
    // `serve.queue.depth` track and the routed shard's
    // `serve.shard.N.queue.depth` track.
    let obs = Obs::new_enabled();
    obs.attach_recorder(1 << 12);
    let engine = ServeEngine::start(ServeConfig {
        obs: obs.clone(),
        steal: true,
        ..sharded_config(2)
    });
    let graphs: Vec<Arc<CsrGraph>> = (0..4)
        .map(|s| clique_ring(4 + s as usize, 5, 40 + s))
        .collect();
    let handles: Vec<_> = graphs
        .iter()
        .flat_map(|g| (0..3).map(|_| engine.submit(Request::batch(Arc::clone(g)))))
        .collect();
    for h in handles {
        assert!(h.wait().outcome.result().is_some());
    }
    let stats = engine.shutdown();
    let snap = obs.trace_snapshot().expect("recorder attached");
    let counter_names: std::collections::HashSet<&str> = snap
        .threads
        .iter()
        .flat_map(|t| t.events.iter())
        .filter(|e| matches!(e.kind, TraceKind::Counter(_)))
        .map(|e| e.name)
        .collect();
    assert!(counter_names.contains("serve.queue.depth"));
    for s in &stats.shards {
        if s.executed_local + s.steals_out > 0 {
            let name = format!("serve.shard.{}.queue.depth", s.shard);
            assert!(
                counter_names.contains(name.as_str()),
                "missing {name}; have {counter_names:?}"
            );
        }
    }
}
