//! End-to-end flight-recorder coverage of the serving engine.
//!
//! A recorder-enabled [`asa_obs::Obs`] handle goes into [`ServeConfig`];
//! every submission must then come back with a unique nonzero
//! [`asa_serve::Response::trace_id`], and the exported snapshot must carry
//! the full stage tiling (`cache_probe` → `queue` → `dispatch` →
//! `execute` → `respond` inside the `request` envelope) with the stages
//! accounting for ≥95% of each slow request's wall time.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use asa_graph::{CsrGraph, GraphBuilder};
use asa_infomap::InfomapConfig;
use asa_obs::chrome::chrome_trace_string;
use asa_obs::tail::{attribute_requests, TailReport};
use asa_obs::Obs;
use asa_serve::{Request, ServeConfig, ServeEngine};

fn clique_ring(cliques: usize, size: usize, seed: u64) -> Arc<CsrGraph> {
    let n = cliques * size;
    let mut b = GraphBuilder::undirected(n);
    for c in 0..cliques {
        let base = (c * size) as u32;
        for i in 0..size as u32 {
            for j in (i + 1)..size as u32 {
                b.add_edge(base + i, base + j, 1.0 + ((seed + j as u64) % 3) as f64);
            }
        }
        b.add_edge(base, (((c + 1) % cliques) * size) as u32, 0.5);
    }
    Arc::new(b.build())
}

#[test]
fn requests_carry_trace_ids_and_stages_cover_wall_time() {
    let obs = Obs::new_enabled();
    obs.attach_recorder(1 << 14);
    let engine = ServeEngine::start(ServeConfig {
        workers: 2,
        cache_capacity: 16,
        cache_shards: 1,
        obs: obs.clone(),
        ..ServeConfig::default()
    });

    // Eight distinct graphs (no accidental cache hits), slow enough that
    // the execute stage dominates and gaps between stages stay tiny.
    let cfg = InfomapConfig {
        outer_loops: 3,
        ..InfomapConfig::default()
    };
    // Distinct clique counts => distinct fingerprints (same-seed-mod-3
    // weights would otherwise collide).
    let graphs: Vec<Arc<CsrGraph>> = (0..8).map(|s| clique_ring(10 + s as usize, 8, s)).collect();
    let handles: Vec<_> = graphs
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let req = if i % 2 == 0 {
                Request::interactive(Arc::clone(g))
            } else {
                Request::batch(Arc::clone(g))
            };
            engine.submit(req.with_config(cfg.clone()))
        })
        .collect();
    let mut responses: Vec<_> = handles.iter().map(|h| h.wait()).collect();
    for r in &responses {
        assert!(!r.cache_hit);
        assert_ne!(r.trace_id, 0, "recorder attached => real trace id");
    }

    // A repeat of a finished graph resolves from the cache — with its own
    // fresh trace id.
    let hit = engine
        .submit(Request::interactive(Arc::clone(&graphs[0])).with_config(cfg.clone()))
        .wait();
    assert!(hit.cache_hit);
    assert_ne!(hit.trace_id, 0);
    responses.push(hit);

    let mut ids: Vec<u64> = responses.iter().map(|r| r.trace_id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 9, "every submission mints a unique id");

    engine.shutdown();
    let snap = obs.trace_snapshot().expect("recorder attached");

    // One trace track per worker thread that ran work, named after it.
    // With `ASA_SERVE_SHARDS` > 1 (CI), work spreads across shards and
    // idle workers record nothing, so only the upper bound is exact.
    let shards = ServeConfig::default().shards.max(1);
    let worker_tracks = snap
        .threads
        .iter()
        .filter(|t| t.name.starts_with("asa-serve-"))
        .count();
    assert!(
        (1..=2 * shards).contains(&worker_tracks),
        "worker tracks: {worker_tracks} with {shards} shards"
    );
    if shards == 1 {
        assert_eq!(worker_tracks, 2, "8 graphs keep both workers busy");
    }

    // Every submission produced a closed request envelope, and the stage
    // tiling is complete on the worker-run ones.
    let attributed = attribute_requests(&snap, "request");
    assert_eq!(attributed.len(), 9);
    let by_trace: HashMap<u64, _> = attributed.iter().map(|r| (r.trace, r)).collect();
    for resp in &responses {
        let att = by_trace[&resp.trace_id];
        let stages: Vec<&str> = att.stages.iter().map(|&(n, _)| n).collect();
        assert!(stages.contains(&"cache_probe"), "stages: {stages:?}");
        if resp.cache_hit {
            assert!(!stages.contains(&"execute"), "hits never run: {stages:?}");
        } else {
            for want in ["queue", "dispatch", "execute", "respond"] {
                assert!(stages.contains(&want), "missing {want} in {stages:?}");
            }
            assert!(att.attributed_us() <= att.wall_us);
            if att.wall_us > 1_000 {
                assert!(
                    att.coverage() >= 0.95,
                    "stages must cover >=95% of a slow request, got {:.3}",
                    att.coverage()
                );
            }
        }
    }

    // The tail report (slowest quarter = the worker-run requests) agrees.
    let report = TailReport::from_snapshot(&snap, "request", 25.0);
    assert_eq!(report.requests, 9);
    assert_eq!(report.tail.len(), 3);
    assert!(report.min_coverage() >= 0.95);
    assert!(report.render().contains("(wall)"));

    // The Chrome export carries the async stage events, the infomap spans
    // recorded through the worker's handle, and the thread names.
    let text = chrome_trace_string(&snap);
    assert!(text.contains("asa-serve-0"));
    assert!(text.contains("\"ph\":\"b\"") && text.contains("\"ph\":\"e\""));
    assert!(text.contains("\"ph\":\"B\""), "infomap spans recorded");
    assert!(text.contains("\"id\":\"0x"));
}

#[test]
fn without_a_recorder_trace_ids_are_zero() {
    let engine = ServeEngine::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default() // disabled obs, no recorder
    });
    let r = engine
        .submit(Request::interactive(clique_ring(4, 5, 1)))
        .wait();
    assert_eq!(r.trace_id, 0, "no recorder => null id, zero overhead");
    engine.shutdown();
}

#[test]
fn deadline_and_shed_paths_still_close_their_envelopes() {
    let obs = Obs::new_enabled();
    obs.attach_recorder(1 << 12);
    let engine = ServeEngine::start(ServeConfig {
        workers: 1,
        queue_capacity_interactive: 1,
        queue_capacity_batch: 1,
        cache_capacity: 0,
        obs: obs.clone(),
        ..ServeConfig::default()
    });
    let graph = clique_ring(8, 6, 7);
    // Saturate the tiny queues so some submissions shed, and give others
    // an already-expired deadline.
    let handles: Vec<_> = (0..12)
        .map(|i| {
            let req = Request::batch(Arc::clone(&graph));
            let req = if i % 3 == 0 {
                req.with_deadline(Duration::ZERO)
            } else {
                req
            };
            engine.submit(req)
        })
        .collect();
    let responses: Vec<_> = handles.iter().map(|h| h.wait()).collect();
    engine.shutdown();

    let snap = obs.trace_snapshot().unwrap();
    let attributed = attribute_requests(&snap, "request");
    // Every submission — completed, shed, or expired — closed its
    // envelope exactly once.
    assert_eq!(attributed.len(), responses.len());
    let mut ids: Vec<u64> = attributed.iter().map(|r| r.trace).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), responses.len());
}
