//! End-to-end SLO acceptance: an induced overload burst drives the
//! health state machine Healthy → Degraded → Healthy, the transitions
//! land in the flight recorder as `slo.*` instants, and the scraped
//! Prometheus exposition carries non-empty per-shard queue-depth
//! time-series.
//!
//! Determinism: the collector is attached with an hours-long resolution
//! so its background thread never ticks on its own; every evaluation in
//! this test comes from an explicit `tick_collector` call.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use asa_graph::{CsrGraph, EdgeDelta, GraphBuilder};
use asa_obs::{expose, HealthState, Objective, Obs, SloConfig, Stat, TimeSeriesConfig, TraceKind};
use asa_serve::{ReplicationConfig, Request, ServeConfig, ServeEngine};

fn clique_ring(cliques: usize, size: usize, seed: u64) -> Arc<CsrGraph> {
    let n = cliques * size;
    let mut b = GraphBuilder::undirected(n);
    for c in 0..cliques {
        let base = (c * size) as u32;
        for i in 0..size as u32 {
            for j in (i + 1)..size as u32 {
                b.add_edge(base + i, base + j, 1.0 + ((seed + j as u64) % 3) as f64);
            }
        }
        b.add_edge(base, (((c + 1) % cliques) * size) as u32, 0.5);
    }
    Arc::new(b.build())
}

#[test]
fn overload_burst_degrades_then_recovers_with_visible_transitions() {
    // Obs with a flight recorder AND a (manually ticked) collector — both
    // attached before engine start, as the SLO wiring requires.
    let obs = Obs::new_enabled();
    obs.attach_recorder(1 << 12);
    obs.attach_collector(TimeSeriesConfig {
        resolution: Duration::from_secs(3600),
        slots: 512,
    });

    // Objective: total queue depth at most 4 (max over 50 ms / 200 ms
    // burn windows). One burning evaluation degrades; two clean ones
    // recover.
    let slo = SloConfig {
        objectives: vec![Objective::at_most(
            "queue_depth",
            "serve.queue.depth",
            Stat::Max,
            4.0,
            0.05,
            0.2,
        )],
        degrade_after: 1,
        critical_after: 100,
        recover_after: 2,
    };
    let engine = ServeEngine::start(ServeConfig {
        shards: 2,
        workers: 1,
        steal: false,
        replication: ReplicationConfig {
            threshold: 0,
            ..ReplicationConfig::default()
        },
        cache_capacity: 0, // every request must run → real backlog
        degrade_depth: 0,  // ladder off: this test is about the SLO layer
        obs: obs.clone(),
        slo: Some(slo),
        ..ServeConfig::default()
    });
    assert_eq!(engine.health(), HealthState::Healthy);

    // Induced overload: 8× more concurrent batch work than the 2×1
    // workers can absorb (32 jobs), all submitted before anything drains.
    let graph_a = clique_ring(6, 6, 17);
    let graph_b = clique_ring(7, 6, 23);
    let handles: Vec<_> = (0..32)
        .map(|i| {
            let g = if i % 2 == 0 { &graph_a } else { &graph_b };
            engine.submit(Request::batch(Arc::clone(g)))
        })
        .collect();
    assert!(
        engine.queue_depth() > 8,
        "burst must actually back up the queues"
    );

    // Collector tick mid-burst: depth samples breach both burn windows →
    // one evaluation → Degraded.
    assert!(obs.tick_collector());
    assert_eq!(engine.health(), HealthState::Degraded);

    for h in handles {
        assert!(h.wait().outcome.result().is_some());
    }
    assert_eq!(engine.queue_depth(), 0);

    // Recovery: age the burst samples out of the long burn window, then
    // two clean evaluations step back down to Healthy (hysteresis).
    std::thread::sleep(Duration::from_millis(250));
    obs.tick_collector();
    assert_eq!(
        engine.health(),
        HealthState::Degraded,
        "one clean tick is not enough (recover_after = 2)"
    );
    obs.tick_collector();
    assert_eq!(engine.health(), HealthState::Healthy);

    // Transition instants are in the flight recorder, in order.
    let snap = obs.trace_snapshot().expect("recorder attached");
    let instants: Vec<(&str, u64)> = snap
        .threads
        .iter()
        .flat_map(|t| t.events.iter())
        .filter(|e| matches!(e.kind, TraceKind::Instant) && e.name.starts_with("slo."))
        .map(|e| (e.name, e.t_us))
        .collect();
    let degraded_at = instants
        .iter()
        .find(|(n, _)| *n == "slo.degraded")
        .expect("degrade transition recorded")
        .1;
    let healthy_at = instants
        .iter()
        .find(|(n, _)| *n == "slo.healthy")
        .expect("recovery transition recorded")
        .1;
    assert!(degraded_at < healthy_at, "transitions in causal order");

    // Scraped exposition: valid text format, serve.health gauge, and a
    // non-empty queue-depth time-series for every shard.
    let server = expose::serve("127.0.0.1:0", obs.clone()).expect("bind scrape endpoint");
    let mut conn = TcpStream::connect(server.local_addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(conn, "GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).unwrap();
    let body = raw.split_once("\r\n\r\n").expect("http response").1;
    expose::validate(body).unwrap_or_else(|e| panic!("invalid exposition: {e:#?}"));
    assert!(body.contains("serve_health 0"), "recovered health gauge");
    for shard in 0..2 {
        let needle =
            format!("asa_timeseries_samples{{series=\"serve.shard.{shard}.queue.depth\"}}");
        let line = body
            .lines()
            .find(|l| l.starts_with(&needle))
            .unwrap_or_else(|| panic!("missing per-shard depth series: {needle}"));
        let samples: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(samples >= 3.0, "per-shard depth series non-empty: {line}");
    }
    drop(server);

    // The shutdown report narrates the whole episode.
    let report = engine.slo_report().expect("slo configured");
    assert!(report.contains("queue_depth"), "{report}");
    assert!(report.contains("degraded"), "{report}");
    let stats = engine.shutdown();
    assert_eq!(stats.completed, 32);
}

#[test]
fn update_fallback_rate_objective_tracks_the_quality_guard() {
    // An SLO objective over the dynamic-graph telemetry: degrade when
    // more than half of the warm updates in the burn windows were forced
    // to a full multilevel run (`serve.update.fallback_permille` > 500).
    let obs = Obs::new_enabled();
    obs.attach_collector(TimeSeriesConfig {
        resolution: Duration::from_secs(3600),
        slots: 512,
    });
    let slo = SloConfig {
        objectives: vec![Objective::at_most(
            "update_fallback",
            "serve.update.fallback_permille",
            Stat::Max,
            500.0,
            0.05,
            0.2,
        )],
        degrade_after: 1,
        critical_after: 100,
        recover_after: 2,
    };
    let engine = ServeEngine::start(ServeConfig {
        workers: 1,
        obs: obs.clone(),
        slo: Some(slo),
        ..ServeConfig::default()
    });
    let graph = clique_ring(6, 4, 11);

    // Cold seed: a full run by construction, not a guard decision, so
    // the fallback rate stays 0 and the engine stays Healthy.
    engine
        .submit(Request::update(Arc::clone(&graph), EdgeDelta::new()))
        .wait();
    assert!(obs.tick_collector());
    assert_eq!(engine.health(), HealthState::Healthy);

    // Densify every vertex pair: the old partition is globally invalid,
    // the quality guard falls back, and the warm fallback rate pins at
    // 1000 permille — one burning evaluation degrades.
    let mut storm = EdgeDelta::new();
    for u in 0..24u32 {
        for v in (u + 1)..24 {
            storm.insert(u, v, 6.0);
        }
    }
    let burst = engine
        .submit(Request::update(Arc::clone(&graph), storm))
        .wait();
    assert!(burst.update.expect("update info").fallback.is_some());
    assert!(obs.tick_collector());
    assert_eq!(engine.health(), HealthState::Degraded);

    // Two gentle local edits resolve incrementally, pulling the rate back
    // to 333 permille...
    for (u, v) in [(1u32, 2u32), (3, 5)] {
        let mut d = EdgeDelta::new();
        d.insert(u, v, 0.5);
        let r = engine.submit(Request::update(Arc::clone(&graph), d)).wait();
        assert!(
            r.update.expect("update info").incremental,
            "gentle edit must stay on the incremental path"
        );
    }
    // ...then aging the storm sample out of the long burn window plus two
    // clean evaluations recovers (hysteresis).
    std::thread::sleep(Duration::from_millis(250));
    obs.tick_collector();
    obs.tick_collector();
    assert_eq!(engine.health(), HealthState::Healthy);

    let stats = engine.shutdown();
    assert_eq!(stats.update_cold, 1);
    assert_eq!(stats.update_fallback, 1);
    assert_eq!(stats.update_incremental, 2);
}

#[test]
fn engine_without_slo_config_is_always_healthy() {
    let engine = ServeEngine::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let r = engine
        .submit(Request::interactive(clique_ring(3, 4, 5)))
        .wait();
    assert!(r.outcome.result().is_some());
    assert_eq!(engine.health(), HealthState::Healthy);
    assert!(engine.slo_report().is_none());
    engine.shutdown();
}

#[test]
fn slo_evaluations_ride_the_background_collector_thread() {
    // A real (fast) collector drives evaluations with no manual ticks:
    // an idle engine stays Healthy while the health gauge gets set by
    // the observer on every tick.
    let obs = Obs::new_enabled();
    obs.attach_collector(TimeSeriesConfig {
        resolution: Duration::from_millis(5),
        slots: 128,
    });
    let slo = SloConfig {
        objectives: vec![Objective::at_most(
            "queue_depth",
            "serve.queue.depth",
            Stat::Max,
            4.0,
            0.05,
            0.2,
        )],
        ..SloConfig::default()
    };
    let engine = ServeEngine::start(ServeConfig {
        workers: 1,
        obs: obs.clone(),
        slo: Some(slo),
        ..ServeConfig::default()
    });
    let store = obs.timeseries().unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while store.ticks() < 5 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(store.ticks() >= 5, "collector thread must tick");
    assert_eq!(engine.health(), HealthState::Healthy);
    obs.stop_collector();
    engine.shutdown();
}
