//! Overload stress tests for the serving engine — the acceptance
//! criteria of the serving layer:
//!
//! * under sustained overload the engine never panics or deadlocks,
//! * queue depth never exceeds the configured bound,
//! * every submitted request terminates in exactly one of
//!   `Ok` / `Degraded` / `Overloaded` / `DeadlineExceeded`,
//! * overload actually sheds (`Overloaded` occurs), and
//! * the degradation ladder fires for batch work under pressure.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use asa_graph::{CsrGraph, GraphBuilder};
use asa_infomap::InfomapConfig;
use asa_serve::{Outcome, Priority, Request, ServeConfig, ServeEngine};

/// A ring of cliques: enough structure that Infomap does real work, small
/// enough that a stress test stays fast.
fn clique_ring(cliques: usize, size: usize, seed: u64) -> Arc<CsrGraph> {
    let n = cliques * size;
    let mut b = GraphBuilder::undirected(n);
    for c in 0..cliques {
        let base = (c * size) as u32;
        for i in 0..size as u32 {
            for j in (i + 1)..size as u32 {
                b.add_edge(base + i, base + j, 1.0 + ((seed + j as u64) % 3) as f64);
            }
        }
        b.add_edge(base, (((c + 1) % cliques) * size) as u32, 0.5);
    }
    Arc::new(b.build())
}

#[test]
fn overload_never_panics_every_request_terminates() {
    const QUEUE_INTERACTIVE: usize = 4;
    const QUEUE_BATCH: usize = 8;
    const SUBMITTERS: usize = 4;
    const PER_SUBMITTER: usize = 64;

    let engine = Arc::new(ServeEngine::start(ServeConfig {
        workers: 2,
        queue_capacity_interactive: QUEUE_INTERACTIVE,
        queue_capacity_batch: QUEUE_BATCH,
        cache_capacity: 16,
        cache_shards: 4,
        cache_ttl: Duration::from_secs(60),
        degrade_depth: 2,
        ..ServeConfig::default()
    }));

    // A few distinct graphs so the cache absorbs some load but not all.
    let graphs: Vec<Arc<CsrGraph>> = (0..6).map(|s| clique_ring(8, 6, s)).collect();

    let max_depth_seen = Arc::new(AtomicUsize::new(0));
    let counts = Arc::new([
        AtomicUsize::new(0), // ok
        AtomicUsize::new(0), // degraded
        AtomicUsize::new(0), // overloaded
        AtomicUsize::new(0), // deadline_exceeded
    ]);

    let submitters: Vec<_> = (0..SUBMITTERS)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let graphs = graphs.clone();
            let max_depth_seen = Arc::clone(&max_depth_seen);
            let counts = Arc::clone(&counts);
            std::thread::spawn(move || {
                let mut handles = Vec::with_capacity(PER_SUBMITTER);
                for i in 0..PER_SUBMITTER {
                    let graph = Arc::clone(&graphs[(t + i) % graphs.len()]);
                    let mut req = if i % 3 == 0 {
                        Request::interactive(graph)
                    } else {
                        Request::batch(graph)
                    };
                    if i % 7 == 0 {
                        // Mix of generous and already-hopeless deadlines.
                        let ms = if i % 14 == 0 { 0 } else { 30_000 };
                        req = req.with_deadline(Duration::from_millis(ms));
                    }
                    handles.push(engine.submit(req));
                    max_depth_seen.fetch_max(engine.queue_depth(), Ordering::Relaxed);
                }
                for h in handles {
                    let response = h.wait();
                    let slot = match response.outcome {
                        Outcome::Ok(ref r) | Outcome::Degraded { result: ref r, .. } => {
                            // Any returned partition is complete and valid.
                            assert_eq!(r.partition.len(), graphs[0].num_nodes());
                            assert!(r.codelength.is_finite());
                            if matches!(response.outcome, Outcome::Ok(_)) {
                                0
                            } else {
                                1
                            }
                        }
                        Outcome::Overloaded => 2,
                        Outcome::DeadlineExceeded => 3,
                    };
                    counts[slot].fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    for s in submitters {
        s.join().expect("submitter thread must not panic");
    }

    let stats = engine.stats();
    let resolved: usize = counts.iter().map(|c| c.load(Ordering::Relaxed)).sum();
    assert_eq!(
        resolved,
        SUBMITTERS * PER_SUBMITTER,
        "every request terminates in exactly one outcome"
    );
    assert_eq!(stats.submitted as usize, SUBMITTERS * PER_SUBMITTER);
    // Queue capacities are per shard; the engine-wide bound scales with
    // the shard count (`ASA_SERVE_SHARDS` in CI).
    let shards = ServeConfig::default().shards.max(1);
    assert!(
        max_depth_seen.load(Ordering::Relaxed) <= (QUEUE_INTERACTIVE + QUEUE_BATCH) * shards,
        "queue depth must stay within the configured per-shard bounds"
    );
    assert_eq!(stats.shards.len(), shards);
    let shard_shed: u64 = stats.shards.iter().map(|s| s.shed).sum();
    assert_eq!(
        shard_shed, stats.shed,
        "every shed attributes to exactly one shard"
    );
    let shard_hits: u64 = stats.shards.iter().map(|s| s.cache_hits).sum();
    assert_eq!(shard_hits, stats.cache_hits);
    assert!(
        stats.completed + stats.shed + stats.deadline_exceeded == stats.submitted,
        "engine accounting must balance: {stats:?}"
    );
    assert!(stats.cache_hits > 0, "repeated graphs must hit the cache");

    // The concurrent phase may or may not shed, depending on how the
    // scheduler interleaves submitters and workers (fast workers cache
    // all six keys and later submissions hit at admission). Force the
    // overload deterministically: a burst of slow, cache-cold jobs
    // (distinct configs => distinct keys) against the tiny batch queues.
    // Workers can't drain multi-millisecond jobs inside a tight submit
    // loop, so pushes must find the queues full.
    let slow = clique_ring(24, 8, 99);
    let burst: Vec<_> = (0..64)
        .map(|i| {
            let cfg = InfomapConfig {
                max_sweeps: 50 + i,
                outer_loops: 4,
                ..InfomapConfig::default()
            };
            engine.submit(Request::batch(Arc::clone(&slow)).with_config(cfg))
        })
        .collect();
    let burst_shed = burst
        .into_iter()
        .filter(|h| matches!(h.wait().outcome, Outcome::Overloaded))
        .count();
    assert!(
        burst_shed > 0,
        "an overloaded engine must shed: tiny queues, 64 slow cache-cold jobs"
    );

    // Cleanly drains whatever is still queued.
    let final_stats = Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("all clones dropped"))
        .shutdown();
    assert_eq!(final_stats.queue_depth_last, 0);
    assert!(
        final_stats.completed + final_stats.shed + final_stats.deadline_exceeded
            == final_stats.submitted,
        "final accounting must balance: {final_stats:?}"
    );
}

#[test]
fn pressure_degrades_batch_before_shedding() {
    // One worker, deep batch queue, degrade threshold 1: every batch job
    // dequeued while others wait runs degraded.
    let engine = ServeEngine::start(ServeConfig {
        workers: 1,
        queue_capacity_interactive: 4,
        queue_capacity_batch: 64,
        cache_capacity: 0, // force every request to run
        degrade_depth: 1,
        ..ServeConfig::default()
    });
    let graph = clique_ring(6, 5, 1);
    let handles: Vec<_> = (0..24)
        .map(|_| engine.submit(Request::batch(Arc::clone(&graph))))
        .collect();
    let mut degraded = 0usize;
    for h in handles {
        match h.wait().outcome {
            Outcome::Degraded { .. } => degraded += 1,
            Outcome::Ok(_) => {}
            other => panic!("unexpected outcome under pressure: {}", other.name()),
        }
    }
    assert!(
        degraded > 0,
        "queue pressure must lower batch quality before shedding"
    );
    let stats = engine.shutdown();
    assert_eq!(stats.degraded_pressure as usize, degraded);
    assert_eq!(stats.shed, 0, "nothing sheds while the queue has room");
}

#[test]
fn interactive_never_degraded_by_pressure() {
    let engine = ServeEngine::start(ServeConfig {
        workers: 1,
        queue_capacity_interactive: 64,
        queue_capacity_batch: 64,
        cache_capacity: 0,
        degrade_depth: 1, // aggressive ladder — must still spare interactive
        ..ServeConfig::default()
    });
    let graph = clique_ring(6, 5, 2);
    let handles: Vec<_> = (0..24)
        .map(|_| engine.submit(Request::interactive(Arc::clone(&graph))))
        .collect();
    for h in handles {
        assert!(
            matches!(h.wait().outcome, Outcome::Ok(_)),
            "interactive requests are never quality-degraded by load"
        );
    }
    let stats = engine.shutdown();
    assert_eq!(stats.degraded_pressure, 0);
}

#[test]
fn tight_deadline_terminates_promptly_with_valid_or_no_result() {
    let engine = ServeEngine::start(ServeConfig {
        workers: 2,
        cache_capacity: 0,
        ..ServeConfig::default()
    });
    // A slower config so mid-run expiry is plausible alongside
    // queue-expiry; either way the request must terminate quickly.
    let graph = clique_ring(24, 8, 3);
    let cfg = InfomapConfig {
        outer_loops: 8,
        max_sweeps: 200,
        ..InfomapConfig::default()
    };
    let handles: Vec<_> = (0..8)
        .map(|i| {
            engine.submit(
                Request::batch(Arc::clone(&graph))
                    .with_config(cfg.clone())
                    .with_deadline(Duration::from_micros(200 * (i as u64 + 1))),
            )
        })
        .collect();
    for h in handles {
        let response = h.wait();
        match response.outcome {
            Outcome::DeadlineExceeded => {}
            Outcome::Degraded { ref result, .. } | Outcome::Ok(ref result) => {
                // If it raced the deadline and finished (or stopped at a
                // sweep boundary), the partition is complete and valid.
                assert_eq!(result.partition.len(), graph.num_nodes());
                assert!(result.codelength.is_finite());
            }
            Outcome::Overloaded => panic!("queues are large enough not to shed here"),
        }
    }
    engine.shutdown();
}

#[test]
fn cache_distinguishes_ttl_expiry_from_lru_eviction() {
    // Single-shard cache of capacity 2 with a short TTL. Three distinct
    // graphs inserted back-to-back force exactly one LRU eviction of a
    // *live* entry; re-requesting a cached graph after the TTL elapses
    // drops it as *expired*. The two must be counted separately.
    let engine = ServeEngine::start(ServeConfig {
        workers: 1,
        cache_capacity: 2,
        cache_shards: 1,
        cache_ttl: Duration::from_millis(40),
        ..ServeConfig::default()
    });
    let graphs: Vec<Arc<CsrGraph>> = (0..3).map(|s| clique_ring(4, 5, 20 + s)).collect();

    // Sequential waits keep the insert order deterministic: g0, g1 fill
    // the shard, g2 evicts the live LRU entry (g0).
    for g in &graphs {
        let r = engine.submit(Request::interactive(Arc::clone(g))).wait();
        assert!(!r.cache_hit);
    }
    let mid = engine.stats();
    assert_eq!(mid.cache_evicted, 1, "third insert evicts the live LRU");
    assert_eq!(mid.cache_expired, 0, "nothing has aged out yet");

    // Past the TTL, a resident entry is dropped on touch as expired — not
    // as an eviction.
    std::thread::sleep(Duration::from_millis(60));
    let r = engine
        .submit(Request::interactive(Arc::clone(&graphs[1])))
        .wait();
    assert!(!r.cache_hit, "expired entry must not be served");
    let stats = engine.shutdown();
    assert_eq!(stats.cache_evicted, 1, "expiry must not count as eviction");
    assert!(
        stats.cache_expired >= 1,
        "TTL drop must count as expiry: {stats:?}"
    );
}

#[test]
fn priority_classes_share_the_engine() {
    // Interleave classes and distinct graphs; everything resolves, and
    // per-class latency histograms both record.
    let engine = ServeEngine::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let a = clique_ring(4, 5, 10);
    let b = clique_ring(5, 4, 11);
    let handles: Vec<_> = (0..20)
        .map(|i| {
            let graph = if i % 2 == 0 { &a } else { &b };
            let req = if i % 2 == 0 {
                Request::interactive(Arc::clone(graph))
            } else {
                Request::batch(Arc::clone(graph))
            };
            (req.priority, engine.submit(req))
        })
        .collect();
    for (_, h) in &handles {
        assert!(h.wait().outcome.result().is_some());
    }
    let stats = engine.shutdown();
    assert_eq!(stats.completed, 20);
    assert!(stats.latency_interactive.count >= 10);
    assert!(stats.latency_batch.count >= 10);
    assert!(stats.latency_interactive.p50_us >= 0.0);
    let _ = (Priority::Interactive.name(), Priority::Batch.name());
}
