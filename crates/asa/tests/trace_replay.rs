//! Batched trace replay of instrumented ASA sessions.
//!
//! A deliberately tiny CAM forces LRU evictions and overflowed gathers, so
//! the recorded stream carries `set_phase(OVERFLOW)` and dependent-load
//! markers; replaying it in small blocks must reproduce the inline
//! per-event charges bit for bit, including the overflow attribution.

use asa_accel::{AsaAccumulator, AsaConfig};
use asa_simarch::accum::FlowAccumulator;
use asa_simarch::events::phase;
use asa_simarch::{BatchedCore, CoreModel, EventSink, KernelReport, MachineConfig};

fn assert_bitwise(a: &KernelReport, b: &KernelReport, what: &str) {
    assert_eq!(a.instructions, b.instructions, "{what}: instructions");
    assert_eq!(a.branches, b.branches, "{what}: branches");
    assert_eq!(a.mispredictions, b.mispredictions, "{what}: mispredictions");
    assert_eq!(a.loads, b.loads, "{what}: loads");
    assert_eq!(a.stores, b.stores, "{what}: stores");
    assert_eq!(a.l1_misses, b.l1_misses, "{what}: l1_misses");
    assert_eq!(a.l2_misses, b.l2_misses, "{what}: l2_misses");
    assert_eq!(a.l3_misses, b.l3_misses, "{what}: l3_misses");
    assert_eq!(a.cycles.to_bits(), b.cycles.to_bits(), "{what}: cycles");
}

fn drive<S: EventSink>(acc: &mut AsaAccumulator, sink: &mut S) {
    let mut out = Vec::new();
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for round in 0..200u64 {
        acc.begin(sink);
        // More distinct keys than CAM entries on most rounds → evictions.
        for i in 0..(2 + round % 14) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc.accumulate((x % 43) as u32, 1.0 + (i as f64) * 0.5, sink);
        }
        acc.gather(&mut out, sink);
    }
}

#[test]
fn asa_overflow_replay_bit_identical() {
    let tiny = AsaConfig {
        cam_bytes: 4 * 16, // 4 entries
        entry_bytes: 16,
        ..AsaConfig::paper_default()
    };
    let cfg = MachineConfig::baseline(1);

    let mut inline_core = CoreModel::new(&cfg);
    drive(&mut AsaAccumulator::new(tiny), &mut inline_core);

    // Tiny blocks: overflow phases regularly straddle batch boundaries.
    let mut batched = BatchedCore::new(CoreModel::new(&cfg), 32);
    drive(&mut AsaAccumulator::new(tiny), &mut batched);

    let a = inline_core.take_phase_reports();
    let b = batched.take_phase_reports();
    assert!(
        a[phase::OVERFLOW].instructions > 0,
        "tiny CAM must overflow so the marker path is exercised"
    );
    for (p, (ra, rb)) in a.iter().zip(b.iter()).enumerate() {
        assert_bitwise(ra, rb, &format!("phase {p}"));
    }
}
