//! ASA — Accelerated Sparse Accumulation device model.
//!
//! Chao et al. (TACO 2022) designed ASA to accelerate the hash-based sparse
//! accumulation inside column-wise SpGEMM. The paper reproduced here
//! generalizes ASA's interface so *any* workload with a high volume of hash
//! lookup-and-accumulate can use it, and plugs it into parallel Infomap.
//!
//! The device per core is:
//!
//! * a small content-addressable memory ([`Cam`]) holding `key → partial
//!   sum` pairs, with single-instruction `accumulate` (lookup + FP add, or
//!   insert on miss),
//! * an LRU eviction policy: when the CAM is full, the least-recently-used
//!   entry is spilled to an in-memory *overflow queue* (Algorithm 2's
//!   `overflowed_pairs`),
//! * a `gather_CAM` operation streaming the CAM contents back to memory,
//! * a software `sort_and_merge` fallback that combines gathered and
//!   overflowed pairs when overflow occurred (Algorithm 2, lines 10–12).
//!
//! [`AsaAccumulator`] implements the shared
//! [`FlowAccumulator`](asa_simarch::FlowAccumulator) contract, emitting
//! `AsaAccumulate`/`AsaGather` instructions for on-device work and ordinary
//! instrumented software events for the overflow path, so the simulated
//! cost captures both the win (no chains, no branches) and the residual
//! software cost the paper quantifies (9.9–13.3% of ASA time on
//! Pokec/Orkut).

pub mod accumulator;
pub mod cam;
pub mod config;

pub use accumulator::{AsaAccumulator, AsaStats};
pub use cam::{Cam, EvictionPolicy};
pub use config::AsaConfig;
