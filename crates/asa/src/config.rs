//! ASA device configuration.

use serde::{Deserialize, Serialize};

use crate::cam::EvictionPolicy;

/// Configuration of one core-local ASA unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsaConfig {
    /// CAM capacity in bytes. The paper's capacity study (Fig. 5) sweeps
    /// 1 KB – 8 KB and shows 8 KB covers >99% of vertices on its social
    /// networks.
    pub cam_bytes: usize,
    /// Bytes per CAM entry: 32-bit key + 64-bit partial sum, padded.
    pub entry_bytes: usize,
    /// Replacement policy on CAM overflow (Chao et al. use LRU).
    pub policy: EvictionPolicy,
}

impl AsaConfig {
    /// The paper's headline configuration: 8 KB CAM per core, LRU.
    pub fn paper_default() -> Self {
        Self {
            cam_bytes: 8 * 1024,
            entry_bytes: 16,
            policy: EvictionPolicy::Lru,
        }
    }

    /// A configuration with the given CAM capacity in KiB.
    pub fn with_cam_kb(kb: usize) -> Self {
        Self {
            cam_bytes: kb * 1024,
            ..Self::paper_default()
        }
    }

    /// Number of key/value entries the CAM holds.
    pub fn entries(&self) -> usize {
        self.cam_bytes / self.entry_bytes
    }
}

impl Default for AsaConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_8kb_512_entries() {
        let c = AsaConfig::paper_default();
        assert_eq!(c.cam_bytes, 8192);
        assert_eq!(c.entries(), 512);
    }

    #[test]
    fn kb_constructor() {
        assert_eq!(AsaConfig::with_cam_kb(1).entries(), 64);
        assert_eq!(AsaConfig::with_cam_kb(4).entries(), 256);
    }
}
