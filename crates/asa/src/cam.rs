//! Behavioural model of the ASA content-addressable memory.
//!
//! The hardware CAM matches a key against all entries in parallel and
//! accumulates into the matching entry's partial sum in a short fixed
//! pipeline; on a miss with a full array it evicts the LRU entry into the
//! overflow queue. This module models the *state* exactly (contents, LRU
//! order, evictions); the *cost* is charged by the caller as
//! `AsaAccumulate` instructions since every outcome takes the same
//! single-instruction slot.

use rustc_hash::FxHashMap;

/// Outcome of a CAM accumulate, reported for statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CamOutcome {
    /// Key present: value added to the partial sum.
    Hit,
    /// Key absent, free entry available: new entry created.
    Insert,
    /// Key absent, CAM full: LRU entry evicted to the overflow queue and
    /// the new key inserted. Carries the evicted pair.
    Evict(u32, f64),
}

/// Which entry a full CAM sacrifices.
///
/// Chao et al.'s ASA uses LRU; FIFO is the cheaper-to-build alternative a
/// hardware team would consider, and the ablation bench quantifies the
/// quality difference (FIFO evicts hot accumulation targets that LRU
/// keeps, inflating the overflow queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum EvictionPolicy {
    /// Evict the least-recently-*used* entry (hits refresh age).
    Lru,
    /// Evict the oldest-*inserted* entry (hits do not refresh age).
    Fifo,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    key: u32,
    value: f64,
    /// LRU: last touch; FIFO: insertion time.
    age: u64,
}

/// Fixed-capacity key→sum store with configurable eviction.
#[derive(Debug)]
pub struct Cam {
    entries: Vec<Entry>,
    index: FxHashMap<u32, usize>,
    capacity: usize,
    policy: EvictionPolicy,
    clock: u64,
}

impl Cam {
    /// A CAM holding at most `capacity` entries, with LRU eviction.
    pub fn new(capacity: usize) -> Self {
        Self::with_policy(capacity, EvictionPolicy::Lru)
    }

    /// A CAM with an explicit eviction policy.
    pub fn with_policy(capacity: usize, policy: EvictionPolicy) -> Self {
        assert!(capacity >= 1, "CAM needs at least one entry");
        Self {
            entries: Vec::with_capacity(capacity),
            index: FxHashMap::default(),
            capacity,
            policy,
            clock: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The eviction policy in force.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Accumulates `value` into `key`, reporting what the hardware did.
    pub fn accumulate(&mut self, key: u32, value: f64) -> CamOutcome {
        self.clock += 1;
        if let Some(&slot) = self.index.get(&key) {
            let e = &mut self.entries[slot];
            e.value += value;
            if self.policy == EvictionPolicy::Lru {
                e.age = self.clock;
            }
            return CamOutcome::Hit;
        }
        if self.entries.len() < self.capacity {
            self.index.insert(key, self.entries.len());
            self.entries.push(Entry {
                key,
                value,
                age: self.clock,
            });
            return CamOutcome::Insert;
        }
        // Full: evict the oldest entry under the policy's age notion.
        // Capacity is small (<= a few hundred entries), so a linear scan is
        // both simple and faithful to the hardware's parallel age compare.
        let victim = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.age)
            .map(|(i, _)| i)
            .expect("capacity >= 1");
        let evicted = self.entries[victim];
        self.index.remove(&evicted.key);
        self.index.insert(key, victim);
        self.entries[victim] = Entry {
            key,
            value,
            age: self.clock,
        };
        CamOutcome::Evict(evicted.key, evicted.value)
    }

    /// Drains every live entry (unspecified order), clearing the CAM.
    pub fn drain_into(&mut self, out: &mut Vec<(u32, f64)>) {
        out.extend(self.entries.iter().map(|e| (e.key, e.value)));
        self.entries.clear();
        self.index.clear();
    }

    /// Clears all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.index.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_insert_evict_lifecycle() {
        let mut cam = Cam::new(2);
        assert_eq!(cam.accumulate(1, 1.0), CamOutcome::Insert);
        assert_eq!(cam.accumulate(2, 1.0), CamOutcome::Insert);
        assert_eq!(cam.accumulate(1, 2.0), CamOutcome::Hit);
        // 2 is now LRU; inserting 3 evicts it.
        match cam.accumulate(3, 5.0) {
            CamOutcome::Evict(2, v) => assert_eq!(v, 1.0),
            other => panic!("expected eviction of key 2, got {other:?}"),
        }
        let mut out = Vec::new();
        cam.drain_into(&mut out);
        out.sort_by_key(|&(k, _)| k);
        assert_eq!(out, vec![(1, 3.0), (3, 5.0)]);
    }

    #[test]
    fn lru_order_respects_recency() {
        let mut cam = Cam::new(3);
        cam.accumulate(1, 1.0);
        cam.accumulate(2, 1.0);
        cam.accumulate(3, 1.0);
        cam.accumulate(1, 1.0); // touch 1
        cam.accumulate(2, 1.0); // touch 2; 3 is LRU
        match cam.accumulate(4, 1.0) {
            CamOutcome::Evict(3, _) => {}
            other => panic!("expected eviction of key 3, got {other:?}"),
        }
    }

    #[test]
    fn drain_clears() {
        let mut cam = Cam::new(4);
        cam.accumulate(9, 2.0);
        let mut out = Vec::new();
        cam.drain_into(&mut out);
        assert_eq!(out, vec![(9, 2.0)]);
        assert!(cam.is_empty());
        // Reinsert works after drain.
        assert_eq!(cam.accumulate(9, 1.0), CamOutcome::Insert);
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut cam = Cam::with_policy(2, EvictionPolicy::Fifo);
        cam.accumulate(1, 1.0); // inserted first
        cam.accumulate(2, 1.0);
        cam.accumulate(1, 1.0); // hit: FIFO does NOT refresh age
        match cam.accumulate(3, 1.0) {
            CamOutcome::Evict(1, v) => assert_eq!(v, 2.0),
            other => panic!("FIFO must evict the oldest insert (1), got {other:?}"),
        }
        assert_eq!(cam.policy(), EvictionPolicy::Fifo);
    }

    #[test]
    fn lru_vs_fifo_eviction_counts() {
        // A hot key revisited between cold inserts: LRU protects it, FIFO
        // keeps evicting it.
        let run = |policy| {
            let mut cam = Cam::with_policy(4, policy);
            let mut evictions_of_hot = 0;
            for i in 0..200u32 {
                if let CamOutcome::Evict(0, _) = cam.accumulate(0, 1.0) {
                    unreachable!("accumulating key 0 cannot evict itself");
                }
                if let CamOutcome::Evict(k, _) = cam.accumulate(100 + i, 1.0) {
                    if k == 0 {
                        evictions_of_hot += 1;
                    }
                }
            }
            evictions_of_hot
        };
        assert_eq!(run(EvictionPolicy::Lru), 0);
        assert!(run(EvictionPolicy::Fifo) > 10);
    }

    #[test]
    fn evicted_key_can_return() {
        let mut cam = Cam::new(1);
        cam.accumulate(1, 1.0);
        assert!(matches!(cam.accumulate(2, 2.0), CamOutcome::Evict(1, _)));
        assert!(matches!(cam.accumulate(1, 3.0), CamOutcome::Evict(2, _)));
        let mut out = Vec::new();
        cam.drain_into(&mut out);
        assert_eq!(out, vec![(1, 3.0)]);
    }
}
