//! The ASA-backed [`FlowAccumulator`]: Algorithm 2's device path.

use asa_simarch::accum::FlowAccumulator;
use asa_simarch::events::{phase, EventSink, InstrClass};

use crate::cam::{Cam, CamOutcome};
use crate::config::AsaConfig;

/// Synthetic address regions for the overflow queue and gather output.
const OVERFLOW_BASE: u64 = 0x6000_0000;
const GATHER_BASE: u64 = 0x7000_0000;
const PAIR_BYTES: u64 = 16;

/// Branch sites in the software overflow-merge path.
mod sites {
    /// Overflow-empty check after gather (Algorithm 2, line 10).
    pub const OVERFLOW_EMPTY: u32 = 0x200;
    /// Comparison inside the sort of `sort_and_merge`.
    pub const SORT_CMP: u32 = 0x201;
    /// Equal-key check in the merge pass.
    pub const MERGE_EQ: u32 = 0x202;
}

/// Cumulative device statistics, used by the harness for the
/// overflow-cost analysis (Section IV-C reports overflow handling at
/// 9.86% / 13.31% of ASA time for Pokec / Orkut).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AsaStats {
    /// Total `accumulate` instructions issued.
    pub accumulates: u64,
    /// Accumulates that hit an existing CAM entry.
    pub hits: u64,
    /// Accumulates that created a new entry.
    pub inserts: u64,
    /// Accumulates that evicted an LRU entry to the overflow queue.
    pub evictions: u64,
    /// Gather rounds (one per vertex per direction).
    pub gathers: u64,
    /// Gather rounds that needed the software `sort_and_merge`.
    pub overflowed_gathers: u64,
    /// Total pairs routed through `sort_and_merge`.
    pub merged_pairs: u64,
}

impl AsaStats {
    /// Fraction of gather rounds that overflowed the CAM.
    pub fn overflow_rate(&self) -> f64 {
        if self.gathers == 0 {
            0.0
        } else {
            self.overflowed_gathers as f64 / self.gathers as f64
        }
    }
}

/// Core-local ASA unit implementing the shared accumulation contract.
///
/// `accumulate` is a single custom instruction regardless of outcome; an
/// eviction additionally writes the spilled pair to the in-memory overflow
/// queue. `gather` streams CAM entries back (one `AsaGather` instruction +
/// one store each) and, if anything overflowed, runs the instrumented
/// software `sort_and_merge` whose cost shows up in the simulated cycles —
/// that software fallback is why huge-degree vertices still cost more than
/// CAM-resident ones, matching the paper.
#[derive(Debug)]
pub struct AsaAccumulator {
    cam: Cam,
    overflow: Vec<(u32, f64)>,
    stats: AsaStats,
    scratch: Vec<(u32, f64)>,
    obs: Option<AsaObs>,
}

/// Device telemetry: distributions sampled at every gather plus an
/// eviction counter, shared by all units of a run (striped atomics).
#[derive(Debug, Clone)]
struct AsaObs {
    /// CAM entries streamed out per gather — the occupancy histogram the
    /// paper's coverage analysis is built on.
    cam_occupancy: asa_obs::Hist,
    /// Overflow-queue depth at gather time.
    overflow_depth: asa_obs::Hist,
    /// LRU/FIFO evictions into the overflow queue.
    evictions: asa_obs::Counter,
}

impl AsaAccumulator {
    /// Builds a unit with the given configuration.
    pub fn new(config: AsaConfig) -> Self {
        Self {
            cam: Cam::with_policy(config.entries(), config.policy),
            overflow: Vec::new(),
            stats: AsaStats::default(),
            scratch: Vec::new(),
            obs: None,
        }
    }

    /// Attaches device telemetry (`asa.cam_occupancy`, `asa.overflow_depth`
    /// histograms and the `asa.evictions` counter). A disabled `obs` leaves
    /// the unit untouched; simulated event charging never changes either way.
    pub fn attach_obs(&mut self, obs: &asa_obs::Obs) {
        self.obs = obs.enabled().then(|| AsaObs {
            cam_occupancy: obs.hist("asa.cam_occupancy"),
            overflow_depth: obs.hist("asa.overflow_depth"),
            evictions: obs.counter("asa.evictions"),
        });
    }

    /// Builds the paper's default 8 KB unit.
    pub fn paper_default() -> Self {
        Self::new(AsaConfig::paper_default())
    }

    /// Cumulative statistics since construction.
    pub fn stats(&self) -> AsaStats {
        self.stats
    }

    /// Resets statistics (e.g. after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = AsaStats::default();
    }

    /// Software sort-and-merge of gathered + overflowed pairs
    /// (Algorithm 2, lines 10–12), with instrumentation.
    fn sort_and_merge<S: EventSink>(&mut self, pairs: &mut Vec<(u32, f64)>, sink: &mut S) {
        sink.set_phase(phase::OVERFLOW);
        self.stats.merged_pairs += pairs.len() as u64;

        // Charge the sort: comparison-based, n log2 n compares, each a
        // load-compare-branch; swaps charged as stores on half the
        // compares. Branch outcomes follow the actual comparison results of
        // the final sort order, approximated per-compare by key parity of
        // the data (data-dependent, hence poorly predictable) — we emit the
        // real comparator outcomes from a merge-sort replay below.
        let n = pairs.len();
        let levels = usize::BITS - n.leading_zeros().saturating_sub(1);
        // Replay a bottom-up merge sort to extract genuine comparator
        // outcomes; this *is* the sort we charge for.
        let mut src = pairs.clone();
        let mut dst = vec![(0u32, 0f64); n];
        let mut width = 1usize;
        while width < n {
            let mut lo = 0usize;
            while lo < n {
                let mid = (lo + width).min(n);
                let hi = (lo + 2 * width).min(n);
                let (mut i, mut j, mut k) = (lo, mid, lo);
                while i < mid && j < hi {
                    sink.mem_read(OVERFLOW_BASE + (i as u64) * PAIR_BYTES);
                    sink.mem_read(OVERFLOW_BASE + (j as u64) * PAIR_BYTES);
                    sink.instr(InstrClass::Alu, 1);
                    let take_left = src[i].0 <= src[j].0;
                    sink.branch(sites::SORT_CMP, take_left);
                    dst[k] = if take_left { src[i] } else { src[j] };
                    sink.mem_write(OVERFLOW_BASE + (k as u64) * PAIR_BYTES);
                    if take_left {
                        i += 1;
                    } else {
                        j += 1;
                    }
                    k += 1;
                }
                while i < mid {
                    dst[k] = src[i];
                    sink.instr(InstrClass::Alu, 1);
                    i += 1;
                    k += 1;
                }
                while j < hi {
                    dst[k] = src[j];
                    sink.instr(InstrClass::Alu, 1);
                    j += 1;
                    k += 1;
                }
                lo = hi;
            }
            std::mem::swap(&mut src, &mut dst);
            width *= 2;
        }
        let _ = levels;
        *pairs = src;

        // Merge equal keys (now adjacent): one compare branch per element,
        // FP add on merge.
        let mut merged: Vec<(u32, f64)> = Vec::with_capacity(pairs.len());
        for &(k, v) in pairs.iter() {
            sink.instr(InstrClass::Alu, 1);
            let same = merged.last().is_some_and(|&(pk, _)| pk == k);
            sink.branch(sites::MERGE_EQ, same);
            if same {
                sink.instr(InstrClass::Float, 1);
                merged.last_mut().unwrap().1 += v;
            } else {
                sink.mem_write(GATHER_BASE + merged.len() as u64 * PAIR_BYTES);
                merged.push((k, v));
            }
        }
        *pairs = merged;
        sink.set_phase(phase::HASH);
    }
}

impl FlowAccumulator for AsaAccumulator {
    fn begin<S: EventSink>(&mut self, sink: &mut S) {
        sink.set_phase(phase::HASH);
        // Hardware reset of the CAM valid bits: single instruction.
        sink.instr(InstrClass::Alu, 1);
        self.cam.clear();
        self.overflow.clear();
        sink.set_phase(phase::COMPUTE);
    }

    fn accumulate<S: EventSink>(&mut self, key: u32, value: f64, sink: &mut S) {
        sink.set_phase(phase::HASH);
        // The CPU still computes `hash(k)` in software — the API call is
        // `accumulate(tid, hash(k), k, value)` (Algorithm 2, line 7) — and
        // marshals the operands into registers.
        sink.instr(InstrClass::Alu, 2);
        // One custom instruction covers lookup + add/insert (the paper:
        // "ASA's extension to ISA provides a single CPU instruction for
        // hash lookup and accumulation").
        sink.instr(InstrClass::AsaAccumulate, 1);
        self.stats.accumulates += 1;
        match self.cam.accumulate(key, value) {
            CamOutcome::Hit => self.stats.hits += 1,
            CamOutcome::Insert => self.stats.inserts += 1,
            CamOutcome::Evict(k, v) => {
                self.stats.evictions += 1;
                if let Some(obs) = &self.obs {
                    obs.evictions.incr();
                }
                // The device streams the spilled pair to the queue buffer in
                // memory; charge the store.
                sink.mem_write(OVERFLOW_BASE + self.overflow.len() as u64 * PAIR_BYTES);
                self.overflow.push((k, v));
            }
        }
        sink.set_phase(phase::COMPUTE);
    }

    fn gather<S: EventSink>(&mut self, out: &mut Vec<(u32, f64)>, sink: &mut S) {
        sink.set_phase(phase::HASH);
        out.clear();
        self.stats.gathers += 1;

        // gather_CAM: stream entries to memory, one gather instruction and
        // one store per entry.
        self.scratch.clear();
        self.cam.drain_into(&mut self.scratch);
        if let Some(obs) = &self.obs {
            obs.cam_occupancy.record(self.scratch.len() as u64);
            obs.overflow_depth.record(self.overflow.len() as u64);
        }
        for (i, pair) in self.scratch.iter().enumerate() {
            sink.instr(InstrClass::AsaGather, 1);
            sink.mem_write(GATHER_BASE + i as u64 * PAIR_BYTES);
            out.push(*pair);
        }

        // Overflow check (Algorithm 2, line 10).
        let overflowed = !self.overflow.is_empty();
        sink.branch(sites::OVERFLOW_EMPTY, overflowed);
        if overflowed {
            self.stats.overflowed_gathers += 1;
            // Append overflowed pairs then sort-and-merge in software.
            for (i, pair) in self.overflow.iter().enumerate() {
                sink.mem_read(OVERFLOW_BASE + i as u64 * PAIR_BYTES);
                out.push(*pair);
            }
            self.overflow.clear();
            let mut pairs = std::mem::take(out);
            self.sort_and_merge(&mut pairs, sink);
            *out = pairs;
        }
        sink.set_phase(phase::COMPUTE);
    }

    fn name(&self) -> &'static str {
        "asa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asa_simarch::accum::OracleAccumulator;
    use asa_simarch::events::{CountingSink, NullSink};

    fn drain<A: FlowAccumulator>(acc: &mut A) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        acc.gather(&mut out, &mut NullSink);
        out.sort_by_key(|a| a.0);
        out
    }

    fn run_stream(capacity_entries: usize, stream: &[(u32, f64)]) -> Vec<(u32, f64)> {
        let mut acc = AsaAccumulator::new(AsaConfig {
            cam_bytes: capacity_entries * 16,
            entry_bytes: 16,
            ..AsaConfig::paper_default()
        });
        let mut sink = NullSink;
        acc.begin(&mut sink);
        for &(k, v) in stream {
            acc.accumulate(k, v, &mut sink);
        }
        drain(&mut acc)
    }

    fn oracle(stream: &[(u32, f64)]) -> Vec<(u32, f64)> {
        let mut acc = OracleAccumulator::default();
        let mut sink = NullSink;
        acc.begin(&mut sink);
        for &(k, v) in stream {
            acc.accumulate(k, v, &mut sink);
        }
        drain(&mut acc)
    }

    #[test]
    fn no_overflow_matches_oracle() {
        let stream: Vec<(u32, f64)> = (0..100).map(|i| (i % 20, 1.0)).collect();
        assert_eq!(run_stream(64, &stream), oracle(&stream));
    }

    #[test]
    fn overflow_merge_matches_oracle() {
        // 50 distinct keys through a 4-entry CAM: heavy eviction, repeated
        // keys split across CAM and overflow queue — sort_and_merge must
        // reconstruct exact sums.
        let stream: Vec<(u32, f64)> = (0..300)
            .map(|i| ((i * 17 % 50) as u32, 1.0 + (i % 5) as f64 * 0.25))
            .collect();
        assert_eq!(run_stream(4, &stream), oracle(&stream));
    }

    #[test]
    fn tiny_cam_single_entry() {
        let stream: Vec<(u32, f64)> = vec![(1, 1.0), (2, 2.0), (1, 3.0), (3, 1.0), (2, 1.0)];
        assert_eq!(run_stream(1, &stream), oracle(&stream));
    }

    #[test]
    fn stats_track_outcomes() {
        let mut acc = AsaAccumulator::new(AsaConfig {
            cam_bytes: 2 * 16,
            entry_bytes: 16,
            ..AsaConfig::paper_default()
        });
        let mut sink = NullSink;
        acc.begin(&mut sink);
        acc.accumulate(1, 1.0, &mut sink); // insert
        acc.accumulate(1, 1.0, &mut sink); // hit
        acc.accumulate(2, 1.0, &mut sink); // insert
        acc.accumulate(3, 1.0, &mut sink); // evict
        let mut out = Vec::new();
        acc.gather(&mut out, &mut sink);
        let s = acc.stats();
        assert_eq!(s.accumulates, 4);
        assert_eq!(s.hits, 1);
        assert_eq!(s.inserts, 2);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.gathers, 1);
        assert_eq!(s.overflowed_gathers, 1);
        assert!(s.overflow_rate() > 0.99);
    }

    #[test]
    fn accumulate_is_single_device_instruction_when_resident() {
        let mut acc = AsaAccumulator::paper_default();
        let mut sink = CountingSink::default();
        acc.begin(&mut sink);
        acc.accumulate(7, 1.0, &mut sink); // insert: no memory traffic
        acc.accumulate(7, 1.0, &mut sink); // hit
                                           // One AsaAccumulate per call plus the software hash(k) ALU work; no
                                           // branches, no loads, no stores while the key is CAM-resident.
        assert_eq!(
            sink.instr[asa_simarch::InstrClass::AsaAccumulate.index()],
            2
        );
        assert_eq!(sink.branches, 0);
        assert_eq!(sink.reads, 0);
        assert_eq!(sink.writes, 0);
    }

    #[test]
    fn no_overflow_gather_has_no_branchy_merge() {
        let mut acc = AsaAccumulator::paper_default();
        let mut sink = CountingSink::default();
        acc.begin(&mut sink);
        for k in 0..50u32 {
            acc.accumulate(k, 1.0, &mut sink);
        }
        let mut out = Vec::new();
        acc.gather(&mut out, &mut sink);
        assert_eq!(out.len(), 50);
        // Only the single overflow-empty check branches.
        assert_eq!(sink.branches, 1);
    }

    #[test]
    fn begin_resets_device() {
        let mut acc = AsaAccumulator::new(AsaConfig {
            cam_bytes: 32,
            entry_bytes: 16,
            ..AsaConfig::paper_default()
        });
        let mut sink = NullSink;
        acc.begin(&mut sink);
        acc.accumulate(1, 1.0, &mut sink);
        acc.accumulate(2, 1.0, &mut sink);
        acc.accumulate(3, 1.0, &mut sink); // evicts into overflow
        acc.begin(&mut sink); // drops both CAM and overflow contents
        assert_eq!(drain(&mut acc), vec![]);
    }
}
