//! Chrome trace-event JSON exporter for flight-recorder snapshots.
//!
//! Writes the "JSON Array Format" of the Trace Event specification, which
//! both `chrome://tracing` and Perfetto load directly:
//!
//! - one **thread track** per recorded thread (`ph: "B"/"E"` duration
//!   events from [`TraceKind::Begin`]/[`TraceKind::End`], plus `"i"`
//!   instants and `"C"` counters), named via `"M"` metadata events;
//! - one **async track** per traced request (`ph: "b"/"e"` events keyed by
//!   `cat` + `id`, where `id` is the request's [`TraceId`] in hex), so a
//!   request's stages line up on a single row no matter which worker
//!   thread executed them.
//!
//! Everything runs under one process (`pid` 1). Timestamps are the
//! snapshot's microseconds-since-obs-epoch, which the spec expects (`ts`
//! is in microseconds).
//!
//! [`TraceKind::Begin`]: crate::trace::TraceKind::Begin
//! [`TraceKind::End`]: crate::trace::TraceKind::End
//! [`TraceId`]: crate::trace::TraceId

use std::io::{self, Write};

use crate::json::write_json_string;
use crate::trace::{TraceKind, TraceSnapshot};

/// Process id used for every event (single-process trace).
const PID: u64 = 1;

fn write_common(out: &mut String, ph: char, tid: u64, t_us: u64, name: &str, cat: &str) {
    out.push_str("{\"ph\":\"");
    out.push(ph);
    out.push_str(&format!(
        "\",\"pid\":{PID},\"tid\":{tid},\"ts\":{t_us},\"name\":"
    ));
    write_json_string(name, out);
    out.push_str(",\"cat\":");
    write_json_string(cat, out);
}

/// Serializes `snap` as Chrome trace-event JSON to `w`.
///
/// The output is a single JSON array; every event object is on its own
/// line so the file stays greppable. Dropped-event counts are surfaced as
/// one metadata-like instant per affected thread (`name:
/// "trace.dropped"`), so a truncated recording is visible in the viewer
/// rather than silently incomplete.
pub fn write_chrome_trace<W: Write>(snap: &TraceSnapshot, mut w: W) -> io::Result<()> {
    let mut first = true;
    let mut emit = |w: &mut W, line: &str| -> io::Result<()> {
        if first {
            first = false;
            w.write_all(b"[\n")?;
        } else {
            w.write_all(b",\n")?;
        }
        w.write_all(line.as_bytes())
    };

    let mut line = String::with_capacity(160);
    line.push_str(&format!(
        "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"asa\"}}}}"
    ));
    emit(&mut w, &line)?;

    for track in &snap.threads {
        line.clear();
        line.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":",
            track.tid
        ));
        write_json_string(&track.name, &mut line);
        line.push_str("}}");
        emit(&mut w, &line)?;
    }

    for track in &snap.threads {
        if track.dropped > 0 {
            let t0 = track.events.first().map_or(0, |e| e.t_us);
            line.clear();
            write_common(&mut line, 'i', track.tid, t0, "trace.dropped", "trace");
            line.push_str(&format!(
                ",\"s\":\"t\",\"args\":{{\"dropped\":{}}}}}",
                track.dropped
            ));
            emit(&mut w, &line)?;
        }
        for ev in &track.events {
            line.clear();
            match ev.kind {
                TraceKind::Begin => {
                    write_common(&mut line, 'B', track.tid, ev.t_us, ev.name, ev.cat);
                    line.push('}');
                }
                TraceKind::End => {
                    write_common(&mut line, 'E', track.tid, ev.t_us, ev.name, ev.cat);
                    line.push('}');
                }
                TraceKind::Instant => {
                    write_common(&mut line, 'i', track.tid, ev.t_us, ev.name, ev.cat);
                    line.push_str(",\"s\":\"t\"}");
                }
                TraceKind::Counter(v) => {
                    write_common(&mut line, 'C', track.tid, ev.t_us, ev.name, ev.cat);
                    line.push_str(&format!(",\"args\":{{\"value\":{v}}}}}"));
                }
                TraceKind::AsyncBegin | TraceKind::AsyncEnd => {
                    let ph = if ev.kind == TraceKind::AsyncBegin {
                        'b'
                    } else {
                        'e'
                    };
                    write_common(&mut line, ph, track.tid, ev.t_us, ev.name, ev.cat);
                    line.push_str(&format!(",\"id\":\"{:#x}\"}}", ev.trace));
                }
            }
            emit(&mut w, &line)?;
        }
    }
    if first {
        w.write_all(b"[\n")?;
    }
    w.write_all(b"\n]\n")
}

/// [`write_chrome_trace`] into an owned string (test and report helper).
pub fn chrome_trace_string(snap: &TraceSnapshot) -> String {
    let mut buf = Vec::new();
    write_chrome_trace(snap, &mut buf).expect("in-memory write cannot fail");
    String::from_utf8(buf).expect("exporter emits UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceId;
    use crate::Obs;

    #[test]
    fn empty_snapshot_is_an_empty_array() {
        let obs = Obs::new_enabled();
        obs.attach_recorder(16);
        let text = chrome_trace_string(&obs.trace_snapshot().unwrap());
        assert!(text.trim_start().starts_with('['));
        assert!(text.trim_end().ends_with(']'));
    }

    #[test]
    fn events_render_expected_phases() {
        let obs = Obs::new_enabled();
        obs.attach_recorder(64);
        let id = obs.mint_trace_id();
        obs.trace_async_begin(id, "request", "request");
        {
            let _scope = obs.trace_scope(id);
            let _sp = obs.span("execute");
            obs.trace_instant("cancelled", "infomap");
            obs.trace_counter("depth", 3);
        }
        obs.trace_async_end(id, "request", "request");
        let text = chrome_trace_string(&obs.trace_snapshot().unwrap());
        for needle in [
            "\"ph\":\"M\"",
            "\"process_name\"",
            "\"thread_name\"",
            "\"ph\":\"B\"",
            "\"ph\":\"E\"",
            "\"ph\":\"b\"",
            "\"ph\":\"e\"",
            "\"ph\":\"i\"",
            "\"ph\":\"C\"",
            "\"id\":\"0x",
            "\"args\":{\"value\":3}",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        // Every line between the brackets is one JSON object.
        for l in text.lines() {
            let l = l.trim().trim_end_matches(',');
            if l == "[" || l == "]" || l.is_empty() {
                continue;
            }
            assert!(l.starts_with('{') && l.ends_with('}'), "bad line: {l}");
        }
    }

    #[test]
    fn dropped_events_surface_as_instant() {
        let obs = Obs::new_enabled();
        obs.attach_recorder(16);
        for _ in 0..40 {
            obs.trace_instant("tick", "t");
        }
        let text = chrome_trace_string(&obs.trace_snapshot().unwrap());
        assert!(text.contains("trace.dropped"));
        assert!(text.contains("\"dropped\":24"));
    }

    #[test]
    fn async_id_is_hex_of_trace_id() {
        let obs = Obs::new_enabled();
        obs.attach_recorder(16);
        obs.trace_async_begin(TraceId(255), "stage", "request");
        let text = chrome_trace_string(&obs.trace_snapshot().unwrap());
        assert!(text.contains("\"id\":\"0xff\""));
    }
}
