//! Declarative service-level objectives over the time-series, evaluated
//! into a `Healthy / Degraded / Critical` state machine with hysteresis.
//!
//! Each [`Objective`] names one series in a [`TimeSeriesStore`], a window
//! statistic, a threshold, and a *pair* of windows. Following the
//! multi-window burn-rate discipline, an objective only **burns** when the
//! statistic breaches its threshold over **both** the short window (is it
//! bad right now?) and the long window (has it been bad long enough to
//! matter?). The short window makes detection fast; the long window
//! filters single-tick noise and, on the way down, holds the state until
//! the breach has genuinely drained out of the window.
//!
//! State machine (per objective, the engine reports the worst):
//!
//! ```text
//!             burn ≥ degrade_after          burn ≥ critical_after
//!   Healthy ───────────────────────▶ Degraded ─────────────────▶ Critical
//!      ▲                                │ ▲                           │
//!      └──────── clean ≥ recover_after ─┘ └─ clean ≥ recover_after ───┘
//! ```
//!
//! `degrade_after`/`critical_after` count *consecutive burning
//! evaluations*; `recover_after` counts consecutive clean ones, and each
//! recovery steps down one level only — Critical walks back through
//! Degraded, never jumps. That asymmetry is the hysteresis: flapping
//! load cannot flap the state.
//!
//! Evaluation is driven by collector ticks (the serving engine registers
//! a tick observer) or called manually in tests. Overall-state
//! transitions are timestamped and, when a flight recorder is attached,
//! emitted as `slo.healthy`/`slo.degraded`/`slo.critical` instants so a
//! Chrome-trace export shows exactly when health changed relative to the
//! request timeline.

use crate::timeseries::TimeSeriesStore;
use crate::trace::{FlightRecorder, TraceKind};

/// Window statistic an [`Objective`] evaluates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stat {
    /// Mean over the window.
    Avg,
    /// Maximum over the window.
    Max,
    /// Most recent sample in the window.
    Last,
    /// Nearest-rank quantile over the window's samples.
    Quantile(f64),
}

/// Which side of the threshold is unhealthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Breach {
    /// Values above the threshold burn (latency, depth, shed rate).
    Above,
    /// Values below the threshold burn (hit rate, throughput).
    Below,
}

/// One declarative objective over a time-series.
#[derive(Debug, Clone)]
pub struct Objective {
    /// Short label used in the health report (`"p95_latency"`).
    pub name: &'static str,
    /// Series name in the [`TimeSeriesStore`] (e.g.
    /// `"serve.latency_us.interactive.p95"`).
    pub series: String,
    /// Statistic evaluated over each window.
    pub stat: Stat,
    /// Threshold the statistic is compared against.
    pub threshold: f64,
    /// Direction of badness.
    pub breach: Breach,
    /// Fast-detection window, seconds.
    pub short_secs: f64,
    /// Noise-filter window, seconds. Burning requires breaching both.
    pub long_secs: f64,
}

impl Objective {
    /// An "at most" objective: burns while `stat` exceeds `threshold`.
    pub fn at_most(
        name: &'static str,
        series: impl Into<String>,
        stat: Stat,
        threshold: f64,
        short_secs: f64,
        long_secs: f64,
    ) -> Self {
        Objective {
            name,
            series: series.into(),
            stat,
            threshold,
            breach: Breach::Above,
            short_secs,
            long_secs,
        }
    }

    /// An "at least" objective: burns while `stat` is below `threshold`.
    pub fn at_least(
        name: &'static str,
        series: impl Into<String>,
        stat: Stat,
        threshold: f64,
        short_secs: f64,
        long_secs: f64,
    ) -> Self {
        Objective {
            name,
            series: series.into(),
            stat,
            threshold,
            breach: Breach::Below,
            short_secs,
            long_secs,
        }
    }

    fn stat_over(&self, store: &TimeSeriesStore, seconds: f64) -> Option<f64> {
        match self.stat {
            Stat::Avg => store.window(&self.series, seconds).map(|w| w.avg),
            Stat::Max => store.window(&self.series, seconds).map(|w| w.max),
            Stat::Last => store.window(&self.series, seconds).map(|w| w.last),
            Stat::Quantile(q) => store.window_quantile(&self.series, seconds, q),
        }
    }

    fn breached(&self, value: f64) -> bool {
        match self.breach {
            Breach::Above => value > self.threshold,
            Breach::Below => value < self.threshold,
        }
    }

    /// Whether the objective burns right now: breach over the short AND
    /// the long window. A series with no samples yet never burns.
    fn burning(&self, store: &TimeSeriesStore) -> bool {
        let short = self.stat_over(store, self.short_secs);
        let long = self.stat_over(store, self.long_secs);
        matches!((short, long), (Some(s), Some(l)) if self.breached(s) && self.breached(l))
    }
}

/// Health of the service, worst-objective-wins. The numeric value is what
/// the `serve.health` gauge carries (0/1/2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum HealthState {
    /// All objectives within budget.
    #[default]
    Healthy,
    /// At least one objective burning past `degrade_after`.
    Degraded,
    /// At least one objective burning past `critical_after`.
    Critical,
}

impl HealthState {
    /// Gauge encoding: Healthy 0, Degraded 1, Critical 2.
    pub fn as_gauge(self) -> u64 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded => 1,
            HealthState::Critical => 2,
        }
    }

    /// Lower-case label, also the transition-instant suffix.
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Critical => "critical",
        }
    }

    fn instant_name(self) -> &'static str {
        match self {
            HealthState::Healthy => "slo.healthy",
            HealthState::Degraded => "slo.degraded",
            HealthState::Critical => "slo.critical",
        }
    }
}

/// Objectives plus the state-machine pacing knobs.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// The objectives; overall health is the worst of them.
    pub objectives: Vec<Objective>,
    /// Consecutive burning evaluations before Healthy → Degraded.
    pub degrade_after: u32,
    /// Consecutive burning evaluations before Degraded → Critical.
    pub critical_after: u32,
    /// Consecutive clean evaluations to step *down one level*.
    pub recover_after: u32,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            objectives: Vec::new(),
            degrade_after: 1,
            critical_after: 8,
            recover_after: 2,
        }
    }
}

/// One overall-state change, timestamped on the obs timebase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthTransition {
    /// Tick timestamp at which the evaluation transitioned (µs since the
    /// obs epoch).
    pub t_us: u64,
    /// State before.
    pub from: HealthState,
    /// State after.
    pub to: HealthState,
}

#[derive(Debug, Clone, Default)]
struct ObjectiveState {
    state: HealthState,
    burn_streak: u32,
    clean_streak: u32,
    /// Last short-window statistic observed, for the report.
    last_value: Option<f64>,
    /// Evaluations spent burning, lifetime.
    burn_total: u64,
}

/// The evaluator. Hold it behind a `Mutex` and call
/// [`evaluate`](SloEngine::evaluate) from a tick observer; read
/// [`state`](SloEngine::state)/[`report`](SloEngine::report) at any time.
#[derive(Debug)]
pub struct SloEngine {
    cfg: SloConfig,
    states: Vec<ObjectiveState>,
    overall: HealthState,
    transitions: Vec<HealthTransition>,
    evaluations: u64,
}

impl SloEngine {
    /// A fresh engine; everything starts Healthy.
    pub fn new(cfg: SloConfig) -> Self {
        let states = vec![ObjectiveState::default(); cfg.objectives.len()];
        SloEngine {
            cfg,
            states,
            overall: HealthState::Healthy,
            transitions: Vec::new(),
            evaluations: 0,
        }
    }

    /// Current overall state (worst objective).
    pub fn state(&self) -> HealthState {
        self.overall
    }

    /// Overall-state transitions so far, in order.
    pub fn transitions(&self) -> &[HealthTransition] {
        &self.transitions
    }

    /// Per-objective `(name, state)` pairs, in configuration order — the
    /// machine-readable companion to [`report`](SloEngine::report), used
    /// by the black-box bundle.
    pub fn objective_states(&self) -> Vec<(&'static str, HealthState)> {
        self.cfg
            .objectives
            .iter()
            .zip(&self.states)
            .map(|(obj, st)| (obj.name, st.state))
            .collect()
    }

    /// Runs one evaluation over every objective and returns the (possibly
    /// changed) overall state. When a recorder is supplied, an overall
    /// transition emits an `slo.<state>` instant on the calling thread.
    pub fn evaluate(
        &mut self,
        store: &TimeSeriesStore,
        recorder: Option<&FlightRecorder>,
    ) -> HealthState {
        self.evaluations += 1;
        for (obj, st) in self.cfg.objectives.iter().zip(&mut self.states) {
            st.last_value = obj.stat_over(store, obj.short_secs);
            if obj.burning(store) {
                st.burn_streak += 1;
                st.clean_streak = 0;
                st.burn_total += 1;
                if st.burn_streak >= self.cfg.critical_after {
                    st.state = HealthState::Critical;
                } else if st.burn_streak >= self.cfg.degrade_after {
                    st.state = st.state.max(HealthState::Degraded);
                }
            } else {
                st.burn_streak = 0;
                st.clean_streak += 1;
                if st.clean_streak >= self.cfg.recover_after {
                    st.clean_streak = 0;
                    st.state = match st.state {
                        HealthState::Critical => HealthState::Degraded,
                        _ => HealthState::Healthy,
                    };
                }
            }
        }
        let next = self
            .states
            .iter()
            .map(|s| s.state)
            .max()
            .unwrap_or(HealthState::Healthy);
        if next != self.overall {
            let t_us = store.last_t_us();
            self.transitions.push(HealthTransition {
                t_us,
                from: self.overall,
                to: next,
            });
            if let Some(rec) = recorder {
                rec.record_current(next.instant_name(), "slo", TraceKind::Instant);
            }
            self.overall = next;
        }
        next
    }

    /// Human-readable health report: overall state, per-objective status
    /// lines, and the transition history. Printed by the serving engine
    /// at shutdown.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "health: {} ({} evaluations, {} transitions)",
            self.overall.name(),
            self.evaluations,
            self.transitions.len()
        );
        for (obj, st) in self.cfg.objectives.iter().zip(&self.states) {
            let value = st
                .last_value
                .map_or_else(|| "n/a".to_string(), |v| format!("{v:.2}"));
            let _ = writeln!(
                out,
                "  [{}] {} — {:?} over {:.1}s/{:.1}s {} {:.2}: last {}, burned {}/{} evals",
                st.state.name(),
                obj.name,
                obj.stat,
                obj.short_secs,
                obj.long_secs,
                match obj.breach {
                    Breach::Above => "≤",
                    Breach::Below => "≥",
                },
                obj.threshold,
                value,
                st.burn_total,
                self.evaluations,
            );
        }
        for tr in &self.transitions {
            let _ = writeln!(
                out,
                "  t+{:.3}s {} → {}",
                tr.t_us as f64 / 1e6,
                tr.from.name(),
                tr.to.name()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::GaugeSnapshot;
    use crate::timeseries::TimeSeriesConfig;
    use std::time::Duration;

    fn store() -> TimeSeriesStore {
        TimeSeriesStore::new(TimeSeriesConfig {
            resolution: Duration::from_millis(1),
            slots: 256,
        })
    }

    fn depth_tick(ts: &TimeSeriesStore, t_ms: u64, depth: u64) {
        ts.record_tick(
            t_ms * 1000,
            &[],
            &[GaugeSnapshot {
                name: "q.depth",
                last: depth,
                max: depth,
            }],
            &[],
        );
    }

    fn engine(degrade_after: u32, critical_after: u32, recover_after: u32) -> SloEngine {
        SloEngine::new(SloConfig {
            objectives: vec![Objective::at_most(
                "depth",
                "q.depth",
                Stat::Max,
                4.0,
                0.005,
                0.020,
            )],
            degrade_after,
            critical_after,
            recover_after,
        })
    }

    #[test]
    fn burst_degrades_then_recovers_with_hysteresis() {
        let ts = store();
        let mut slo = engine(1, 100, 2);
        for t in 0..5 {
            depth_tick(&ts, t, 1);
            assert_eq!(slo.evaluate(&ts, None), HealthState::Healthy);
        }
        // Burst: depth spikes over the threshold.
        depth_tick(&ts, 5, 40);
        assert_eq!(slo.evaluate(&ts, None), HealthState::Degraded);
        // Drained immediately, but the long window still holds the spike:
        // health stays Degraded (hysteresis), then recovers after the
        // spike ages out AND two clean evaluations pass.
        depth_tick(&ts, 6, 0);
        assert_eq!(slo.evaluate(&ts, None), HealthState::Degraded);
        let mut t = 7;
        while slo.state() != HealthState::Healthy && t < 80 {
            depth_tick(&ts, t, 0);
            slo.evaluate(&ts, None);
            t += 1;
        }
        assert_eq!(slo.state(), HealthState::Healthy);
        let tr = slo.transitions();
        assert_eq!(tr.len(), 2);
        assert_eq!(
            (tr[0].from, tr[0].to),
            (HealthState::Healthy, HealthState::Degraded)
        );
        assert_eq!(
            (tr[1].from, tr[1].to),
            (HealthState::Degraded, HealthState::Healthy)
        );
        assert!(tr[0].t_us < tr[1].t_us);
        let report = slo.report();
        assert!(report.contains("health: healthy"), "{report}");
        assert!(report.contains("degraded"), "{report}");
    }

    #[test]
    fn sustained_burn_escalates_to_critical_and_steps_down() {
        let ts = store();
        let mut slo = engine(1, 3, 1);
        for t in 0..3 {
            depth_tick(&ts, t, 50);
            slo.evaluate(&ts, None);
        }
        assert_eq!(slo.state(), HealthState::Critical);
        // Recovery steps down one level per clean streak, never jumps.
        let mut states = Vec::new();
        for t in 30..90 {
            depth_tick(&ts, t, 0);
            states.push(slo.evaluate(&ts, None));
            if slo.state() == HealthState::Healthy {
                break;
            }
        }
        assert!(states.contains(&HealthState::Degraded));
        assert_eq!(slo.state(), HealthState::Healthy);
    }

    #[test]
    fn short_breach_alone_does_not_burn_without_long_window() {
        // A single spike breaches Max over both windows (max is a
        // superset stat), so use Avg: one spike among many clean samples
        // breaches the short window but not the long average.
        let ts = store();
        let mut slo = SloEngine::new(SloConfig {
            objectives: vec![Objective::at_most(
                "depth",
                "q.depth",
                Stat::Avg,
                4.0,
                0.001,
                0.050,
            )],
            degrade_after: 1,
            critical_after: 10,
            recover_after: 1,
        });
        for t in 0..49 {
            depth_tick(&ts, t, 0);
            slo.evaluate(&ts, None);
        }
        depth_tick(&ts, 49, 100); // short-window avg breaches; long does not
        assert_eq!(slo.evaluate(&ts, None), HealthState::Healthy);
        assert!(slo.transitions().is_empty());
    }

    #[test]
    fn missing_series_is_healthy_and_reported() {
        let ts = store();
        let mut slo = engine(1, 2, 1);
        assert_eq!(slo.evaluate(&ts, None), HealthState::Healthy);
        assert!(slo.report().contains("n/a"));
    }

    #[test]
    fn at_least_objective_burns_below_threshold() {
        let ts = store();
        let mut slo = SloEngine::new(SloConfig {
            objectives: vec![Objective::at_least(
                "hit_rate",
                "cache.hit_rate",
                Stat::Avg,
                0.5,
                0.005,
                0.010,
            )],
            ..SloConfig::default()
        });
        for t in 0..20 {
            ts.record_tick(
                t * 1000,
                &[],
                &[GaugeSnapshot {
                    name: "cache.hit_rate",
                    last: 0,
                    max: 0,
                }],
                &[],
            );
        }
        assert_eq!(slo.evaluate(&ts, None), HealthState::Degraded);
    }
}
