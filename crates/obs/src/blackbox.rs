//! Crash/shutdown black-box: one JSON diagnostic bundle.
//!
//! When a long-running service dies — panic, SIGTERM-driven shutdown, or
//! an operator pulling the plug — the question is "what did the process
//! look like at the end?". This module renders everything the attached
//! observability stack knows into a single self-describing JSON document:
//! the flight recorder's last events per thread, the tail of every
//! time-series window, the metric registry, a resource snapshot, the
//! cumulative folded profile, plus any *extra sections* the embedding
//! layer registered (the serve engine contributes per-shard queue depths,
//! partition-store occupancy, and SLO state machine states).
//!
//! Two triggers write a bundle:
//!
//! - **Shutdown**: the serve engine calls [`write_bundle`] at the end of
//!   its drain path, so every clean exit leaves a final flight record.
//! - **Panic**: [`install_panic_hook`] arms a process-global chained
//!   panic hook. The hook holds only a `Weak` to the obs state (armed
//!   state never extends its lifetime) and delegates to whatever hook was
//!   installed before it, so the usual backtrace still prints.
//!
//! The JSON is hand-written with [`crate::json`] — this crate stays
//! dependency-free — and designed to be read with nothing fancier than
//! `python3 -m json.tool`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::json::write_json_string;
use crate::trace::TraceKind;
use crate::{Obs, ObsInner};

/// Trace events retained per thread track in a bundle (the newest ones;
/// the in-memory ring may hold far more than a post-mortem needs).
const MAX_EVENTS_PER_THREAD: usize = 256;

/// Time-series points retained per series in a bundle.
const MAX_POINTS_PER_SERIES: usize = 64;

/// Folded stacks retained in a bundle's profile section.
const MAX_PROFILE_STACKS: usize = 128;

// ---------------------------------------------------------------------------
// Extra sections

type SectionFn = Box<dyn Fn() -> String + Send + Sync>;
type SectionTable = Mutex<Vec<Option<(String, SectionFn)>>>;

fn sections() -> &'static SectionTable {
    static SECTIONS: OnceLock<SectionTable> = OnceLock::new();
    SECTIONS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Unregisters its section on drop, so a dead engine's closures (and the
/// `Weak` state they capture) don't linger in the process-global table.
#[must_use = "dropping the guard unregisters the section"]
pub struct SectionGuard {
    idx: usize,
}

impl Drop for SectionGuard {
    fn drop(&mut self) {
        if let Some(slot) = sections().lock().unwrap().get_mut(self.idx) {
            *slot = None;
        }
    }
}

/// Registers an extra bundle section: `render` must return one complete
/// JSON value (object, array, or scalar — already encoded), emitted under
/// `"sections": {"<name>": <value>}` in every subsequent bundle. The
/// closure must not panic and must not take locks that a panicking thread
/// might hold. Returns a guard that unregisters on drop.
pub fn register_section(
    name: &str,
    render: impl Fn() -> String + Send + Sync + 'static,
) -> SectionGuard {
    let mut secs = sections().lock().unwrap();
    secs.push(Some((name.to_string(), Box::new(render))));
    SectionGuard {
        idx: secs.len() - 1,
    }
}

/// Names of currently registered extra sections (diagnostics/debug page).
pub fn section_names() -> Vec<String> {
    sections()
        .lock()
        .unwrap()
        .iter()
        .flatten()
        .map(|(n, _)| n.clone())
        .collect()
}

// ---------------------------------------------------------------------------
// Bundle rendering

fn push_key(out: &mut String, key: &str) {
    write_json_string(key, out);
    out.push(':');
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn render_resource(out: &mut String) {
    match crate::resource::sample() {
        None => out.push_str("null"),
        Some(rs) => {
            let _ = write!(
                out,
                "{{\"rss_bytes\":{},\"peak_rss_bytes\":{},\"cpu_user_s\":",
                rs.rss_bytes, rs.peak_rss_bytes
            );
            push_f64(out, rs.cpu_user_s);
            out.push_str(",\"cpu_sys_s\":");
            push_f64(out, rs.cpu_sys_s);
            let _ = write!(
                out,
                ",\"voluntary_ctx_switches\":{},\"involuntary_ctx_switches\":{},\"open_fds\":{}}}",
                rs.voluntary_ctx_switches, rs.involuntary_ctx_switches, rs.open_fds
            );
        }
    }
}

fn render_metrics(out: &mut String, obs: &Obs) {
    let Some((counters, gauges, hists)) = obs.metrics_snapshot() else {
        out.push_str("null");
        return;
    };
    out.push_str("{\"counters\":[");
    for (i, c) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_json_string(c.name, out);
        let _ = write!(out, ",\"value\":{}}}", c.value);
    }
    out.push_str("],\"gauges\":[");
    for (i, g) in gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_json_string(g.name, out);
        let _ = write!(out, ",\"last\":{},\"max\":{}}}", g.last, g.max);
    }
    out.push_str("],\"hists\":[");
    for (i, h) in hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_json_string(h.name, out);
        let _ = write!(
            out,
            ",\"count\":{},\"sum\":{},\"max\":{}}}",
            h.count, h.sum, h.max
        );
    }
    out.push_str("]}");
}

fn render_flight_recorder(out: &mut String, obs: &Obs) {
    let Some(snap) = obs.trace_snapshot() else {
        out.push_str("null");
        return;
    };
    out.push_str("{\"threads\":[");
    for (i, track) in snap.threads.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let skipped = track.events.len().saturating_sub(MAX_EVENTS_PER_THREAD);
        let _ = write!(out, "{{\"tid\":{},\"name\":", track.tid);
        write_json_string(&track.name, out);
        let _ = write!(
            out,
            ",\"dropped\":{},\"truncated\":{},\"events\":[",
            track.dropped, skipped
        );
        for (j, ev) in track.events.iter().skip(skipped).enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"t_us\":{},\"trace\":{},\"name\":",
                ev.t_us, ev.trace
            );
            write_json_string(ev.name, out);
            out.push_str(",\"cat\":");
            write_json_string(ev.cat, out);
            let kind = match ev.kind {
                TraceKind::Begin => "begin",
                TraceKind::End => "end",
                TraceKind::AsyncBegin => "async_begin",
                TraceKind::AsyncEnd => "async_end",
                TraceKind::Instant => "instant",
                TraceKind::Counter(_) => "counter",
            };
            let _ = write!(out, ",\"kind\":\"{kind}\"");
            if let TraceKind::Counter(v) = ev.kind {
                let _ = write!(out, ",\"value\":{v}");
            }
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]}");
}

fn render_timeseries(out: &mut String, obs: &Obs) {
    let Some(store) = obs.timeseries() else {
        out.push_str("null");
        return;
    };
    let _ = write!(out, "{{\"ticks\":{},\"series\":[", store.ticks());
    for (i, info) in store.series().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_json_string(&info.name, out);
        let kind = match info.kind {
            crate::SeriesKind::Rate => "rate",
            crate::SeriesKind::Level => "level",
            crate::SeriesKind::Quantile => "quantile",
        };
        let _ = write!(
            out,
            ",\"kind\":\"{kind}\",\"samples\":{},\"last\":",
            info.samples
        );
        push_f64(out, info.last);
        out.push_str(",\"points\":[");
        if let Some(points) = store.points(&info.name) {
            let skipped = points.len().saturating_sub(MAX_POINTS_PER_SERIES);
            for (j, p) in points.iter().skip(skipped).enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"t_us\":{},\"value\":", p.t_us);
                push_f64(out, p.value);
                out.push('}');
            }
        }
        out.push_str("]}");
    }
    out.push_str("]}");
}

fn render_profile(out: &mut String, obs: &Obs) {
    let Some(snap) = obs.prof_snapshot() else {
        out.push_str("null");
        return;
    };
    let _ = write!(
        out,
        "{{\"interval_us\":{},\"samples\":{},\"truncated\":{},\"folded\":[",
        snap.interval.as_micros(),
        snap.samples,
        snap.stacks.len().saturating_sub(MAX_PROFILE_STACKS)
    );
    for (i, s) in snap.stacks.iter().take(MAX_PROFILE_STACKS).enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(&format!("{} {}", s.folded_key(), s.count), out);
    }
    out.push_str("]}");
}

/// Renders the full diagnostic bundle as one JSON object. Callable at any
/// time (the "black box" is just a view of live state); missing layers —
/// no recorder, no collector, no profiler — render as `null` rather than
/// being omitted, so consumers can distinguish "not attached" from
/// "attached but empty".
pub fn render_bundle(obs: &Obs, reason: &str) -> String {
    let mut out = String::with_capacity(16 * 1024);
    out.push_str("{\"bundle\":\"asa-blackbox\",\"version\":1,\"reason\":");
    write_json_string(reason, &mut out);
    let _ = write!(out, ",\"t_us\":{}", obs.elapsed_us());
    out.push_str(",\"resource\":");
    render_resource(&mut out);
    out.push_str(",\"metrics\":");
    render_metrics(&mut out, obs);
    out.push_str(",\"flight_recorder\":");
    render_flight_recorder(&mut out, obs);
    out.push_str(",\"timeseries\":");
    render_timeseries(&mut out, obs);
    out.push_str(",\"profile\":");
    render_profile(&mut out, obs);
    out.push_str(",\"sections\":{");
    {
        let secs = sections().lock().unwrap();
        let mut first = true;
        for (name, render) in secs.iter().flatten() {
            if !first {
                out.push(',');
            }
            first = false;
            push_key(&mut out, name);
            out.push_str(&render());
        }
    }
    out.push_str("}}");
    out
}

/// Renders and writes a bundle to `path` (best-effort directory-less
/// write; the caller picks a writable location).
pub fn write_bundle(path: &Path, obs: &Obs, reason: &str) -> std::io::Result<()> {
    std::fs::write(path, render_bundle(obs, reason))
}

// ---------------------------------------------------------------------------
// Panic hook

type Armed = Option<(Weak<ObsInner>, PathBuf)>;

fn armed() -> &'static Mutex<Armed> {
    static ARMED: OnceLock<Mutex<Armed>> = OnceLock::new();
    ARMED.get_or_init(|| Mutex::new(None))
}

/// Arms the panic black-box: any panic on any thread (first one wins —
/// the hook runs before unwinding, so a worker panic is captured even if
/// the process aborts) writes a bundle for `obs` to `path`, then chains
/// to the previously installed hook. The armed state holds only a `Weak`
/// reference; re-arming replaces the target, [`clear_panic_hook`]
/// disarms. A no-op on a disabled handle.
pub fn install_panic_hook(obs: &Obs, path: &Path) {
    let Some(inner) = &obs.0 else { return };
    *armed().lock().unwrap() = Some((Arc::downgrade(inner), path.to_path_buf()));
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Snapshot the armed state without holding the lock across
            // rendering (a render closure might itself panic — keep the
            // surface small).
            let target = armed().lock().ok().and_then(|g| g.clone());
            if let Some((weak, path)) = target {
                if let Some(strong) = weak.upgrade() {
                    let msg = info
                        .payload()
                        .downcast_ref::<&str>()
                        .copied()
                        .map(str::to_string)
                        .or_else(|| info.payload().downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic payload>".to_string());
                    let loc = info
                        .location()
                        .map_or_else(|| "<unknown>".to_string(), ToString::to_string);
                    let obs = Obs(Some(strong));
                    let _ = write_bundle(&path, &obs, &format!("panic: {msg} at {loc}"));
                }
            }
            prev(info);
        }));
    });
}

/// Disarms the panic black-box (the chained hook stays installed but does
/// nothing while disarmed). Call from tests and from engine teardown so a
/// later unrelated panic doesn't overwrite a bundle.
pub fn clear_panic_hook() {
    *armed().lock().unwrap() = None;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn bundle_renders_all_core_sections() {
        let obs = Obs::new_enabled();
        obs.counter("bb.hits").add(3);
        obs.gauge("bb.depth").set(2);
        obs.hist("bb.lat").record(40);
        obs.attach_recorder(64);
        obs.attach_collector(crate::TimeSeriesConfig {
            resolution: Duration::from_secs(3600),
            slots: 16,
        });
        obs.attach_profiler(Duration::from_secs(3600));
        {
            let _s = obs.span("bb.work");
            obs.tick_profiler();
        }
        obs.tick_collector();
        let json = render_bundle(&obs, "test");
        for key in [
            "\"bundle\":\"asa-blackbox\"",
            "\"reason\":\"test\"",
            "\"resource\":",
            "\"metrics\":",
            "\"flight_recorder\":",
            "\"timeseries\":",
            "\"profile\":",
            "\"sections\":{",
            "bb.hits",
            "bb.work",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // The profile section must carry the sampled span.
        assert!(
            json.contains("bb.work 1") || json.contains(";bb.work"),
            "{json}"
        );
        obs.stop_collector();
        obs.stop_profiler();
    }

    #[test]
    fn missing_layers_render_as_null() {
        let obs = Obs::new_enabled();
        let json = render_bundle(&obs, "bare");
        assert!(json.contains("\"flight_recorder\":null"));
        assert!(json.contains("\"timeseries\":null"));
        assert!(json.contains("\"profile\":null"));
    }

    #[test]
    fn extra_sections_register_and_unregister() {
        let guard = register_section("test.extra", || "{\"x\":1}".to_string());
        assert!(section_names().iter().any(|n| n == "test.extra"));
        let obs = Obs::new_enabled();
        let json = render_bundle(&obs, "s");
        assert!(json.contains("\"test.extra\":{\"x\":1}"));
        drop(guard);
        assert!(!section_names().iter().any(|n| n == "test.extra"));
        let json = render_bundle(&obs, "s");
        assert!(!json.contains("test.extra"));
    }
}
