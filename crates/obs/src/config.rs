//! Runtime configuration for building an [`Obs`](crate::Obs) handle.

use std::path::PathBuf;

/// Declarative description of which sinks to attach.
///
/// `enabled: false` (the default) builds the fully disabled handle: every
/// span/counter/record call collapses to a branch on `None`, which is how
/// the production hot path keeps obs below measurement noise.
#[derive(Debug, Clone, Default)]
pub struct ObsConfig {
    /// Master switch. When false all other fields are ignored.
    pub enabled: bool,
    /// Write a JSONL event stream to this path.
    pub jsonl_path: Option<PathBuf>,
    /// Print the phase-profile / metric summary to stderr at flush.
    pub summary: bool,
    /// Print one heartbeat line per streamed record (implies `summary`).
    pub progress: bool,
    /// Keep the last N records in an in-memory ring (0 = no ring sink);
    /// read back via [`Obs::ring`](crate::Obs::ring).
    pub ring_capacity: usize,
    /// Attach a flight recorder bounding each thread's trace-event ring to
    /// N events (0 = no recorder). Read back via
    /// [`Obs::trace_snapshot`](crate::Obs::trace_snapshot); export with
    /// [`chrome::write_chrome_trace`](crate::chrome::write_chrome_trace).
    pub trace_capacity: usize,
    /// Attach the continuous-telemetry collector: a background thread that
    /// snapshots every registered metric into a time-series ring at the
    /// given resolution/retention (`None` = no collector). Read back via
    /// [`Obs::timeseries`](crate::Obs::timeseries); render with
    /// [`expose::render`](crate::expose::render).
    pub collector: Option<crate::timeseries::TimeSeriesConfig>,
    /// Attach the sampling profiler at this interval (`None` = no
    /// profiler). Read back via
    /// [`Obs::prof_snapshot`](crate::Obs::prof_snapshot); render with
    /// [`ProfSnapshot::render_folded`](crate::ProfSnapshot::render_folded)
    /// or [`render_flamegraph`](crate::render_flamegraph).
    pub profiler: Option<std::time::Duration>,
}

impl ObsConfig {
    /// The all-off configuration.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Builds the handle, creating the JSONL file if requested.
    pub fn build(&self) -> std::io::Result<crate::Obs> {
        crate::Obs::from_config(self)
    }
}
