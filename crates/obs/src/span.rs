//! RAII span timers rolling up into a hierarchical phase profile.
//!
//! Mirrors the `tracing` span model in miniature: entering a span pushes it
//! on a thread-local stack (so nesting is inferred from call structure, not
//! passed explicitly), and dropping the guard charges the elapsed time to a
//! node in a shared phase tree. The tree is keyed by `(parent, name)`, so
//! re-entering the same phase accumulates into one node instead of growing
//! the tree per call — a sweep loop with 40 iterations yields one `decide`
//! node with `count == 40`.
//!
//! Concurrency: each thread has its own stack (per `Obs` instance), and the
//! tree itself is behind a `Mutex` taken twice per span (enter + exit).
//! Spans are intended for phase granularity — sweeps, levels, gathers — not
//! per-edge work, so two lock ops per span is noise. Snapshot order is
//! normalized (children sorted by name) so the reconstructed tree is
//! identical regardless of thread interleaving.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::Arc;
use std::time::Instant;

use crate::trace::TraceKind;
use crate::ObsInner;

/// Synthetic root node id; real spans hang below it.
const ROOT: usize = 0;

#[derive(Debug)]
struct SpanNode {
    name: &'static str,
    children: Vec<usize>,
    nanos: u64,
    count: u64,
}

/// Accumulated phase tree shared by all threads of one `Obs` instance.
#[derive(Debug)]
pub(crate) struct SpanTree {
    nodes: Vec<SpanNode>,
}

impl SpanTree {
    pub(crate) fn new() -> Self {
        SpanTree {
            nodes: vec![SpanNode {
                name: "",
                children: Vec::new(),
                nanos: 0,
                count: 0,
            }],
        }
    }

    /// Finds or creates the child of `parent` named `name`.
    fn enter(&mut self, parent: usize, name: &'static str) -> usize {
        if let Some(&id) = self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].name == name)
        {
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push(SpanNode {
            name,
            children: Vec::new(),
            nanos: 0,
            count: 0,
        });
        self.nodes[parent].children.push(id);
        id
    }

    fn exit(&mut self, id: usize, nanos: u64) {
        let node = &mut self.nodes[id];
        node.nanos += nanos;
        node.count += 1;
    }

    /// Top-level spans as a normalized (name-sorted) snapshot forest.
    pub(crate) fn snapshot(&self) -> Vec<SpanSnapshot> {
        self.snapshot_children(ROOT)
    }

    fn snapshot_children(&self, id: usize) -> Vec<SpanSnapshot> {
        let mut out: Vec<SpanSnapshot> = self.nodes[id]
            .children
            .iter()
            .map(|&c| {
                let node = &self.nodes[c];
                SpanSnapshot {
                    name: node.name,
                    seconds: node.nanos as f64 / 1e9,
                    count: node.count,
                    children: self.snapshot_children(c),
                }
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(b.name));
        out
    }
}

/// One node of the flushed phase profile.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// Span name as passed to [`Obs::span`](crate::Obs::span).
    pub name: &'static str,
    /// Total seconds across all entries of this span (sum over `count`).
    pub seconds: f64,
    /// How many times the span was entered.
    pub count: u64,
    /// Nested spans, sorted by name for interleaving-independent output.
    pub children: Vec<SpanSnapshot>,
}

impl SpanSnapshot {
    /// Depth-first walk yielding `(path, node)` with `/`-joined paths.
    pub fn walk<'a>(&'a self, prefix: &str, visit: &mut impl FnMut(&str, &'a SpanSnapshot)) {
        let path = if prefix.is_empty() {
            self.name.to_string()
        } else {
            format!("{prefix}/{}", self.name)
        };
        visit(&path, self);
        for child in &self.children {
            child.walk(&path, visit);
        }
    }
}

// Per-thread span stacks, one per live `Obs` instance (keyed by instance id
// so two handles in one process don't see each other's nesting).
thread_local! {
    static SPAN_STACKS: RefCell<Vec<(u64, Vec<usize>)>> = const { RefCell::new(Vec::new()) };
}

fn current_parent(obs_id: u64) -> usize {
    SPAN_STACKS.with(|stacks| {
        stacks
            .borrow()
            .iter()
            .find(|(id, _)| *id == obs_id)
            .and_then(|(_, stack)| stack.last().copied())
            .unwrap_or(ROOT)
    })
}

fn push_span(obs_id: u64, node: usize) {
    SPAN_STACKS.with(|stacks| {
        let mut stacks = stacks.borrow_mut();
        if let Some((_, stack)) = stacks.iter_mut().find(|(id, _)| *id == obs_id) {
            stack.push(node);
        } else {
            stacks.push((obs_id, vec![node]));
        }
    });
}

fn pop_span(obs_id: u64, node: usize) {
    SPAN_STACKS.with(|stacks| {
        let mut stacks = stacks.borrow_mut();
        if let Some(pos) = stacks.iter().position(|(id, _)| *id == obs_id) {
            let stack = &mut stacks[pos].1;
            let top = stack.pop();
            debug_assert_eq!(top, Some(node), "span guards dropped out of order");
            if stack.is_empty() {
                stacks.swap_remove(pos);
            }
        }
    });
}

/// RAII timer: created by [`Obs::span`](crate::Obs::span), charges elapsed
/// wall time to its phase-tree node on drop.
///
/// Not `Send`: a span must end on the thread that started it, because the
/// nesting stack is thread-local.
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanGuard>,
    _not_send: PhantomData<*const ()>,
}

#[derive(Debug)]
struct SpanGuard {
    obs: Arc<ObsInner>,
    node: usize,
    name: &'static str,
    start: Instant,
    /// Whether enter mirrored a frame onto this thread's profiler live
    /// stack (only then does drop pop one — the profiler may attach
    /// while a span is already open).
    profiled: bool,
}

impl Span {
    /// A span that measures nothing (from a disabled `Obs`).
    pub fn disabled() -> Self {
        Span {
            inner: None,
            _not_send: PhantomData,
        }
    }

    pub(crate) fn enter(obs: Arc<ObsInner>, name: &'static str) -> Self {
        let parent = current_parent(obs.id);
        let node = obs.spans.lock().unwrap().enter(parent, name);
        push_span(obs.id, node);
        // With a flight recorder attached, spans double as trace-track
        // events; without one this is a single pointer load.
        if let Some(rec) = obs.trace.get() {
            rec.record_current(name, "span", TraceKind::Begin);
        }
        // Likewise for the sampling profiler: mirror the name onto this
        // thread's sampler-visible live stack.
        let profiled = crate::prof::on_span_enter(&obs, name);
        Span {
            inner: Some(SpanGuard {
                obs,
                node,
                name,
                start: Instant::now(),
                profiled,
            }),
            _not_send: PhantomData,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(guard) = self.inner.take() {
            let nanos = guard.start.elapsed().as_nanos() as u64;
            if let Some(rec) = guard.obs.trace.get() {
                rec.record_current(guard.name, "span", TraceKind::End);
            }
            if guard.profiled {
                crate::prof::on_span_exit(guard.obs.id);
            }
            pop_span(guard.obs.id, guard.node);
            guard.obs.spans.lock().unwrap().exit(guard.node, nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reentry_accumulates_into_one_node() {
        let mut tree = SpanTree::new();
        let a = tree.enter(ROOT, "sweep");
        tree.exit(a, 10);
        let b = tree.enter(ROOT, "sweep");
        assert_eq!(a, b);
        tree.exit(b, 5);
        let snap = tree.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].count, 2);
        assert!((snap[0].seconds - 15e-9).abs() < 1e-15);
    }

    #[test]
    fn snapshot_children_sorted_by_name() {
        let mut tree = SpanTree::new();
        let z = tree.enter(ROOT, "zeta");
        tree.exit(z, 1);
        let a = tree.enter(ROOT, "alpha");
        tree.exit(a, 1);
        let names: Vec<_> = tree.snapshot().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn walk_builds_slash_paths() {
        let mut tree = SpanTree::new();
        let run = tree.enter(ROOT, "run");
        let inner = tree.enter(run, "decide");
        tree.exit(inner, 1);
        tree.exit(run, 2);
        let snap = tree.snapshot();
        let mut paths = Vec::new();
        for root in &snap {
            root.walk("", &mut |path, _| paths.push(path.to_string()));
        }
        assert_eq!(paths, vec!["run", "run/decide"]);
    }
}
