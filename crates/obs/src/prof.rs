//! Span-stack sampling profiler: where is the CPU *right now*?
//!
//! The phase tree ([`crate::span`]) answers "where did time go on
//! average" only after a flush, and the flight recorder answers it per
//! request — neither can be watched live on a long-running service. This
//! module adds the missing continuous view: a background sampler thread
//! (same Weak-held, joined-on-drop discipline as the telemetry collector
//! in `lib.rs`) that snapshots every registered thread's *live span
//! stack* at a fixed interval and folds the observations into a
//! Brendan-Gregg collapsed profile (`thread;span;span count`), plus a
//! self-contained flamegraph SVG renderer so no external tooling is
//! needed to read one offline.
//!
//! ## Live stacks
//!
//! The span nesting stacks in `span.rs` are plain thread-locals — only
//! the owning thread can read them. With a profiler attached, every
//! [`Span`](crate::Span) enter/exit additionally mirrors the span *name*
//! into a per-thread [`LiveStack`]: a seqlock-guarded fixed array of
//! interned frame ids that the sampler thread reads without stopping the
//! owner. The writer (the instrumented thread) bumps the epoch to odd,
//! mutates, bumps back to even; the sampler retries while the epoch is
//! odd or changed mid-read, and gives up after a few attempts rather
//! than spin (a skipped thread costs one sample of resolution, never
//! correctness). Frames are interned `u32` ids, so a torn read can at
//! worst misattribute one sample — it can never dereference a stale
//! pointer.
//!
//! Each live stack also mirrors the thread's current trace id (so
//! samples taken inside a [`TraceScope`](crate::TraceScope) attribute to
//! the request being served) and carries one optional *label* slot that
//! instrumentation can set to the active kernel/order
//! ([`Obs::prof_label`](crate::Obs::prof_label)); the label renders as
//! an extra leaf frame, which is how flamegraphs distinguish hash vs
//! portable-SPA vs AVX2 time without guessing from span names.
//!
//! A thread that exits marks its stacks dead from the thread-local's
//! destructor; the sampler prunes dead stacks at the next pass. The
//! `Arc` keeps the memory alive until then, so a thread exiting mid-
//! sample never poisons the aggregate.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::ObsInner;

/// Mirrored frames per thread. Span nesting is phase-granular (level >
/// sweep > decide), so this is generous; deeper stacks keep counting
/// depth but only the first `MAX_FRAMES` names are sampled, with a
/// `(deep)` marker appended.
pub(crate) const MAX_FRAMES: usize = 32;

// ---------------------------------------------------------------------------
// Frame interning

#[derive(Default)]
struct FrameTable {
    ids: HashMap<String, u32>,
    /// Names by `id - 1` (id 0 is reserved for "no frame").
    names: Vec<String>,
}

fn frame_table() -> &'static Mutex<FrameTable> {
    static FRAMES: OnceLock<Mutex<FrameTable>> = OnceLock::new();
    FRAMES.get_or_init(|| Mutex::new(FrameTable::default()))
}

/// Interns a frame name into a process-wide `u32` id (content-keyed, so
/// identical names from different call sites merge). Id 0 means "none".
pub(crate) fn frame_id(name: &str) -> u32 {
    if name.is_empty() {
        return 0;
    }
    let mut t = frame_table().lock().unwrap();
    if let Some(&id) = t.ids.get(name) {
        return id;
    }
    t.names.push(name.to_string());
    let id = t.names.len() as u32;
    t.ids.insert(name.to_string(), id);
    id
}

fn frame_name(id: u32) -> String {
    if id == 0 {
        return "?".to_string();
    }
    let t = frame_table().lock().unwrap();
    t.names
        .get(id as usize - 1)
        .cloned()
        .unwrap_or_else(|| "?".to_string())
}

fn deep_marker() -> u32 {
    static DEEP: OnceLock<u32> = OnceLock::new();
    *DEEP.get_or_init(|| frame_id("(deep)"))
}

// ---------------------------------------------------------------------------
// Live stacks (seqlock)

/// One thread's sampler-visible span stack. Single writer (the owning
/// thread), any number of seqlock readers.
pub(crate) struct LiveStack {
    /// Thread name at registration; the root frame of every folded stack.
    name: String,
    /// Seqlock epoch: odd while the owner is mutating.
    epoch: AtomicU64,
    /// Logical depth (may exceed `MAX_FRAMES`; only the first
    /// `MAX_FRAMES` frames are mirrored).
    depth: AtomicUsize,
    frames: [AtomicU32; MAX_FRAMES],
    /// Current trace id on the owning thread (0 = none).
    trace: AtomicU64,
    /// Optional kernel/order label frame (0 = none), appended as leaf.
    label: AtomicU32,
    /// Set by the owner's thread-local destructor; pruned by the sampler.
    dead: AtomicBool,
}

struct SampledStack {
    frames: Vec<u32>,
    trace: u64,
}

impl LiveStack {
    fn new(name: String) -> Self {
        LiveStack {
            name,
            epoch: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
            frames: std::array::from_fn(|_| AtomicU32::new(0)),
            trace: AtomicU64::new(0),
            label: AtomicU32::new(0),
            dead: AtomicBool::new(false),
        }
    }

    // SeqCst throughout: pushes happen at span granularity (phases, not
    // per-edge work), so the fence cost is noise — and it keeps the
    // seqlock's publication order trivially correct on every target.
    fn push(&self, id: u32) {
        let d = self.depth.load(Ordering::Relaxed);
        self.epoch.fetch_add(1, Ordering::SeqCst);
        if d < MAX_FRAMES {
            self.frames[d].store(id, Ordering::SeqCst);
        }
        self.depth.store(d + 1, Ordering::SeqCst);
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    fn pop(&self) {
        let d = self.depth.load(Ordering::Relaxed);
        if d == 0 {
            return;
        }
        self.epoch.fetch_add(1, Ordering::SeqCst);
        self.depth.store(d - 1, Ordering::SeqCst);
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    fn set_trace(&self, trace: u64) {
        self.trace.store(trace, Ordering::SeqCst);
    }

    fn set_label(&self, id: u32) {
        self.label.store(id, Ordering::SeqCst);
    }

    /// Seqlock read: `None` for an idle stack or when the owner kept
    /// writing through every retry (skip, don't spin).
    fn sample(&self) -> Option<SampledStack> {
        for _ in 0..4 {
            let before = self.epoch.load(Ordering::SeqCst);
            if before & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let depth = self.depth.load(Ordering::SeqCst);
            let shown = depth.min(MAX_FRAMES);
            let mut frames = Vec::with_capacity(shown + 2);
            for f in &self.frames[..shown] {
                frames.push(f.load(Ordering::SeqCst));
            }
            let trace = self.trace.load(Ordering::SeqCst);
            let label = self.label.load(Ordering::SeqCst);
            if self.epoch.load(Ordering::SeqCst) != before {
                continue;
            }
            if depth == 0 {
                return None;
            }
            if depth > MAX_FRAMES {
                frames.push(deep_marker());
            }
            if label != 0 {
                frames.push(label);
            }
            return Some(SampledStack { frames, trace });
        }
        None
    }
}

// Per-thread live stacks, one per obs instance (keyed by instance id like
// the span and trace stacks). The wrapper's destructor marks every stack
// dead so the sampler prunes threads that exited.
struct TlsStacks(Vec<(u64, Arc<LiveStack>)>);

impl Drop for TlsStacks {
    fn drop(&mut self) {
        for (_, ls) in &self.0 {
            ls.dead.store(true, Ordering::SeqCst);
        }
    }
}

thread_local! {
    static LIVE_STACKS: RefCell<TlsStacks> = const { RefCell::new(TlsStacks(Vec::new())) };
}

/// This thread's live stack for `inner`, registering one with the
/// profiler core on first use.
fn with_stack(inner: &ObsInner, f: impl FnOnce(&LiveStack)) {
    let Some(core) = inner.prof.get() else { return };
    LIVE_STACKS.with(|tls| {
        let mut tls = tls.borrow_mut();
        if let Some((_, ls)) = tls.0.iter().find(|(id, _)| *id == inner.id) {
            f(ls);
            return;
        }
        let ls = {
            let mut threads = core.threads.lock().unwrap();
            let name = std::thread::current()
                .name()
                .map_or_else(|| format!("thread-{}", threads.len()), str::to_string);
            let ls = Arc::new(LiveStack::new(name));
            threads.push(Arc::clone(&ls));
            ls
        };
        if tls.0.len() >= 8 {
            // Obs ids are monotone; entries whose profiler died are the
            // only ones left holding the last strong reference here.
            tls.0.retain(|(_, r)| Arc::strong_count(r) > 1);
        }
        tls.0.push((inner.id, Arc::clone(&ls)));
        f(&ls);
    });
}

/// Span-enter hook: mirrors `name` onto this thread's live stack.
/// Returns whether a frame was pushed (the span pops only if so, in case
/// the profiler attaches while the span is open).
pub(crate) fn on_span_enter(inner: &ObsInner, name: &'static str) -> bool {
    if inner.prof.get().is_none() {
        return false;
    }
    let id = frame_id(name);
    with_stack(inner, |ls| {
        // Refresh the mirrored trace id: entering a span is the natural
        // point at which a new request context becomes observable.
        ls.set_trace(crate::trace::current_trace(inner.id));
        ls.push(id);
    });
    true
}

/// Span-exit hook, paired with a `true` return from [`on_span_enter`].
pub(crate) fn on_span_exit(obs_id: u64) {
    LIVE_STACKS.with(|tls| {
        if let Some((_, ls)) = tls.borrow().0.iter().find(|(id, _)| *id == obs_id) {
            ls.pop();
        }
    });
}

/// Trace-scope hook: re-mirrors the current trace id after a scope push
/// or pop, so samples taken mid-scope attribute to the right request.
pub(crate) fn on_trace_update(obs_id: u64) {
    LIVE_STACKS.with(|tls| {
        if let Some((_, ls)) = tls.borrow().0.iter().find(|(id, _)| *id == obs_id) {
            ls.set_trace(crate::trace::current_trace(obs_id));
        }
    });
}

/// Sets (or clears, with `""`) this thread's leaf label for `inner`.
pub(crate) fn set_label(inner: &ObsInner, label: &str) {
    let id = frame_id(label);
    with_stack(inner, |ls| ls.set_label(id));
}

// ---------------------------------------------------------------------------
// Aggregation

#[derive(Default)]
struct StackEntry {
    count: u64,
    /// Samples per trace id (only nonzero ids; bounded cardinality).
    traces: HashMap<u64, u64>,
}

/// Trace ids retained per distinct stack (newly seen ids beyond this are
/// dropped; already-tracked ids keep counting).
const MAX_TRACES_PER_STACK: usize = 64;

#[derive(Default)]
pub(crate) struct Aggregate {
    /// Sampling passes taken (a pass visits every registered thread).
    samples: u64,
    stacks: HashMap<(String, Vec<u32>), StackEntry>,
}

/// One sampling pass over every registered live stack, pruning threads
/// that exited since the last pass.
fn sample_pass(threads: &Mutex<Vec<Arc<LiveStack>>>, agg: &mut Aggregate) {
    let stacks: Vec<Arc<LiveStack>> = {
        let mut t = threads.lock().unwrap();
        t.retain(|ls| !ls.dead.load(Ordering::SeqCst));
        t.clone()
    };
    agg.samples += 1;
    for ls in stacks {
        let Some(s) = ls.sample() else { continue };
        let entry = agg.stacks.entry((ls.name.clone(), s.frames)).or_default();
        entry.count += 1;
        if s.trace != 0
            && (entry.traces.len() < MAX_TRACES_PER_STACK || entry.traces.contains_key(&s.trace))
        {
            *entry.traces.entry(s.trace).or_insert(0) += 1;
        }
    }
}

fn snapshot_from(agg: &Aggregate, interval: Duration) -> ProfSnapshot {
    let mut stacks: Vec<FoldedStack> = agg
        .stacks
        .iter()
        .map(|((thread, frames), e)| {
            let mut traces: Vec<(u64, u64)> = e.traces.iter().map(|(&t, &n)| (t, n)).collect();
            traces.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            FoldedStack {
                thread: thread.clone(),
                frames: frames.iter().map(|&f| frame_name(f)).collect(),
                count: e.count,
                traces,
            }
        })
        .collect();
    stacks.sort_by(|a, b| {
        b.count
            .cmp(&a.count)
            .then_with(|| a.thread.cmp(&b.thread))
            .then_with(|| a.frames.cmp(&b.frames))
    });
    ProfSnapshot {
        interval,
        samples: agg.samples,
        stacks,
    }
}

// ---------------------------------------------------------------------------
// The profiler core (background sampler lifecycle)

/// The attached profiler: live-stack registry, folded aggregate, and the
/// background sampler thread's lifecycle state. Mirrors the collector's
/// discipline: the thread holds only a `Weak` to the obs state, so the
/// last handle drop stops it; explicit stop and drop both join.
pub(crate) struct ProfCore {
    interval: Duration,
    pub(crate) threads: Mutex<Vec<Arc<LiveStack>>>,
    agg: Mutex<Aggregate>,
    stop: Arc<AtomicBool>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl ProfCore {
    /// One synchronous sampling pass into the cumulative aggregate.
    pub(crate) fn tick(&self) {
        let mut agg = self.agg.lock().unwrap();
        sample_pass(&self.threads, &mut agg);
    }

    /// Snapshot of the cumulative aggregate.
    pub(crate) fn snapshot(&self) -> ProfSnapshot {
        snapshot_from(&self.agg.lock().unwrap(), self.interval)
    }

    /// On-demand capture: samples into a *fresh* aggregate for
    /// `duration`, leaving the cumulative one untouched. Blocks the
    /// calling thread (the diagnostics endpoint's `/profile?seconds=N`).
    pub(crate) fn capture(&self, duration: Duration, interval: Duration) -> ProfSnapshot {
        let interval = interval.max(Duration::from_millis(1));
        let deadline = Instant::now() + duration;
        let mut agg = Aggregate::default();
        loop {
            sample_pass(&self.threads, &mut agg);
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            std::thread::sleep(interval.min(deadline - now));
        }
        snapshot_from(&agg, interval)
    }

    /// Signals the sampler thread and joins it; idempotent (the handle
    /// is taken on first call).
    pub(crate) fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.lock().unwrap().take() {
            let _ = t.join();
        }
    }
}

impl Drop for ProfCore {
    fn drop(&mut self) {
        // The sampler holds only a Weak to ObsInner, so it cannot be the
        // one dropping us — joining here never self-deadlocks.
        self.shutdown();
    }
}

/// Attach body for [`Obs::attach_profiler`](crate::Obs::attach_profiler):
/// builds the core and spawns the sampler (same deadline-sleep loop as
/// the collector, in ≤10 ms increments so stop is honoured promptly).
pub(crate) fn spawn_core(inner: &Arc<ObsInner>, interval: Duration) -> ProfCore {
    let interval = interval.max(Duration::from_millis(1));
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let weak: Weak<ObsInner> = Arc::downgrade(inner);
    let thread = std::thread::Builder::new()
        .name("asa-obs-profiler".into())
        .spawn(move || {
            let mut next = Instant::now() + interval;
            loop {
                while Instant::now() < next {
                    if stop2.load(Ordering::Relaxed) {
                        return;
                    }
                    let left = next.saturating_duration_since(Instant::now());
                    std::thread::sleep(left.min(Duration::from_millis(10)));
                }
                if stop2.load(Ordering::Relaxed) {
                    return;
                }
                let Some(strong) = weak.upgrade() else { return };
                if let Some(core) = strong.prof.get() {
                    core.tick();
                }
                drop(strong);
                next = std::cmp::max(next + interval, Instant::now() + interval);
            }
        })
        .expect("spawn obs profiler thread");
    ProfCore {
        interval,
        threads: Mutex::new(Vec::new()),
        agg: Mutex::new(Aggregate::default()),
        stop,
        thread: Mutex::new(Some(thread)),
    }
}

// ---------------------------------------------------------------------------
// Snapshot types and folded rendering

/// One distinct sampled stack: the owning thread, the frame path (root
/// first, label leaf last), how many samples landed on it, and which
/// trace ids those samples carried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldedStack {
    /// Thread name at registration (folded-stack root frame).
    pub thread: String,
    /// Span names root-to-leaf; a `(deep)` marker replaces frames beyond
    /// the mirror bound, and an active kernel/order label appends a leaf.
    pub frames: Vec<String>,
    /// Samples attributed to exactly this path (self time, in units of
    /// the sampling interval).
    pub count: u64,
    /// Samples per trace id, most-sampled first (0-id samples excluded).
    pub traces: Vec<(u64, u64)>,
}

impl FoldedStack {
    /// The collapsed-format key: `thread;frame;frame`, sanitized so the
    /// `name count` line format stays parseable.
    pub fn folded_key(&self) -> String {
        let mut out = sanitize_frame(&self.thread);
        for f in &self.frames {
            out.push(';');
            out.push_str(&sanitize_frame(f));
        }
        out
    }
}

fn sanitize_frame(s: &str) -> String {
    s.chars()
        .map(|c| match c {
            ';' => ':',
            ' ' | '\n' | '\t' => '_',
            c => c,
        })
        .collect()
}

/// Point-in-time folded profile, from
/// [`Obs::prof_snapshot`](crate::Obs::prof_snapshot) (cumulative) or
/// [`Obs::capture_profile`](crate::Obs::capture_profile) (on-demand).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfSnapshot {
    /// Sampling interval the profile was collected at.
    pub interval: Duration,
    /// Sampling passes taken (each pass visits every registered thread).
    pub samples: u64,
    /// Distinct stacks, most-sampled first.
    pub stacks: Vec<FoldedStack>,
}

impl ProfSnapshot {
    /// Samples attributed to any stack (idle threads don't count).
    pub fn total_count(&self) -> u64 {
        self.stacks.iter().map(|s| s.count).sum()
    }

    /// Brendan-Gregg collapsed format: one `stack count` line per
    /// distinct stack, most-sampled first. Feed to any flamegraph tool,
    /// or to [`render_flamegraph`] for the built-in renderer.
    pub fn render_folded(&self) -> String {
        let mut out = String::new();
        for s in &self.stacks {
            out.push_str(&s.folded_key());
            out.push(' ');
            out.push_str(&s.count.to_string());
            out.push('\n');
        }
        out
    }

    /// The top-`k` stacks by self time as `(folded key, count)` — the
    /// profile summary embedded in bench run metadata.
    pub fn top_stacks(&self, k: usize) -> Vec<(String, u64)> {
        self.stacks
            .iter()
            .take(k)
            .map(|s| (s.folded_key(), s.count))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Flamegraph SVG renderer

struct FlameNode {
    total: u64,
    children: std::collections::BTreeMap<String, FlameNode>,
}

impl FlameNode {
    fn new() -> Self {
        FlameNode {
            total: 0,
            children: std::collections::BTreeMap::new(),
        }
    }

    fn insert(&mut self, path: &[String], count: u64) {
        self.total += count;
        if let Some((head, rest)) = path.split_first() {
            self.children
                .entry(head.clone())
                .or_insert_with(FlameNode::new)
                .insert(rest, count);
        }
    }

    fn depth(&self) -> usize {
        1 + self
            .children
            .values()
            .map(FlameNode::depth)
            .max()
            .unwrap_or(0)
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Deterministic warm-palette fill from the frame name.
fn frame_color(name: &str) -> String {
    let mut h: u32 = 2166136261;
    for b in name.bytes() {
        h ^= u32::from(b);
        h = h.wrapping_mul(16777619);
    }
    let r = 205 + (h % 50);
    let g = 60 + ((h >> 8) % 130);
    let b = (h >> 16) % 60;
    format!("rgb({r},{g},{b})")
}

const FLAME_WIDTH: f64 = 1200.0;
const FRAME_HEIGHT: f64 = 16.0;

fn render_node(out: &mut String, name: &str, node: &FlameNode, x: f64, width: f64, depth: usize) {
    let y = 24.0 + depth as f64 * FRAME_HEIGHT;
    let label = if width >= 60.0 {
        // ~7 px/char budget, ellipsized.
        let max_chars = (width / 7.0) as usize;
        let mut text: String = name.chars().take(max_chars).collect();
        if text.len() < name.len() {
            text.push('…');
        }
        text
    } else {
        String::new()
    };
    out.push_str(&format!(
        "<g><title>{} ({} samples)</title><rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{width:.2}\" \
         height=\"{:.2}\" fill=\"{}\" rx=\"1\"/>",
        xml_escape(name),
        node.total,
        FRAME_HEIGHT - 1.0,
        frame_color(name),
    ));
    if !label.is_empty() {
        out.push_str(&format!(
            "<text x=\"{:.2}\" y=\"{:.2}\" font-size=\"11\" font-family=\"monospace\">{}</text>",
            x + 3.0,
            y + FRAME_HEIGHT - 5.0,
            xml_escape(&label)
        ));
    }
    out.push_str("</g>\n");
    let mut cx = x;
    for (child_name, child) in &node.children {
        let cw = width * child.total as f64 / node.total.max(1) as f64;
        if cw >= 0.25 {
            render_node(out, child_name, child, cx, cw, depth + 1);
        }
        cx += cw;
    }
}

/// Renders the profile as a self-contained icicle-layout flamegraph SVG
/// (root on top, children below, width ∝ samples). No external tooling
/// or scripts required to view it.
pub fn render_flamegraph(snap: &ProfSnapshot, title: &str) -> String {
    let mut root = FlameNode::new();
    for s in &snap.stacks {
        let mut path = Vec::with_capacity(s.frames.len() + 1);
        path.push(sanitize_frame(&s.thread));
        path.extend(s.frames.iter().map(|f| sanitize_frame(f)));
        root.insert(&path, s.count);
    }
    let depth = root.depth();
    let height = 24.0 + (depth as f64 + 1.0) * FRAME_HEIGHT + 8.0;
    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{FLAME_WIDTH}\" height=\"{height}\" \
         viewBox=\"0 0 {FLAME_WIDTH} {height}\">\n"
    ));
    out.push_str(&format!(
        "<text x=\"4\" y=\"16\" font-size=\"13\" font-family=\"monospace\">{} — {} samples @ \
         {:?} interval</text>\n",
        xml_escape(title),
        snap.total_count(),
        snap.interval
    ));
    if root.total > 0 {
        render_node(&mut out, "all", &root, 0.0, FLAME_WIDTH, 0);
    } else {
        out.push_str(
            "<text x=\"4\" y=\"40\" font-size=\"12\" font-family=\"monospace\">(no samples)\
             </text>\n",
        );
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_interning_is_content_keyed() {
        let a = frame_id("sweep");
        let b = frame_id(&format!("{}{}", "swe", "ep"));
        assert_eq!(a, b);
        assert_ne!(a, 0);
        assert_eq!(frame_name(a), "sweep");
        assert_eq!(frame_id(""), 0);
        assert_eq!(frame_name(0), "?");
    }

    #[test]
    fn live_stack_push_pop_sample() {
        let ls = LiveStack::new("t0".into());
        assert!(ls.sample().is_none(), "idle stack yields no sample");
        let a = frame_id("a");
        let b = frame_id("b");
        ls.push(a);
        ls.push(b);
        ls.set_trace(7);
        let s = ls.sample().unwrap();
        assert_eq!(s.frames, vec![a, b]);
        assert_eq!(s.trace, 7);
        ls.pop();
        let s = ls.sample().unwrap();
        assert_eq!(s.frames, vec![a]);
        ls.pop();
        assert!(ls.sample().is_none());
    }

    #[test]
    fn live_stack_label_appends_leaf() {
        let ls = LiveStack::new("t0".into());
        let a = frame_id("a");
        let k = frame_id("kernel=avx2");
        ls.push(a);
        ls.set_label(k);
        assert_eq!(ls.sample().unwrap().frames, vec![a, k]);
        ls.set_label(0);
        assert_eq!(ls.sample().unwrap().frames, vec![a]);
    }

    #[test]
    fn deep_stacks_truncate_with_marker() {
        let ls = LiveStack::new("t0".into());
        let f = frame_id("f");
        for _ in 0..(MAX_FRAMES + 3) {
            ls.push(f);
        }
        let s = ls.sample().unwrap();
        assert_eq!(s.frames.len(), MAX_FRAMES + 1);
        assert_eq!(*s.frames.last().unwrap(), deep_marker());
        for _ in 0..(MAX_FRAMES + 3) {
            ls.pop();
        }
        assert!(ls.sample().is_none());
    }

    #[test]
    fn folded_render_sorted_and_sanitized() {
        let mut agg = Aggregate::default();
        let threads = Mutex::new(vec![]);
        sample_pass(&threads, &mut agg); // empty pass still counts
        agg.stacks.insert(
            ("main thread".into(), vec![frame_id("x;y")]),
            StackEntry {
                count: 3,
                traces: HashMap::new(),
            },
        );
        agg.stacks.insert(
            ("main thread".into(), vec![frame_id("z")]),
            StackEntry {
                count: 9,
                traces: HashMap::new(),
            },
        );
        let snap = snapshot_from(&agg, Duration::from_millis(10));
        assert_eq!(snap.samples, 1);
        let folded = snap.render_folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines[0], "main_thread;z 9");
        assert_eq!(lines[1], "main_thread;x:y 3");
        assert_eq!(snap.top_stacks(1), vec![("main_thread;z".to_string(), 9)]);
    }

    #[test]
    fn flamegraph_svg_shape() {
        let snap = ProfSnapshot {
            interval: Duration::from_millis(10),
            samples: 12,
            stacks: vec![
                FoldedStack {
                    thread: "w0".into(),
                    frames: vec!["level".into(), "sweep".into()],
                    count: 8,
                    traces: vec![],
                },
                FoldedStack {
                    thread: "w0".into(),
                    frames: vec!["level".into()],
                    count: 4,
                    traces: vec![],
                },
            ],
        };
        let svg = render_flamegraph(&snap, "test");
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("sweep"));
        assert!(svg.contains("12 samples"));
        // Balanced <g> groups: one per rendered frame.
        assert_eq!(svg.matches("<g>").count(), svg.matches("</g>").count());
        let empty = ProfSnapshot {
            interval: Duration::from_millis(10),
            samples: 0,
            stacks: vec![],
        };
        assert!(render_flamegraph(&empty, "t").contains("no samples"));
    }
}
