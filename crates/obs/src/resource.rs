//! Process resource accounting: RSS, CPU time, context switches, fds —
//! and (behind the `alloc-track` feature) a counting global allocator.
//!
//! Everything reads Linux procfs (`/proc/self/status`, `/proc/self/stat`,
//! `/proc/self/fd`) with plain `std::fs`; on platforms without procfs
//! [`sample`] returns `None` and every consumer degrades gracefully (bench
//! metadata omits the fields, exposition skips the process families).
//!
//! The headline number is **peak RSS** (`VmHWM`): ROADMAP item 2 requires
//! every bench JSON to certify the memory high-water mark before 100M+-arc
//! runs are trusted, so [`crate::expose`] publishes it and the bench
//! harness embeds it in `BENCH_*.json` run metadata. The collector thread
//! also folds [`sample`] into the time-series each tick as `proc.*` level
//! series, which lets SLO objectives target memory directly.

use std::time::Duration;

/// Kernel tick length used by `/proc/self/stat` CPU fields. USER_HZ is
/// 100 on every Linux configuration this crate targets (the value has
/// been ABI-frozen for userspace since 2.6); reading it "properly" needs
/// `sysconf(_SC_CLK_TCK)`, i.e. libc, which this crate deliberately
/// avoids.
const CLK_TCK: f64 = 100.0;

/// One point-in-time reading of the process' resource usage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceSample {
    /// Resident set size, bytes (`VmRSS`).
    pub rss_bytes: u64,
    /// Peak resident set size, bytes (`VmHWM`) — the high-water mark over
    /// the whole process lifetime.
    pub peak_rss_bytes: u64,
    /// User-mode CPU time consumed, seconds (`utime`, all threads).
    pub cpu_user_s: f64,
    /// Kernel-mode CPU time consumed, seconds (`stime`, all threads).
    pub cpu_sys_s: f64,
    /// Voluntary context switches (blocking waits).
    pub voluntary_ctx_switches: u64,
    /// Involuntary context switches (preemptions).
    pub involuntary_ctx_switches: u64,
    /// Open file descriptors.
    pub open_fds: u64,
}

impl ResourceSample {
    /// Total CPU time (user + sys) as a [`Duration`].
    pub fn cpu_total(&self) -> Duration {
        Duration::from_secs_f64((self.cpu_user_s + self.cpu_sys_s).max(0.0))
    }
}

/// `"Key:   12345 kB"` → `12345`, for `/proc/self/status` lines.
fn status_field(status: &str, key: &str) -> Option<u64> {
    status
        .lines()
        .find(|l| l.starts_with(key))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

/// Parses the `utime`/`stime` fields (14 and 15, 1-based) out of
/// `/proc/self/stat`. The comm field (2) may contain spaces and
/// parentheses, so fields are counted from the *last* `)`.
fn cpu_times(stat: &str) -> Option<(f64, f64)> {
    let rest = &stat[stat.rfind(')')? + 1..];
    let fields: Vec<&str> = rest.split_whitespace().collect();
    // fields[0] is state (field 3), so utime (14) is fields[11].
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some((utime as f64 / CLK_TCK, stime as f64 / CLK_TCK))
}

/// Reads the current process' resource usage from procfs. `None` when
/// procfs is unavailable or unparsable (non-Linux platforms).
pub fn sample() -> Option<ResourceSample> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    let (cpu_user_s, cpu_sys_s) = cpu_times(&stat)?;
    let kb = 1024;
    Some(ResourceSample {
        rss_bytes: status_field(&status, "VmRSS:")? * kb,
        peak_rss_bytes: status_field(&status, "VmHWM:")? * kb,
        cpu_user_s,
        cpu_sys_s,
        voluntary_ctx_switches: status_field(&status, "voluntary_ctxt_switches:").unwrap_or(0),
        involuntary_ctx_switches: status_field(&status, "nonvoluntary_ctxt_switches:").unwrap_or(0),
        // Counts the read_dir handle itself too; one-off error is noise
        // at the scales health checks care about.
        open_fds: std::fs::read_dir("/proc/self/fd")
            .map(|d| d.count() as u64)
            .unwrap_or(0),
    })
}

/// Counting wrapper around the system allocator, enabled by the
/// `alloc-track` cargo feature. Install it in a binary (or test) with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: asa_obs::resource::alloc_track::CountingAllocator =
///     asa_obs::resource::alloc_track::CountingAllocator;
/// ```
///
/// then read totals with [`alloc_track::stats`]. The accounting is four
/// relaxed atomics per allocation — measurable but small; that is why it
/// is opt-in per binary rather than always on.
#[cfg(feature = "alloc-track")]
pub mod alloc_track {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static DEALLOCS: AtomicU64 = AtomicU64::new(0);
    static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
    static HIGH_WATER_BYTES: AtomicU64 = AtomicU64::new(0);

    /// Heap accounting totals since process start.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct AllocStats {
        /// Successful allocations (including the alloc half of realloc).
        pub allocs: u64,
        /// Deallocations (including the free half of realloc).
        pub deallocs: u64,
        /// Bytes currently live.
        pub live_bytes: u64,
        /// Largest `live_bytes` ever observed.
        pub high_water_bytes: u64,
    }

    /// Current totals. All zero unless a `CountingAllocator` is installed
    /// as the `#[global_allocator]`.
    pub fn stats() -> AllocStats {
        AllocStats {
            allocs: ALLOCS.load(Ordering::Relaxed),
            deallocs: DEALLOCS.load(Ordering::Relaxed),
            live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
            high_water_bytes: HIGH_WATER_BYTES.load(Ordering::Relaxed),
        }
    }

    fn on_alloc(bytes: u64) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        let live = LIVE_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
        HIGH_WATER_BYTES.fetch_max(live, Ordering::Relaxed);
    }

    fn on_dealloc(bytes: u64) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        // Saturating: a dealloc of memory allocated before the counter
        // was installed must not wrap the live total.
        let _ = LIVE_BYTES.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(bytes))
        });
    }

    /// The counting `#[global_allocator]`; see the module docs.
    pub struct CountingAllocator;

    // SAFETY: delegates allocation itself entirely to `System`; the
    // wrapper only updates atomics, which allocate nothing.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc(layout) };
            if !p.is_null() {
                on_alloc(layout.size() as u64);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) };
            on_dealloc(layout.size() as u64);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = unsafe { System.realloc(ptr, layout, new_size) };
            if !p.is_null() {
                on_dealloc(layout.size() as u64);
                on_alloc(new_size as u64);
            }
            p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_field_parses_kb_lines() {
        let status = "Name:\tx\nVmRSS:\t  1234 kB\nVmHWM:\t  5678 kB\n";
        assert_eq!(status_field(status, "VmRSS:"), Some(1234));
        assert_eq!(status_field(status, "VmHWM:"), Some(5678));
        assert_eq!(status_field(status, "VmMissing:"), None);
    }

    #[test]
    fn cpu_times_skip_comm_with_spaces_and_parens() {
        // comm is "(weird name))" — fields count from the *last* ')'.
        let stat = "123 (weird name)) S 1 2 3 4 5 6 7 8 9 10 250 50 0 0 20 0";
        let (u, s) = cpu_times(stat).unwrap();
        assert!((u - 2.5).abs() < 1e-9, "utime 250 ticks = 2.5 s, got {u}");
        assert!((s - 0.5).abs() < 1e-9);
    }

    #[test]
    fn live_sample_is_plausible_on_linux() {
        let Some(s) = sample() else {
            return; // non-procfs platform: nothing to assert
        };
        assert!(s.rss_bytes > 0);
        assert!(s.peak_rss_bytes >= s.rss_bytes);
        assert!(s.open_fds > 0);
        assert!(s.cpu_user_s >= 0.0 && s.cpu_sys_s >= 0.0);
        assert!(s.cpu_total() >= Duration::ZERO);
    }
}
