//! Continuous time-series telemetry: a lock-light ring of fixed-interval
//! samples behind every registered metric.
//!
//! The aggregate metrics in [`crate::metrics`] answer "how much since the
//! process started"; this module answers "how much *per second, right
//! now*" — the shape a health engine ([`crate::slo`]) or a scrape endpoint
//! ([`crate::expose`]) needs. A [`TimeSeriesStore`] holds one bounded ring
//! of `(t_us, value)` points per derived series:
//!
//! - every [`Counter`](crate::Counter) becomes a **rate** series
//!   (delta / tick interval, in events per second). Deltas are
//!   reset-correct: a cumulative value that *decreases* is treated as a
//!   restart, so the new total counts as this interval's delta instead of
//!   producing a negative rate;
//! - every [`Gauge`](crate::Gauge) becomes a **level** series (last set
//!   value at each tick);
//! - every [`Hist`](crate::Hist) becomes three **quantile** series
//!   (`<name>.p50`/`.p95`/`.p99`) plus a `<name>.rate` sample-rate series.
//!
//! Ticks are fed either by the background collector thread
//! ([`Obs::attach_collector`](crate::Obs::attach_collector)) at the
//! configured resolution, or manually
//! ([`Obs::tick_collector`](crate::Obs::tick_collector)) for deterministic
//! tests. The store itself is passive — [`record_tick`](
//! TimeSeriesStore::record_tick) accepts any snapshot slices, so ring
//! semantics are testable without an `Obs` at all.
//!
//! Lock discipline: one mutex around the series table, taken once per tick
//! (4/s at the default 250 ms resolution) and briefly per query; observers
//! run *after* the table lock is released so they can query freely.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use crate::metrics::{CounterSnapshot, GaugeSnapshot, HistSnapshot};

/// Sampling resolution and retention of a [`TimeSeriesStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeSeriesConfig {
    /// Interval between collector ticks. Also the rate denominator's
    /// nominal value (the actual elapsed time between ticks is used).
    pub resolution: Duration,
    /// Ring capacity per series; older samples are overwritten. The
    /// default 4096 slots × 250 ms retain ~17 minutes.
    pub slots: usize,
}

impl Default for TimeSeriesConfig {
    fn default() -> Self {
        TimeSeriesConfig {
            resolution: Duration::from_millis(250),
            slots: 4096,
        }
    }
}

/// How a series' values were derived from its source metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Counter delta per second.
    Rate,
    /// Gauge level at the tick.
    Level,
    /// Histogram quantile estimate at the tick.
    Quantile,
}

/// One ring sample: value at `t_us` microseconds since the obs epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Microseconds since the owning obs handle was created (the same
    /// timebase as [`Record::t_us`](crate::Record) and trace events).
    pub t_us: u64,
    /// Sampled value (rate, level, or quantile per [`SeriesKind`]).
    pub value: f64,
}

/// Summary of the samples inside one query window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Samples in the window.
    pub samples: usize,
    /// Most recent sample.
    pub last: f64,
    /// Smallest sample in the window.
    pub min: f64,
    /// Largest sample in the window.
    pub max: f64,
    /// Arithmetic mean over the window.
    pub avg: f64,
}

/// Name/kind/occupancy listing of one series, for exposition.
#[derive(Debug, Clone)]
pub struct SeriesInfo {
    /// Series name (metric name, possibly with a `.p95`-style suffix).
    pub name: String,
    /// Derivation kind.
    pub kind: SeriesKind,
    /// Samples currently retained (≤ configured slots).
    pub samples: usize,
    /// Most recent sample value (0 when empty).
    pub last: f64,
}

struct Series {
    name: String,
    kind: SeriesKind,
    /// Ring storage: grows to `slots`, then `head` wraps.
    ring: Vec<SeriesPoint>,
    /// Next write position once the ring is full.
    head: usize,
    /// Last raw cumulative value, for rate series' delta computation.
    last_raw: f64,
}

impl Series {
    fn new(name: String, kind: SeriesKind) -> Self {
        Series {
            name,
            kind,
            ring: Vec::new(),
            head: 0,
            last_raw: 0.0,
        }
    }

    fn push(&mut self, slots: usize, p: SeriesPoint) {
        if self.ring.len() < slots {
            self.ring.push(p);
        } else {
            self.ring[self.head] = p;
            self.head = (self.head + 1) % slots;
        }
    }

    /// Retained points, oldest first.
    fn points(&self) -> Vec<SeriesPoint> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.head..]);
        out.extend_from_slice(&self.ring[..self.head]);
        out
    }

    fn last(&self) -> Option<SeriesPoint> {
        if self.ring.is_empty() {
            None
        } else if self.head == 0 {
            // Not yet wrapped, or wrapped exactly to the start: the
            // newest sample is the final element either way.
            self.ring.last().copied()
        } else {
            Some(self.ring[self.head - 1])
        }
    }
}

#[derive(Default)]
struct Inner {
    index: HashMap<String, usize>,
    series: Vec<Series>,
    ticks: u64,
    last_t_us: u64,
}

impl Inner {
    fn ensure(&mut self, name: &str, kind: SeriesKind) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.series.len();
        self.series.push(Series::new(name.to_string(), kind));
        self.index.insert(name.to_string(), i);
        i
    }
}

/// Observer invoked after every tick with the store itself; registered by
/// the SLO wiring in `asa-serve`. Runs on whichever thread ticked (the
/// collector thread, or the caller of a manual tick).
pub type TickObserver = Box<dyn Fn(&TimeSeriesStore) + Send>;

/// The per-handle series table. Obtain via
/// [`Obs::timeseries`](crate::Obs::timeseries) after
/// [`Obs::attach_collector`](crate::Obs::attach_collector), or construct
/// directly for tests.
pub struct TimeSeriesStore {
    cfg: TimeSeriesConfig,
    inner: Mutex<Inner>,
    observers: Mutex<Vec<TickObserver>>,
}

impl std::fmt::Debug for TimeSeriesStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("TimeSeriesStore")
            .field("series", &inner.series.len())
            .field("ticks", &inner.ticks)
            .finish()
    }
}

impl TimeSeriesStore {
    /// An empty store with the given resolution/retention.
    pub fn new(cfg: TimeSeriesConfig) -> Self {
        TimeSeriesStore {
            cfg: TimeSeriesConfig {
                slots: cfg.slots.max(2),
                ..cfg
            },
            inner: Mutex::new(Inner::default()),
            observers: Mutex::new(Vec::new()),
        }
    }

    /// The configured resolution/retention.
    pub fn config(&self) -> &TimeSeriesConfig {
        &self.cfg
    }

    /// Ticks recorded so far.
    pub fn ticks(&self) -> u64 {
        self.inner.lock().unwrap().ticks
    }

    /// Timestamp of the most recent tick (µs since the obs epoch).
    pub fn last_t_us(&self) -> u64 {
        self.inner.lock().unwrap().last_t_us
    }

    /// Registers a post-tick observer. Observers run in registration
    /// order after the series table lock is released, on the ticking
    /// thread. An observer must not register further observers (the
    /// observer list lock is held during delivery) and must not stop the
    /// collector from inside a tick.
    pub fn add_observer(&self, f: TickObserver) {
        self.observers.lock().unwrap().push(f);
    }

    /// Ingests one tick of metric snapshots, deriving every series'
    /// next sample at time `t_us`:
    ///
    /// - counters → `<name>` rate = delta / elapsed (reset-correct: a
    ///   decreased cumulative value counts entirely as this interval's
    ///   delta);
    /// - gauges → `<name>` level;
    /// - histograms → `<name>.p50`/`.p95`/`.p99` quantiles and
    ///   `<name>.rate` sample rate.
    ///
    /// Metrics registered after earlier ticks simply start their series
    /// late. The elapsed interval is measured from the previous tick
    /// (from 0 for the first), clamped to ≥ 1 µs.
    pub fn record_tick(
        &self,
        t_us: u64,
        counters: &[CounterSnapshot],
        gauges: &[GaugeSnapshot],
        hists: &[HistSnapshot],
    ) {
        {
            let mut inner = self.inner.lock().unwrap();
            let dt_s = (t_us.saturating_sub(inner.last_t_us).max(1)) as f64 / 1e6;
            let slots = self.cfg.slots;
            for c in counters {
                let i = inner.ensure(c.name, SeriesKind::Rate);
                let s = &mut inner.series[i];
                let raw = c.value as f64;
                let delta = if raw < s.last_raw {
                    raw
                } else {
                    raw - s.last_raw
                };
                s.last_raw = raw;
                s.push(
                    slots,
                    SeriesPoint {
                        t_us,
                        value: delta / dt_s,
                    },
                );
            }
            for g in gauges {
                let i = inner.ensure(g.name, SeriesKind::Level);
                inner.series[i].push(
                    slots,
                    SeriesPoint {
                        t_us,
                        value: g.last as f64,
                    },
                );
            }
            for h in hists {
                for (suffix, q) in [(".p50", 0.50), (".p95", 0.95), (".p99", 0.99)] {
                    let name = format!("{}{suffix}", h.name);
                    let i = inner.ensure(&name, SeriesKind::Quantile);
                    inner.series[i].push(
                        slots,
                        SeriesPoint {
                            t_us,
                            value: h.quantile(q),
                        },
                    );
                }
                let name = format!("{}.rate", h.name);
                let i = inner.ensure(&name, SeriesKind::Rate);
                let s = &mut inner.series[i];
                let raw = h.count as f64;
                let delta = if raw < s.last_raw {
                    raw
                } else {
                    raw - s.last_raw
                };
                s.last_raw = raw;
                s.push(
                    slots,
                    SeriesPoint {
                        t_us,
                        value: delta / dt_s,
                    },
                );
            }
            inner.ticks += 1;
            inner.last_t_us = t_us;
        }
        let observers = self.observers.lock().unwrap();
        for f in observers.iter() {
            f(self);
        }
    }

    /// Every series' name, kind, occupancy, and latest value.
    pub fn series(&self) -> Vec<SeriesInfo> {
        let inner = self.inner.lock().unwrap();
        inner
            .series
            .iter()
            .map(|s| SeriesInfo {
                name: s.name.clone(),
                kind: s.kind,
                samples: s.ring.len(),
                last: s.last().map_or(0.0, |p| p.value),
            })
            .collect()
    }

    /// Retained points of one series, oldest first. `None` for an unknown
    /// name.
    pub fn points(&self, name: &str) -> Option<Vec<SeriesPoint>> {
        let inner = self.inner.lock().unwrap();
        let &i = inner.index.get(name)?;
        Some(inner.series[i].points())
    }

    /// The samples of `name` within the last `seconds` (relative to that
    /// series' newest sample, inclusive: `t_us ≥ newest − seconds`),
    /// oldest first. `None` for an unknown or empty series.
    pub fn window_values(&self, name: &str, seconds: f64) -> Option<Vec<f64>> {
        let points = self.points(name)?;
        let newest = points.last()?.t_us;
        let cutoff = newest.saturating_sub((seconds.max(0.0) * 1e6) as u64);
        Some(
            points
                .iter()
                .filter(|p| p.t_us >= cutoff)
                .map(|p| p.value)
                .collect(),
        )
    }

    /// Min/max/avg/last over the window. `None` for an unknown or empty
    /// series.
    pub fn window(&self, name: &str, seconds: f64) -> Option<WindowStats> {
        let values = self.window_values(name, seconds)?;
        let last = *values.last()?;
        let (mut min, mut max, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
        for &v in &values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        Some(WindowStats {
            samples: values.len(),
            last,
            min,
            max,
            avg: sum / values.len() as f64,
        })
    }

    /// Nearest-rank quantile of the window's samples: with `n` samples
    /// sorted ascending, reports the `ceil(q·n)`-th (1-based, clamped).
    /// `None` for an unknown or empty series.
    pub fn window_quantile(&self, name: &str, seconds: f64, q: f64) -> Option<f64> {
        let mut values = self.window_values(name, seconds)?;
        if values.is_empty() {
            return None;
        }
        values.sort_by(f64::total_cmp);
        let rank = (q.clamp(0.0, 1.0) * values.len() as f64).ceil() as usize;
        Some(values[rank.clamp(1, values.len()) - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(name: &'static str, value: u64) -> CounterSnapshot {
        CounterSnapshot { name, value }
    }

    fn g(name: &'static str, last: u64) -> GaugeSnapshot {
        GaugeSnapshot {
            name,
            last,
            max: last,
        }
    }

    fn store(slots: usize) -> TimeSeriesStore {
        TimeSeriesStore::new(TimeSeriesConfig {
            resolution: Duration::from_millis(1),
            slots,
        })
    }

    #[test]
    fn counter_becomes_per_second_rate() {
        let ts = store(16);
        // 1 s between ticks, +500 events → 500/s.
        ts.record_tick(1_000_000, &[c("ev", 100)], &[], &[]);
        ts.record_tick(2_000_000, &[c("ev", 600)], &[], &[]);
        let pts = ts.points("ev").unwrap();
        assert_eq!(pts.len(), 2);
        assert!((pts[1].value - 500.0).abs() < 1e-9);
    }

    #[test]
    fn counter_reset_counts_as_fresh_delta() {
        let ts = store(16);
        ts.record_tick(1_000_000, &[c("ev", 1000)], &[], &[]);
        // Cumulative value dropped: a restart, not a negative rate.
        ts.record_tick(2_000_000, &[c("ev", 40)], &[], &[]);
        let pts = ts.points("ev").unwrap();
        assert!((pts[1].value - 40.0).abs() < 1e-9);
        assert!(pts.iter().all(|p| p.value >= 0.0));
    }

    #[test]
    fn ring_wraps_keeping_newest() {
        let ts = store(4);
        for i in 0..10u64 {
            ts.record_tick(i * 1_000_000, &[], &[g("depth", i)], &[]);
        }
        let pts = ts.points("depth").unwrap();
        assert_eq!(pts.len(), 4);
        let values: Vec<u64> = pts.iter().map(|p| p.value as u64).collect();
        assert_eq!(values, vec![6, 7, 8, 9], "oldest-first, newest retained");
        assert!(pts.windows(2).all(|w| w[0].t_us <= w[1].t_us));
    }

    #[test]
    fn window_filters_by_time() {
        let ts = store(64);
        for i in 0..10u64 {
            ts.record_tick(i * 1_000_000, &[], &[g("depth", i)], &[]);
        }
        // Last 3 s relative to the newest sample (t = 9 s): 6, 7, 8, 9.
        let w = ts.window("depth", 3.0).unwrap();
        assert_eq!(w.samples, 4);
        assert_eq!(w.last, 9.0);
        assert_eq!(w.min, 6.0);
        assert_eq!(w.max, 9.0);
        assert!((w.avg - 7.5).abs() < 1e-9);
    }

    #[test]
    fn observers_fire_after_each_tick() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let ts = store(8);
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        ts.add_observer(Box::new(move |st| {
            // The table lock is free during delivery: queries work.
            seen2.store(st.ticks(), Ordering::Relaxed);
        }));
        ts.record_tick(1, &[], &[], &[]);
        ts.record_tick(2, &[], &[], &[]);
        assert_eq!(seen.load(Ordering::Relaxed), 2);
    }
}
