//! Request-scoped flight recorder: per-thread ring buffers of timestamped
//! trace events, keyed by a [`TraceId`] threaded through the serving stack.
//!
//! The aggregate side of this crate (spans, counters, histograms) answers
//! "where does time go on average"; the flight recorder answers "where did
//! *this* request's time go". Each recording thread owns a bounded ring of
//! [`TraceEvent`]s behind its own mutex — the lock is effectively
//! uncontended (only the owning thread records into it; only a snapshot
//! reader ever competes), so recording costs one timestamp read plus one
//! short critical section. When a ring fills, the oldest events are
//! overwritten and the drop is *counted*, never silent.
//!
//! Event vocabulary (mirroring the Chrome trace-event model the exporter
//! targets):
//!
//! - [`TraceKind::Begin`]/[`TraceKind::End`] — synchronous span edges on
//!   the recording thread's track. [`crate::Span`] emits these
//!   automatically when a recorder is attached.
//! - [`TraceKind::AsyncBegin`]/[`TraceKind::AsyncEnd`] — request-stage
//!   edges that may start and end on different threads (queue wait,
//!   dispatch); paired by `(trace, name)` on one per-request async track.
//! - [`TraceKind::Instant`] — point events (cancellation, degradation rung
//!   transitions).
//! - [`TraceKind::Counter`] — sampled counter values (queue depth).
//!
//! A [`TraceScope`] pins the *current* trace id on the executing thread
//! (thread-local stack, keyed by obs instance like span nesting), so
//! deeply nested instrumentation — Infomap's per-sweep spans, the SPA
//! kernels — tags its events with the request being served without any
//! plumbing through the call graph.
//!
//! Disabled cost: a handle without a recorder attached pays one pointer
//! load per potential event (`OnceLock::get` on `None`), which keeps the
//! always-on serving path within the crate's ≤5 % overhead budget (gated
//! by `hostperf --obs-overhead` in CI).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Identifier of one traced request, minted by
/// [`Obs::mint_trace_id`](crate::Obs::mint_trace_id). `TraceId::NONE`
/// (zero) marks events recorded outside any request scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The "no request" id carried by events recorded outside any
    /// [`TraceScope`].
    pub const NONE: TraceId = TraceId(0);

    /// Whether this is the null id.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// What a [`TraceEvent`] marks. See the module docs for the vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Synchronous span opened on the recording thread.
    Begin,
    /// Synchronous span closed on the recording thread.
    End,
    /// Request stage opened (may close on another thread).
    AsyncBegin,
    /// Request stage closed.
    AsyncEnd,
    /// Point event.
    Instant,
    /// Sampled counter value.
    Counter(i64),
}

/// One recorded event. `t_us` is microseconds since the owning
/// [`Obs`](crate::Obs) handle was created — the same timebase as
/// [`Record::t_us`](crate::Record) — so ring events and sink records
/// correlate directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Microseconds since the obs epoch.
    pub t_us: u64,
    /// Owning request (0 = none).
    pub trace: u64,
    /// Event name (span name, stage name, counter name).
    pub name: &'static str,
    /// Category, e.g. `"span"`, `"request"`, `"infomap"`, `"sim"`.
    pub cat: &'static str,
    /// Event kind.
    pub kind: TraceKind,
}

#[derive(Debug, Default)]
struct RingState {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// One thread's bounded event ring. Only the owning thread records into
/// it; snapshots briefly take the same mutex.
#[derive(Debug)]
struct ThreadRing {
    tid: u64,
    name: String,
    state: Mutex<RingState>,
}

impl ThreadRing {
    fn record(&self, capacity: usize, ev: TraceEvent) {
        let mut state = self.state.lock().unwrap();
        if state.events.len() >= capacity {
            state.events.pop_front();
            state.dropped += 1;
        }
        state.events.push_back(ev);
    }
}

/// All events recorded by one thread, in recording order, plus how many
/// older events the bounded ring overwrote.
#[derive(Debug, Clone)]
pub struct ThreadTrack {
    /// Dense per-recorder thread id (registration order).
    pub tid: u64,
    /// OS thread name at registration, or `thread-<tid>`.
    pub name: String,
    /// Events overwritten by the ring bound (0 = complete record).
    pub dropped: u64,
    /// Retained events, oldest first, timestamps non-decreasing.
    pub events: Vec<TraceEvent>,
}

/// Point-in-time copy of every thread's ring, ordered by `tid`. Input to
/// the [`chrome`](crate::chrome) exporter and [`tail`](crate::tail)
/// attribution.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// One track per thread that recorded at least one event.
    pub threads: Vec<ThreadTrack>,
}

impl TraceSnapshot {
    /// Total retained events across all threads.
    pub fn num_events(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// Total overwritten events across all threads.
    pub fn total_dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }
}

/// The recorder behind one enabled [`Obs`](crate::Obs) handle. Created by
/// [`Obs::attach_recorder`](crate::Obs::attach_recorder) or
/// [`ObsConfig::trace_capacity`](crate::ObsConfig::trace_capacity).
#[derive(Debug)]
pub struct FlightRecorder {
    obs_id: u64,
    epoch: Instant,
    per_thread_capacity: usize,
    next_trace: AtomicU64,
    threads: Mutex<Vec<Arc<ThreadRing>>>,
}

// Per-thread ring lookup cache: one entry per live recorder this thread
// has recorded into. Obs ids are never reused, so a stale entry can only
// belong to a dropped recorder; those are pruned when the cache grows.
thread_local! {
    static RING_CACHE: RefCell<Vec<(u64, Arc<ThreadRing>)>> = const { RefCell::new(Vec::new()) };
}

// Per-thread current-trace stacks, keyed by obs instance id exactly like
// the span nesting stacks in `span.rs`.
thread_local! {
    static TRACE_STACKS: RefCell<Vec<(u64, Vec<u64>)>> = const { RefCell::new(Vec::new()) };
}

pub(crate) fn current_trace(obs_id: u64) -> u64 {
    TRACE_STACKS.with(|stacks| {
        stacks
            .borrow()
            .iter()
            .find(|(id, _)| *id == obs_id)
            .and_then(|(_, stack)| stack.last().copied())
            .unwrap_or(0)
    })
}

fn push_trace(obs_id: u64, trace: u64) {
    TRACE_STACKS.with(|stacks| {
        let mut stacks = stacks.borrow_mut();
        if let Some((_, stack)) = stacks.iter_mut().find(|(id, _)| *id == obs_id) {
            stack.push(trace);
        } else {
            stacks.push((obs_id, vec![trace]));
        }
    });
}

fn pop_trace(obs_id: u64) {
    TRACE_STACKS.with(|stacks| {
        let mut stacks = stacks.borrow_mut();
        if let Some(pos) = stacks.iter().position(|(id, _)| *id == obs_id) {
            let stack = &mut stacks[pos].1;
            stack.pop();
            if stack.is_empty() {
                stacks.swap_remove(pos);
            }
        }
    });
}

impl FlightRecorder {
    pub(crate) fn new(obs_id: u64, epoch: Instant, per_thread_capacity: usize) -> Self {
        FlightRecorder {
            obs_id,
            epoch,
            per_thread_capacity: per_thread_capacity.max(16),
            next_trace: AtomicU64::new(1),
            threads: Mutex::new(Vec::new()),
        }
    }

    /// Per-thread event bound the recorder was attached with.
    pub fn per_thread_capacity(&self) -> usize {
        self.per_thread_capacity
    }

    /// Mints the next request id (never [`TraceId::NONE`]).
    pub fn mint(&self) -> TraceId {
        TraceId(self.next_trace.fetch_add(1, Ordering::Relaxed))
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// This thread's ring, registering it (dense tid, OS thread name) on
    /// first use. Subsequent calls hit a thread-local cache.
    fn ring(&self) -> Arc<ThreadRing> {
        RING_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, ring)) = cache.iter().find(|(id, _)| *id == self.obs_id) {
                return Arc::clone(ring);
            }
            let ring = {
                let mut threads = self.threads.lock().unwrap();
                let tid = threads.len() as u64;
                let name = std::thread::current()
                    .name()
                    .map_or_else(|| format!("thread-{tid}"), str::to_string);
                let ring = Arc::new(ThreadRing {
                    tid,
                    name,
                    state: Mutex::new(RingState::default()),
                });
                threads.push(Arc::clone(&ring));
                ring
            };
            if cache.len() >= 8 {
                // Obs ids are monotone: entries whose recorder died are the
                // only ones left with a single strong reference here.
                cache.retain(|(_, r)| Arc::strong_count(r) > 1);
            }
            cache.push((self.obs_id, Arc::clone(&ring)));
            ring
        })
    }

    /// Records one event tagged with an explicit trace id.
    pub(crate) fn record(
        &self,
        trace: u64,
        name: &'static str,
        cat: &'static str,
        kind: TraceKind,
    ) {
        let ev = TraceEvent {
            t_us: self.now_us(),
            trace,
            name,
            cat,
            kind,
        };
        self.ring().record(self.per_thread_capacity, ev);
    }

    /// Records one event tagged with the thread's current trace scope.
    pub(crate) fn record_current(&self, name: &'static str, cat: &'static str, kind: TraceKind) {
        self.record(current_trace(self.obs_id), name, cat, kind);
    }

    pub(crate) fn scope(&self, trace: TraceId) -> TraceScope {
        push_trace(self.obs_id, trace.0);
        // Keep the profiler's sampler-visible trace id in sync so samples
        // taken inside this scope attribute to the request being served.
        crate::prof::on_trace_update(self.obs_id);
        TraceScope {
            obs_id: Some(self.obs_id),
            _not_send: PhantomData,
        }
    }

    /// Copies every thread's ring, ordered by tid. Threads may keep
    /// recording concurrently; each track is internally consistent
    /// (single-lock copy, timestamps non-decreasing).
    pub fn snapshot(&self) -> TraceSnapshot {
        let threads = self.threads.lock().unwrap().clone();
        let mut tracks: Vec<ThreadTrack> = threads
            .iter()
            .map(|ring| {
                let state = ring.state.lock().unwrap();
                ThreadTrack {
                    tid: ring.tid,
                    name: ring.name.clone(),
                    dropped: state.dropped,
                    events: state.events.iter().cloned().collect(),
                }
            })
            .collect();
        tracks.sort_by_key(|t| t.tid);
        TraceSnapshot { threads: tracks }
    }
}

/// RAII guard pinning the current [`TraceId`] on this thread; nested
/// scopes restore the outer id on drop. Obtained from
/// [`Obs::trace_scope`](crate::Obs::trace_scope).
///
/// Not `Send`: the current-trace stack is thread-local, so a scope must
/// end on the thread that opened it.
#[derive(Debug)]
pub struct TraceScope {
    obs_id: Option<u64>,
    _not_send: PhantomData<*const ()>,
}

impl TraceScope {
    /// A scope that pins nothing (from a disabled or recorder-less obs).
    pub fn disabled() -> Self {
        TraceScope {
            obs_id: None,
            _not_send: PhantomData,
        }
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if let Some(obs_id) = self.obs_id.take() {
            pop_trace(obs_id);
            crate::prof::on_trace_update(obs_id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    #[test]
    fn disabled_obs_trace_calls_are_inert() {
        let obs = Obs::disabled();
        assert!(!obs.trace_enabled());
        assert!(obs.mint_trace_id().is_none());
        let _scope = obs.trace_scope(TraceId(7));
        obs.trace_instant("x", "t");
        obs.trace_counter("c", 3);
        obs.trace_async_begin(TraceId(7), "stage", "t");
        obs.trace_async_end(TraceId(7), "stage", "t");
        assert!(obs.trace_snapshot().is_none());
    }

    #[test]
    fn enabled_obs_without_recorder_records_nothing() {
        let obs = Obs::new_enabled();
        assert!(!obs.trace_enabled());
        assert!(obs.mint_trace_id().is_none());
        obs.trace_instant("x", "t");
        assert!(obs.trace_snapshot().is_none());
        // Spans still work and do not panic without a recorder.
        let _sp = obs.span("work");
    }

    #[test]
    fn spans_emit_balanced_begin_end_with_current_trace() {
        let obs = Obs::new_enabled();
        obs.attach_recorder(1024);
        let id = obs.mint_trace_id();
        assert!(!id.is_none());
        {
            let _scope = obs.trace_scope(id);
            let _outer = obs.span("outer");
            let _inner = obs.span("inner");
        }
        let _untagged = obs.span("later");
        drop(_untagged);
        let snap = obs.trace_snapshot().unwrap();
        assert_eq!(snap.threads.len(), 1);
        let events = &snap.threads[0].events;
        let kinds: Vec<_> = events.iter().map(|e| (e.name, e.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                ("outer", TraceKind::Begin),
                ("inner", TraceKind::Begin),
                ("inner", TraceKind::End),
                ("outer", TraceKind::End),
                ("later", TraceKind::Begin),
                ("later", TraceKind::End),
            ]
        );
        for e in &events[..4] {
            assert_eq!(e.trace, id.0, "scoped span events carry the trace id");
        }
        assert_eq!(events[4].trace, 0, "outside the scope the id is NONE");
        // Timestamps never go backwards within a track.
        assert!(events.windows(2).all(|w| w[0].t_us <= w[1].t_us));
    }

    #[test]
    fn nested_scopes_restore_outer_id() {
        let obs = Obs::new_enabled();
        obs.attach_recorder(64);
        let a = obs.mint_trace_id();
        let b = obs.mint_trace_id();
        assert_ne!(a, b);
        let _sa = obs.trace_scope(a);
        obs.trace_instant("in_a", "t");
        {
            let _sb = obs.trace_scope(b);
            obs.trace_instant("in_b", "t");
        }
        obs.trace_instant("back_in_a", "t");
        let snap = obs.trace_snapshot().unwrap();
        let ev = &snap.threads[0].events;
        assert_eq!(ev[0].trace, a.0);
        assert_eq!(ev[1].trace, b.0);
        assert_eq!(ev[2].trace, a.0);
    }

    #[test]
    fn ring_bound_overwrites_oldest_and_counts_drops() {
        let obs = Obs::new_enabled();
        obs.attach_recorder(16);
        for _ in 0..100 {
            obs.trace_instant("tick", "t");
        }
        let snap = obs.trace_snapshot().unwrap();
        let track = &snap.threads[0];
        assert_eq!(track.events.len(), 16);
        assert_eq!(track.dropped, 84);
        assert_eq!(snap.total_dropped(), 84);
        assert_eq!(snap.num_events(), 16);
    }

    #[test]
    fn threads_get_distinct_tids_and_names() {
        let obs = Obs::new_enabled();
        obs.attach_recorder(256);
        obs.trace_instant("main", "t");
        let mut handles = Vec::new();
        for i in 0..3 {
            let obs = obs.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rec-{i}"))
                    .spawn(move || {
                        let _sp = obs.span("thread_work");
                        obs.trace_counter("work", i);
                    })
                    .unwrap(),
            );
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = obs.trace_snapshot().unwrap();
        assert_eq!(snap.threads.len(), 4);
        let mut tids: Vec<u64> = snap.threads.iter().map(|t| t.tid).collect();
        tids.dedup();
        assert_eq!(tids, vec![0, 1, 2, 3], "dense tids in registration order");
        let names: Vec<&str> = snap.threads.iter().map(|t| t.name.as_str()).collect();
        for i in 0..3 {
            assert!(names.iter().any(|n| *n == format!("rec-{i}")));
        }
    }

    #[test]
    fn two_recorders_do_not_share_scopes_or_rings() {
        let a = Obs::new_enabled();
        let b = Obs::new_enabled();
        a.attach_recorder(64);
        b.attach_recorder(64);
        let id_a = a.mint_trace_id();
        let _scope = a.trace_scope(id_a);
        a.trace_instant("on_a", "t");
        b.trace_instant("on_b", "t");
        let sa = a.trace_snapshot().unwrap();
        let sb = b.trace_snapshot().unwrap();
        assert_eq!(sa.threads[0].events.len(), 1);
        assert_eq!(sb.threads[0].events.len(), 1);
        assert_eq!(sa.threads[0].events[0].trace, id_a.0);
        assert_eq!(sb.threads[0].events[0].trace, 0, "b has no scope active");
    }

    #[test]
    fn async_events_carry_explicit_ids_across_threads() {
        let obs = Obs::new_enabled();
        obs.attach_recorder(64);
        let id = obs.mint_trace_id();
        obs.trace_async_begin(id, "queue", "request");
        let obs2 = obs.clone();
        std::thread::spawn(move || obs2.trace_async_end(id, "queue", "request"))
            .join()
            .unwrap();
        let snap = obs.trace_snapshot().unwrap();
        let all: Vec<&TraceEvent> = snap.threads.iter().flat_map(|t| &t.events).collect();
        assert_eq!(all.len(), 2);
        assert!(all
            .iter()
            .all(|e| e.trace == id.0 && e.name == "queue" && e.cat == "request"));
    }
}
