//! Lock-free metric primitives: [`Counter`], [`Gauge`], [`Hist`].
//!
//! Counters are striped across cache-line-padded atomic cells; each thread
//! picks a stripe once (thread-local) and does a `Relaxed` `fetch_add` on it.
//! That makes increments exact under any interleaving — there is no
//! read-modify-write race to lose updates to — while keeping hot-path cost to
//! one uncontended atomic add for up to `STRIPES` concurrent threads.
//!
//! All handles are cheap `Arc` clones. A handle obtained from a disabled
//! [`Obs`](crate::Obs) carries no core and every operation is a single
//! branch on `None`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of counter stripes. More stripes than typical core counts so
/// threads rarely share a cell; `% STRIPES` keeps oversubscription correct.
const STRIPES: usize = 64;

/// One atomic cell padded to its own cache line pair to prevent false
/// sharing between stripes.
#[repr(align(128))]
#[derive(Debug, Default)]
struct PaddedCell(AtomicU64);

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

fn stripe_index() -> usize {
    THREAD_STRIPE.with(|s| *s)
}

// ---------------------------------------------------------------------------
// Counter

#[derive(Debug)]
pub(crate) struct CounterCore {
    pub(crate) name: &'static str,
    stripes: Box<[PaddedCell]>,
}

impl CounterCore {
    pub(crate) fn new(name: &'static str) -> Self {
        let stripes = (0..STRIPES).map(|_| PaddedCell::default()).collect();
        CounterCore { name, stripes }
    }

    fn add(&self, n: u64) {
        self.stripes[stripe_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    fn value(&self) -> u64 {
        self.stripes
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Monotonic event counter. Clone freely; all clones share one total.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<CounterCore>>);

impl Counter {
    /// A counter that ignores all updates (from a disabled `Obs`).
    pub fn disabled() -> Self {
        Counter(None)
    }

    /// Adds `n` to the counter. Lock-free; exact under concurrency.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(core) = &self.0 {
            core.add(n);
        }
    }

    /// Adds 1 to the counter.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total across all stripes and threads.
    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.value())
    }
}

/// Point-in-time snapshot of a counter, taken at flush.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Registered name.
    pub name: &'static str,
    /// Total at snapshot time.
    pub value: u64,
}

// ---------------------------------------------------------------------------
// Gauge

#[derive(Debug)]
pub(crate) struct GaugeCore {
    pub(crate) name: &'static str,
    last: AtomicU64,
    max: AtomicU64,
}

impl GaugeCore {
    pub(crate) fn new(name: &'static str) -> Self {
        GaugeCore {
            name,
            last: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Last-value-wins gauge that also tracks the maximum ever set.
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<GaugeCore>>);

impl Gauge {
    /// A gauge that ignores all updates.
    pub fn disabled() -> Self {
        Gauge(None)
    }

    /// Records the current level of whatever the gauge tracks.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(core) = &self.0 {
            core.last.store(v, Ordering::Relaxed);
            core.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Most recently set value.
    pub fn last(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.last.load(Ordering::Relaxed))
    }

    /// Maximum value ever set.
    pub fn max(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.max.load(Ordering::Relaxed))
    }
}

/// Point-in-time snapshot of a gauge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Registered name.
    pub name: &'static str,
    /// Last value set before the snapshot.
    pub last: u64,
    /// Maximum value ever set.
    pub max: u64,
}

// ---------------------------------------------------------------------------
// Histogram

/// Bucket count: values 0..31 get exact buckets, larger values share one
/// bucket per power of two up to 2^36, with a final catch-all.
const HIST_BUCKETS: usize = 64;

/// Maps a sample to its bucket index: identity below 32, logarithmic above.
fn bucket_of(v: u64) -> usize {
    if v < 32 {
        v as usize
    } else {
        // v >= 32 so log2(v) >= 5; bucket 32 holds [32,64), 33 holds [64,128)...
        let log2 = 63 - v.leading_zeros() as usize;
        (32 + log2 - 5).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive lower bound of a bucket, for reporting.
fn bucket_lower(idx: usize) -> u64 {
    if idx < 32 {
        idx as u64
    } else {
        1u64 << (idx - 32 + 5)
    }
}

/// Exclusive upper bound of a bucket (saturating for the catch-all).
fn bucket_upper(idx: usize) -> u64 {
    if idx < 32 {
        idx as u64 + 1
    } else if idx + 1 < HIST_BUCKETS {
        1u64 << (idx - 32 + 6)
    } else {
        u64::MAX
    }
}

/// Quantile estimate over bucket counts: nearest-rank selection of the
/// rank-`q` sample's bucket, then reporting its value. Exact for samples
/// below 32 (a unit bucket holds one value, so nearest-rank selection
/// *is* the answer — including the single-sample and single-bucket
/// cases). Above 32 the rank's position is lower-edge interpolated within
/// the bucket's value range, with error bounded by the power-of-two
/// bucket width. An empty histogram reports 0 at every `q`.
fn quantile_from_buckets(
    counts: impl Iterator<Item = (usize, u64)>,
    total: u64,
    max: u64,
    q: f64,
) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    // Rank of the target sample, 1-based; q = 0 means the first sample.
    let rank = (q * total as f64).ceil().max(1.0);
    let mut seen = 0u64;
    for (idx, n) in counts {
        if n == 0 {
            continue;
        }
        let before = seen;
        seen += n;
        if (seen as f64) >= rank {
            let lo = bucket_lower(idx) as f64;
            if idx < 32 {
                // Unit bucket: every sample in it is exactly `lo`, so the
                // nearest-rank quantile is exact — no interpolation.
                return lo;
            }
            // Cap the last occupied bucket at the observed maximum so the
            // interpolation never exceeds any recorded sample.
            let hi = (bucket_upper(idx).min(max.saturating_add(1))).max(lo as u64 + 1) as f64;
            // Lower edge of the rank's sub-interval: 0 for the bucket's
            // first sample, so a one-sample bucket reports its lower edge.
            let within = (rank - before as f64 - 1.0) / n as f64;
            return lo + (hi - lo) * within.clamp(0.0, 1.0);
        }
    }
    max as f64
}

#[derive(Debug)]
pub(crate) struct HistCore {
    pub(crate) name: &'static str,
    /// Owning obs-instance id, keying the thread-local trace stacks for
    /// exemplar capture (0 = standalone core, no exemplars).
    obs_id: u64,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// Most recent nonzero trace id observed per bucket (0 = none): the
    /// OpenMetrics exemplar linking a latency bucket to a flight-recorder
    /// trace. One relaxed store per record inside a trace scope.
    exemplar_trace: Box<[AtomicU64]>,
    /// The sample value that carried `exemplar_trace` (stored second; a
    /// racing reader may pair it with a neighbouring record's trace id,
    /// which is still a valid exemplar for the bucket).
    exemplar_value: Box<[AtomicU64]>,
}

impl HistCore {
    /// Standalone core (no owning obs instance, so no exemplar capture);
    /// test-only — registry-built cores go through [`HistCore::with_obs`].
    #[cfg(test)]
    pub(crate) fn new(name: &'static str) -> Self {
        Self::with_obs(name, 0)
    }

    pub(crate) fn with_obs(name: &'static str, obs_id: u64) -> Self {
        let buckets = (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let exemplar_trace = (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let exemplar_value = (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        HistCore {
            name,
            obs_id,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            exemplar_trace,
            exemplar_value,
        }
    }
}

/// Distribution of integer samples (probe lengths, occupancies, depths).
///
/// Exact buckets for small values (0..31), logarithmic above — the shapes
/// telemetry cares about (chain lengths, CAM fill at gather) live almost
/// entirely in the exact range.
#[derive(Debug, Clone, Default)]
pub struct Hist(pub(crate) Option<Arc<HistCore>>);

impl Hist {
    /// A histogram that ignores all samples.
    pub fn disabled() -> Self {
        Hist(None)
    }

    /// Records one sample. Inside a trace scope, the sample's bucket also
    /// retains the current trace id as its exemplar (most recent wins).
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(core) = &self.0 {
            let bucket = bucket_of(v);
            core.buckets[bucket].fetch_add(1, Ordering::Relaxed);
            core.count.fetch_add(1, Ordering::Relaxed);
            core.sum.fetch_add(v, Ordering::Relaxed);
            core.max.fetch_max(v, Ordering::Relaxed);
            if core.obs_id != 0 {
                let trace = crate::trace::current_trace(core.obs_id);
                if trace != 0 {
                    core.exemplar_trace[bucket].store(trace, Ordering::Relaxed);
                    core.exemplar_value[bucket].store(v, Ordering::Relaxed);
                }
            }
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.sum.load(Ordering::Relaxed))
    }

    /// Largest sample recorded.
    pub fn max(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.max.load(Ordering::Relaxed))
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) of the recorded
    /// samples from the bucket counts. Exact to the unit for samples
    /// below 32; log-bucket interpolated above (error bounded by the
    /// power-of-two bucket width). Returns 0 for an empty or disabled
    /// histogram.
    ///
    /// Concurrent `record` calls may race the bucket scan; the estimate is
    /// still within the range of recorded samples, which is all latency
    /// reporting needs.
    pub fn quantile(&self, q: f64) -> f64 {
        let Some(core) = &self.0 else { return 0.0 };
        let total = core.count.load(Ordering::Relaxed);
        let max = core.max.load(Ordering::Relaxed);
        quantile_from_buckets(
            core.buckets
                .iter()
                .enumerate()
                .map(|(i, b)| (i, b.load(Ordering::Relaxed))),
            total,
            max,
            q,
        )
    }

    /// Median estimate. See [`Hist::quantile`].
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate. See [`Hist::quantile`].
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate. See [`Hist::quantile`].
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile estimate. See [`Hist::quantile`].
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }
}

/// Point-in-time snapshot of a histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Registered name.
    pub name: &'static str,
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Non-empty buckets as `(inclusive lower bound, count)`.
    pub buckets: Vec<(u64, u64)>,
    /// Exemplars as `(bucket lower bound, trace id, sample value)` for
    /// every bucket that retained a nonzero trace id.
    pub exemplars: Vec<(u64, u64, u64)>,
}

impl HistSnapshot {
    /// Mean sample value, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate from the snapshot's buckets; same semantics as
    /// [`Hist::quantile`].
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from_buckets(
            self.buckets.iter().map(|&(lower, n)| (bucket_of(lower), n)),
            self.count,
            self.max,
            q,
        )
    }

    /// Cumulative Prometheus-style `(le, count)` buckets, ending with the
    /// `(+∞, total)` bucket. Samples are integers, so a bucket spanning
    /// `[lo, hi)` is exactly "≤ hi − 1" — the `le` bound is inclusive and
    /// precise, never off by the open upper edge. The catch-all log
    /// bucket folds into `+∞`. The final count is clamped up to the
    /// running cumulative sum so a racing `record` between the bucket and
    /// total loads of the snapshot can never make the series
    /// non-monotone.
    pub fn le_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(self.buckets.len() + 1);
        let mut cum = 0u64;
        for &(lower, n) in &self.buckets {
            cum += n;
            let upper = bucket_upper(bucket_of(lower));
            if upper == u64::MAX {
                continue; // catch-all: representable only as +Inf
            }
            out.push(((upper - 1) as f64, cum));
        }
        out.push((f64::INFINITY, self.count.max(cum)));
        out
    }

    /// The exemplar `(trace id, value)` for the cumulative bucket whose
    /// `le` bound is `le`, if that underlying bucket retained one.
    /// Matches the bounds produced by [`HistSnapshot::le_buckets`]: the
    /// catch-all log bucket answers for `le = +∞`.
    pub fn exemplar_for_le(&self, le: f64) -> Option<(u64, u64)> {
        self.exemplars.iter().find_map(|&(lower, trace, value)| {
            let upper = bucket_upper(bucket_of(lower));
            let matches = if upper == u64::MAX {
                le.is_infinite()
            } else {
                (upper - 1) as f64 == le
            };
            matches.then_some((trace, value))
        })
    }
}

pub(crate) fn snapshot_counter(core: &CounterCore) -> CounterSnapshot {
    CounterSnapshot {
        name: core.name,
        value: core.value(),
    }
}

pub(crate) fn snapshot_gauge(core: &GaugeCore) -> GaugeSnapshot {
    GaugeSnapshot {
        name: core.name,
        last: core.last.load(Ordering::Relaxed),
        max: core.max.load(Ordering::Relaxed),
    }
}

pub(crate) fn snapshot_hist(core: &HistCore) -> HistSnapshot {
    let buckets = core
        .buckets
        .iter()
        .enumerate()
        .filter_map(|(i, b)| {
            let n = b.load(Ordering::Relaxed);
            (n > 0).then(|| (bucket_lower(i), n))
        })
        .collect();
    let exemplars = core
        .exemplar_trace
        .iter()
        .enumerate()
        .filter_map(|(i, t)| {
            let trace = t.load(Ordering::Relaxed);
            (trace > 0).then(|| {
                (
                    bucket_lower(i),
                    trace,
                    core.exemplar_value[i].load(Ordering::Relaxed),
                )
            })
        })
        .collect();
    HistSnapshot {
        name: core.name,
        count: core.count.load(Ordering::Relaxed),
        sum: core.sum.load(Ordering::Relaxed),
        max: core.max.load(Ordering::Relaxed),
        buckets,
        exemplars,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(31), 31);
        assert_eq!(bucket_of(32), 32);
        assert_eq!(bucket_of(63), 32);
        assert_eq!(bucket_of(64), 33);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_lower(32), 32);
        assert_eq!(bucket_lower(33), 64);
        for v in 0..4096u64 {
            let b = bucket_of(v);
            assert!(bucket_lower(b) <= v, "v={v} bucket={b}");
            if b + 1 < HIST_BUCKETS {
                assert!(v < bucket_lower(b + 1), "v={v} bucket={b}");
            }
        }
    }

    #[test]
    fn disabled_handles_are_inert() {
        let c = Counter::disabled();
        c.add(5);
        assert_eq!(c.value(), 0);
        let g = Gauge::disabled();
        g.set(9);
        assert_eq!(g.max(), 0);
        let h = Hist::disabled();
        h.record(3);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn exemplars_capture_trace_ids_inside_scopes() {
        let obs = crate::Obs::new_enabled();
        obs.attach_recorder(64);
        let h = obs.hist("ex.lat");
        h.record(5); // outside any scope: no exemplar for bucket 5
        let id = obs.mint_trace_id();
        {
            let _scope = obs.trace_scope(id);
            h.record(7);
        }
        let (_, _, hists) = obs.metrics_snapshot().unwrap();
        let snap = &hists[0];
        assert_eq!(snap.buckets.len(), 2);
        assert_eq!(snap.exemplars, vec![(7, id.0, 7)]);
        assert_eq!(snap.exemplar_for_le(7.0), Some((id.0, 7)));
        assert_eq!(snap.exemplar_for_le(5.0), None);
    }

    #[test]
    fn standalone_core_records_no_exemplars() {
        let core = Arc::new(HistCore::new("bare"));
        let h = Hist(Some(core.clone()));
        h.record(3);
        assert!(snapshot_hist(&core).exemplars.is_empty());
    }

    #[test]
    fn exemplar_for_le_matches_catch_all_at_infinity() {
        let core = Arc::new(HistCore::with_obs("inf", 0));
        let h = Hist(Some(core.clone()));
        h.record(u64::MAX);
        let mut snap = snapshot_hist(&core);
        // Simulate a retained exemplar in the catch-all bucket.
        snap.exemplars = vec![(snap.buckets[0].0, 42, u64::MAX)];
        assert_eq!(snap.exemplar_for_le(f64::INFINITY), Some((42, u64::MAX)));
    }

    #[test]
    fn quantiles_exact_in_unit_buckets() {
        let core = Arc::new(HistCore::new("q"));
        let h = Hist(Some(core));
        // 100 samples, all under 32 so every bucket is exact: 1..=20,
        // five of each.
        for v in 1..=20u64 {
            for _ in 0..5 {
                h.record(v);
            }
        }
        assert_eq!(h.count(), 100);
        // Rank interpolation lands inside the right unit bucket.
        assert!((h.p50() - 10.0).abs() <= 1.0, "p50={}", h.p50());
        assert!((h.p95() - 19.0).abs() <= 1.0, "p95={}", h.p95());
        assert!((h.p99() - 20.0).abs() <= 1.0, "p99={}", h.p99());
        assert!((h.quantile(0.0) - 1.0).abs() <= 1.0);
        assert!(h.quantile(1.0) <= h.max() as f64 + 1.0);
    }

    #[test]
    fn quantiles_monotone_and_bounded_in_log_buckets() {
        let core = Arc::new(HistCore::new("q"));
        let h = Hist(Some(core.clone()));
        for i in 0..1000u64 {
            h.record(i * 17 + 3); // spread across unit and log buckets
        }
        let mut prev = 0.0;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = h.quantile(q);
            assert!(v >= prev, "quantile must be monotone in q");
            assert!(v <= h.max() as f64 + 1.0, "quantile bounded by max+1");
            prev = v;
        }
        // p99 of ~uniform[3, 17000] lands within the containing power-of-
        // two bucket of the true value (16832 -> bucket [16384, 17001)).
        let p99 = h.p99();
        assert!((16384.0..17001.0).contains(&p99), "p99={p99}");
        // Snapshot agrees with the live handle.
        let snap = snapshot_hist(&core);
        assert!((snap.quantile(0.99) - p99).abs() < 1e-9);
        assert!((snap.quantile(0.5) - h.p50()).abs() < 1e-9);
    }

    #[test]
    fn quantiles_of_empty_and_disabled() {
        assert_eq!(Hist::disabled().quantile(0.5), 0.0);
        let core = Arc::new(HistCore::new("e"));
        let h = Hist(Some(core.clone()));
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.p999(), 0.0);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), 0.0);
        assert_eq!(snapshot_hist(&core).quantile(0.9), 0.0);
    }

    #[test]
    fn single_sample_every_quantile_is_the_sample() {
        // Nearest-rank edge case: one sample at `v` must report exactly
        // `v` at every q, not `v + bucket_width` (regression guard for the
        // old upper-edge interpolation).
        for v in [0u64, 7, 31] {
            let core = Arc::new(HistCore::new("s"));
            let h = Hist(Some(core.clone()));
            h.record(v);
            for q in [0.0, 0.25, 0.5, 0.95, 0.999, 1.0] {
                assert_eq!(h.quantile(q), v as f64, "v={v} q={q}");
            }
            assert_eq!(h.p999(), v as f64);
            assert_eq!(snapshot_hist(&core).quantile(0.5), v as f64);
        }
    }

    #[test]
    fn single_bucket_many_samples_reports_the_value() {
        // All mass in one unit bucket: every quantile is that value.
        let core = Arc::new(HistCore::new("b"));
        let h = Hist(Some(core));
        for _ in 0..1000 {
            h.record(3);
        }
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 3.0, "q={q}");
        }
    }

    #[test]
    fn unit_buckets_are_exact_nearest_rank() {
        // Distinct unit-bucket samples 1..=4: quantiles select the exact
        // nearest-rank sample (rank = ceil(q*n), 1-based).
        let core = Arc::new(HistCore::new("nr"));
        let h = Hist(Some(core));
        for v in 1..=4u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(0.25), 1.0);
        assert_eq!(h.quantile(0.26), 2.0);
        assert_eq!(h.quantile(0.5), 2.0);
        assert_eq!(h.quantile(0.75), 3.0);
        assert_eq!(h.quantile(1.0), 4.0);
    }

    #[test]
    fn p999_tracks_the_extreme_tail() {
        let core = Arc::new(HistCore::new("t"));
        let h = Hist(Some(core));
        // 99 fast samples and one huge outlier: p99 stays in the fast
        // bucket, p999 lands in the outlier's bucket.
        for _ in 0..99 {
            h.record(5);
        }
        h.record(100_000);
        assert!(h.p99() < 6.0, "p99={} stays in the fast bucket", h.p99());
        let p999 = h.p999();
        assert!(
            (65536.0..=100_001.0).contains(&p999),
            "p999={p999} must land in the outlier's log bucket"
        );
        assert!(h.p999() >= h.p99());
        assert!(h.p999() <= h.max() as f64 + 1.0);
    }

    #[test]
    fn hist_snapshot_mean_and_buckets() {
        let core = Arc::new(HistCore::new("t"));
        let h = Hist(Some(core.clone()));
        for v in [1u64, 1, 2, 40] {
            h.record(v);
        }
        let snap = snapshot_hist(&core);
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 44);
        assert_eq!(snap.max, 40);
        assert_eq!(snap.buckets, vec![(1, 2), (2, 1), (32, 1)]);
        assert!((snap.mean() - 11.0).abs() < 1e-12);
    }
}
