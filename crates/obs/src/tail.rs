//! Tail-latency attribution from flight-recorder snapshots.
//!
//! Takes the async request-stage events recorded by the serving layer
//! (`AsyncBegin`/`AsyncEnd` pairs keyed by `(trace, name)`), reconstructs
//! each request's timeline, and answers the question aggregate histograms
//! cannot: *where* did the slowest requests lose their time — queue wait,
//! cache probe, dispatch, execution, or response delivery?
//!
//! One stage name is the **envelope** (the serving layer uses
//! `"request"`): its interval is the request's wall time; every other
//! stage is attributed against it. The report ranks requests by wall
//! time, keeps the slowest `k%`, and compares their per-stage means
//! against the median request's breakdown — the shape of "p99 is queue
//! wait, not compute" drops straight out of the table.
//!
//! Attribution coverage (attributed stage time / wall time) is reported
//! per tail request; the serving layer's stages tile the request timeline,
//! so coverage below ~95 % signals missing instrumentation rather than
//! expected gaps.

use std::collections::HashMap;

use crate::trace::{TraceEvent, TraceKind, TraceSnapshot};

/// One request's reconstructed timeline.
#[derive(Debug, Clone)]
pub struct RequestAttribution {
    /// The request's trace id.
    pub trace: u64,
    /// Envelope start, microseconds since the obs epoch.
    pub start_us: u64,
    /// Envelope duration (wall time), microseconds.
    pub wall_us: u64,
    /// Summed duration per stage, in first-seen order, envelope excluded.
    pub stages: Vec<(&'static str, u64)>,
}

impl RequestAttribution {
    /// Total microseconds attributed to named stages.
    pub fn attributed_us(&self) -> u64 {
        self.stages.iter().map(|(_, us)| us).sum()
    }

    /// Attributed fraction of wall time, in `[0, 1]`-ish (stages measured
    /// on the worker can overrun the envelope by scheduling jitter, so
    /// values slightly above 1 are possible). A zero-wall request counts
    /// as fully attributed.
    pub fn coverage(&self) -> f64 {
        if self.wall_us == 0 {
            1.0
        } else {
            self.attributed_us() as f64 / self.wall_us as f64
        }
    }

    /// Duration of one stage (0 when absent).
    pub fn stage_us(&self, name: &str) -> u64 {
        self.stages
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, us)| *us)
    }
}

/// Stage-by-stage tail-vs-median comparison. Build with
/// [`TailReport::from_snapshot`], render with [`TailReport::render`].
#[derive(Debug, Clone)]
pub struct TailReport {
    /// Envelope stage name the report was built with.
    pub envelope: &'static str,
    /// Tail fraction requested (e.g. 5.0 for the slowest 5 %).
    pub k_pct: f64,
    /// Completed requests found in the snapshot.
    pub requests: usize,
    /// Wall time of the median request, microseconds.
    pub median_wall_us: u64,
    /// The median request's stage breakdown.
    pub median_stages: Vec<(&'static str, u64)>,
    /// The slowest `k%` requests, slowest first.
    pub tail: Vec<RequestAttribution>,
}

/// Reconstructs per-request intervals from the snapshot's async events.
///
/// Events are merged across threads and time-sorted (begin before end on
/// timestamp ties) so a stage that starts on the submitter thread and ends
/// on a worker pairs correctly. Unpaired begins (requests still in flight
/// at snapshot time) and stray ends (begin overwritten by the ring bound)
/// are ignored.
pub fn attribute_requests(snap: &TraceSnapshot, envelope: &'static str) -> Vec<RequestAttribution> {
    let mut events: Vec<&TraceEvent> = snap
        .threads
        .iter()
        .flat_map(|t| &t.events)
        .filter(|e| e.trace != 0 && matches!(e.kind, TraceKind::AsyncBegin | TraceKind::AsyncEnd))
        .collect();
    events.sort_by_key(|e| (e.t_us, e.kind == TraceKind::AsyncEnd));

    // (trace, name) -> stack of open begin timestamps.
    let mut open: HashMap<(u64, &str), Vec<u64>> = HashMap::new();
    // trace -> accumulating attribution.
    let mut requests: HashMap<u64, RequestAttribution> = HashMap::new();
    let mut order: Vec<u64> = Vec::new();

    for ev in events {
        match ev.kind {
            TraceKind::AsyncBegin => {
                open.entry((ev.trace, ev.name)).or_default().push(ev.t_us);
            }
            TraceKind::AsyncEnd => {
                let Some(begin) = open.get_mut(&(ev.trace, ev.name)).and_then(Vec::pop) else {
                    continue; // stray end: begin lost to the ring bound
                };
                let dur = ev.t_us.saturating_sub(begin);
                let req = requests.entry(ev.trace).or_insert_with(|| {
                    order.push(ev.trace);
                    RequestAttribution {
                        trace: ev.trace,
                        start_us: begin,
                        wall_us: 0,
                        stages: Vec::new(),
                    }
                });
                if ev.name == envelope {
                    req.start_us = begin;
                    req.wall_us = dur;
                } else if let Some(slot) = req.stages.iter_mut().find(|(n, _)| *n == ev.name) {
                    slot.1 += dur;
                } else {
                    req.stages.push((ev.name, dur));
                }
            }
            _ => unreachable!("filtered to async events"),
        }
    }

    // Requests appear here only once a pair matched; an envelope that
    // never closed (still in flight) contributes nothing.
    order
        .into_iter()
        .filter_map(|t| requests.remove(&t))
        .collect()
}

impl TailReport {
    /// Builds the report for the slowest `k_pct`% of requests (at least
    /// one request when any completed). `envelope` names the wall-time
    /// stage — the serving layer records `"request"`.
    pub fn from_snapshot(snap: &TraceSnapshot, envelope: &'static str, k_pct: f64) -> Self {
        let mut requests = attribute_requests(snap, envelope);
        requests.sort_by_key(|r| std::cmp::Reverse(r.wall_us));
        let n = requests.len();
        let k_pct = k_pct.clamp(0.0, 100.0);
        let tail_len = if n == 0 {
            0
        } else {
            (((n as f64) * k_pct / 100.0).ceil() as usize).clamp(1, n)
        };
        let (median_wall_us, median_stages) = if n == 0 {
            (0, Vec::new())
        } else {
            let median = &requests[n / 2];
            (median.wall_us, median.stages.clone())
        };
        TailReport {
            envelope,
            k_pct,
            requests: n,
            median_wall_us,
            median_stages,
            tail: requests.into_iter().take(tail_len).collect(),
        }
    }

    /// Mean wall time across the tail, microseconds.
    pub fn tail_mean_wall_us(&self) -> f64 {
        if self.tail.is_empty() {
            0.0
        } else {
            self.tail.iter().map(|r| r.wall_us as f64).sum::<f64>() / self.tail.len() as f64
        }
    }

    /// Smallest attribution coverage across the tail (1.0 when empty).
    pub fn min_coverage(&self) -> f64 {
        self.tail
            .iter()
            .map(RequestAttribution::coverage)
            .fold(1.0f64, f64::min)
    }

    /// Stage names across median and tail, in first-seen order.
    fn stage_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = Vec::new();
        for (n, _) in &self.median_stages {
            if !names.contains(n) {
                names.push(n);
            }
        }
        for r in &self.tail {
            for (n, _) in &r.stages {
                if !names.contains(n) {
                    names.push(n);
                }
            }
        }
        names
    }

    /// Plain-text table: per stage, the median request's duration vs the
    /// tail mean, with the blow-up ratio. Ends with the coverage line the
    /// acceptance gate reads.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "## Tail latency attribution (slowest {:.1}% = {} of {} requests)\n\n",
            self.k_pct,
            self.tail.len(),
            self.requests
        ));
        if self.tail.is_empty() {
            out.push_str("no completed requests in the trace\n");
            return out;
        }
        let tail_mean = self.tail_mean_wall_us();
        out.push_str(&format!(
            "{:<14} {:>14} {:>14} {:>8}\n",
            "stage", "median_us", "tail_mean_us", "ratio"
        ));
        for name in self.stage_names() {
            let med = self
                .median_stages
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0, |(_, us)| *us);
            let tail: f64 = self
                .tail
                .iter()
                .map(|r| r.stage_us(name) as f64)
                .sum::<f64>()
                / self.tail.len() as f64;
            let ratio = if med == 0 {
                "-".to_string()
            } else {
                format!("{:.1}x", tail / med as f64)
            };
            out.push_str(&format!("{name:<14} {med:>14} {tail:>14.0} {ratio:>8}\n"));
        }
        out.push_str(&format!(
            "{:<14} {:>14} {:>14.0}\n",
            "(wall)", self.median_wall_us, tail_mean
        ));
        out.push_str(&format!(
            "tail attribution coverage: min {:.1}% across {} requests\n",
            self.min_coverage() * 100.0,
            self.tail.len()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceId;
    use crate::Obs;

    /// Records one synthetic request whose stages tile the envelope.
    fn record_request(obs: &Obs, id: TraceId, stage_ms: &[(&'static str, u64)]) {
        obs.trace_async_begin(id, "request", "request");
        for &(name, ms) in stage_ms {
            obs.trace_async_begin(id, name, "request");
            std::thread::sleep(std::time::Duration::from_millis(ms));
            obs.trace_async_end(id, name, "request");
        }
        obs.trace_async_end(id, "request", "request");
    }

    #[test]
    fn stages_sum_to_wall_within_epsilon() {
        let obs = Obs::new_enabled();
        obs.attach_recorder(1024);
        let id = obs.mint_trace_id();
        record_request(&obs, id, &[("queue", 5), ("execute", 10)]);
        let reqs = attribute_requests(&obs.trace_snapshot().unwrap(), "request");
        assert_eq!(reqs.len(), 1);
        let r = &reqs[0];
        assert!(r.wall_us >= 15_000);
        assert!(r.stage_us("queue") >= 5_000);
        assert!(r.stage_us("execute") >= 10_000);
        assert!(
            r.coverage() >= 0.95,
            "tiled stages must attribute >=95%, got {}",
            r.coverage()
        );
        assert!(
            r.attributed_us() <= r.wall_us,
            "stages nest inside envelope"
        );
    }

    #[test]
    fn tail_selects_slowest_and_compares_to_median() {
        let obs = Obs::new_enabled();
        obs.attach_recorder(4096);
        // 9 fast requests, 1 slow one dominated by "queue".
        for _ in 0..9 {
            let id = obs.mint_trace_id();
            record_request(&obs, id, &[("queue", 1), ("execute", 2)]);
        }
        let slow = obs.mint_trace_id();
        record_request(&obs, slow, &[("queue", 40), ("execute", 2)]);

        let report = TailReport::from_snapshot(&obs.trace_snapshot().unwrap(), "request", 10.0);
        assert_eq!(report.requests, 10);
        assert_eq!(report.tail.len(), 1);
        assert_eq!(report.tail[0].trace, slow.0);
        assert!(report.tail[0].wall_us > report.median_wall_us);
        assert!(report.tail[0].stage_us("queue") > 10 * report.median_wall_us.max(1) / 10);
        assert!(report.min_coverage() >= 0.95);
        let text = report.render();
        assert!(text.contains("queue"));
        assert!(text.contains("execute"));
        assert!(text.contains("coverage"));
    }

    #[test]
    fn unpaired_begins_and_stray_ends_are_ignored() {
        let obs = Obs::new_enabled();
        obs.attach_recorder(64);
        let in_flight = obs.mint_trace_id();
        obs.trace_async_begin(in_flight, "request", "request");
        let stray = obs.mint_trace_id();
        obs.trace_async_end(stray, "queue", "request");
        let done = obs.mint_trace_id();
        record_request(&obs, done, &[]);
        let reqs = attribute_requests(&obs.trace_snapshot().unwrap(), "request");
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].trace, done.0);
    }

    #[test]
    fn cross_thread_stage_pairs_by_trace_and_name() {
        let obs = Obs::new_enabled();
        obs.attach_recorder(64);
        let id = obs.mint_trace_id();
        obs.trace_async_begin(id, "request", "request");
        obs.trace_async_begin(id, "queue", "request");
        let obs2 = obs.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(3));
            obs2.trace_async_end(id, "queue", "request");
            obs2.trace_async_end(id, "request", "request");
        })
        .join()
        .unwrap();
        let reqs = attribute_requests(&obs.trace_snapshot().unwrap(), "request");
        assert_eq!(reqs.len(), 1);
        assert!(reqs[0].stage_us("queue") >= 3_000);
        assert!(reqs[0].coverage() >= 0.9);
    }

    #[test]
    fn empty_snapshot_renders_cleanly() {
        let obs = Obs::new_enabled();
        obs.attach_recorder(16);
        let report = TailReport::from_snapshot(&obs.trace_snapshot().unwrap(), "request", 5.0);
        assert_eq!(report.requests, 0);
        assert!(report.render().contains("no completed requests"));
        assert_eq!(report.min_coverage(), 1.0);
    }
}
