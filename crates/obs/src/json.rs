//! Hand-rolled JSON encoding for telemetry records.
//!
//! `obs` is dependency-free by contract, so it carries its own tiny JSON
//! writer: a [`Value`] enum covering the scalar types telemetry needs, plus
//! string escaping per RFC 8259. There is no parser — the JSONL stream is
//! written, never read, by this crate.

use std::fmt::Write as _;

/// A scalar JSON value attached to a telemetry record field.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, indices, sizes).
    U64(u64),
    /// Signed integer (deltas that can go negative).
    I64(i64),
    /// Floating point (seconds, codelengths, rates).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Borrowed static string (path names, labels chosen at compile time).
    Str(&'static str),
    /// Owned string (dataset names, anything computed at runtime).
    String(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl Value {
    /// Appends the JSON encoding of this value to `out`.
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    // JSON has no NaN/Inf; null keeps downstream parsers alive.
                    out.push_str("null");
                }
            }
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(s) => write_json_string(s, out),
            Value::String(s) => write_json_string(s, out),
        }
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One telemetry event: a kind tag, a timestamp relative to the owning
/// [`Obs`](crate::Obs) handle's creation, and a flat list of fields.
///
/// Field names are `&'static str` by design — record emission sits on warm
/// paths and must not allocate per key. Names must not collide with the
/// reserved keys `kind` and `t_us`.
#[derive(Debug, Clone)]
pub struct Record {
    /// Record type tag, e.g. `"sweep"` or `"bench.run"`.
    pub kind: &'static str,
    /// Microseconds since the owning `Obs` handle was created.
    pub t_us: u64,
    /// Flat key/value payload.
    pub fields: Vec<(&'static str, Value)>,
}

impl Record {
    /// Encodes the record as a single JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 24);
        out.push_str("{\"kind\":");
        write_json_string(self.kind, &mut out);
        let _ = write!(out, ",\"t_us\":{}", self.t_us);
        for (k, v) in &self.fields {
            out.push(',');
            write_json_string(k, &mut out);
            out.push(':');
            v.write_json(&mut out);
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_chars() {
        let mut out = String::new();
        write_json_string("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn record_json_shape() {
        let rec = Record {
            kind: "sweep",
            t_us: 42,
            fields: vec![
                ("moves", Value::U64(7)),
                ("dl", Value::F64(-0.5)),
                ("path", Value::Str("spa")),
                ("refine", Value::Bool(false)),
            ],
        };
        assert_eq!(
            rec.to_json(),
            "{\"kind\":\"sweep\",\"t_us\":42,\"moves\":7,\"dl\":-0.5,\"path\":\"spa\",\"refine\":false}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        Value::F64(f64::NAN).write_json(&mut out);
        assert_eq!(out, "null");
    }
}
