//! `asa-obs`: zero-dependency telemetry for the Infomap/ASA stack.
//!
//! Mirrors the `tracing` span/subscriber split in miniature:
//!
//! - **Instrumentation side** — [`Obs`] hands out RAII [`Span`] timers
//!   (thread-local nesting, rolled up into one hierarchical phase profile),
//!   lock-free [`Counter`]/[`Gauge`]/[`Hist`] handles (striped atomics,
//!   exact under rayon at any thread count), and streamed [`Record`]s via
//!   [`Obs::emit`] / the [`record!`] macro.
//! - **Subscriber side** — pluggable [`Sink`]s: [`JsonlSink`] for machine
//!   consumption, [`SummarySink`] for humans, [`RingSink`] for cheap
//!   always-on capture, [`NullSink`] for overhead measurement.
//!
//! The disabled handle (`Obs::disabled()`, one `Option<Arc<_>>` that is
//! `None`) is the default everywhere; every operation on it is a single
//! predictable branch, which keeps fully-wired-but-off instrumentation
//! within noise of unwired code. See DESIGN.md § Observability for the span
//! taxonomy and the how-to for adding a counter.
//!
//! ```
//! use asa_obs::{ObsConfig, record};
//!
//! let obs = ObsConfig { enabled: true, ring_capacity: 16, ..ObsConfig::disabled() }
//!     .build()
//!     .unwrap();
//! let moves = obs.counter("demo.moves");
//! {
//!     let _sweep = obs.span("sweep");
//!     moves.add(3);
//!     record!(obs, "sweep", { "moves": moves.value(), "codelength": 4.2f64 });
//! }
//! let report = obs.flush().unwrap();
//! assert_eq!(report.spans[0].name, "sweep");
//! assert_eq!(obs.ring().unwrap().records().len(), 1);
//! ```

pub mod blackbox;
pub mod chrome;
pub mod config;
pub mod expose;
pub mod json;
pub mod metrics;
pub mod prof;
pub mod resource;
pub mod sink;
pub mod slo;
pub mod span;
pub mod tail;
pub mod timeseries;
pub mod trace;

pub use config::ObsConfig;
pub use json::{Record, Value};
pub use metrics::{Counter, CounterSnapshot, Gauge, GaugeSnapshot, Hist, HistSnapshot};
pub use prof::{render_flamegraph, FoldedStack, ProfSnapshot};
pub use resource::ResourceSample;
pub use sink::{FlushReport, JsonlSink, NullSink, RingHandle, RingSink, Sink, SummarySink};
pub use slo::{Breach, HealthState, HealthTransition, Objective, SloConfig, SloEngine, Stat};
pub use span::{Span, SpanSnapshot};
pub use tail::{RequestAttribution, TailReport};
pub use timeseries::{
    SeriesInfo, SeriesKind, SeriesPoint, TimeSeriesConfig, TimeSeriesStore, WindowStats,
};
pub use trace::{FlightRecorder, TraceEvent, TraceId, TraceKind, TraceScope, TraceSnapshot};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use metrics::{CounterCore, GaugeCore, HistCore};
use span::SpanTree;

static NEXT_OBS_ID: AtomicU64 = AtomicU64::new(1);

/// Interns a dynamically built metric/track name into a `&'static str`.
///
/// Every metric and trace API here takes `&'static str` names so the hot
/// path never hashes or clones strings. Names whose shape is only known at
/// runtime — per-shard counter tracks like `serve.shard.3.queue.depth` —
/// go through this process-wide cache: the first request for a given
/// string leaks one copy, every later request returns the same pointer, so
/// the total leak is bounded by the set of distinct names ever used (a few
/// dozen bytes per shard index), not by how many engines are constructed.
pub fn intern_name(name: &str) -> &'static str {
    static INTERNED: OnceLock<Mutex<std::collections::HashMap<String, &'static str>>> =
        OnceLock::new();
    let map = INTERNED.get_or_init(|| Mutex::new(std::collections::HashMap::new()));
    let mut map = map.lock().unwrap();
    if let Some(&s) = map.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    map.insert(name.to_string(), leaked);
    leaked
}

#[derive(Default)]
struct Registry {
    counters: Vec<Arc<CounterCore>>,
    gauges: Vec<Arc<GaugeCore>>,
    hists: Vec<Arc<HistCore>>,
}

pub(crate) struct ObsInner {
    /// Process-unique id keying the thread-local span stacks.
    pub(crate) id: u64,
    start: Instant,
    pub(crate) spans: Mutex<SpanTree>,
    registry: Mutex<Registry>,
    sinks: Mutex<Vec<Box<dyn Sink>>>,
    ring: Mutex<Option<RingHandle>>,
    /// Flight recorder, set at most once; `get()` is one pointer load on
    /// the hot path, so span instrumentation without a recorder stays a
    /// no-op branch.
    pub(crate) trace: OnceLock<Arc<FlightRecorder>>,
    /// Continuous-telemetry collector, set at most once by
    /// [`Obs::attach_collector`]. Like `trace`, a `OnceLock` so hot-path
    /// instrumentation never pays for its existence.
    collector: OnceLock<CollectorCore>,
    /// Sampling profiler, set at most once by [`Obs::attach_profiler`].
    /// Span enter/exit only mirrors frames once this is populated, so an
    /// unprofiled process pays one `OnceLock::get` per span.
    pub(crate) prof: OnceLock<prof::ProfCore>,
}

/// The attached time-series collector: the store plus the background
/// sampler thread's lifecycle state.
struct CollectorCore {
    store: Arc<TimeSeriesStore>,
    stop: Arc<AtomicBool>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl CollectorCore {
    /// Signals the sampler thread and joins it; idempotent (the handle is
    /// taken on first call). Bounded wait: the thread sleeps in ≤10 ms
    /// increments between stop-flag checks.
    fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.lock().unwrap().take() {
            let _ = t.join();
        }
    }
}

impl Drop for CollectorCore {
    fn drop(&mut self) {
        // The thread only holds a Weak to ObsInner, so it cannot be the
        // one dropping us — joining here never self-deadlocks.
        self.shutdown();
    }
}

/// One collector tick: snapshot every registered metric (plus synthetic
/// process-resource gauges) into the time-series store.
fn collector_tick(inner: &ObsInner, store: &TimeSeriesStore) {
    let t_us = inner.start.elapsed().as_micros() as u64;
    let (counters, mut gauges, hists) = registry_snapshot(inner);
    if let Some(rs) = resource::sample() {
        gauges.push(GaugeSnapshot {
            name: "proc.rss_bytes",
            last: rs.rss_bytes,
            max: rs.peak_rss_bytes,
        });
        gauges.push(GaugeSnapshot {
            name: "proc.open_fds",
            last: rs.open_fds,
            max: rs.open_fds,
        });
    }
    store.record_tick(t_us, &counters, &gauges, &hists);
}

/// Snapshots the full metric registry (shared by [`Obs::flush`], the
/// collector tick, and exposition).
fn registry_snapshot(
    inner: &ObsInner,
) -> (Vec<CounterSnapshot>, Vec<GaugeSnapshot>, Vec<HistSnapshot>) {
    let reg = inner.registry.lock().unwrap();
    (
        reg.counters
            .iter()
            .map(|c| metrics::snapshot_counter(c))
            .collect(),
        reg.gauges
            .iter()
            .map(|g| metrics::snapshot_gauge(g))
            .collect(),
        reg.hists
            .iter()
            .map(|h| metrics::snapshot_hist(h))
            .collect(),
    )
}

impl std::fmt::Debug for ObsInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsInner").field("id", &self.id).finish()
    }
}

/// Telemetry handle. Cheap to clone (one `Arc`); all clones share the same
/// spans, metrics, and sinks. `Obs::disabled()` is the universal default —
/// wiring code never needs to special-case "no obs".
#[derive(Debug, Clone, Default)]
pub struct Obs(Option<Arc<ObsInner>>);

impl Obs {
    /// The no-op handle: every operation is a branch on `None`.
    pub fn disabled() -> Self {
        Obs(None)
    }

    /// An enabled handle with no sinks attached yet (records go nowhere
    /// until [`add_sink`](Self::add_sink); spans/metrics still aggregate).
    pub fn new_enabled() -> Self {
        Obs(Some(Arc::new(ObsInner {
            id: NEXT_OBS_ID.fetch_add(1, Ordering::Relaxed),
            start: Instant::now(),
            spans: Mutex::new(SpanTree::new()),
            registry: Mutex::new(Registry::default()),
            sinks: Mutex::new(Vec::new()),
            ring: Mutex::new(None),
            trace: OnceLock::new(),
            collector: OnceLock::new(),
            prof: OnceLock::new(),
        })))
    }

    /// Builds a handle per `cfg`; see [`ObsConfig`].
    pub fn from_config(cfg: &ObsConfig) -> std::io::Result<Self> {
        if !cfg.enabled {
            return Ok(Obs::disabled());
        }
        let obs = Obs::new_enabled();
        if let Some(path) = &cfg.jsonl_path {
            obs.add_sink(Box::new(JsonlSink::create(path)?));
        }
        if cfg.summary || cfg.progress {
            obs.add_sink(Box::new(SummarySink::new(cfg.progress)));
        }
        if cfg.ring_capacity > 0 {
            let (sink, handle) = RingSink::new(cfg.ring_capacity);
            obs.add_sink(Box::new(sink));
            if let Some(inner) = &obs.0 {
                *inner.ring.lock().unwrap() = Some(handle);
            }
        }
        if cfg.trace_capacity > 0 {
            obs.attach_recorder(cfg.trace_capacity);
        }
        if let Some(ts) = cfg.collector {
            obs.attach_collector(ts);
        }
        if let Some(interval) = cfg.profiler {
            obs.attach_profiler(interval);
        }
        Ok(obs)
    }

    /// Whether this handle records anything. Callers use this to skip
    /// work that only exists to feed telemetry (e.g. an extra codelength
    /// evaluation per sweep).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Attaches another sink; it receives all records emitted after this
    /// call and the flush report.
    pub fn add_sink(&self, sink: Box<dyn Sink>) {
        if let Some(inner) = &self.0 {
            inner.sinks.lock().unwrap().push(sink);
        }
    }

    /// Handle to the ring sink, if the config attached one.
    pub fn ring(&self) -> Option<RingHandle> {
        self.0
            .as_ref()
            .and_then(|inner| inner.ring.lock().unwrap().clone())
    }

    /// Finds or creates the counter registered under `name`.
    pub fn counter(&self, name: &'static str) -> Counter {
        match &self.0 {
            None => Counter::disabled(),
            Some(inner) => {
                let mut reg = inner.registry.lock().unwrap();
                if let Some(core) = reg.counters.iter().find(|c| c.name == name) {
                    return Counter(Some(core.clone()));
                }
                let core = Arc::new(CounterCore::new(name));
                reg.counters.push(core.clone());
                Counter(Some(core))
            }
        }
    }

    /// Finds or creates the gauge registered under `name`.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        match &self.0 {
            None => Gauge::disabled(),
            Some(inner) => {
                let mut reg = inner.registry.lock().unwrap();
                if let Some(core) = reg.gauges.iter().find(|g| g.name == name) {
                    return Gauge(Some(core.clone()));
                }
                let core = Arc::new(GaugeCore::new(name));
                reg.gauges.push(core.clone());
                Gauge(Some(core))
            }
        }
    }

    /// Finds or creates the histogram registered under `name`.
    pub fn hist(&self, name: &'static str) -> Hist {
        match &self.0 {
            None => Hist::disabled(),
            Some(inner) => {
                let mut reg = inner.registry.lock().unwrap();
                if let Some(core) = reg.hists.iter().find(|h| h.name == name) {
                    return Hist(Some(core.clone()));
                }
                let core = Arc::new(HistCore::with_obs(name, inner.id));
                reg.hists.push(core.clone());
                Hist(Some(core))
            }
        }
    }

    /// Opens an RAII span; elapsed time is charged to the phase tree when
    /// the returned guard drops. Nesting follows the call stack via a
    /// thread-local span stack.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        match &self.0 {
            None => Span::disabled(),
            Some(inner) => Span::enter(inner.clone(), name),
        }
    }

    /// Streams one record to every attached sink. Prefer the [`record!`]
    /// macro, which skips building `fields` when the handle is disabled.
    pub fn emit(&self, kind: &'static str, fields: Vec<(&'static str, Value)>) {
        if let Some(inner) = &self.0 {
            let rec = Record {
                kind,
                t_us: inner.start.elapsed().as_micros() as u64,
                fields,
            };
            let mut sinks = inner.sinks.lock().unwrap();
            for sink in sinks.iter_mut() {
                sink.record(&rec);
            }
        }
    }

    /// Attaches a [`FlightRecorder`] with the given per-thread event
    /// bound. Idempotent — a second call keeps the first recorder — and a
    /// no-op on a disabled handle. Once attached, every [`Span`] also
    /// records begin/end trace events and the `trace_*` methods go live.
    pub fn attach_recorder(&self, per_thread_capacity: usize) {
        if let Some(inner) = &self.0 {
            inner.trace.get_or_init(|| {
                Arc::new(FlightRecorder::new(
                    inner.id,
                    inner.start,
                    per_thread_capacity,
                ))
            });
        }
    }

    /// The attached flight recorder, if any.
    pub fn recorder(&self) -> Option<Arc<FlightRecorder>> {
        self.0.as_ref().and_then(|inner| inner.trace.get().cloned())
    }

    /// Attaches the continuous-telemetry collector: a background thread
    /// that snapshots every registered metric into a
    /// [`TimeSeriesStore`] every `cfg.resolution`. Idempotent (a second
    /// call keeps the first collector) and a no-op on a disabled handle.
    ///
    /// The thread holds only a `Weak` reference to this handle's state:
    /// when the last `Obs` clone drops, the next tick's upgrade fails and
    /// the thread exits on its own, so attaching a collector never leaks
    /// the registry.
    pub fn attach_collector(&self, cfg: TimeSeriesConfig) {
        let Some(inner) = &self.0 else { return };
        inner.collector.get_or_init(|| {
            let store = Arc::new(TimeSeriesStore::new(cfg));
            let stop = Arc::new(AtomicBool::new(false));
            let weak: Weak<ObsInner> = Arc::downgrade(inner);
            let store2 = Arc::clone(&store);
            let stop2 = Arc::clone(&stop);
            let resolution = store.config().resolution.max(Duration::from_millis(1));
            let thread = std::thread::Builder::new()
                .name("asa-obs-collector".into())
                .spawn(move || {
                    let mut next = Instant::now() + resolution;
                    loop {
                        // Deadline sleep in short increments so stop (and
                        // handle drop) are honoured promptly even at very
                        // coarse resolutions.
                        while Instant::now() < next {
                            if stop2.load(Ordering::Relaxed) {
                                return;
                            }
                            let left = next.saturating_duration_since(Instant::now());
                            std::thread::sleep(left.min(Duration::from_millis(10)));
                        }
                        if stop2.load(Ordering::Relaxed) {
                            return;
                        }
                        let Some(strong) = weak.upgrade() else { return };
                        collector_tick(&strong, &store2);
                        drop(strong);
                        // Schedule against the previous deadline, but never
                        // in the past: a slow tick skips, it doesn't burst.
                        next = std::cmp::max(next + resolution, Instant::now() + resolution);
                    }
                })
                .expect("spawn obs collector thread");
            CollectorCore {
                store,
                stop,
                thread: Mutex::new(Some(thread)),
            }
        });
    }

    /// The attached collector's time-series store, if any.
    pub fn timeseries(&self) -> Option<Arc<TimeSeriesStore>> {
        self.0
            .as_ref()
            .and_then(|inner| inner.collector.get())
            .map(|c| Arc::clone(&c.store))
    }

    /// Performs one synchronous collector tick on the calling thread.
    /// Test hook: attach the collector with an hours-long resolution so
    /// the background thread stays idle, then drive ticks manually for
    /// deterministic time-series content. `false` when no collector is
    /// attached.
    pub fn tick_collector(&self) -> bool {
        let Some(inner) = &self.0 else { return false };
        let Some(col) = inner.collector.get() else {
            return false;
        };
        collector_tick(inner, &col.store);
        true
    }

    /// Stops and joins the collector thread (the store stays readable).
    /// Idempotent; also happens automatically when the last handle drops.
    pub fn stop_collector(&self) {
        if let Some(inner) = &self.0 {
            if let Some(col) = inner.collector.get() {
                col.shutdown();
            }
        }
    }

    /// Attaches the sampling profiler: a background thread that snapshots
    /// every registered thread's live span stack every `interval` and
    /// folds the observations into a collapsed-stack profile. Idempotent
    /// (a second call keeps the first profiler and its interval) and a
    /// no-op on a disabled handle.
    ///
    /// Same lifecycle discipline as [`Obs::attach_collector`]: the
    /// sampler holds only a `Weak` reference, so the last handle drop
    /// stops it; [`Obs::stop_profiler`] stops it sooner.
    pub fn attach_profiler(&self, interval: Duration) {
        let Some(inner) = &self.0 else { return };
        inner.prof.get_or_init(|| prof::spawn_core(inner, interval));
    }

    /// Whether a profiler is attached (and spans mirror live stacks).
    #[inline]
    pub fn profiler_enabled(&self) -> bool {
        self.0
            .as_ref()
            .is_some_and(|inner| inner.prof.get().is_some())
    }

    /// Performs one synchronous sampling pass on the calling thread.
    /// Test hook, mirroring [`Obs::tick_collector`]: attach the profiler
    /// with an hours-long interval so the background thread stays idle,
    /// then drive passes manually for deterministic profiles. `false`
    /// when no profiler is attached.
    pub fn tick_profiler(&self) -> bool {
        let Some(inner) = &self.0 else { return false };
        let Some(core) = inner.prof.get() else {
            return false;
        };
        core.tick();
        true
    }

    /// Stops and joins the profiler thread (the aggregate stays
    /// readable). Idempotent; also happens automatically when the last
    /// handle drops.
    pub fn stop_profiler(&self) {
        if let Some(inner) = &self.0 {
            if let Some(core) = inner.prof.get() {
                core.shutdown();
            }
        }
    }

    /// Snapshot of the cumulative folded profile; `None` without an
    /// attached profiler.
    pub fn prof_snapshot(&self) -> Option<ProfSnapshot> {
        self.0
            .as_ref()
            .and_then(|inner| inner.prof.get())
            .map(prof::ProfCore::snapshot)
    }

    /// On-demand capture: blocks the calling thread for `duration`,
    /// sampling every `interval` into a fresh aggregate (the cumulative
    /// profile is untouched). `None` without an attached profiler — the
    /// live-stack mirroring the capture reads only exists once
    /// [`Obs::attach_profiler`] has run.
    pub fn capture_profile(&self, duration: Duration, interval: Duration) -> Option<ProfSnapshot> {
        self.0
            .as_ref()
            .and_then(|inner| inner.prof.get())
            .map(|core| core.capture(duration, interval))
    }

    /// Sets this thread's profiler leaf label (e.g. the active
    /// kernel/order, `"kernel=avx2,order=degree"`); samples taken while
    /// the label is set carry it as an extra leaf frame. `""` clears. A
    /// no-op without an attached profiler.
    pub fn prof_label(&self, label: &str) {
        if let Some(inner) = &self.0 {
            if inner.prof.get().is_some() {
                prof::set_label(inner, label);
            }
        }
    }

    /// Snapshot of every registered counter/gauge/histogram; `None` when
    /// disabled. This is what exposition renders and the collector ticks
    /// from.
    pub fn metrics_snapshot(
        &self,
    ) -> Option<(Vec<CounterSnapshot>, Vec<GaugeSnapshot>, Vec<HistSnapshot>)> {
        self.0.as_ref().map(|inner| registry_snapshot(inner))
    }

    /// Whether a flight recorder is attached (and events are recorded).
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.0
            .as_ref()
            .is_some_and(|inner| inner.trace.get().is_some())
    }

    /// Mints a fresh per-request [`TraceId`]; [`TraceId::NONE`] when no
    /// recorder is attached.
    pub fn mint_trace_id(&self) -> TraceId {
        self.recorder().map_or(TraceId::NONE, |rec| rec.mint())
    }

    /// Pins `id` as the current trace on this thread until the returned
    /// guard drops; span and instant events recorded inside carry it.
    pub fn trace_scope(&self, id: TraceId) -> TraceScope {
        match self.recorder() {
            Some(rec) => rec.scope(id),
            None => TraceScope::disabled(),
        }
    }

    /// Records a point event tagged with the current trace scope.
    #[inline]
    pub fn trace_instant(&self, name: &'static str, cat: &'static str) {
        if let Some(inner) = &self.0 {
            if let Some(rec) = inner.trace.get() {
                rec.record_current(name, cat, TraceKind::Instant);
            }
        }
    }

    /// Records a sampled counter value (rendered as a counter track by the
    /// Chrome exporter), tagged with the current trace scope.
    #[inline]
    pub fn trace_counter(&self, name: &'static str, value: i64) {
        if let Some(inner) = &self.0 {
            if let Some(rec) = inner.trace.get() {
                rec.record_current(name, "counter", TraceKind::Counter(value));
            }
        }
    }

    /// Opens an async request stage; may be closed on another thread via
    /// [`Obs::trace_async_end`] with the same `id` and `name`.
    #[inline]
    pub fn trace_async_begin(&self, id: TraceId, name: &'static str, cat: &'static str) {
        if let Some(inner) = &self.0 {
            if let Some(rec) = inner.trace.get() {
                rec.record(id.0, name, cat, TraceKind::AsyncBegin);
            }
        }
    }

    /// Closes an async request stage opened by [`Obs::trace_async_begin`].
    #[inline]
    pub fn trace_async_end(&self, id: TraceId, name: &'static str, cat: &'static str) {
        if let Some(inner) = &self.0 {
            if let Some(rec) = inner.trace.get() {
                rec.record(id.0, name, cat, TraceKind::AsyncEnd);
            }
        }
    }

    /// Snapshot of the flight recorder's rings; `None` without a recorder.
    pub fn trace_snapshot(&self) -> Option<TraceSnapshot> {
        self.recorder().map(|rec| rec.snapshot())
    }

    /// Microseconds since this handle was created (0 when disabled).
    pub fn elapsed_us(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |inner| inner.start.elapsed().as_micros() as u64)
    }

    /// Aggregates spans and metrics into a [`FlushReport`], hands it to
    /// every sink, and returns it. `None` when disabled. Safe to call more
    /// than once; each call re-snapshots.
    pub fn flush(&self) -> Option<FlushReport> {
        let inner = self.0.as_ref()?;
        let spans = inner.spans.lock().unwrap().snapshot();
        let (counters, gauges, hists) = registry_snapshot(inner);
        let report = FlushReport {
            wall_seconds: inner.start.elapsed().as_secs_f64(),
            spans,
            counters,
            gauges,
            hists,
        };
        let mut sinks = inner.sinks.lock().unwrap();
        for sink in sinks.iter_mut() {
            sink.flush(&report);
        }
        Some(report)
    }
}

/// Emits a record without paying for field construction when `$obs` is
/// disabled:
///
/// ```
/// # use asa_obs::{Obs, record};
/// # let obs = Obs::disabled();
/// record!(obs, "sweep", { "moves": 12u64, "codelength": 3.5f64 });
/// ```
#[macro_export]
macro_rules! record {
    ($obs:expr, $kind:literal, { $($key:literal : $val:expr),* $(,)? }) => {
        if $obs.enabled() {
            $obs.emit(
                $kind,
                vec![$(($key, $crate::Value::from($val))),*],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert_and_cheap() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        let c = obs.counter("x");
        c.add(10);
        assert_eq!(c.value(), 0);
        let _span = obs.span("nothing");
        obs.emit("ev", vec![("k", Value::U64(1))]);
        assert!(obs.flush().is_none());
        assert!(obs.ring().is_none());
    }

    #[test]
    fn same_name_returns_same_metric() {
        let obs = Obs::new_enabled();
        let a = obs.counter("hits");
        let b = obs.counter("hits");
        a.add(2);
        b.add(3);
        assert_eq!(a.value(), 5);
        let report = obs.flush().unwrap();
        assert_eq!(report.counters.len(), 1);
        assert_eq!(report.counters[0].value, 5);
    }

    #[test]
    fn spans_nest_via_call_structure() {
        let obs = Obs::new_enabled();
        {
            let _outer = obs.span("outer");
            {
                let _inner = obs.span("inner");
            }
            {
                let _inner = obs.span("inner");
            }
        }
        let report = obs.flush().unwrap();
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].name, "outer");
        assert_eq!(report.spans[0].count, 1);
        assert_eq!(report.spans[0].children.len(), 1);
        assert_eq!(report.spans[0].children[0].name, "inner");
        assert_eq!(report.spans[0].children[0].count, 2);
    }

    #[test]
    fn two_obs_instances_do_not_share_nesting() {
        let a = Obs::new_enabled();
        let b = Obs::new_enabled();
        let _sa = a.span("a_root");
        let _sb = b.span("b_root");
        {
            let _child = b.span("child");
        }
        drop(_sb);
        let rb = b.flush().unwrap();
        assert_eq!(rb.spans.len(), 1);
        assert_eq!(rb.spans[0].name, "b_root");
        assert_eq!(rb.spans[0].children[0].name, "child");
    }

    #[test]
    fn record_macro_streams_to_ring() {
        let cfg = ObsConfig {
            enabled: true,
            ring_capacity: 4,
            ..ObsConfig::disabled()
        };
        let obs = cfg.build().unwrap();
        record!(obs, "sweep", { "moves": 7u64, "dl": -0.25f64 });
        let recs = obs.ring().unwrap().records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].kind, "sweep");
        assert_eq!(recs[0].fields[0], ("moves", Value::U64(7)));
    }

    #[test]
    fn flush_wall_clock_covers_span_total() {
        let obs = Obs::new_enabled();
        {
            let _s = obs.span("work");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let report = obs.flush().unwrap();
        assert!(report.wall_seconds >= report.spans[0].seconds);
        assert!(report.spans[0].seconds >= 0.004);
    }
}
