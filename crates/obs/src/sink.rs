//! Sink contract and the three built-in sinks.
//!
//! A [`Sink`] receives two kinds of traffic: streaming [`Record`]s as the
//! instrumented code emits them, and one [`FlushReport`] when the owning
//! `Obs` handle flushes. Sinks run under the `Obs` sink lock, so `record`
//! must stay cheap; anything expensive belongs in `flush`.
//!
//! Built-ins:
//! - [`JsonlSink`] — one JSON object per line, for machine consumption.
//! - [`SummarySink`] — human-readable heartbeats + phase/counter tables on
//!   stderr (stdout is reserved for bench tables).
//! - [`RingSink`] — bounded in-memory ring for cheap always-on capture;
//!   read back through its [`RingHandle`].
//! - [`NullSink`] — accepts everything, does nothing; the overhead-check
//!   baseline.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::json::{write_json_string, Record};
use crate::metrics::{CounterSnapshot, GaugeSnapshot, HistSnapshot};
use crate::span::SpanSnapshot;

/// Aggregated state handed to every sink at flush time.
#[derive(Debug, Clone)]
pub struct FlushReport {
    /// Seconds between `Obs` creation and this flush.
    pub wall_seconds: f64,
    /// Hierarchical phase profile (top-level spans, name-sorted).
    pub spans: Vec<SpanSnapshot>,
    /// All registered counters, in registration order.
    pub counters: Vec<CounterSnapshot>,
    /// All registered gauges, in registration order.
    pub gauges: Vec<GaugeSnapshot>,
    /// All registered histograms, in registration order.
    pub hists: Vec<HistSnapshot>,
}

/// Destination for telemetry traffic. See module docs for the contract.
pub trait Sink: Send {
    /// Receives one streamed record. Called on the emitting thread under
    /// the sink lock — keep it cheap.
    fn record(&mut self, rec: &Record);
    /// Receives the end-of-run aggregate. Called once per `Obs::flush`.
    fn flush(&mut self, report: &FlushReport);
}

// ---------------------------------------------------------------------------
// NullSink

/// Discards everything. Exists so "obs wired but inert" can be measured
/// against "obs disabled" in the hostperf overhead check.
#[derive(Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&mut self, _rec: &Record) {}
    fn flush(&mut self, _report: &FlushReport) {}
}

// ---------------------------------------------------------------------------
// JsonlSink

/// Streams records and the flush report as JSON Lines.
pub struct JsonlSink {
    writer: BufWriter<Box<dyn Write + Send>>,
    failed: bool,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("failed", &self.failed)
            .finish()
    }
}

impl JsonlSink {
    /// Creates (truncating) the JSONL file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::from_writer(Box::new(file)))
    }

    /// Wraps an arbitrary writer (used by tests).
    pub fn from_writer(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            writer: BufWriter::new(writer),
            failed: false,
        }
    }

    fn write_line(&mut self, line: &str) {
        if self.failed {
            return;
        }
        if writeln!(self.writer, "{line}").is_err() {
            // Telemetry must never take the run down; report once and stop.
            eprintln!("[obs] jsonl sink write failed; disabling sink");
            self.failed = true;
        }
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, rec: &Record) {
        self.write_line(&rec.to_json());
    }

    fn flush(&mut self, report: &FlushReport) {
        for root in &report.spans {
            root.walk("", &mut |path, node| {
                let mut line = String::from("{\"kind\":\"span\",\"path\":");
                write_json_string(path, &mut line);
                let _ = write!(
                    line,
                    ",\"seconds\":{},\"count\":{}}}",
                    node.seconds, node.count
                );
                self.write_line(&line);
            });
        }
        for c in &report.counters {
            let mut line = String::from("{\"kind\":\"counter\",\"name\":");
            write_json_string(c.name, &mut line);
            let _ = write!(line, ",\"value\":{}}}", c.value);
            self.write_line(&line);
        }
        for g in &report.gauges {
            let mut line = String::from("{\"kind\":\"gauge\",\"name\":");
            write_json_string(g.name, &mut line);
            let _ = write!(line, ",\"last\":{},\"max\":{}}}", g.last, g.max);
            self.write_line(&line);
        }
        for h in &report.hists {
            let mut line = String::from("{\"kind\":\"hist\",\"name\":");
            write_json_string(h.name, &mut line);
            let _ = write!(
                line,
                ",\"count\":{},\"sum\":{},\"max\":{},\"mean\":{},\"buckets\":[",
                h.count,
                h.sum,
                h.max,
                h.mean()
            );
            for (i, (lo, n)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                let _ = write!(line, "[{lo},{n}]");
            }
            line.push_str("]}");
            self.write_line(&line);
        }
        let _ = writeln!(
            &mut self.writer,
            "{{\"kind\":\"flush\",\"wall_seconds\":{}}}",
            report.wall_seconds
        );
        let _ = self.writer.flush();
    }
}

// ---------------------------------------------------------------------------
// SummarySink

/// Human-readable sink: optional per-record heartbeat lines plus a phase
/// profile and metric tables at flush, all on stderr.
#[derive(Debug)]
pub struct SummarySink {
    progress: bool,
}

impl SummarySink {
    /// `progress = true` prints one heartbeat line per streamed record;
    /// `false` stays silent until flush.
    pub fn new(progress: bool) -> Self {
        SummarySink { progress }
    }
}

impl Sink for SummarySink {
    fn record(&mut self, rec: &Record) {
        if !self.progress {
            return;
        }
        let mut line = format!("[obs] {}", rec.kind);
        for (k, v) in &rec.fields {
            let _ = write!(line, " {k}=");
            match v {
                crate::json::Value::Str(s) => {
                    let _ = write!(line, "{s}");
                }
                crate::json::Value::String(s) => {
                    let _ = write!(line, "{s}");
                }
                other => other.write_json(&mut line),
            }
        }
        eprintln!("{line}");
    }

    fn flush(&mut self, report: &FlushReport) {
        eprintln!("[obs] phase profile (wall {:.3}s):", report.wall_seconds);
        fn print_tree(nodes: &[SpanSnapshot], depth: usize, wall: f64) {
            for node in nodes {
                let pct = if wall > 0.0 {
                    100.0 * node.seconds / wall
                } else {
                    0.0
                };
                eprintln!(
                    "[obs]   {:indent$}{:<24} {:>10.3}s {:>6.1}%  x{}",
                    "",
                    node.name,
                    node.seconds,
                    pct,
                    node.count,
                    indent = depth * 2
                );
                print_tree(&node.children, depth + 1, wall);
            }
        }
        print_tree(&report.spans, 0, report.wall_seconds);
        if !report.counters.is_empty() {
            eprintln!("[obs] counters:");
            for c in &report.counters {
                eprintln!("[obs]   {:<32} {}", c.name, c.value);
            }
        }
        if !report.gauges.is_empty() {
            eprintln!("[obs] gauges:");
            for g in &report.gauges {
                eprintln!("[obs]   {:<32} last={} max={}", g.name, g.last, g.max);
            }
        }
        if !report.hists.is_empty() {
            eprintln!("[obs] histograms:");
            for h in &report.hists {
                eprintln!(
                    "[obs]   {:<32} count={} mean={:.2} max={}",
                    h.name,
                    h.count,
                    h.mean(),
                    h.max
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// RingSink

#[derive(Debug, Default)]
struct RingState {
    capacity: usize,
    records: VecDeque<Record>,
    report: Option<FlushReport>,
}

/// Bounded in-memory capture: keeps the most recent `capacity` records and
/// the last flush report. Cheap enough to leave on permanently.
#[derive(Debug)]
pub struct RingSink {
    state: Arc<Mutex<RingState>>,
}

/// Reader side of a [`RingSink`]; clone freely.
#[derive(Debug, Clone)]
pub struct RingHandle {
    state: Arc<Mutex<RingState>>,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` records, plus a handle to
    /// read them back.
    pub fn new(capacity: usize) -> (Self, RingHandle) {
        let state = Arc::new(Mutex::new(RingState {
            capacity: capacity.max(1),
            records: VecDeque::new(),
            report: None,
        }));
        (
            RingSink {
                state: state.clone(),
            },
            RingHandle { state },
        )
    }
}

impl RingHandle {
    /// Copies out the buffered records, oldest first.
    pub fn records(&self) -> Vec<Record> {
        self.state.lock().unwrap().records.iter().cloned().collect()
    }

    /// Removes and returns the buffered records, oldest first.
    pub fn drain(&self) -> Vec<Record> {
        self.state.lock().unwrap().records.drain(..).collect()
    }

    /// The most recent flush report, if any flush has happened.
    pub fn last_report(&self) -> Option<FlushReport> {
        self.state.lock().unwrap().report.clone()
    }
}

impl Sink for RingSink {
    fn record(&mut self, rec: &Record) {
        let mut state = self.state.lock().unwrap();
        if state.records.len() == state.capacity {
            state.records.pop_front();
        }
        state.records.push_back(rec.clone());
    }

    fn flush(&mut self, report: &FlushReport) {
        self.state.lock().unwrap().report = Some(report.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;

    fn rec(kind: &'static str, n: u64) -> Record {
        Record {
            kind,
            t_us: n,
            fields: vec![("n", Value::U64(n))],
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let (mut sink, handle) = RingSink::new(2);
        sink.record(&rec("a", 1));
        sink.record(&rec("b", 2));
        sink.record(&rec("c", 3));
        let kinds: Vec<_> = handle.records().iter().map(|r| r.kind).collect();
        assert_eq!(kinds, vec!["b", "c"]);
        assert_eq!(handle.drain().len(), 2);
        assert!(handle.records().is_empty());
    }

    #[test]
    fn jsonl_writes_records_and_flush_lines() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let shared = Shared(Arc::new(Mutex::new(Vec::new())));
        let mut sink = JsonlSink::from_writer(Box::new(shared.clone()));
        sink.record(&rec("sweep", 7));
        sink.flush(&FlushReport {
            wall_seconds: 1.5,
            spans: vec![SpanSnapshot {
                name: "run",
                seconds: 1.25,
                count: 1,
                children: vec![],
            }],
            counters: vec![CounterSnapshot {
                name: "hits",
                value: 3,
            }],
            gauges: vec![],
            hists: vec![],
        });
        let text = String::from_utf8(shared.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"kind\":\"sweep\""));
        assert!(lines[1].contains("\"path\":\"run\""));
        assert!(lines[2].contains("\"value\":3"));
        assert!(lines[3].contains("\"wall_seconds\":1.5"));
    }
}
