//! Prometheus-text-format exposition: render a registry snapshot as
//! `# HELP`/`# TYPE` families, write it to a file, or serve it from a
//! minimal std-only TCP endpoint — plus the strict parser CI uses to
//! validate what the benches emit.
//!
//! Rendering rules (text format 0.0.4):
//!
//! - metric names are sanitized (`.` and any other non-`[a-zA-Z0-9_:]`
//!   byte become `_`);
//! - every [`Counter`](crate::Counter) renders as `<name>_total`;
//! - every [`Gauge`](crate::Gauge) renders its last value as `<name>` and
//!   its high-water mark as `<name>_max`;
//! - every [`Hist`](crate::Hist) renders as a histogram family with
//!   cumulative `le` buckets derived from the log-bucket layout
//!   ([`HistSnapshot::le_buckets`](crate::HistSnapshot::le_buckets)),
//!   terminated by the mandatory `+Inf` bucket, plus `_sum`/`_count`;
//! - process families (`process_resident_memory_bytes`, peak RSS, CPU
//!   seconds, fds) come from [`crate::resource::sample`] when procfs is
//!   available;
//! - when a collector is attached, each time-series contributes
//!   `asa_timeseries_samples`/`asa_timeseries_last` samples labelled
//!   `series="<name>"`, so a scrape proves which series are live and how
//!   much retention they hold.
//!
//! The endpoint ([`serve`]) is deliberately tiny: one listener thread,
//! blocking accept with a poll-interval stop flag, HTTP/1.0, one response
//! per connection. It exists so a long bench can be watched with `curl`,
//! not to be a web server.

use std::collections::HashSet;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::metrics::{CounterSnapshot, GaugeSnapshot, HistSnapshot};
use crate::{resource, Obs};

/// Sanitizes a metric name into the Prometheus name alphabet
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escapes a label value (`\` → `\\`, `"` → `\"`, newline → `\n`).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn fmt_value(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 {
            "+Inf".into()
        } else {
            "-Inf".into()
        }
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

struct Renderer {
    out: String,
    seen: HashSet<String>,
}

impl Renderer {
    fn new() -> Self {
        Renderer {
            out: String::new(),
            seen: HashSet::new(),
        }
    }

    /// Opens a family; false (skip) when a sanitized-name collision
    /// already emitted it — duplicate `# TYPE` lines are invalid.
    fn family(&mut self, name: &str, kind: &str, help: &str) -> bool {
        if !self.seen.insert(name.to_string()) {
            return false;
        }
        self.out.push_str(&format!("# HELP {name} {help}\n"));
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
        true
    }

    fn sample(&mut self, name: &str, labels: &str, value: f64) {
        self.out
            .push_str(&format!("{name}{labels} {}\n", fmt_value(value)));
    }

    fn counter(&mut self, c: &CounterSnapshot) {
        let name = format!("{}_total", sanitize(c.name));
        if self.family(&name, "counter", "asa counter") {
            self.sample(&name, "", c.value as f64);
        }
    }

    fn gauge(&mut self, g: &GaugeSnapshot) {
        let name = sanitize(g.name);
        if self.family(&name, "gauge", "asa gauge (last value)") {
            self.sample(&name, "", g.last as f64);
        }
        let max_name = format!("{name}_max");
        if self.family(&max_name, "gauge", "asa gauge high-water mark") {
            self.sample(&max_name, "", g.max as f64);
        }
    }

    fn hist(&mut self, h: &HistSnapshot) {
        let name = sanitize(h.name);
        if !self.family(&name, "histogram", "asa histogram (log buckets)") {
            return;
        }
        for (le, cum) in h.le_buckets() {
            let label = format!("{{le=\"{}\"}}", fmt_value(le));
            // OpenMetrics-style exemplar: the bucket's most recent trace
            // id, linking a latency bucket to its flight-recorder trace.
            match h.exemplar_for_le(le) {
                Some((trace, value)) => {
                    self.out.push_str(&format!(
                        "{name}_bucket{label} {} # {{trace_id=\"{trace}\"}} {}\n",
                        fmt_value(cum as f64),
                        fmt_value(value as f64)
                    ));
                }
                None => self.sample(&format!("{name}_bucket"), &label, cum as f64),
            }
        }
        self.sample(&format!("{name}_sum"), "", h.sum as f64);
        let total = h.le_buckets().last().map_or(h.count, |&(_, c)| c);
        self.sample(&format!("{name}_count"), "", total as f64);
    }
}

/// Renders the handle's full registry — metrics, process resources, and
/// (when a collector is attached) time-series occupancy — as Prometheus
/// text format. A disabled handle still renders the process families.
pub fn render(obs: &Obs) -> String {
    let mut r = Renderer::new();
    if let Some((counters, gauges, hists)) = obs.metrics_snapshot() {
        for c in &counters {
            r.counter(c);
        }
        for g in &gauges {
            r.gauge(g);
        }
        for h in &hists {
            r.hist(h);
        }
    }
    if let Some(rs) = resource::sample() {
        if r.family(
            "process_resident_memory_bytes",
            "gauge",
            "resident set size (VmRSS)",
        ) {
            r.sample("process_resident_memory_bytes", "", rs.rss_bytes as f64);
        }
        if r.family(
            "process_peak_resident_memory_bytes",
            "gauge",
            "peak resident set size (VmHWM)",
        ) {
            r.sample(
                "process_peak_resident_memory_bytes",
                "",
                rs.peak_rss_bytes as f64,
            );
        }
        if r.family("process_open_fds", "gauge", "open file descriptors") {
            r.sample("process_open_fds", "", rs.open_fds as f64);
        }
        if r.family(
            "process_cpu_seconds_total",
            "counter",
            "user+sys CPU time consumed",
        ) {
            r.sample(
                "process_cpu_seconds_total",
                "",
                rs.cpu_user_s + rs.cpu_sys_s,
            );
        }
        if r.family(
            "process_ctx_switches_total",
            "counter",
            "voluntary+involuntary context switches",
        ) {
            r.sample(
                "process_ctx_switches_total",
                "",
                (rs.voluntary_ctx_switches + rs.involuntary_ctx_switches) as f64,
            );
        }
    }
    if let Some(store) = obs.timeseries() {
        let series = store.series();
        if !series.is_empty() {
            // One contiguous block per family — interleaving the two
            // would fail strict validation.
            if r.family(
                "asa_timeseries_samples",
                "gauge",
                "retained ring samples per collected series",
            ) {
                for s in &series {
                    let label = format!("{{series=\"{}\"}}", escape_label(&s.name));
                    r.sample("asa_timeseries_samples", &label, s.samples as f64);
                }
            }
            if r.family(
                "asa_timeseries_last",
                "gauge",
                "latest sample value per collected series",
            ) {
                for s in &series {
                    let label = format!("{{series=\"{}\"}}", escape_label(&s.name));
                    r.sample("asa_timeseries_last", &label, s.last);
                }
            }
        }
    }
    r.out
}

/// Renders and writes the exposition to `path` (the `--metrics-out`
/// destination).
pub fn write_to_file(obs: &Obs, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, render(obs))
}

// ---------------------------------------------------------------------------
// Strict validation (used by tests, `promlint`, and CI)

/// What [`validate`] found in a well-formed exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpositionSummary {
    /// Declared metric families.
    pub families: usize,
    /// Sample lines.
    pub samples: usize,
    /// Histogram families (each verified cumulative and +Inf-terminated).
    pub histograms: usize,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// One parsed sample line.
struct Sample {
    name: String,
    le: Option<String>,
    value: f64,
    /// Whether the line carried an OpenMetrics exemplar suffix.
    exemplar: bool,
}

/// Validates an OpenMetrics exemplar suffix (everything after ` # `):
/// `{label="value",...} <finite value>`.
fn parse_exemplar(s: &str, line: &str) -> Result<(), String> {
    let s = s.trim();
    let Some(rest) = s.strip_prefix('{') else {
        return Err(format!("exemplar without labels in: {line}"));
    };
    let close = rest
        .find('}')
        .ok_or_else(|| format!("unclosed exemplar braces: {line}"))?;
    for pair in split_labels(&rest[..close]) {
        let (k, _) = pair.ok_or_else(|| format!("malformed exemplar label in: {line}"))?;
        if !valid_name(&k) {
            return Err(format!("invalid exemplar label name {k:?} in: {line}"));
        }
    }
    let mut it = rest[close + 1..].split_whitespace();
    let value = it
        .next()
        .ok_or_else(|| format!("exemplar without a value in: {line}"))?;
    let value = value
        .parse::<f64>()
        .map_err(|_| format!("unparsable exemplar value {value:?} in: {line}"))?;
    if !value.is_finite() {
        return Err(format!("non-finite exemplar value in: {line}"));
    }
    if it.next().is_some() {
        return Err(format!("trailing tokens after exemplar value: {line}"));
    }
    Ok(())
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    // Split off an exemplar suffix first: ` # ` cannot appear inside this
    // renderer's label values, and `rfind('}')` below would otherwise
    // find the exemplar's closing brace.
    let (main, exemplar_part) = match line.find(" # ") {
        Some(pos) => (line[..pos].trim_end(), Some(&line[pos + 3..])),
        None => (line, None),
    };
    let (name_labels, value_str) = match main.find('{') {
        Some(brace) => {
            let close = main
                .rfind('}')
                .ok_or_else(|| format!("unclosed label braces: {line}"))?;
            (
                (&main[..brace], Some(&main[brace + 1..close])),
                main[close + 1..].trim(),
            )
        }
        None => {
            let mut it = main.split_whitespace();
            let name = it.next().unwrap_or("");
            let value = it.next().unwrap_or("");
            if it.next().is_some() {
                return Err(format!("trailing tokens after value: {line}"));
            }
            ((name, None), value)
        }
    };
    let (name, labels) = name_labels;
    let name = name.trim();
    if !valid_name(name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    let value = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        s => s
            .parse::<f64>()
            .map_err(|_| format!("unparsable value {s:?} in: {line}"))?,
    };
    if value.is_nan() {
        return Err(format!("NaN value in: {line}"));
    }
    let mut le = None;
    if let Some(labels) = labels {
        for pair in split_labels(labels) {
            let (k, v) = pair.ok_or_else(|| format!("malformed label in: {line}"))?;
            if !valid_name(&k) {
                return Err(format!("invalid label name {k:?} in: {line}"));
            }
            if k == "le" {
                le = Some(v);
            }
        }
    }
    if let Some(ex) = exemplar_part {
        parse_exemplar(ex, line)?;
    }
    Ok(Sample {
        name: name.to_string(),
        le,
        value,
        exemplar: exemplar_part.is_some(),
    })
}

/// Splits `k="v",k2="v2"` pairs, honouring `\"` escapes inside values.
fn split_labels(s: &str) -> Vec<Option<(String, String)>> {
    let mut out = Vec::new();
    let mut rest = s.trim();
    while !rest.is_empty() {
        let Some(eq) = rest.find('=') else {
            out.push(None);
            return out;
        };
        let key = rest[..eq].trim().to_string();
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            out.push(None);
            return out;
        }
        let mut value = String::new();
        let mut chars = after[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    if let Some((_, esc)) = chars.next() {
                        value.push(match esc {
                            'n' => '\n',
                            other => other,
                        });
                    }
                }
                '"' => {
                    end = Some(i);
                    break;
                }
                other => value.push(other),
            }
        }
        let Some(end) = end else {
            out.push(None);
            return out;
        };
        out.push(Some((key, value)));
        rest = after[1 + end + 1..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    out
}

/// The family a sample belongs to, given the declared family set:
/// exact-name for counters/gauges, `_bucket`/`_sum`/`_count`-suffixed for
/// histograms.
fn family_of<'a>(
    name: &'a str,
    declared: &std::collections::HashMap<String, String>,
) -> Option<(String, &'a str)> {
    if declared.contains_key(name) {
        return Some((name.to_string(), ""));
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if declared.get(base).is_some_and(|k| k == "histogram") {
                return Some((base.to_string(), suffix));
            }
        }
    }
    None
}

/// Strictly validates Prometheus text exposition: every sample must
/// belong to exactly one declared family, no family may be declared
/// twice or have its samples interleaved with another family's, and
/// every histogram's buckets must be cumulative (non-decreasing),
/// `+Inf`-terminated, and consistent with its `_count`. Returns the
/// summary, or every violation found.
pub fn validate(text: &str) -> Result<ExpositionSummary, Vec<String>> {
    use std::collections::HashMap;
    let mut errors = Vec::new();
    let mut declared: HashMap<String, String> = HashMap::new();
    // First pass: collect TYPE declarations (duplicates are an error).
    for line in text.lines() {
        let line = line.trim_end();
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (name, kind) = (it.next().unwrap_or(""), it.next().unwrap_or(""));
            if !valid_name(name) {
                errors.push(format!("invalid family name in TYPE line: {line}"));
                continue;
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                errors.push(format!("unknown family kind {kind:?} for {name}"));
            }
            if declared
                .insert(name.to_string(), kind.to_string())
                .is_some()
            {
                errors.push(format!("duplicate family: {name}"));
            }
        }
    }

    struct HistCheck {
        buckets: Vec<(f64, f64)>, // (le, cumulative)
        sum: Option<f64>,
        count: Option<f64>,
    }
    let mut hists: HashMap<String, HistCheck> = HashMap::new();
    let mut blocks_seen: HashSet<String> = HashSet::new();
    let mut current_family: Option<String> = None;
    let mut samples = 0usize;

    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('#') {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                // A TYPE line opens a fresh block for its family.
                let name = rest.split_whitespace().next().unwrap_or("").to_string();
                if let Some(prev) = current_family.take() {
                    blocks_seen.insert(prev);
                }
                if blocks_seen.contains(&name) {
                    errors.push(format!("family {name} declared after its samples closed"));
                }
                current_family = Some(name);
            }
            continue;
        }
        let sample = match parse_sample(line) {
            Ok(s) => s,
            Err(e) => {
                errors.push(e);
                continue;
            }
        };
        samples += 1;
        let Some((family, suffix)) = family_of(&sample.name, &declared) else {
            errors.push(format!("sample without a # TYPE family: {}", sample.name));
            continue;
        };
        if sample.exemplar && suffix != "_bucket" {
            errors.push(format!(
                "exemplar on non-bucket sample {} in family {family}",
                sample.name
            ));
        }
        if current_family.as_deref() != Some(family.as_str()) {
            if blocks_seen.contains(&family) {
                errors.push(format!("family {family} samples interleaved across blocks"));
            }
            if let Some(prev) = current_family.take() {
                blocks_seen.insert(prev);
            }
            current_family = Some(family.clone());
        }
        if declared.get(&family).is_some_and(|k| k == "histogram") {
            let entry = hists.entry(family.clone()).or_insert(HistCheck {
                buckets: Vec::new(),
                sum: None,
                count: None,
            });
            match suffix {
                "_bucket" => match sample.le.as_deref() {
                    Some("+Inf") => entry.buckets.push((f64::INFINITY, sample.value)),
                    Some(le) => match le.parse::<f64>() {
                        Ok(le) => entry.buckets.push((le, sample.value)),
                        Err(_) => errors.push(format!("unparsable le={le:?} in {family}")),
                    },
                    None => errors.push(format!("{family}_bucket without an le label")),
                },
                "_sum" => entry.sum = Some(sample.value),
                "_count" => entry.count = Some(sample.value),
                _ => errors.push(format!(
                    "bare sample {} for histogram {family}",
                    sample.name
                )),
            }
        }
    }

    for (family, h) in &hists {
        if h.buckets.is_empty() {
            errors.push(format!("histogram {family} has no buckets"));
            continue;
        }
        for pair in h.buckets.windows(2) {
            if pair[1].0 <= pair[0].0 {
                errors.push(format!("histogram {family} le bounds not increasing"));
            }
            if pair[1].1 < pair[0].1 {
                errors.push(format!("histogram {family} buckets not cumulative"));
            }
        }
        let last = h.buckets.last().unwrap();
        if !last.0.is_infinite() {
            errors.push(format!("histogram {family} not +Inf-terminated"));
        } else if let Some(count) = h.count {
            if (count - last.1).abs() > 0.0 {
                errors.push(format!(
                    "histogram {family} _count {count} != +Inf bucket {}",
                    last.1
                ));
            }
        }
        match h.sum {
            None => errors.push(format!("histogram {family} missing _sum")),
            Some(s) if !s.is_finite() => {
                errors.push(format!("histogram {family} _sum is non-finite"));
            }
            Some(_) => {}
        }
        if h.count.is_none() {
            errors.push(format!("histogram {family} missing _count"));
        }
    }

    if errors.is_empty() {
        Ok(ExpositionSummary {
            families: declared.len(),
            samples,
            histograms: hists.len(),
        })
    } else {
        Err(errors)
    }
}

// ---------------------------------------------------------------------------
// Scrape endpoint

/// Handle to the background scrape endpoint; stops (and joins) on drop.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (useful with a `:0` request port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener and joins its thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

const PROM_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";
const TEXT_CONTENT_TYPE: &str = "text/plain; charset=utf-8";

/// Routes one request path to `(status, content-type, body)`. Public in
/// spirit via the endpoint; kept testable without sockets.
fn respond(obs: &Obs, path: &str) -> (&'static str, &'static str, String) {
    let (route, query) = path.split_once('?').map_or((path, ""), |(r, q)| (r, q));
    match route {
        "/" | "/metrics" => ("200 OK", PROM_CONTENT_TYPE, render(obs)),
        "/profile" => {
            let seconds = query
                .split('&')
                .find_map(|kv| kv.strip_prefix("seconds="))
                .and_then(|s| s.parse::<f64>().ok())
                .unwrap_or(1.0)
                .clamp(0.01, 60.0);
            match obs.capture_profile(Duration::from_secs_f64(seconds), Duration::from_millis(10)) {
                Some(snap) => ("200 OK", TEXT_CONTENT_TYPE, snap.render_folded()),
                None => (
                    "503 Service Unavailable",
                    TEXT_CONTENT_TYPE,
                    "no profiler attached (set ASA_PROF_OUT or ObsConfig.profiler)\n".to_string(),
                ),
            }
        }
        "/flame.svg" => match obs.prof_snapshot() {
            Some(snap) => (
                "200 OK",
                "image/svg+xml",
                crate::prof::render_flamegraph(&snap, "asa cumulative profile"),
            ),
            None => (
                "503 Service Unavailable",
                TEXT_CONTENT_TYPE,
                "no profiler attached (set ASA_PROF_OUT or ObsConfig.profiler)\n".to_string(),
            ),
        },
        "/debug" => ("200 OK", TEXT_CONTENT_TYPE, debug_page(obs)),
        _ => (
            "404 Not Found",
            TEXT_CONTENT_TYPE,
            "not found; endpoints: /metrics /profile?seconds=N /flame.svg /debug\n".to_string(),
        ),
    }
}

/// The `/debug` text status page: uptime, resources, metric registry
/// shape, live time-series, profiler state, top-k slow request stages
/// (when a flight recorder is attached), and registered black-box
/// sections.
fn debug_page(obs: &Obs) -> String {
    let mut out = String::new();
    out.push_str("# asa debug status\n\n");
    out.push_str(&format!("uptime_us: {}\n", obs.elapsed_us()));
    if let Some(rs) = resource::sample() {
        out.push_str(&format!(
            "rss_bytes: {} (peak {})\ncpu_s: {:.3} user + {:.3} sys\nopen_fds: {}\n",
            rs.rss_bytes, rs.peak_rss_bytes, rs.cpu_user_s, rs.cpu_sys_s, rs.open_fds
        ));
    }
    if let Some((counters, gauges, hists)) = obs.metrics_snapshot() {
        out.push_str(&format!(
            "\nmetrics: {} counters, {} gauges, {} histograms\n",
            counters.len(),
            gauges.len(),
            hists.len()
        ));
        for g in &gauges {
            out.push_str(&format!(
                "  gauge {} = {} (max {})\n",
                g.name, g.last, g.max
            ));
        }
    }
    if let Some(store) = obs.timeseries() {
        out.push_str(&format!("\ntimeseries: {} ticks\n", store.ticks()));
        for s in store.series() {
            out.push_str(&format!(
                "  {} [{:?}] samples={} last={}\n",
                s.name, s.kind, s.samples, s.last
            ));
        }
    }
    match obs.prof_snapshot() {
        Some(snap) => {
            out.push_str(&format!(
                "\nprofiler: attached, {} passes, {} distinct stacks (top 5):\n",
                snap.samples,
                snap.stacks.len()
            ));
            for (stack, count) in snap.top_stacks(5) {
                out.push_str(&format!("  {count:>8} {stack}\n"));
            }
        }
        None => out.push_str("\nprofiler: not attached\n"),
    }
    if let Some(snap) = obs.trace_snapshot() {
        let tail = crate::tail::TailReport::from_snapshot(&snap, "request", 5.0);
        if !tail.tail.is_empty() {
            out.push('\n');
            out.push_str(&tail.render());
        }
    }
    let sections = crate::blackbox::section_names();
    if !sections.is_empty() {
        out.push_str(&format!("\nblackbox sections: {}\n", sections.join(", ")));
    }
    out
}

/// Binds `addr` (e.g. `127.0.0.1:9184`, or port 0 for ephemeral) and
/// serves the handle's diagnostics to every connection: the
/// `ASA_METRICS_ADDR` live endpoint. Routes: `/metrics` (Prometheus
/// exposition, re-rendered per request so a `curl` mid-bench sees
/// current values), `/profile?seconds=N` (on-demand folded capture),
/// `/flame.svg` (cumulative-profile flamegraph), `/debug` (text status).
pub fn serve(addr: &str, obs: Obs) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("asa-metrics-http".into())
        .spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((mut conn, _)) => {
                        let _ = conn.set_read_timeout(Some(Duration::from_millis(200)));
                        let mut buf = [0u8; 1024];
                        let n = conn.read(&mut buf).unwrap_or(0);
                        let req = String::from_utf8_lossy(&buf[..n]);
                        let path = req
                            .lines()
                            .next()
                            .and_then(|l| l.split_whitespace().nth(1))
                            .unwrap_or("/")
                            .to_string();
                        let (status, ctype, body) = respond(&obs, &path);
                        let head = format!(
                            "HTTP/1.0 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                            body.len()
                        );
                        let _ = conn.write_all(head.as_bytes());
                        let _ = conn.write_all(body.as_bytes());
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(25)),
                }
            }
        })
        .expect("spawn metrics endpoint");
    Ok(MetricsServer {
        addr: local,
        stop,
        thread: Some(thread),
    })
}
