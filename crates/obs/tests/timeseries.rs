//! Integration tests for the continuous-telemetry collector: ring
//! semantics under wrap-around, counter-reset delta correction, windowed
//! quantile queries against a brute-force recompute (proptest), and
//! collector-thread lifecycle idempotence.

use std::time::Duration;

use asa_obs::{Obs, TimeSeriesConfig, TimeSeriesStore};
use proptest::prelude::*;

use asa_obs::{CounterSnapshot, GaugeSnapshot};

/// Collector config whose background thread never gets a chance to tick:
/// all samples in these tests come from explicit `tick_collector` calls,
/// so content is deterministic.
fn manual_collector() -> TimeSeriesConfig {
    TimeSeriesConfig {
        resolution: Duration::from_secs(3600),
        slots: 64,
    }
}

#[test]
fn collector_derives_rate_and_level_series_from_live_metrics() {
    let obs = Obs::new_enabled();
    obs.attach_collector(manual_collector());
    let c = obs.counter("t.jobs");
    let g = obs.gauge("t.depth");
    let h = obs.hist("t.lat");

    c.add(10);
    g.set(3);
    h.record(100);
    assert!(obs.tick_collector());
    c.add(40);
    g.set(7);
    h.record(200);
    assert!(obs.tick_collector());

    let store = obs.timeseries().unwrap();
    assert_eq!(store.ticks(), 2);
    // Counter → positive rate; gauge → last level; hist → quantiles.
    let jobs = store.points("t.jobs").unwrap();
    assert_eq!(jobs.len(), 2);
    assert!(jobs.iter().all(|p| p.value >= 0.0));
    let depth = store.points("t.depth").unwrap();
    assert_eq!(depth.last().unwrap().value, 7.0);
    assert!(store.points("t.lat.p95").is_some());
    assert!(store.points("t.lat.rate").is_some());
}

#[test]
fn ring_wraps_keeping_only_newest_slots() {
    let store = TimeSeriesStore::new(TimeSeriesConfig {
        resolution: Duration::from_millis(250),
        slots: 8,
    });
    for i in 0..50u64 {
        let gauges = [GaugeSnapshot {
            name: "w.level",
            last: i,
            max: i,
        }];
        store.record_tick((i + 1) * 1_000, &[], &gauges, &[]);
    }
    let pts = store.points("w.level").unwrap();
    assert_eq!(pts.len(), 8, "ring holds exactly `slots` samples");
    let values: Vec<f64> = pts.iter().map(|p| p.value).collect();
    assert_eq!(values, (42..50).map(|v| v as f64).collect::<Vec<_>>());
    // Points stay time-ordered across the wrap seam.
    assert!(pts.windows(2).all(|w| w[0].t_us < w[1].t_us));
}

#[test]
fn counter_reset_never_yields_negative_rates() {
    let store = TimeSeriesStore::new(manual_collector());
    let totals = [100u64, 250, 40, 90]; // 40 < 250: process restarted
    for (i, &total) in totals.iter().enumerate() {
        let counters = [CounterSnapshot {
            name: "r.events",
            value: total,
        }];
        store.record_tick((i as u64 + 1) * 1_000_000, &counters, &[], &[]);
    }
    let pts = store.points("r.events").unwrap();
    assert!(pts.iter().all(|p| p.value >= 0.0), "rates: {pts:?}");
    // The reset tick counts the fresh total as the delta: 40 events / 1 s.
    assert_eq!(pts[2].value, 40.0);
    // And the series resumes normal deltas afterwards: (90-40) / 1 s.
    assert_eq!(pts[3].value, 50.0);
}

#[test]
fn collector_thread_start_and_stop_are_idempotent() {
    let obs = Obs::new_enabled();
    // Fast resolution: the thread should produce ticks on its own.
    obs.attach_collector(TimeSeriesConfig {
        resolution: Duration::from_millis(5),
        slots: 256,
    });
    // Second attach with different parameters is a keep-first no-op.
    obs.attach_collector(TimeSeriesConfig {
        resolution: Duration::from_secs(3600),
        slots: 2,
    });
    let store = obs.timeseries().unwrap();
    assert_eq!(store.config().slots, 256, "first attach wins");

    let _c = obs.counter("idem.count");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while store.ticks() < 3 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(store.ticks() >= 3, "background thread never ticked");

    obs.stop_collector();
    let after = store.ticks();
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(store.ticks(), after, "ticks continued after stop");
    // Stopping again (and dropping, which stops too) must not panic.
    obs.stop_collector();
    drop(obs);
    // Store stays readable after every handle is gone.
    assert_eq!(store.ticks(), after);
}

#[test]
fn dropping_the_last_handle_retires_the_collector_thread() {
    let obs = Obs::new_enabled();
    obs.attach_collector(TimeSeriesConfig {
        resolution: Duration::from_millis(5),
        slots: 16,
    });
    let store = obs.timeseries().unwrap();
    drop(obs);
    // After the drop the thread has exited (join happens in drop); no
    // further ticks can land.
    let frozen = store.ticks();
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(store.ticks(), frozen);
}

/// Brute-force reference for the windowed nearest-rank quantile.
fn brute_quantile(values: &[f64], q: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn windowed_quantiles_match_brute_force(
        values in prop::collection::vec(0.0f64..1e6, 1..120),
        slots in 2usize..160,
        q in 0.01f64..1.0,
        window_ticks in 1usize..140,
    ) {
        let store = TimeSeriesStore::new(TimeSeriesConfig {
            resolution: Duration::from_millis(250),
            slots,
        });
        for (i, &v) in values.iter().enumerate() {
            let gauges = [GaugeSnapshot { name: "pq.level", last: v as u64, max: v as u64 }];
            store.record_tick((i as u64 + 1) * 1_000_000, &[], &gauges, &[]);
        }
        // What the ring actually retains, re-derived independently: the
        // newest `min(len, slots)` integer-truncated values...
        let retained: Vec<f64> = values
            .iter()
            .map(|&v| (v as u64) as f64)
            .skip(values.len().saturating_sub(slots))
            .collect();
        // ...then clipped to the query window (ticks are 1 s apart and the
        // window is measured back from the newest sample, inclusive).
        let in_window: Vec<f64> = retained
            .iter()
            .copied()
            .skip(retained.len().saturating_sub(window_ticks))
            .collect();
        let seconds = (window_ticks as f64 - 1.0).max(0.0);
        let got = store.window_quantile("pq.level", seconds, q).unwrap();
        let want = brute_quantile(&in_window, q);
        prop_assert_eq!(got, want, "window={} q={} retained={:?}", seconds, q, retained);

        // The window aggregates agree with the same reference slice.
        let w = store.window("pq.level", seconds).unwrap();
        prop_assert_eq!(w.samples, in_window.len());
        let want_max = in_window.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(w.max, want_max);
    }
}
