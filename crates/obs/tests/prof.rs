//! Sampling-profiler lifecycle: idempotent attach, join-on-last-drop,
//! trace-id attribution mid-scope, and thread-exit safety under the
//! barrier interleavings the sampler must survive.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use asa_obs::Obs;

/// Live `asa-obs-profiler` threads per procfs (comm truncates to 15
/// chars). `None` when procfs is unavailable (skip the assertion).
fn profiler_threads() -> Option<usize> {
    let entries = std::fs::read_dir("/proc/self/task").ok()?;
    Some(
        entries
            .filter_map(Result::ok)
            .filter(|e| {
                std::fs::read_to_string(e.path().join("comm"))
                    .is_ok_and(|c| c.trim().starts_with("asa-obs-profile"))
            })
            .count(),
    )
}

#[test]
fn attach_is_idempotent_and_samples_in_background() {
    let obs = Obs::new_enabled();
    obs.attach_profiler(Duration::from_millis(2));
    // Second attach with a different interval is a keep-first no-op.
    obs.attach_profiler(Duration::from_secs(3600));
    assert!(obs.profiler_enabled());
    let snap = obs.prof_snapshot().unwrap();
    assert_eq!(snap.interval, Duration::from_millis(2), "first attach wins");

    // Keep a span open so the background passes have something to sample.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut samples = 0;
    while samples < 3 && Instant::now() < deadline {
        let _s = obs.span("idem.work");
        std::thread::sleep(Duration::from_millis(5));
        samples = obs.prof_snapshot().unwrap().samples;
    }
    assert!(samples >= 3, "background sampler never ran");

    obs.stop_profiler();
    let frozen = obs.prof_snapshot().unwrap().samples;
    std::thread::sleep(Duration::from_millis(20));
    assert_eq!(
        obs.prof_snapshot().unwrap().samples,
        frozen,
        "passes continued after stop"
    );
    // Stopping again (and dropping, which stops too) must not panic.
    obs.stop_profiler();
    drop(obs);
}

#[test]
fn dropping_the_last_handle_joins_the_sampler_thread() {
    let before = profiler_threads();
    let obs = Obs::new_enabled();
    obs.attach_profiler(Duration::from_millis(2));
    if let (Some(b), Some(after)) = (before, profiler_threads()) {
        assert_eq!(after, b + 1, "sampler thread not started");
    }
    drop(obs);
    // Drop joins: once it returns, the thread is gone.
    if let (Some(b), Some(after)) = (before, profiler_threads()) {
        assert_eq!(after, b, "sampler thread survived the last handle drop");
    }
}

#[test]
fn samples_mid_trace_scope_attribute_to_the_trace_id() {
    let obs = Obs::new_enabled();
    obs.attach_recorder(64);
    // Hours-long interval: the background thread stays idle and every
    // pass is a deterministic manual tick.
    obs.attach_profiler(Duration::from_secs(3600));
    let id = obs.mint_trace_id();
    assert_ne!(id.0, 0);
    {
        let _scope = obs.trace_scope(id);
        let _s = obs.span("traced.work");
        assert!(obs.tick_profiler());
    }
    {
        let _s = obs.span("untraced.work");
        assert!(obs.tick_profiler());
    }
    let snap = obs.prof_snapshot().unwrap();
    assert_eq!(snap.samples, 2);
    let traced = snap
        .stacks
        .iter()
        .find(|s| s.frames.iter().any(|f| f == "traced.work"))
        .expect("traced stack sampled");
    assert_eq!(traced.traces, vec![(id.0, 1)]);
    let untraced = snap
        .stacks
        .iter()
        .find(|s| s.frames.iter().any(|f| f == "untraced.work"))
        .expect("untraced stack sampled");
    assert!(untraced.traces.is_empty(), "{:?}", untraced.traces);
    obs.stop_profiler();
}

#[test]
fn thread_exit_mid_sample_never_poisons_the_aggregate() {
    let obs = Obs::new_enabled();
    obs.attach_profiler(Duration::from_secs(3600));
    let barrier = Arc::new(Barrier::new(2));
    let obs2 = obs.clone();
    let b2 = Arc::clone(&barrier);
    let t = std::thread::Builder::new()
        .name("doomed".into())
        .spawn(move || {
            let _s = obs2.span("doomed.work");
            b2.wait(); // (1) registered with the span open
            b2.wait(); // (2) main thread sampled us
        })
        .unwrap();
    barrier.wait(); // (1)
    assert!(obs.tick_profiler());
    barrier.wait(); // (2)
    t.join().unwrap();
    // The thread is gone; its TLS destructor marked the live stack dead.
    // Further passes prune it and keep aggregating without panicking.
    for _ in 0..3 {
        assert!(obs.tick_profiler());
    }
    let snap = obs.prof_snapshot().unwrap();
    assert_eq!(snap.samples, 4);
    let doomed: Vec<_> = snap
        .stacks
        .iter()
        .filter(|s| s.frames.iter().any(|f| f == "doomed.work"))
        .collect();
    assert_eq!(doomed.len(), 1);
    assert_eq!(doomed[0].count, 1, "dead thread sampled after exit");
    assert_eq!(doomed[0].thread, "doomed");
    obs.stop_profiler();
}

#[test]
fn rayon_pool_spans_sample_cleanly_under_contention() {
    use rayon::prelude::*;
    let obs = Obs::new_enabled();
    obs.attach_profiler(Duration::from_millis(1));
    (0u32..256).into_par_iter().for_each(|i| {
        let _outer = obs.span("pool.work");
        let _inner = obs.span(if i % 2 == 0 { "pool.even" } else { "pool.odd" });
        std::thread::sleep(Duration::from_micros(200));
    });
    obs.stop_profiler();
    let snap = obs.prof_snapshot().unwrap();
    assert!(snap.samples > 0, "sampler never ran during the pool burst");
    for s in &snap.stacks {
        assert!(!s.frames.is_empty());
        assert!(s.count > 0);
        // Nested frames keep call order: pool.even/odd only under pool.work.
        if s.frames.iter().any(|f| f.starts_with("pool.")) {
            assert_eq!(s.frames[0], "pool.work", "{:?}", s.frames);
        }
    }
    // The folded rendering is line-parseable.
    for line in snap.render_folded().lines() {
        let (stack, count) = line.rsplit_once(' ').expect("stack count");
        assert!(!stack.is_empty());
        count.parse::<u64>().unwrap();
    }
}
