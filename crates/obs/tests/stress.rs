//! Concurrency stress tests for the telemetry primitives.
//!
//! The counters promise *exact* aggregation — no lost updates — at any
//! rayon thread count, and the span tree promises an
//! interleaving-independent shape (same names, same counts, name-sorted
//! children) no matter how the worker threads race. CI runs this file at
//! `RAYON_NUM_THREADS=1` and `=8`; the pool-per-case tests below
//! additionally pin 1/4/8-thread pools so the matrix holds even in a
//! single CI invocation.

use std::sync::{Arc, Barrier};

use asa_obs::{FlushReport, Obs};
use proptest::prelude::*;
use rayon::prelude::*;

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool")
}

/// Flattens a flush report's span tree to `(path, count)` pairs — the
/// interleaving-independent part (seconds vary run to run).
fn span_shape(report: &FlushReport) -> Vec<(String, u64)> {
    let mut shape = Vec::new();
    for s in &report.spans {
        s.walk("", &mut |path, node| {
            shape.push((path.to_string(), node.count));
        });
    }
    shape
}

#[test]
fn counter_aggregation_exact_at_1_4_8_threads() {
    for threads in [1usize, 4, 8] {
        let obs = Obs::new_enabled();
        let c = obs.counter("stress.counter");
        let tasks = 10_000u64;
        pool(threads).install(|| {
            (0..tasks).into_par_iter().for_each(|i| {
                c.incr();
                c.add(i);
            });
        });
        let expected = tasks + tasks * (tasks - 1) / 2;
        assert_eq!(
            c.value(),
            expected,
            "{threads} threads lost counter updates"
        );
        // The flush-time registry snapshot must agree with the live value.
        let report = obs.flush().unwrap();
        let snap = report
            .counters
            .iter()
            .find(|s| s.name == "stress.counter")
            .expect("counter in flush report");
        assert_eq!(snap.value, expected);
    }
}

#[test]
fn hist_count_and_sum_exact_under_contention() {
    for threads in [1usize, 4, 8] {
        let obs = Obs::new_enabled();
        let h = obs.hist("stress.hist");
        let samples = 8_192u64;
        pool(threads).install(|| {
            (0..samples).into_par_iter().for_each(|i| h.record(i % 97));
        });
        assert_eq!(h.count(), samples, "{threads} threads lost hist samples");
        let expected_sum: u64 = (0..samples).map(|i| i % 97).sum();
        assert_eq!(h.sum(), expected_sum, "{threads} threads lost hist sum");
    }
}

#[test]
fn gauge_max_survives_racing_writers() {
    for threads in [1usize, 4, 8] {
        let obs = Obs::new_enabled();
        let g = obs.gauge("stress.gauge");
        pool(threads).install(|| {
            (0..4_096u64).into_par_iter().for_each(|i| g.set(i));
        });
        assert_eq!(g.max(), 4_095, "{threads} threads lost the gauge max");
    }
}

/// Runs `threads` OS threads through the same nested span program, with a
/// barrier so they genuinely interleave, and returns the resulting tree
/// shape.
fn run_span_program(threads: usize, reps: usize) -> Vec<(String, u64)> {
    let obs = Obs::new_enabled();
    let barrier = Arc::new(Barrier::new(threads));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let obs = obs.clone();
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                for _ in 0..reps {
                    let _outer = obs.span("worker");
                    {
                        let _a = obs.span("alpha");
                        let _inner = obs.span("deep");
                    }
                    let _b = obs.span("beta");
                }
            });
        }
    });
    span_shape(&obs.flush().unwrap())
}

#[test]
fn span_tree_shape_is_interleaving_independent() {
    let reference = vec![
        ("worker".to_string(), 24u64),
        ("worker/alpha".to_string(), 24),
        ("worker/alpha/deep".to_string(), 24),
        ("worker/beta".to_string(), 24),
    ];
    // 1 thread x 24 reps, 4 x 6, 8 x 3: different parallelism and
    // interleavings, identical aggregated tree.
    for (threads, reps) in [(1, 24), (4, 6), (8, 3)] {
        let shape = run_span_program(threads, reps);
        assert_eq!(shape, reference, "{threads} threads x {reps} reps");
    }
}

#[test]
fn metrics_and_spans_mix_under_rayon() {
    // The full pattern the engines use: spans on the coordinating thread,
    // counters and hists hammered from the pool.
    let obs = Obs::new_enabled();
    let moves = obs.counter("mix.moves");
    let depth = obs.hist("mix.depth");
    for sweep in 0..4u64 {
        let _sp = obs.span("sweep");
        pool(4).install(|| {
            (0..2_500u64).into_par_iter().for_each(|i| {
                moves.incr();
                depth.record(i % 13 + sweep);
            });
        });
    }
    assert_eq!(moves.value(), 10_000);
    assert_eq!(depth.count(), 10_000);
    let report = obs.flush().unwrap();
    assert_eq!(span_shape(&report), vec![("sweep".to_string(), 4)]);
}

#[test]
fn flight_recorder_rings_stay_consistent_under_contention() {
    // Many threads recording spans and instants concurrently with
    // snapshot reads: every track stays balanced and bounded, and drop
    // accounting is exact (events recorded = retained + dropped).
    let obs = Obs::new_enabled();
    let capacity = 64usize;
    obs.attach_recorder(capacity);
    let threads = 8usize;
    let per_thread = 50u64; // 50 spans -> 100 events + 50 instants
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let obs = obs.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..per_thread {
                    let _sp = obs.span("stress");
                    obs.trace_counter("i", i as i64);
                    if i % 10 == 0 {
                        // Concurrent snapshots must not corrupt the rings.
                        let _ = obs.trace_snapshot();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = obs.trace_snapshot().unwrap();
    assert_eq!(snap.threads.len(), threads);
    for track in &snap.threads {
        assert!(track.events.len() <= capacity, "ring bound holds");
        assert_eq!(
            track.events.len() as u64 + track.dropped,
            per_thread * 3,
            "retained + dropped = recorded on tid {}",
            track.tid
        );
        assert!(
            track.events.windows(2).all(|w| w[0].t_us <= w[1].t_us),
            "track timestamps monotone"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Exactness is not an artifact of round task counts: any workload
    // split across any pool size aggregates to the reference sum.
    #[test]
    fn counter_matches_sequential_reference(
        amounts in prop::collection::vec(0u64..1_000, 1..400),
        threads in prop::sample::select(vec![1usize, 2, 4, 8]),
    ) {
        let obs = Obs::new_enabled();
        let c = obs.counter("prop.counter");
        pool(threads).install(|| {
            amounts.par_iter().for_each(|&a| c.add(a));
        });
        prop_assert_eq!(c.value(), amounts.iter().sum::<u64>());
    }

    // Histogram count/sum/max are exact for arbitrary value streams.
    #[test]
    fn hist_matches_sequential_reference(
        values in prop::collection::vec(0u64..1_000_000, 1..400),
        threads in prop::sample::select(vec![1usize, 2, 4, 8]),
    ) {
        let obs = Obs::new_enabled();
        let h = obs.hist("prop.hist");
        pool(threads).install(|| {
            values.par_iter().for_each(|&v| h.record(v));
        });
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
        let report = obs.flush().unwrap();
        let snap = report.hists.iter().find(|s| s.name == "prop.hist").unwrap();
        prop_assert_eq!(snap.max, *values.iter().max().unwrap());
        prop_assert_eq!(
            snap.buckets.iter().map(|&(_, n)| n).sum::<u64>(),
            values.len() as u64
        );
    }
}
