//! Schema validation for the Chrome trace-event exporter.
//!
//! Drives a multi-threaded serve-shaped workload through the flight
//! recorder, exports it, then re-parses the JSON and checks the structural
//! invariants Perfetto relies on: every event carries the single pid, B/E
//! duration events balance per thread track, timestamps never run
//! backwards within a track, every referenced tid has a `thread_name`
//! metadata record, and async stage events carry ids. On top of the
//! schema, the attribution invariant: each request's stage durations sum
//! to within ε of its envelope wall time.
//!
//! CI runs this file at `RAYON_NUM_THREADS=1` and `=8`; the recorder does
//! not use rayon, but the matrix guards against thread-count-sensitive
//! regressions in the TLS registration path.

use std::time::Duration;

use asa_obs::chrome::chrome_trace_string;
use asa_obs::tail::{attribute_requests, TailReport};
use asa_obs::Obs;

/// Runs `workers` threads, each serving `requests` synthetic requests with
/// tiled stages (queue -> execute) and nested spans inside execute.
fn synthetic_serve_run(workers: usize, requests: usize) -> Obs {
    let obs = Obs::new_enabled();
    obs.attach_recorder(1 << 14);
    let mut handles = Vec::new();
    for w in 0..workers {
        let obs = obs.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("worker-{w}"))
                .spawn(move || {
                    for i in 0..requests {
                        let id = obs.mint_trace_id();
                        obs.trace_async_begin(id, "request", "request");
                        obs.trace_async_begin(id, "queue", "request");
                        std::thread::sleep(Duration::from_millis(1));
                        obs.trace_async_end(id, "queue", "request");
                        obs.trace_async_begin(id, "execute", "request");
                        {
                            let _scope = obs.trace_scope(id);
                            let _infomap = obs.span("infomap");
                            let _sweep = obs.span("sweep");
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        obs.trace_async_end(id, "execute", "request");
                        obs.trace_async_end(id, "request", "request");
                        obs.trace_counter("serve.queue.depth", i as i64);
                    }
                })
                .unwrap(),
        );
    }
    for h in handles {
        h.join().unwrap();
    }
    obs
}

fn parse_events(text: &str) -> Vec<serde_json::Value> {
    let doc: serde_json::Value = serde_json::from_str(text).expect("exporter emits valid JSON");
    doc.as_array().expect("top level is an array").clone()
}

#[test]
fn chrome_trace_schema_is_valid() {
    let obs = synthetic_serve_run(3, 4);
    let text = chrome_trace_string(&obs.trace_snapshot().unwrap());
    let events = parse_events(&text);
    assert!(!events.is_empty());

    let mut named_tids = std::collections::HashSet::new();
    let mut used_tids = std::collections::HashSet::new();
    // tid -> (open B count, last ts)
    let mut tracks: std::collections::HashMap<u64, (i64, u64)> = std::collections::HashMap::new();

    for ev in &events {
        let ph = ev.get("ph").and_then(|v| v.as_str()).expect("ph present");
        assert_eq!(
            ev.get("pid").and_then(serde_json::Value::as_u64),
            Some(1),
            "single-process trace"
        );
        let tid = ev
            .get("tid")
            .and_then(serde_json::Value::as_u64)
            .expect("tid present");
        if ph == "M" {
            if ev.get("name").and_then(|v| v.as_str()) == Some("thread_name") {
                named_tids.insert(tid);
            }
            continue;
        }
        used_tids.insert(tid);
        let ts = ev
            .get("ts")
            .and_then(serde_json::Value::as_u64)
            .expect("ts present");
        assert!(ev.get("name").and_then(|v| v.as_str()).is_some());
        assert!(ev.get("cat").and_then(|v| v.as_str()).is_some());
        let entry = tracks.entry(tid).or_insert((0, 0));
        assert!(
            ts >= entry.1,
            "timestamps must be monotone within tid {tid}: {ts} < {}",
            entry.1
        );
        entry.1 = ts;
        match ph {
            "B" => entry.0 += 1,
            "E" => {
                entry.0 -= 1;
                assert!(entry.0 >= 0, "E without matching B on tid {tid}");
            }
            "b" | "e" => {
                assert!(
                    ev.get("id").and_then(|v| v.as_str()).is_some(),
                    "async events need an id"
                );
            }
            "i" => {
                assert_eq!(ev.get("s").and_then(|v| v.as_str()), Some("t"));
            }
            "C" => {
                assert!(ev
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .is_some_and(|v| v.as_i64().is_some() || v.as_u64().is_some()));
            }
            other => panic!("unexpected phase {other}"),
        }
    }

    for (tid, (depth, _)) in &tracks {
        assert_eq!(*depth, 0, "unbalanced B/E on tid {tid}");
    }
    for tid in &used_tids {
        assert!(
            named_tids.contains(tid),
            "tid {tid} has events but no thread_name metadata"
        );
    }
    assert_eq!(used_tids.len(), 3, "one track per worker thread");
}

#[test]
fn request_stages_sum_to_wall_time() {
    let obs = synthetic_serve_run(2, 5);
    let snap = obs.trace_snapshot().unwrap();
    let requests = attribute_requests(&snap, "request");
    assert_eq!(requests.len(), 10, "every request completed");
    for r in &requests {
        assert!(r.wall_us >= 3_000, "two sleeps inside: {}us", r.wall_us);
        let attributed = r.attributed_us();
        assert!(
            attributed <= r.wall_us,
            "stages tile inside the envelope: {attributed} > {}",
            r.wall_us
        );
        assert!(
            r.coverage() >= 0.95,
            "stage durations must cover >=95% of wall, got {:.3} for trace {}",
            r.coverage(),
            r.trace
        );
    }
    // The tail report over the same snapshot agrees.
    let report = TailReport::from_snapshot(&snap, "request", 20.0);
    assert_eq!(report.requests, 10);
    assert_eq!(report.tail.len(), 2);
    assert!(report.min_coverage() >= 0.95);
}

#[test]
fn distinct_trace_ids_across_threads() {
    let obs = synthetic_serve_run(4, 3);
    let snap = obs.trace_snapshot().unwrap();
    let requests = attribute_requests(&snap, "request");
    let mut ids: Vec<u64> = requests.iter().map(|r| r.trace).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 12, "minted ids are process-unique");
}
