//! Exercises the feature-gated counting global allocator. Lives in its
//! own test binary because `#[global_allocator]` is per-binary state —
//! installing it here does not affect any other test target.

#![cfg(feature = "alloc-track")]

use asa_obs::resource::alloc_track::{stats, CountingAllocator};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn counting_allocator_tracks_live_bytes_and_high_water() {
    let before = stats();
    // A 1 MiB allocation must move every counter.
    let big = vec![0u8; 1 << 20];
    let during = stats();
    assert!(during.allocs > before.allocs);
    assert!(during.live_bytes >= before.live_bytes + (1 << 20));
    assert!(during.high_water_bytes >= during.live_bytes);
    drop(big);
    let after = stats();
    assert!(after.deallocs > during.deallocs);
    assert!(
        after.live_bytes <= during.live_bytes,
        "live bytes must drop after the free: {after:?} vs {during:?}"
    );
    // The high-water mark is monotone.
    assert!(after.high_water_bytes >= during.high_water_bytes);
}

#[test]
fn realloc_paths_keep_totals_consistent() {
    let base = stats();
    let mut v: Vec<u64> = Vec::with_capacity(4);
    for i in 0..10_000u64 {
        v.push(i); // forces several reallocs
    }
    let s = stats();
    assert!(s.allocs > base.allocs);
    assert!(s.high_water_bytes >= v.capacity() as u64 * 8);
    drop(v);
    let end = stats();
    assert!(end.deallocs >= s.deallocs);
}
