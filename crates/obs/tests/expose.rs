//! Integration tests for Prometheus exposition: render → strict validate
//! round-trips, validator rejections, and the live scrape endpoint.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use asa_obs::{expose, Obs, TimeSeriesConfig};

fn populated_obs() -> Obs {
    let obs = Obs::new_enabled();
    obs.counter("e.requests").add(41);
    obs.gauge("e.queue.depth").set(7);
    let h = obs.hist("e.latency_us");
    for v in [1u64, 5, 30, 31, 32, 100, 5000] {
        h.record(v);
    }
    obs
}

#[test]
fn rendered_exposition_passes_strict_validation() {
    let obs = populated_obs();
    obs.attach_collector(TimeSeriesConfig {
        resolution: Duration::from_secs(3600),
        slots: 16,
    });
    obs.tick_collector();
    let text = expose::render(&obs);
    let summary = expose::validate(&text).unwrap_or_else(|e| panic!("invalid: {e:#?}"));
    assert!(summary.families >= 4, "families: {summary:?}");
    assert!(summary.histograms >= 1);
    // Counters carry the _total suffix, histograms have cumulative buckets.
    assert!(text.contains("# TYPE e_requests_total counter"));
    assert!(text.contains("e_requests_total 41"));
    assert!(text.contains("# TYPE e_latency_us histogram"));
    assert!(text.contains("e_latency_us_bucket{le=\"+Inf\"} 7"));
    assert!(text.contains("e_latency_us_count 7"));
    // Gauges expose both the level and the high-water mark.
    assert!(text.contains("e_queue_depth 7"));
    assert!(text.contains("e_queue_depth_max 7"));
    // The collector tick surfaced per-series occupancy.
    assert!(text.contains("asa_timeseries_samples{series=\"e.queue.depth\"} 1"));
}

#[test]
fn process_families_render_on_linux() {
    let obs = Obs::new_enabled();
    let text = expose::render(&obs);
    expose::validate(&text).unwrap();
    if asa_obs::resource::sample().is_some() {
        assert!(text.contains("# TYPE process_resident_memory_bytes gauge"));
        assert!(text.contains("# TYPE process_peak_resident_memory_bytes gauge"));
        assert!(text.contains("# TYPE process_cpu_seconds_total counter"));
    }
}

#[test]
fn validator_rejects_duplicate_families() {
    let bad = "# TYPE x counter\nx 1\n# TYPE x counter\nx 2\n";
    let errs = expose::validate(bad).unwrap_err();
    assert!(
        errs.iter().any(|e| e.contains("duplicate family: x")),
        "{errs:?}"
    );
}

#[test]
fn validator_rejects_non_cumulative_or_unterminated_buckets() {
    let not_cumulative = "\
# TYPE h histogram
h_bucket{le=\"1\"} 5
h_bucket{le=\"2\"} 3
h_bucket{le=\"+Inf\"} 5
h_sum 9
h_count 5
";
    let errs = expose::validate(not_cumulative).unwrap_err();
    assert!(
        errs.iter().any(|e| e.contains("not cumulative")),
        "{errs:?}"
    );

    let unterminated = "\
# TYPE h histogram
h_bucket{le=\"1\"} 5
h_sum 9
h_count 5
";
    let errs = expose::validate(unterminated).unwrap_err();
    assert!(errs.iter().any(|e| e.contains("+Inf")), "{errs:?}");
}

#[test]
fn validator_rejects_undeclared_samples_and_interleaving() {
    let undeclared = "orphan 3\n";
    let errs = expose::validate(undeclared).unwrap_err();
    assert!(
        errs.iter().any(|e| e.contains("without a # TYPE")),
        "{errs:?}"
    );

    let interleaved = "\
# TYPE a counter
a_total 1
# TYPE b counter
b_total 1
a_total 2
";
    // a_total appears under family `a`? No — `a` declared, sample name is
    // a_total which is not declared; counters must match exact names.
    let errs = expose::validate(interleaved).unwrap_err();
    assert!(!errs.is_empty());

    let interleaved2 = "\
# TYPE a counter
a 1
# TYPE b counter
b 1
a 2
";
    let errs = expose::validate(interleaved2).unwrap_err();
    assert!(errs.iter().any(|e| e.contains("interleaved")), "{errs:?}");
}

#[test]
fn exemplar_bearing_scrape_renders_and_validates() {
    let obs = populated_obs();
    obs.attach_recorder(64);
    let id = obs.mint_trace_id();
    {
        let _scope = obs.trace_scope(id);
        obs.hist("e.latency_us").record(30);
    }
    let text = expose::render(&obs);
    // The bucket that retained the trace id renders the exemplar suffix…
    let needle = format!("# {{trace_id=\"{}\"}} 30", id.0);
    assert!(text.contains(&needle), "{text}");
    // …and the strict validator accepts the exemplar-bearing exposition.
    expose::validate(&text).unwrap_or_else(|e| panic!("invalid: {e:#?}"));
}

#[test]
fn validator_rejects_missing_or_non_finite_sum() {
    let missing_sum = "\
# TYPE h histogram
h_bucket{le=\"+Inf\"} 5
h_count 5
";
    let errs = expose::validate(missing_sum).unwrap_err();
    assert!(errs.iter().any(|e| e.contains("missing _sum")), "{errs:?}");

    let inf_sum = "\
# TYPE h histogram
h_bucket{le=\"+Inf\"} 5
h_sum +Inf
h_count 5
";
    let errs = expose::validate(inf_sum).unwrap_err();
    assert!(
        errs.iter().any(|e| e.contains("_sum is non-finite")),
        "{errs:?}"
    );
}

#[test]
fn validator_checks_exemplar_shape_and_placement() {
    let good = "\
# TYPE h histogram
h_bucket{le=\"1\"} 2 # {trace_id=\"17\"} 1
h_bucket{le=\"+Inf\"} 2
h_sum 2
h_count 2
";
    expose::validate(good).unwrap_or_else(|e| panic!("invalid: {e:#?}"));

    let on_counter = "\
# TYPE c counter
c 2 # {trace_id=\"17\"} 1
";
    let errs = expose::validate(on_counter).unwrap_err();
    assert!(
        errs.iter().any(|e| e.contains("exemplar on non-bucket")),
        "{errs:?}"
    );

    let no_value = "\
# TYPE h histogram
h_bucket{le=\"+Inf\"} 2 # {trace_id=\"17\"}
h_sum 2
h_count 2
";
    let errs = expose::validate(no_value).unwrap_err();
    assert!(
        errs.iter().any(|e| e.contains("exemplar without a value")),
        "{errs:?}"
    );

    let bad_label = "\
# TYPE h histogram
h_bucket{le=\"+Inf\"} 2 # {trace id} 1
h_sum 2
h_count 2
";
    assert!(expose::validate(bad_label).is_err());
}

#[test]
fn count_mismatch_with_inf_bucket_is_an_error() {
    let bad = "\
# TYPE h histogram
h_bucket{le=\"+Inf\"} 5
h_sum 9
h_count 6
";
    let errs = expose::validate(bad).unwrap_err();
    assert!(errs.iter().any(|e| e.contains("_count")), "{errs:?}");
}

#[test]
fn write_to_file_round_trips() {
    let obs = populated_obs();
    let dir = std::env::temp_dir().join(format!("asa-expose-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metrics.prom");
    expose::write_to_file(&obs, &path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    expose::validate(&text).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tcp_endpoint_serves_live_exposition() {
    let obs = populated_obs();
    let server = expose::serve("127.0.0.1:0", obs.clone()).unwrap();
    let addr = server.local_addr();

    let scrape = |path: &str| -> String {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(conn, "GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n").unwrap();
        let mut raw = String::new();
        conn.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").expect("http header split");
        assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"));
        body.to_string()
    };

    let body = scrape("/metrics");
    expose::validate(&body).unwrap_or_else(|e| panic!("invalid scrape: {e:#?}"));
    assert!(body.contains("e_requests_total 41"));

    // The endpoint re-renders per request: a later scrape sees new values.
    obs.counter("e.requests").add(1);
    let body2 = scrape("/metrics");
    assert!(body2.contains("e_requests_total 42"), "{body2}");

    server.stop();
    // A post-stop connect either refuses or hangs w/o response; just make
    // sure stop() returned (thread joined) — reaching here is the assert.
}

#[test]
fn tcp_endpoint_routes_diagnostics_paths() {
    let obs = populated_obs();
    obs.attach_recorder(64);
    obs.attach_profiler(Duration::from_secs(3600));
    {
        let _s = obs.span("diag.work");
        obs.tick_profiler();
    }
    let server = expose::serve("127.0.0.1:0", obs.clone()).unwrap();
    let addr = server.local_addr();

    let fetch = |path: &str| -> (String, String) {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        write!(conn, "GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n").unwrap();
        let mut raw = String::new();
        conn.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").expect("http header split");
        (head.to_string(), body.to_string())
    };

    let (head, body) = fetch("/flame.svg");
    assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
    assert!(head.contains("image/svg+xml"), "{head}");
    assert!(body.starts_with("<svg"), "{body}");
    assert!(body.contains("diag.work"), "{body}");

    let (head, body) = fetch("/profile?seconds=0.01");
    assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
    // On-demand capture: folded lines (possibly none if nothing was on
    // stack during the capture window) — format check only when present.
    for line in body.lines() {
        let mut it = line.rsplitn(2, ' ');
        it.next().unwrap().parse::<u64>().expect("folded count");
        assert!(!it.next().unwrap().is_empty());
    }

    let (head, body) = fetch("/debug");
    assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
    assert!(body.contains("uptime_us:"), "{body}");
    assert!(body.contains("profiler: attached"), "{body}");

    let (head, _) = fetch("/nope");
    assert!(head.starts_with("HTTP/1.0 404"), "{head}");

    server.stop();
    obs.stop_profiler();
}

#[test]
fn profile_endpoint_without_profiler_is_503() {
    let obs = Obs::new_enabled();
    let server = expose::serve("127.0.0.1:0", obs).unwrap();
    let addr = server.local_addr();
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(conn, "GET /profile HTTP/1.0\r\n\r\n").unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.0 503"), "{raw}");
    server.stop();
}
