//! Equivalence: batched trace replay is bit-identical to per-event charging.
//!
//! Random event streams — all instruction classes, branches, loads/stores
//! with same-line reuse, dependent-load toggles, phase switches — are fed
//! once through a [`CoreModel`] directly and once through a [`BatchedCore`]
//! with a small block size (so streams split across many batch boundaries,
//! exercising marker re-application and the MRU memo across drains). The
//! per-phase reports must match down to the f64 cycle bits.

use asa_simarch::branch::PredictorKind;
use asa_simarch::events::{phase, EventSink, InstrClass};
use asa_simarch::trace::TraceBuf;
use asa_simarch::{BatchedCore, CoreModel, KernelReport, MachineConfig};
use proptest::prelude::*;

/// One random event: `(kind, raw, flag)` decoded by [`feed`].
type RawEvent = (u8, u64, bool);

/// The configurations the equivalence property runs under: the calibrated
/// baseline, baseline + prefetcher, a bimodal predictor, and a deliberately
/// tiny hierarchy with a 1-way L1 *and* the prefetcher (the MRU memo's
/// hardest case: a prefetch fill can evict the memoized line).
fn config(selector: usize) -> MachineConfig {
    let mut cfg = MachineConfig::baseline(1);
    match selector {
        0 => {}
        1 => cfg.prefetch_next_line = true,
        2 => {
            cfg.predictor = PredictorKind::Bimodal;
            cfg.predictor_table_bits = 6;
            cfg.predictor_history_bits = 4;
        }
        _ => {
            cfg.l1 = (1024, 1);
            cfg.l2 = (4 * 1024, 2);
            cfg.l3 = (16 * 1024, 4);
            cfg.prefetch_next_line = true;
        }
    }
    cfg
}

/// Decodes one raw event and feeds it to `sink`, tracking the previous
/// address so a share of loads/stores re-touch the same line (the pattern
/// the MRU fast path accelerates — and must not mis-account).
fn feed<S: EventSink>(sink: &mut S, event: RawEvent, prev_addr: &mut u64) {
    let (kind, raw, flag) = event;
    match kind % 8 {
        0 => sink.instr(InstrClass::ALL[raw as usize % 7], 1 + raw % 5),
        1 => sink.branch((raw % 97) as u32, flag),
        2 => {
            *prev_addr = raw % (1 << 18);
            sink.mem_read(*prev_addr);
        }
        3 => {
            *prev_addr = raw % (1 << 18);
            sink.mem_write(*prev_addr);
        }
        4 => sink.set_dependent(flag),
        5 => sink.set_phase(raw as usize % phase::COUNT),
        6 => sink.mem_read(*prev_addr + raw % 64),
        _ => sink.mem_write(*prev_addr + raw % 64),
    }
}

fn assert_bitwise(a: &KernelReport, b: &KernelReport, what: &str) {
    assert_eq!(a.instructions, b.instructions, "{what}: instructions");
    assert_eq!(a.branches, b.branches, "{what}: branches");
    assert_eq!(a.mispredictions, b.mispredictions, "{what}: mispredictions");
    assert_eq!(a.loads, b.loads, "{what}: loads");
    assert_eq!(a.stores, b.stores, "{what}: stores");
    assert_eq!(a.l1_misses, b.l1_misses, "{what}: l1_misses");
    assert_eq!(a.l2_misses, b.l2_misses, "{what}: l2_misses");
    assert_eq!(a.l3_misses, b.l3_misses, "{what}: l3_misses");
    assert_eq!(
        a.cycles.to_bits(),
        b.cycles.to_bits(),
        "{what}: cycles ({} vs {})",
        a.cycles,
        b.cycles
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn batched_replay_bit_identical_to_per_event(
        events in prop::collection::vec((0u8..8, 0u64..(1 << 20), any::<bool>()), 1..800),
        selector in 0usize..4,
        capacity in prop::sample::select(vec![1usize, 3, 7, 64]),
    ) {
        let cfg = config(selector);
        let mut inline = CoreModel::new(&cfg);
        let mut batched = BatchedCore::new(CoreModel::new(&cfg), capacity);

        // Two "sweeps" over the same stream: the second starts from the
        // carried-over predictor/cache state, as real engines do.
        for _ in 0..2 {
            let mut prev_inline = 0u64;
            let mut prev_batched = 0u64;
            for &e in &events {
                feed(&mut inline, e, &mut prev_inline);
                feed(&mut batched, e, &mut prev_batched);
            }
            prop_assert_eq!(batched.events() % events.len() as u64, 0);
            let a = inline.take_phase_reports();
            let b = batched.take_phase_reports();
            for (p, (ra, rb)) in a.iter().zip(b.iter()).enumerate() {
                assert_bitwise(ra, rb, &format!("phase {p}"));
            }
        }
    }

    #[test]
    fn consume_batch_matches_reference_replay(
        events in prop::collection::vec((0u8..8, 0u64..(1 << 20), any::<bool>()), 1..500),
        selector in 0usize..4,
    ) {
        // Pin the optimized dispatch loop to the decode-and-call reference:
        // the same recorded buffer, replayed both ways, must agree.
        let cfg = config(selector);
        let mut buf = TraceBuf::new();
        let mut prev = 0u64;
        for &e in &events {
            feed(&mut buf, e, &mut prev);
        }

        let mut fast = CoreModel::new(&cfg);
        fast.consume_batch(&buf);
        let mut reference = CoreModel::new(&cfg);
        buf.replay_per_event(&mut reference);

        let a = fast.take_phase_reports();
        let b = reference.take_phase_reports();
        for (p, (ra, rb)) in a.iter().zip(b.iter()).enumerate() {
            assert_bitwise(ra, rb, &format!("phase {p}"));
        }
    }
}
