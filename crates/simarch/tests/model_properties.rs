//! Property tests pinning the micro-architecture models to reference
//! implementations.

use asa_simarch::branch::{BranchPredictor, PredictorKind};
use asa_simarch::cache::SetAssocCache;
use asa_simarch::events::{EventSink, InstrClass};
use asa_simarch::{CoreModel, MachineConfig};
use proptest::prelude::*;
use std::collections::VecDeque;

/// Reference fully-specified LRU set model: per set, a recency queue.
struct RefCache {
    sets: usize,
    ways: usize,
    line_shift: u32,
    queues: Vec<VecDeque<u64>>,
}

impl RefCache {
    fn new(capacity: usize, ways: usize, line: usize) -> Self {
        let sets = capacity / line / ways;
        Self {
            sets,
            ways,
            line_shift: line.trailing_zeros(),
            queues: vec![VecDeque::new(); sets],
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line as usize) & (self.sets - 1);
        let q = &mut self.queues[set];
        if let Some(pos) = q.iter().position(|&t| t == line) {
            q.remove(pos);
            q.push_back(line);
            true
        } else {
            if q.len() == self.ways {
                q.pop_front();
            }
            q.push_back(line);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cache_matches_reference_lru(
        addrs in prop::collection::vec(0u64..(1 << 16), 1..600),
        ways in prop::sample::select(vec![1usize, 2, 4]),
    ) {
        let capacity = 64 * ways * 8; // 8 sets
        let mut model = SetAssocCache::new(capacity, ways, 64);
        let mut reference = RefCache::new(capacity, ways, 64);
        for &a in &addrs {
            prop_assert_eq!(model.access(a), reference.access(a), "addr {:#x}", a);
        }
        prop_assert_eq!(model.accesses(), addrs.len() as u64);
    }

    #[test]
    fn predictor_totals_consistent(
        outcomes in prop::collection::vec((0u32..64, any::<bool>()), 1..500),
    ) {
        for kind in [PredictorKind::Bimodal, PredictorKind::Gshare] {
            let mut p = BranchPredictor::new(kind, 10, 4);
            let mut misses = 0u64;
            for &(site, taken) in &outcomes {
                if p.resolve(site, taken) {
                    misses += 1;
                }
            }
            prop_assert_eq!(p.predictions(), outcomes.len() as u64);
            prop_assert_eq!(p.mispredictions(), misses);
            prop_assert!(p.miss_rate() <= 1.0);
        }
    }

    #[test]
    fn predictor_deterministic(
        outcomes in prop::collection::vec((0u32..64, any::<bool>()), 1..300),
    ) {
        let run = || {
            let mut p = BranchPredictor::default_gshare();
            outcomes
                .iter()
                .map(|&(s, t)| p.resolve(s, t))
                .collect::<Vec<bool>>()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn core_cycles_monotone_in_events(
        events in prop::collection::vec(0u8..4, 1..400),
    ) {
        // Cycles strictly increase with every event; instruction counts
        // match the event stream exactly.
        let mut core = CoreModel::new(&MachineConfig::baseline(1));
        let mut last = 0.0f64;
        let mut x = 7u64;
        for (i, &e) in events.iter().enumerate() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            match e {
                0 => core.instr(InstrClass::Alu, 1),
                1 => core.branch(i as u32 % 16, x & 1 == 1),
                2 => core.mem_read(x % (1 << 20)),
                _ => core.mem_write(x % (1 << 20)),
            }
            let now = core.report().cycles;
            prop_assert!(now > last, "cycles must advance");
            last = now;
        }
        prop_assert_eq!(core.report().instructions, events.len() as u64);
    }
}
