//! Micro-event interface between instrumented components and the core model.
//!
//! Instrumented code (the software hash table, the ASA device model) calls
//! these methods at the points where the real implementation would execute
//! instructions, branch, or touch memory. The paper's ZSim setup does the
//! same thing with Pin instrumentation and magic `xchg` instructions
//! (Section II-E); here the instrumentation is explicit calls.

/// Instruction classes with distinct issue costs in the core model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Integer ALU work (address math, comparisons outside branches).
    Alu,
    /// Floating-point add/mul (flow accumulation arithmetic).
    Float,
    /// Memory load (issue cost only; stall cycles come from the cache model).
    Load,
    /// Memory store.
    Store,
    /// Conditional branch (issue cost; mispredict penalty from predictor).
    Branch,
    /// ASA `accumulate` custom instruction: one CAM lookup+add (the paper's
    /// single-instruction hash lookup and accumulation).
    AsaAccumulate,
    /// ASA `gather_CAM` per-entry transfer back to memory.
    AsaGather,
}

impl InstrClass {
    /// All classes, for report tabulation.
    pub const ALL: [InstrClass; 7] = [
        InstrClass::Alu,
        InstrClass::Float,
        InstrClass::Load,
        InstrClass::Store,
        InstrClass::Branch,
        InstrClass::AsaAccumulate,
        InstrClass::AsaGather,
    ];

    /// Dense index for per-class counters.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            InstrClass::Alu => 0,
            InstrClass::Float => 1,
            InstrClass::Load => 2,
            InstrClass::Store => 3,
            InstrClass::Branch => 4,
            InstrClass::AsaAccumulate => 5,
            InstrClass::AsaGather => 6,
        }
    }
}

/// Receiver for micro-events emitted by instrumented components.
///
/// `mem_read`/`mem_write` *include* the load/store instruction itself; do
/// not emit a separate `instr(Load, 1)` alongside them. `branch` likewise
/// counts the branch instruction.
pub trait EventSink {
    /// `count` instructions of class `class` executed (no memory side
    /// effects).
    fn instr(&mut self, class: InstrClass, count: u64);

    /// A conditional branch at static site `site` resolved as `taken`.
    fn branch(&mut self, site: u32, taken: bool);

    /// A load from synthetic address `addr`.
    fn mem_read(&mut self, addr: u64);

    /// A store to synthetic address `addr`.
    fn mem_write(&mut self, addr: u64);

    /// Marks subsequent loads as serially dependent (pointer chasing, which
    /// an out-of-order core cannot overlap) or independently issuable.
    /// Sinks without a timing model ignore this.
    fn set_dependent(&mut self, _dependent: bool) {}

    /// Tags subsequent events with an attribution phase (see [`phase`]).
    /// Timing sinks keep per-phase counters so the harness can report,
    /// e.g., the share of `FindBestCommunity` spent in hash operations
    /// (Fig. 2b) or ASA overflow handling (Section IV-C). Sinks without a
    /// timing model ignore this.
    fn set_phase(&mut self, _phase: usize) {}
}

/// Attribution phases for [`EventSink::set_phase`].
pub mod phase {
    /// Kernel computation outside the accumulation device (codelength
    /// math, neighbour iteration, move bookkeeping).
    pub const COMPUTE: usize = 0;
    /// Accumulation-device work: hash insert/lookup/accumulate and gather —
    /// the paper's "HashOperations" bar.
    pub const HASH: usize = 1;
    /// ASA overflow handling: the software `sort_and_merge` of
    /// Algorithm 2 lines 10–12.
    pub const OVERFLOW: usize = 2;
    /// Number of phases.
    pub const COUNT: usize = 3;
}

/// Sink that discards everything. Used for "native" runs (Table III/IV's
/// native column measures wall-clock without simulation); all methods are
/// empty so the optimizer removes instrumentation entirely in monomorphized
/// code.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    #[inline(always)]
    fn instr(&mut self, _class: InstrClass, _count: u64) {}
    #[inline(always)]
    fn branch(&mut self, _site: u32, _taken: bool) {}
    #[inline(always)]
    fn mem_read(&mut self, _addr: u64) {}
    #[inline(always)]
    fn mem_write(&mut self, _addr: u64) {}
}

/// Sink that only counts event totals, with no timing model. Useful in tests
/// asserting *what* was emitted independently of machine configuration.
#[derive(Debug, Default, Clone)]
pub struct CountingSink {
    /// Total non-memory instructions by class index.
    pub instr: [u64; 7],
    /// Total branches observed.
    pub branches: u64,
    /// Branches that resolved taken.
    pub taken: u64,
    /// Loads observed.
    pub reads: u64,
    /// Stores observed.
    pub writes: u64,
}

impl CountingSink {
    /// Total instructions across all classes including memory and branches.
    pub fn total_instructions(&self) -> u64 {
        self.instr.iter().sum::<u64>() + self.branches + self.reads + self.writes
    }
}

impl EventSink for CountingSink {
    fn instr(&mut self, class: InstrClass, count: u64) {
        self.instr[class.index()] += count;
    }
    fn branch(&mut self, _site: u32, taken: bool) {
        self.branches += 1;
        if taken {
            self.taken += 1;
        }
    }
    fn mem_read(&mut self, _addr: u64) {
        self.reads += 1;
    }
    fn mem_write(&mut self, _addr: u64) {
        self.writes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_tallies() {
        let mut s = CountingSink::default();
        s.instr(InstrClass::Alu, 3);
        s.branch(1, true);
        s.branch(1, false);
        s.mem_read(0x40);
        s.mem_write(0x80);
        assert_eq!(s.instr[InstrClass::Alu.index()], 3);
        assert_eq!(s.branches, 2);
        assert_eq!(s.taken, 1);
        assert_eq!(s.total_instructions(), 3 + 2 + 1 + 1);
    }

    #[test]
    fn class_indices_dense_and_unique() {
        let mut seen = [false; 7];
        for c in InstrClass::ALL {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn null_sink_is_noop() {
        let mut s = NullSink;
        s.instr(InstrClass::Float, 1);
        s.branch(0, true);
        s.mem_read(0);
        s.mem_write(0);
    }
}
