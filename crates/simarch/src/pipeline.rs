//! Compute/simulate overlap: double-buffered trace channels per emulated
//! core, drained by dedicated simulation threads.
//!
//! This is the moral equivalent of Pin's buffered-trace mode, which the
//! paper's ZSim setup relies on (Section II-E): the workload thread runs
//! the instrumented kernel at near-native speed, recording micro-events
//! into a [`TraceBuf`]; when the buffer fills it is handed over a channel
//! to a simulation thread that owns the corresponding [`CoreModel`] and
//! replays the block with [`CoreModel::consume_batch`], while the
//! workload thread keeps recording into the next buffer.
//!
//! Backpressure is bounded by construction rather than by a bounded
//! channel (the offline `crossbeam` stand-in only provides unbounded
//! ones): exactly [`SimPipelineConfig::buffers_per_core`] buffers
//! circulate per core between the workload side and its simulation
//! thread's free list, so a workload thread that runs too far ahead
//! blocks in `free_rx.recv()` until a buffer comes back — at which point
//! at most `buffers_per_core * buffer_events` events are in flight.
//!
//! Determinism: each core's buffers travel a single FIFO channel to the
//! one thread that owns that core's model, so events replay in exactly
//! the recorded per-core order and reports stay bit-identical to inline
//! charging (phase/dependent markers ride in the stream; see
//! [`crate::trace`]).

use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::thread::JoinHandle;
use std::time::Instant;

use asa_obs::{Counter, Gauge, Hist, Obs};

use crate::config::{MachineConfig, SimPipelineConfig};
use crate::core::CoreModel;
use crate::events::{phase, EventSink, InstrClass};
use crate::machine::block_partition;
use crate::report::KernelReport;
use crate::trace::TraceBuf;

/// What a workload side sends to its simulation thread. The `usize` seat
/// index routes the command to the right core model when one thread
/// serves several cores.
enum Cmd {
    /// A filled trace buffer to replay (then recycle to the free list).
    Batch(TraceBuf),
    /// Sweep barrier: take the core's phase reports and send them back.
    Flush,
}

/// Workload-side telemetry for one [`CorePipe`]. The counters are shared
/// (striped-atomic) across all pipes of a pipeline, so totals aggregate
/// per pipeline while each increment stays on the recording thread.
#[derive(Debug, Clone)]
struct PipeObs {
    /// Batches shipped to the simulation side.
    batches: Counter,
    /// `send_batch` calls that had to block on the free list (the
    /// simulator fell behind — backpressure engaged).
    stalls: Counter,
    /// Events per shipped batch (buffer occupancy at handoff; partial
    /// batches come from sweep-barrier flushes).
    fill: Hist,
    /// The same occupancy as a level, so the continuous-telemetry
    /// collector can sample a live `pipeline.buf_fill` series (a
    /// sustained drop below capacity means barrier flushes dominate).
    fill_level: Gauge,
    /// Handle for `pipeline.ingest` spans and `pipeline.stall` trace
    /// instants when a flight recorder is attached.
    obs: Obs,
}

impl PipeObs {
    fn attach(obs: &Obs) -> Option<Self> {
        obs.enabled().then(|| PipeObs {
            batches: obs.counter("pipeline.batches"),
            stalls: obs.counter("pipeline.stalls"),
            fill: obs.hist("pipeline.batch_fill"),
            fill_level: obs.gauge("pipeline.buf_fill"),
            obs: obs.clone(),
        })
    }
}

/// Simulation-side telemetry for one [`Seat`].
#[derive(Debug, Clone)]
struct SeatObs {
    /// Events replayed by `consume_batch`.
    replay_events: Counter,
    /// Nanoseconds spent inside `consume_batch` (replay throughput =
    /// `replay_events / replay_nanos`).
    replay_nanos: Counter,
    /// Handle for `pipeline.replay` spans on the simulation thread's
    /// flight-recorder track.
    obs: Obs,
}

impl SeatObs {
    fn attach(obs: &Obs) -> Option<Self> {
        obs.enabled().then(|| SeatObs {
            replay_events: obs.counter("pipeline.replay_events"),
            replay_nanos: obs.counter("pipeline.replay_nanos"),
            obs: obs.clone(),
        })
    }
}

/// One simulated core owned by a simulation thread.
struct Seat {
    model: CoreModel,
    free_tx: Sender<TraceBuf>,
    report_tx: Sender<[KernelReport; phase::COUNT]>,
    obs: Option<SeatObs>,
}

fn worker_loop(rx: Receiver<(usize, Cmd)>, mut seats: Vec<Seat>) {
    while let Ok((seat, cmd)) = rx.recv() {
        let seat = &mut seats[seat];
        match cmd {
            Cmd::Batch(mut buf) => {
                if let Some(obs) = &seat.obs {
                    let _sp = obs.obs.span("pipeline.replay");
                    let t = Instant::now();
                    seat.model.consume_batch(&buf);
                    obs.replay_nanos.add(t.elapsed().as_nanos() as u64);
                    obs.replay_events.add(buf.len() as u64);
                } else {
                    seat.model.consume_batch(&buf);
                }
                buf.clear();
                // The pipe may already be gone during teardown.
                let _ = seat.free_tx.send(buf);
            }
            Cmd::Flush => {
                let _ = seat.report_tx.send(seat.model.take_phase_reports());
            }
        }
    }
}

/// The workload-side [`EventSink`] for one emulated core: records into
/// the current [`TraceBuf`] and ships full buffers to the owning
/// simulation thread, blocking on the bounded free list when the
/// simulator falls behind.
#[derive(Debug)]
pub struct CorePipe {
    seat: usize,
    buf: TraceBuf,
    capacity: usize,
    events: u64,
    data_tx: Sender<(usize, Cmd)>,
    free_rx: Receiver<TraceBuf>,
    report_rx: Receiver<[KernelReport; phase::COUNT]>,
    obs: Option<PipeObs>,
}

impl CorePipe {
    /// Total events recorded through this pipe.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Ships any partial buffer, then tells the simulation thread to
    /// close out the sweep; pair with [`SimPipeline::barrier_phase_reports`]
    /// (which calls this for every pipe) rather than calling directly.
    fn flush(&mut self) {
        if !self.buf.is_empty() {
            self.send_batch();
        }
        self.data_tx
            .send((self.seat, Cmd::Flush))
            .expect("simulation thread alive");
    }

    fn recv_reports(&mut self) -> [KernelReport; phase::COUNT] {
        self.report_rx.recv().expect("simulation thread alive")
    }

    fn send_batch(&mut self) {
        // Bounded backpressure: wait for a recycled buffer before
        // shipping the full one. With telemetry attached, distinguish the
        // free-list fast path from an actual backpressure stall.
        let empty = if let Some(obs) = &self.obs {
            let _sp = obs.obs.span("pipeline.ingest");
            obs.batches.incr();
            obs.fill.record(self.buf.len() as u64);
            obs.fill_level.set(self.buf.len() as u64);
            match self.free_rx.try_recv() {
                Ok(buf) => buf,
                Err(TryRecvError::Empty) => {
                    obs.stalls.incr();
                    obs.obs.trace_instant("pipeline.stall", "sim");
                    self.free_rx.recv().expect("simulation thread alive")
                }
                Err(TryRecvError::Disconnected) => panic!("simulation thread alive"),
            }
        } else {
            self.free_rx.recv().expect("simulation thread alive")
        };
        let full = std::mem::replace(&mut self.buf, empty);
        self.events += full.len() as u64;
        self.data_tx
            .send((self.seat, Cmd::Batch(full)))
            .expect("simulation thread alive");
    }

    #[inline]
    fn maybe_send(&mut self) {
        if self.buf.len() >= self.capacity {
            self.send_batch();
        }
    }
}

impl EventSink for CorePipe {
    #[inline]
    fn instr(&mut self, class: InstrClass, count: u64) {
        self.buf.instr(class, count);
        self.maybe_send();
    }

    #[inline]
    fn branch(&mut self, site: u32, taken: bool) {
        self.buf.branch(site, taken);
        self.maybe_send();
    }

    #[inline]
    fn mem_read(&mut self, addr: u64) {
        self.buf.mem_read(addr);
        self.maybe_send();
    }

    #[inline]
    fn mem_write(&mut self, addr: u64) {
        self.buf.mem_write(addr);
        self.maybe_send();
    }

    #[inline]
    fn set_dependent(&mut self, dependent: bool) {
        self.buf.set_dependent(dependent);
        self.maybe_send();
    }

    #[inline]
    fn set_phase(&mut self, p: usize) {
        self.buf.set_phase(p);
        self.maybe_send();
    }
}

/// A full overlapped-simulation pipeline: one [`CorePipe`] per emulated
/// core on the workload side, [`SimPipelineConfig::sim_threads`]
/// simulation threads owning the [`CoreModel`]s on the other side.
///
/// Everything — cores, trace buffers, channels, threads — is allocated
/// once at construction and reused across sweeps; dropping the pipeline
/// closes the channels and joins the threads.
#[derive(Debug)]
pub struct SimPipeline {
    pipes: Vec<CorePipe>,
    workers: Vec<JoinHandle<()>>,
}

impl SimPipeline {
    /// Builds the pipeline for `mcfg.cores` emulated cores.
    pub fn new(mcfg: &MachineConfig, pcfg: &SimPipelineConfig) -> Self {
        Self::with_obs(mcfg, pcfg, &Obs::disabled())
    }

    /// [`SimPipeline::new`] plus telemetry: batch/stall/fill metrics on
    /// the workload side and replay-throughput counters on the simulation
    /// side. With `Obs::disabled()` this is exactly the plain pipeline.
    pub fn with_obs(mcfg: &MachineConfig, pcfg: &SimPipelineConfig, obs: &Obs) -> Self {
        let cores = mcfg.cores.max(1);
        let sim_threads = if pcfg.sim_threads == 0 {
            cores
        } else {
            pcfg.sim_threads.min(cores)
        };
        let buffers = pcfg.buffers_per_core.max(2);
        let capacity = pcfg.buffer_events.max(1);

        let mut pipes = Vec::with_capacity(cores);
        let mut workers = Vec::with_capacity(sim_threads);
        for cores_of_thread in block_partition(cores, sim_threads) {
            if cores_of_thread.is_empty() {
                continue;
            }
            let (data_tx, data_rx) = channel::<(usize, Cmd)>();
            let mut seats = Vec::with_capacity(cores_of_thread.len());
            for _ in cores_of_thread {
                let (free_tx, free_rx) = channel();
                let (report_tx, report_rx) = channel();
                for _ in 1..buffers {
                    free_tx
                        .send(TraceBuf::with_capacity(capacity))
                        .expect("fresh channel");
                }
                pipes.push(CorePipe {
                    seat: seats.len(),
                    buf: TraceBuf::with_capacity(capacity),
                    capacity,
                    events: 0,
                    data_tx: data_tx.clone(),
                    free_rx,
                    report_rx,
                    obs: PipeObs::attach(obs),
                });
                seats.push(Seat {
                    model: CoreModel::new(mcfg),
                    free_tx,
                    report_tx,
                    obs: SeatObs::attach(obs),
                });
            }
            workers.push(std::thread::spawn(move || worker_loop(data_rx, seats)));
        }
        Self { pipes, workers }
    }

    /// Number of emulated cores.
    pub fn num_cores(&self) -> usize {
        self.pipes.len()
    }

    /// The per-core workload-side sinks, for distribution to host worker
    /// threads (`pipes_mut().par_iter_mut()` with per-core vertex ranges).
    pub fn pipes_mut(&mut self) -> &mut [CorePipe] {
        &mut self.pipes
    }

    /// Total events recorded across all pipes.
    pub fn events(&self) -> u64 {
        self.pipes.iter().map(CorePipe::events).sum()
    }

    /// Sweep barrier: flushes every pipe, waits for all simulation
    /// threads to drain, and returns each core's per-phase reports
    /// (resetting them), in core order.
    ///
    /// All pipes are flushed *before* any report is awaited, so the
    /// simulation threads drain their tails concurrently.
    pub fn barrier_phase_reports(&mut self) -> Vec<[KernelReport; phase::COUNT]> {
        for pipe in &mut self.pipes {
            pipe.flush();
        }
        self.pipes.iter_mut().map(CorePipe::recv_reports).collect()
    }
}

impl Drop for SimPipeline {
    fn drop(&mut self) {
        // Dropping the pipes drops every data sender; the workers' recv
        // loops end and the threads exit.
        self.pipes.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(sink: &mut impl EventSink, n: u64) {
        sink.set_phase(phase::HASH);
        sink.set_dependent(true);
        let mut x = 0x9e37_79b9u64;
        for i in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            sink.instr(InstrClass::Alu, 1 + i % 3);
            sink.branch((x % 17) as u32, x & 2 == 0);
            sink.mem_read(x % (1 << 20));
            if x & 4 == 0 {
                sink.mem_write(x % (1 << 20));
            }
        }
        sink.set_dependent(false);
        sink.set_phase(phase::COMPUTE);
    }

    fn assert_bitwise(a: &KernelReport, b: &KernelReport) {
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.branches, b.branches);
        assert_eq!(a.mispredictions, b.mispredictions);
        assert_eq!(a.loads, b.loads);
        assert_eq!(a.stores, b.stores);
        assert_eq!(a.l1_misses, b.l1_misses);
        assert_eq!(a.l2_misses, b.l2_misses);
        assert_eq!(a.l3_misses, b.l3_misses);
        assert_eq!(a.cycles.to_bits(), b.cycles.to_bits());
    }

    #[test]
    fn pipeline_matches_inline_core_across_sweeps() {
        let mcfg = MachineConfig::baseline(2);
        let pcfg = SimPipelineConfig {
            buffer_events: 64, // tiny buffers force many handoffs
            buffers_per_core: 2,
            sim_threads: 1, // one thread serving both cores
        };
        let mut pipeline = SimPipeline::new(&mcfg, &pcfg);
        let mut inline: Vec<CoreModel> = (0..2).map(|_| CoreModel::new(&mcfg)).collect();

        for sweep in 0..3u64 {
            for (i, pipe) in pipeline.pipes_mut().iter_mut().enumerate() {
                feed(pipe, 200 + 37 * sweep + i as u64);
            }
            let piped = pipeline.barrier_phase_reports();
            assert_eq!(piped.len(), 2);
            for (i, core) in inline.iter_mut().enumerate() {
                feed(core, 200 + 37 * sweep + i as u64);
                let direct = core.take_phase_reports();
                for (a, b) in piped[i].iter().zip(direct.iter()) {
                    assert_bitwise(a, b);
                }
            }
        }
        assert!(pipeline.events() > 0);
    }

    #[test]
    fn empty_sweep_barrier_is_clean() {
        let mcfg = MachineConfig::baseline(1);
        let mut pipeline = SimPipeline::new(&mcfg, &SimPipelineConfig::default());
        let reports = pipeline.barrier_phase_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0][phase::COMPUTE].instructions, 0);
    }
}
