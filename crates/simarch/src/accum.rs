//! The accumulation interface shared by the software hash table and ASA.
//!
//! The paper's generalized ASA interface boils down to three calls used by
//! `FindBestCommunity` (Algorithm 2): `accumulate(tid, hash(k), k, value)`,
//! `gather_CAM(tid, ...)`, and `sort_and_merge(...)`. The software Baseline
//! offers the same semantics through `std::unordered_map` operations
//! (Algorithm 1). This trait captures the common contract so the Infomap
//! kernel is written once and parameterized by the accumulation device.

use crate::events::EventSink;

/// A key→sum accumulator with device-specific cost behaviour.
///
/// Semantics contract (checked by property tests across implementations):
/// after any sequence of `accumulate(k_i, v_i)` calls since the last
/// `begin`, `gather` must produce exactly the set of distinct keys with
/// their value sums, in unspecified order.
pub trait FlowAccumulator {
    /// Prepares for a new vertex's accumulation round, clearing state.
    fn begin<S: EventSink>(&mut self, sink: &mut S);

    /// Adds `value` to the running sum for `key`.
    fn accumulate<S: EventSink>(&mut self, key: u32, value: f64, sink: &mut S);

    /// Drains every `(key, sum)` pair into `out` and resets the device.
    /// `out` is cleared first.
    fn gather<S: EventSink>(&mut self, out: &mut Vec<(u32, f64)>, sink: &mut S);

    /// Short device name for reports ("software-hash", "asa", ...).
    fn name(&self) -> &'static str;
}

/// Reference accumulator with *no* modeled cost: a dense-key-friendly
/// BTree-backed map. Used as the semantic oracle in tests and for pure
/// algorithm runs where device behaviour is irrelevant.
#[derive(Debug, Default)]
pub struct OracleAccumulator {
    map: std::collections::BTreeMap<u32, f64>,
}

impl FlowAccumulator for OracleAccumulator {
    fn begin<S: EventSink>(&mut self, _sink: &mut S) {
        self.map.clear();
    }

    fn accumulate<S: EventSink>(&mut self, key: u32, value: f64, _sink: &mut S) {
        *self.map.entry(key).or_insert(0.0) += value;
    }

    fn gather<S: EventSink>(&mut self, out: &mut Vec<(u32, f64)>, _sink: &mut S) {
        out.clear();
        out.extend(self.map.iter().map(|(&k, &v)| (k, v)));
        self.map.clear();
    }

    fn name(&self) -> &'static str {
        "oracle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::NullSink;

    #[test]
    fn oracle_accumulates() {
        let mut acc = OracleAccumulator::default();
        let mut sink = NullSink;
        acc.begin(&mut sink);
        acc.accumulate(3, 1.0, &mut sink);
        acc.accumulate(1, 2.0, &mut sink);
        acc.accumulate(3, 0.5, &mut sink);
        let mut out = Vec::new();
        acc.gather(&mut out, &mut sink);
        assert_eq!(out, vec![(1, 2.0), (3, 1.5)]);
        // Gather resets.
        acc.gather(&mut out, &mut sink);
        assert!(out.is_empty());
    }
}
