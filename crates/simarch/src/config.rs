//! Machine configurations (paper Table II).

use serde::{Deserialize, Serialize};

use crate::branch::PredictorKind;
use crate::cache::CacheLatencies;

/// Full simulated-machine configuration.
///
/// Defaults mirror Table II's *Baseline* column: 2.6 GHz cores, 32 KB L1,
/// 256 KB private L2, 16 MB shared L3 (the native machine's 20 MB rounded
/// down to a power of two, as ZSim requires), DDR3-1333 memory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Human-readable name for reports.
    pub name: String,
    /// Core clock in GHz (converts cycles to seconds).
    pub freq_ghz: f64,
    /// Number of simulated cores.
    pub cores: usize,
    /// L1 data cache: (bytes, ways).
    pub l1: (usize, usize),
    /// Private L2: (bytes, ways).
    pub l2: (usize, usize),
    /// Shared L3: (bytes, ways); each core models `bytes / cores` of it.
    pub l3: (usize, usize),
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Load-to-use latencies per level, in cycles.
    pub latencies: CacheLatencies,
    /// Branch predictor organization.
    pub predictor: PredictorKind,
    /// Predictor table size in bits.
    pub predictor_table_bits: u32,
    /// Global history bits (gshare only).
    pub predictor_history_bits: u32,
    /// Pipeline-flush penalty per mispredicted branch, in cycles.
    pub mispredict_penalty: f64,
    /// Effective issue cost of one ALU op in cycles (< 1 models
    /// superscalar issue; Ivy Bridge sustains ~3-4 µops/cycle).
    pub alu_cycles: f64,
    /// Effective issue cost of one FP add/mul.
    pub float_cycles: f64,
    /// Issue cost of a load/store on a cache hit path, excluding stall
    /// cycles charged by the cache model.
    pub mem_issue_cycles: f64,
    /// Issue cost of a branch instruction (penalty added separately).
    pub branch_cycles: f64,
    /// Cycles per ASA `accumulate` instruction. The CAM performs the
    /// lookup+add in a short fixed pipeline; Chao et al. report
    /// single-instruction throughput with a small constant latency.
    pub asa_accumulate_cycles: f64,
    /// Cycles per CAM entry transferred by `gather_CAM`.
    pub asa_gather_cycles: f64,
    /// Fraction of a load's stall latency that the out-of-order window
    /// hides for *regular* (prefetchable) streams; pointer-chase loads
    /// emitted by the hash model bypass this (dependent loads cannot
    /// overlap).
    pub mlp_overlap: f64,
    /// Enable the next-line stream prefetcher. Off by default — the
    /// calibrated Baseline already folds average prefetch benefit into
    /// `mlp_overlap`; the ablation bench turns this on to quantify the
    /// paper's claim that collision chains defeat hardware prefetching.
    pub prefetch_next_line: bool,
}

impl MachineConfig {
    /// Table II "Baseline" column with a given core count.
    pub fn baseline(cores: usize) -> Self {
        Self {
            name: format!("baseline-{cores}core"),
            freq_ghz: 2.6,
            cores,
            l1: (32 * 1024, 8),
            l2: (256 * 1024, 8),
            l3: (16 * 1024 * 1024, 16),
            line_bytes: 64,
            latencies: CacheLatencies {
                l1: 1.0,
                l2: 10.0,
                l3: 32.0,
                mem: 140.0,
            },
            predictor: PredictorKind::Gshare,
            predictor_table_bits: 12,
            predictor_history_bits: 8,
            mispredict_penalty: 16.0,
            alu_cycles: 0.33,
            float_cycles: 0.5,
            mem_issue_cycles: 0.5,
            branch_cycles: 0.5,
            asa_accumulate_cycles: 2.0,
            asa_gather_cycles: 2.0,
            mlp_overlap: 0.6,
            prefetch_next_line: false,
        }
    }

    /// The native machine of Table II (20 MB L3, used only for documentation
    /// of the validation experiment; the simulator itself requires
    /// power-of-two capacities, so running with this config rounds L3 down).
    pub fn native(cores: usize) -> Self {
        Self {
            name: format!("native-{cores}core"),
            l3: (20 * 1024 * 1024, 20),
            ..Self::baseline(cores)
        }
    }

    /// L3 slice modeled per core.
    pub fn l3_slice(&self) -> (usize, usize) {
        let bytes = (self.l3.0 / self.cores.max(1)).next_power_of_two();
        let bytes = bytes.min(self.l3.0).max(self.line_bytes * self.l3.1);
        (bytes, self.l3.1)
    }

    /// Converts a cycle count to seconds at this clock.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.freq_ghz * 1e9)
    }

    /// Per-class issue costs indexed by [`InstrClass::index`] — the flat
    /// table the batch replay kernel dispatches through. Must stay in
    /// sync with the per-event match in `CoreModel::instr` (the trace
    /// equivalence tests pin the two together).
    ///
    /// [`InstrClass::index`]: crate::events::InstrClass::index
    pub fn class_cycles(&self) -> [f64; 7] {
        [
            self.alu_cycles,
            self.float_cycles,
            self.mem_issue_cycles,
            self.mem_issue_cycles,
            self.branch_cycles,
            self.asa_accumulate_cycles,
            self.asa_gather_cycles,
        ]
    }
}

/// Tuning knobs for the batched/overlapped simulation pipeline
/// (see `asa_simarch::pipeline`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimPipelineConfig {
    /// Events per trace buffer — the block size handed to
    /// `CoreModel::consume_batch` and the granularity of compute/simulate
    /// overlap.
    pub buffer_events: usize,
    /// Trace buffers circulating per emulated core (clamped to >= 2:
    /// double buffering). Buffers recycle through a free list, so this
    /// bounds memory *and* provides backpressure: a workload thread that
    /// gets `buffers_per_core` buffers ahead of its simulation thread
    /// blocks until one is drained.
    pub buffers_per_core: usize,
    /// Dedicated simulation threads draining the trace channels;
    /// 0 means one per emulated core.
    pub sim_threads: usize,
}

impl Default for SimPipelineConfig {
    fn default() -> Self {
        Self {
            buffer_events: 32 * 1024,
            buffers_per_core: 3,
            sim_threads: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table2() {
        let c = MachineConfig::baseline(8);
        assert_eq!(c.freq_ghz, 2.6);
        assert_eq!(c.l1.0, 32 * 1024);
        assert_eq!(c.l2.0, 256 * 1024);
        assert_eq!(c.l3.0, 16 * 1024 * 1024);
        assert_eq!(c.cores, 8);
    }

    #[test]
    fn l3_slice_power_of_two() {
        let c = MachineConfig::baseline(8);
        let (bytes, _) = c.l3_slice();
        assert!(bytes.is_power_of_two());
        assert_eq!(bytes, 2 * 1024 * 1024);
    }

    #[test]
    fn native_l3_larger() {
        assert!(MachineConfig::native(8).l3.0 > MachineConfig::baseline(8).l3.0);
    }

    #[test]
    fn cycle_conversion() {
        let c = MachineConfig::baseline(1);
        assert!((c.cycles_to_seconds(2.6e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn serializes() {
        let c = MachineConfig::baseline(2);
        let json = serde_json::to_string(&c).unwrap();
        let back: MachineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cores, 2);
    }
}
