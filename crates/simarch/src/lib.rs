//! ZSim-lite: a lightweight micro-architecture timing model.
//!
//! The paper evaluates ASA inside [ZSim], a Pin-based simulator, reporting
//! instruction counts, branch mispredictions, CPI, and kernel runtimes
//! (Tables II–V, Figures 6–11). This crate is the reproduction's substitute
//! (DESIGN.md, substitution 2): instrumented components — the software hash
//! table in `asa-hashsim` and the CAM accelerator in `asa-accel` — emit
//! abstract micro-events through the [`EventSink`] trait, and a
//! [`CoreModel`] replays them through a branch predictor, a three-level
//! set-associative cache hierarchy, and a latency table to produce the same
//! aggregate counters the paper reports.
//!
//! The model makes no claim of absolute-cycle fidelity. What it captures
//! faithfully is *where the Baseline's cycles go*: collision-chain compare
//! branches feed a real (gshare) predictor, pointer-chase node loads feed a
//! real cache model, and the ASA path replaces both with single accumulate
//! instructions plus an explicit overflow-merge cost — exactly the
//! mechanisms the paper credits for its speedups.
//!
//! [ZSim]: https://doi.org/10.1145/2485922.2485963

pub mod accum;
pub mod branch;
pub mod cache;
pub mod config;
pub mod core;
pub mod events;
pub mod machine;
pub mod pipeline;
pub mod report;
pub mod trace;

pub use accum::FlowAccumulator;
pub use branch::{BranchPredictor, PredictorKind};
pub use cache::{CacheHierarchy, SetAssocCache};
pub use config::{MachineConfig, SimPipelineConfig};
pub use core::CoreModel;
pub use events::{EventSink, InstrClass, NullSink};
pub use machine::MachineModel;
pub use pipeline::{CorePipe, SimPipeline};
pub use report::KernelReport;
pub use trace::{BatchedCore, TraceBuf, TraceCapture, TraceSink};
