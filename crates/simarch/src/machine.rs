//! Multi-core machine model.

use crate::config::MachineConfig;
use crate::core::CoreModel;
use crate::report::KernelReport;

/// A set of simulated cores executing a bulk-synchronous parallel kernel.
///
/// HyPC-Map's shared-memory phase partitions vertices across OpenMP threads
/// and barriers between iterations. The model mirrors that: the caller
/// processes each core's vertex share against that core's [`CoreModel`]
/// (safe to do from parallel host threads via [`MachineModel::cores_mut`]),
/// then [`MachineModel::barrier_reports`] combines per-core counters with
/// max-cycle semantics.
#[derive(Debug)]
pub struct MachineModel {
    cfg: MachineConfig,
    cores: Vec<CoreModel>,
}

impl MachineModel {
    /// Builds `cfg.cores` simulated cores.
    pub fn new(cfg: &MachineConfig) -> Self {
        let cores = (0..cfg.cores).map(|_| CoreModel::new(cfg)).collect();
        Self {
            cfg: cfg.clone(),
            cores,
        }
    }

    /// Number of simulated cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Mutable access to one core.
    pub fn core_mut(&mut self, i: usize) -> &mut CoreModel {
        &mut self.cores[i]
    }

    /// Mutable slice of all cores, for distributing to host worker threads
    /// (e.g. `cores_mut().par_iter_mut()` with per-core vertex ranges).
    pub fn cores_mut(&mut self) -> &mut [CoreModel] {
        &mut self.cores
    }

    /// Collects and resets every core's counters, returning
    /// `(per_core, combined)` where `combined` sums event counters and takes
    /// the slowest core's cycles (barrier semantics).
    pub fn barrier_reports(&mut self) -> (Vec<KernelReport>, KernelReport) {
        let per_core: Vec<KernelReport> = self.cores.iter_mut().map(|c| c.take_report()).collect();
        let combined = KernelReport::parallel(per_core.iter());
        (per_core, combined)
    }

    /// Splits `n` items into contiguous per-core ranges (block
    /// partitioning, the distribution HyPC-Map uses for its vertex loop).
    pub fn partition(&self, n: usize) -> Vec<std::ops::Range<usize>> {
        block_partition(n, self.num_cores())
    }
}

/// Contiguous block partition of `0..n` into `parts` ranges whose sizes
/// differ by at most one.
pub fn block_partition(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let mut ranges = Vec::with_capacity(parts);
    block_partition_into(n, parts, &mut ranges);
    ranges
}

/// [`block_partition`] into a caller-owned vector, so per-sweep callers
/// (the instrumented engines re-partition the shrinking active set every
/// sweep) reuse one allocation instead of building a fresh `Vec` each time.
pub fn block_partition_into(n: usize, parts: usize, out: &mut Vec<std::ops::Range<usize>>) {
    assert!(parts > 0);
    out.clear();
    out.reserve(parts);
    let base = n / parts;
    let extra = n % parts;
    let mut start = 0usize;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EventSink, InstrClass};

    #[test]
    fn partition_covers_everything() {
        let ranges = block_partition(10, 3);
        assert_eq!(ranges, vec![0..4, 4..7, 7..10]);
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn partition_into_reuses_allocation() {
        let mut ranges = Vec::new();
        block_partition_into(10, 3, &mut ranges);
        assert_eq!(ranges, block_partition(10, 3));
        let ptr = ranges.as_ptr();
        block_partition_into(7, 3, &mut ranges);
        assert_eq!(ranges, block_partition(7, 3));
        assert_eq!(ranges.as_ptr(), ptr);
    }

    #[test]
    fn partition_handles_small_n() {
        let ranges = block_partition(2, 4);
        assert_eq!(ranges.iter().filter(|r| !r.is_empty()).count(), 2);
    }

    #[test]
    fn barrier_takes_max() {
        let mut m = MachineModel::new(&MachineConfig::baseline(2));
        m.core_mut(0).instr(InstrClass::Alu, 100);
        m.core_mut(1).instr(InstrClass::Alu, 1000);
        let (per_core, combined) = m.barrier_reports();
        assert_eq!(per_core.len(), 2);
        assert_eq!(combined.instructions, 1100);
        assert!((combined.cycles - per_core[1].cycles).abs() < 1e-9);
        // Counters were reset.
        let (_, empty) = m.barrier_reports();
        assert_eq!(empty.instructions, 0);
    }
}
