//! SoA micro-event traces: record now, simulate later.
//!
//! The per-event path charges every [`EventSink`] call through the full
//! [`CoreModel`] inline on the workload thread, interleaving the kernel's
//! own memory traffic with the simulator's predictor and tag-array state.
//! This module decouples the two the way the paper's Pin + ZSim setup does
//! with buffered traces (Section II-E): instrumented components record
//! into a [`TraceBuf`] — a structure-of-arrays event buffer holding one
//! dense opcode byte and one 64-bit argument per event — and
//! [`CoreModel::consume_batch`] later replays whole blocks through a
//! branch-light dispatch loop, producing reports that are bit-identical
//! to the per-event path (the equivalence tests assert this down to the
//! f64 cycle bits).
//!
//! Phase changes and dependent-load toggles are *markers in the stream*
//! (opcodes [`opcode::SET_PHASE`] / [`opcode::SET_DEPENDENT`]), so replay
//! attributes every event to the same phase with the same load semantics
//! as inline charging, even when a buffer is split at an arbitrary event
//! boundary.

use crate::core::CoreModel;
use crate::events::{phase, EventSink, InstrClass};
use crate::report::KernelReport;

/// Dense opcodes for [`TraceBuf`] events.
///
/// Values `0..=6` are [`InstrClass::index`] values recorded directly, so
/// instruction events dispatch without a translation table; the remaining
/// opcodes follow contiguously.
pub mod opcode {
    /// Highest opcode that is an [`super::InstrClass`] index (argument =
    /// instruction count).
    pub const INSTR_MAX: u8 = 6;
    /// Conditional branch; argument = `site << 1 | taken`.
    pub const BRANCH: u8 = 7;
    /// Load; argument = synthetic address.
    pub const READ: u8 = 8;
    /// Store; argument = synthetic address.
    pub const WRITE: u8 = 9;
    /// Dependent-load toggle marker; argument = 0 or 1.
    pub const SET_DEPENDENT: u8 = 10;
    /// Attribution-phase marker; argument = phase index.
    pub const SET_PHASE: u8 = 11;
}

/// Structure-of-arrays event buffer: parallel `ops`/`args` vectors, one
/// entry per event. Recording is two vector pushes; `clear` keeps the
/// allocations so buffers recycle without reallocation.
///
/// `TraceBuf` itself implements [`EventSink`], so any instrumented
/// component generic over a sink records into it unchanged.
#[derive(Debug, Clone, Default)]
pub struct TraceBuf {
    ops: Vec<u8>,
    args: Vec<u64>,
}

/// The recording sink of the batched trace pipeline. A [`TraceBuf`] *is*
/// the sink: alias kept so call sites read as "record into the trace
/// sink".
pub type TraceSink = TraceBuf;

impl TraceBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with room for `events` events.
    pub fn with_capacity(events: usize) -> Self {
        Self {
            ops: Vec::with_capacity(events),
            args: Vec::with_capacity(events),
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no events are recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Drops all events, keeping the allocations for reuse.
    pub fn clear(&mut self) {
        self.ops.clear();
        self.args.clear();
    }

    /// The opcode array (parallel to [`Self::args`]).
    pub fn ops(&self) -> &[u8] {
        &self.ops
    }

    /// The argument array (parallel to [`Self::ops`]).
    pub fn args(&self) -> &[u64] {
        &self.args
    }

    #[inline]
    fn push(&mut self, op: u8, arg: u64) {
        self.ops.push(op);
        self.args.push(arg);
    }

    /// Decodes every event and feeds it through `sink`'s per-event
    /// methods, in recording order.
    ///
    /// This is the *reference* replay: driving a [`CoreModel`] through it
    /// must — and the equivalence tests check it does — produce reports
    /// bit-identical to [`CoreModel::consume_batch`] on the same buffer.
    pub fn replay_per_event<S: EventSink>(&self, sink: &mut S) {
        for (&op, &arg) in self.ops.iter().zip(&self.args) {
            match op {
                opcode::BRANCH => sink.branch((arg >> 1) as u32, arg & 1 == 1),
                opcode::READ => sink.mem_read(arg),
                opcode::WRITE => sink.mem_write(arg),
                opcode::SET_DEPENDENT => sink.set_dependent(arg != 0),
                opcode::SET_PHASE => sink.set_phase(arg as usize),
                class => sink.instr(InstrClass::ALL[class as usize], arg),
            }
        }
    }
}

impl EventSink for TraceBuf {
    #[inline]
    fn instr(&mut self, class: InstrClass, count: u64) {
        self.push(class.index() as u8, count);
    }

    #[inline]
    fn branch(&mut self, site: u32, taken: bool) {
        self.push(opcode::BRANCH, (u64::from(site) << 1) | u64::from(taken));
    }

    #[inline]
    fn mem_read(&mut self, addr: u64) {
        self.push(opcode::READ, addr);
    }

    #[inline]
    fn mem_write(&mut self, addr: u64) {
        self.push(opcode::WRITE, addr);
    }

    #[inline]
    fn set_dependent(&mut self, dependent: bool) {
        self.push(opcode::SET_DEPENDENT, u64::from(dependent));
    }

    #[inline]
    fn set_phase(&mut self, p: usize) {
        self.push(opcode::SET_PHASE, p as u64);
    }
}

/// Records an event stream into a sequence of fixed-size [`TraceBuf`]
/// chunks, up to a per-capture event limit (events past the limit are
/// dropped). Benches use this to capture a prefix of a real workload's
/// stream once and then time both replay paths on identical buffers.
#[derive(Debug, Default)]
pub struct TraceCapture {
    bufs: Vec<TraceBuf>,
    chunk: usize,
    remaining: usize,
}

impl TraceCapture {
    /// Captures up to `limit` events in chunks of `chunk` events.
    pub fn new(chunk: usize, limit: usize) -> Self {
        Self {
            bufs: Vec::new(),
            chunk: chunk.max(1),
            remaining: limit,
        }
    }

    /// The captured chunks, in recording order.
    pub fn bufs(&self) -> &[TraceBuf] {
        &self.bufs
    }

    /// Consumes the capture, yielding the chunks without copying.
    pub fn into_bufs(self) -> Vec<TraceBuf> {
        self.bufs
    }

    /// Total events captured (excludes events dropped past the limit).
    pub fn captured(&self) -> usize {
        self.bufs.iter().map(TraceBuf::len).sum()
    }

    #[inline]
    fn tail(&mut self) -> Option<&mut TraceBuf> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.bufs.last().is_none_or(|b| b.len() >= self.chunk) {
            self.bufs.push(TraceBuf::with_capacity(self.chunk));
        }
        self.bufs.last_mut()
    }
}

impl EventSink for TraceCapture {
    #[inline]
    fn instr(&mut self, class: InstrClass, count: u64) {
        if let Some(b) = self.tail() {
            b.instr(class, count);
        }
    }

    #[inline]
    fn branch(&mut self, site: u32, taken: bool) {
        if let Some(b) = self.tail() {
            b.branch(site, taken);
        }
    }

    #[inline]
    fn mem_read(&mut self, addr: u64) {
        if let Some(b) = self.tail() {
            b.mem_read(addr);
        }
    }

    #[inline]
    fn mem_write(&mut self, addr: u64) {
        if let Some(b) = self.tail() {
            b.mem_write(addr);
        }
    }

    #[inline]
    fn set_dependent(&mut self, dependent: bool) {
        if let Some(b) = self.tail() {
            b.set_dependent(dependent);
        }
    }

    #[inline]
    fn set_phase(&mut self, p: usize) {
        if let Some(b) = self.tail() {
            b.set_phase(p);
        }
    }
}

/// A [`CoreModel`] fronted by a [`TraceBuf`]: events are recorded, then
/// replayed through [`CoreModel::consume_batch`] whenever the buffer
/// reaches `capacity` — record and replay on the *same* thread. This is
/// the non-overlapped batched mode; the overlapped variant lives in
/// [`crate::pipeline`].
#[derive(Debug)]
pub struct BatchedCore {
    core: CoreModel,
    buf: TraceBuf,
    capacity: usize,
    events: u64,
    obs: Option<BatchedObs>,
}

/// Replay-throughput telemetry for a [`BatchedCore`]; counters are shared
/// by every batched core of the run.
#[derive(Debug, Clone)]
struct BatchedObs {
    batches: asa_obs::Counter,
    replay_events: asa_obs::Counter,
    replay_nanos: asa_obs::Counter,
}

impl BatchedCore {
    /// Wraps `core`, replaying in blocks of `capacity` events.
    pub fn new(core: CoreModel, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            core,
            buf: TraceBuf::with_capacity(capacity),
            capacity,
            events: 0,
            obs: None,
        }
    }

    /// Attaches replay-throughput telemetry (`batched.batches`,
    /// `batched.replay_events`, `batched.replay_nanos`). A disabled `obs`
    /// leaves the core untouched.
    pub fn attach_obs(&mut self, obs: &asa_obs::Obs) {
        self.obs = obs.enabled().then(|| BatchedObs {
            batches: obs.counter("batched.batches"),
            replay_events: obs.counter("batched.replay_events"),
            replay_nanos: obs.counter("batched.replay_nanos"),
        });
    }

    /// Replays and clears any buffered events.
    pub fn drain(&mut self) {
        if !self.buf.is_empty() {
            self.events += self.buf.len() as u64;
            if let Some(obs) = &self.obs {
                let t = std::time::Instant::now();
                self.core.consume_batch(&self.buf);
                obs.replay_nanos.add(t.elapsed().as_nanos() as u64);
                obs.replay_events.add(self.buf.len() as u64);
                obs.batches.incr();
            } else {
                self.core.consume_batch(&self.buf);
            }
            self.buf.clear();
        }
    }

    /// Total events recorded so far (drained or still buffered).
    pub fn events(&self) -> u64 {
        self.events + self.buf.len() as u64
    }

    /// The wrapped core, with all buffered events applied first.
    pub fn core_mut(&mut self) -> &mut CoreModel {
        self.drain();
        &mut self.core
    }

    /// Drains, then takes the core's per-phase reports (resetting its
    /// counters, like [`CoreModel::take_phase_reports`]).
    pub fn take_phase_reports(&mut self) -> [KernelReport; phase::COUNT] {
        self.drain();
        self.core.take_phase_reports()
    }

    #[inline]
    fn maybe_drain(&mut self) {
        if self.buf.len() >= self.capacity {
            self.drain();
        }
    }
}

impl EventSink for BatchedCore {
    #[inline]
    fn instr(&mut self, class: InstrClass, count: u64) {
        self.buf.instr(class, count);
        self.maybe_drain();
    }

    #[inline]
    fn branch(&mut self, site: u32, taken: bool) {
        self.buf.branch(site, taken);
        self.maybe_drain();
    }

    #[inline]
    fn mem_read(&mut self, addr: u64) {
        self.buf.mem_read(addr);
        self.maybe_drain();
    }

    #[inline]
    fn mem_write(&mut self, addr: u64) {
        self.buf.mem_write(addr);
        self.maybe_drain();
    }

    #[inline]
    fn set_dependent(&mut self, dependent: bool) {
        self.buf.set_dependent(dependent);
        self.maybe_drain();
    }

    #[inline]
    fn set_phase(&mut self, p: usize) {
        self.buf.set_phase(p);
        self.maybe_drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::events::CountingSink;

    #[test]
    fn roundtrip_preserves_every_event() {
        let mut buf = TraceBuf::new();
        buf.instr(InstrClass::Float, 16);
        buf.branch(0x301, true);
        buf.branch(0x301, false);
        buf.mem_read(0x2000_0040);
        buf.mem_write(0x2000_0040);
        buf.set_dependent(true);
        buf.set_phase(phase::HASH);
        assert_eq!(buf.len(), 7);

        let mut direct = CountingSink::default();
        direct.instr(InstrClass::Float, 16);
        direct.branch(0x301, true);
        direct.branch(0x301, false);
        direct.mem_read(0x2000_0040);
        direct.mem_write(0x2000_0040);

        let mut replayed = CountingSink::default();
        buf.replay_per_event(&mut replayed);
        assert_eq!(replayed.instr, direct.instr);
        assert_eq!(replayed.branches, direct.branches);
        assert_eq!(replayed.taken, direct.taken);
        assert_eq!(replayed.reads, direct.reads);
        assert_eq!(replayed.writes, direct.writes);
    }

    #[test]
    fn branch_packing_covers_full_site_range() {
        let mut buf = TraceBuf::new();
        buf.branch(u32::MAX, true);
        buf.branch(0, false);
        assert_eq!(buf.args()[0], (u64::from(u32::MAX) << 1) | 1);
        assert_eq!(buf.args()[1], 0);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut buf = TraceBuf::with_capacity(64);
        for i in 0..64 {
            buf.mem_read(i);
        }
        let cap = buf.ops.capacity();
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.ops.capacity(), cap);
    }

    #[test]
    fn batched_core_drains_at_capacity() {
        let cfg = MachineConfig::baseline(1);
        let mut batched = BatchedCore::new(CoreModel::new(&cfg), 4);
        for i in 0..10u64 {
            batched.mem_read(i * 64);
        }
        // Two full blocks replayed, two events still buffered.
        assert_eq!(batched.events(), 10);
        assert_eq!(batched.buf.len(), 2);
        assert_eq!(batched.core_mut().report().loads, 10);
    }
}
