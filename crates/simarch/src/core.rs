//! Single-core timing model: turns micro-events into cycles.

use crate::branch::BranchPredictor;
use crate::cache::{CacheHierarchy, HitLevel};
use crate::config::MachineConfig;
use crate::events::{phase, EventSink, InstrClass};
use crate::report::KernelReport;

/// One simulated core: a branch predictor, a private cache hierarchy
/// (L1 + L2 + an L3 slice), and a latency accounting model.
///
/// The cycle model is additive-with-overlap: every instruction pays its
/// effective issue cost (sub-cycle values model superscalar issue), branch
/// mispredictions pay a pipeline-flush penalty, and loads pay the cache
/// hierarchy's load-to-use latency discounted by `mlp_overlap` — except for
/// *dependent* loads (pointer chasing, flagged by the instrumented hash
/// table), which cannot overlap and pay the full latency. This is the same
/// first-order decomposition ZSim's OoO model converges to for these
/// loop-dominated kernels.
///
/// Counters are kept per attribution [`phase`], so the harness can split a
/// kernel's cycles into compute / hash / overflow shares (Fig. 2b and the
/// overflow-cost claim in Section IV-C).
#[derive(Debug)]
pub struct CoreModel {
    predictor: BranchPredictor,
    caches: CacheHierarchy,
    cfg: MachineConfig,
    phases: [KernelReport; phase::COUNT],
    current_phase: usize,
    /// When true, subsequent loads are treated as serially dependent
    /// (pointer chases) and pay unoverlapped latency.
    dependent_loads: bool,
}

impl CoreModel {
    /// Builds a core for the given machine configuration.
    pub fn new(cfg: &MachineConfig) -> Self {
        let mut caches = CacheHierarchy::new(cfg.l1, cfg.l2, cfg.l3_slice(), cfg.line_bytes);
        caches.set_prefetch(cfg.prefetch_next_line);
        Self {
            predictor: BranchPredictor::new(
                cfg.predictor,
                cfg.predictor_table_bits,
                cfg.predictor_history_bits,
            ),
            caches,
            cfg: cfg.clone(),
            phases: Default::default(),
            current_phase: phase::COMPUTE,
            dependent_loads: false,
        }
    }

    /// Finishes the current kernel: returns the total report (all phases
    /// summed) and resets counters. Predictor and cache state persist, as
    /// they do across kernel invocations on real hardware.
    pub fn take_report(&mut self) -> KernelReport {
        let total = KernelReport::sum(self.phases.iter());
        self.phases = Default::default();
        total
    }

    /// Finishes the current kernel returning per-phase reports
    /// (indexed by the [`phase`] constants) and resets counters.
    pub fn take_phase_reports(&mut self) -> [KernelReport; phase::COUNT] {
        std::mem::take(&mut self.phases)
    }

    /// Read-only total of accumulated counters.
    pub fn report(&self) -> KernelReport {
        KernelReport::sum(self.phases.iter())
    }

    /// Read-only per-phase counters.
    pub fn phase_report(&self, p: usize) -> &KernelReport {
        &self.phases[p]
    }

    /// The machine configuration this core models.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    #[inline]
    fn cur(&mut self) -> &mut KernelReport {
        &mut self.phases[self.current_phase]
    }

    fn mem_access(&mut self, addr: u64, write: bool) {
        let level = self.caches.access(addr);
        let raw = self.caches.latency(level, &self.cfg.latencies);
        // Stores retire through the store buffer; charge issue cost only.
        // Loads pay load-to-use latency, overlapped unless dependent.
        let stall = if write {
            0.0
        } else if self.dependent_loads {
            raw
        } else {
            raw * (1.0 - self.cfg.mlp_overlap)
        };
        let issue = self.cfg.mem_issue_cycles;

        let r = self.cur();
        r.instructions += 1;
        if write {
            r.stores += 1;
        } else {
            r.loads += 1;
        }
        match level {
            HitLevel::L2 => r.l1_misses += 1,
            HitLevel::L3 => {
                r.l1_misses += 1;
                r.l2_misses += 1;
            }
            HitLevel::Memory => {
                r.l1_misses += 1;
                r.l2_misses += 1;
                r.l3_misses += 1;
            }
            HitLevel::L1 => {}
        }
        r.cycles += issue + stall;
    }
}

impl EventSink for CoreModel {
    fn instr(&mut self, class: InstrClass, count: u64) {
        let per = match class {
            InstrClass::Alu => self.cfg.alu_cycles,
            InstrClass::Float => self.cfg.float_cycles,
            InstrClass::Load | InstrClass::Store => self.cfg.mem_issue_cycles,
            InstrClass::Branch => self.cfg.branch_cycles,
            InstrClass::AsaAccumulate => self.cfg.asa_accumulate_cycles,
            InstrClass::AsaGather => self.cfg.asa_gather_cycles,
        };
        let r = self.cur();
        r.instructions += count;
        r.cycles += per * count as f64;
    }

    fn branch(&mut self, site: u32, taken: bool) {
        let mispredicted = self.predictor.resolve(site, taken);
        let branch_cycles = self.cfg.branch_cycles;
        let penalty = self.cfg.mispredict_penalty;
        let r = self.cur();
        r.instructions += 1;
        r.branches += 1;
        r.cycles += branch_cycles;
        if mispredicted {
            r.mispredictions += 1;
            r.cycles += penalty;
        }
    }

    fn mem_read(&mut self, addr: u64) {
        self.mem_access(addr, false);
    }

    fn mem_write(&mut self, addr: u64) {
        self.mem_access(addr, true);
    }

    fn set_dependent(&mut self, dependent: bool) {
        self.dependent_loads = dependent;
    }

    fn set_phase(&mut self, p: usize) {
        debug_assert!(p < phase::COUNT);
        self.current_phase = p.min(phase::COUNT - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventSink;

    fn core() -> CoreModel {
        CoreModel::new(&MachineConfig::baseline(1))
    }

    #[test]
    fn alu_cost_accumulates() {
        let mut c = core();
        c.instr(InstrClass::Alu, 300);
        assert_eq!(c.report().instructions, 300);
        assert!((c.report().cycles - 300.0 * 0.33).abs() < 1e-9);
    }

    #[test]
    fn predictable_branches_cheap_random_expensive() {
        let mut steady = core();
        for _ in 0..10_000 {
            steady.branch(1, true);
        }
        let mut noisy = core();
        let mut x = 0xdeadbeefu64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            noisy.branch(1, x & 1 == 1);
        }
        assert!(noisy.report().mispredictions > 20 * steady.report().mispredictions.max(1));
        assert!(noisy.report().cycles > 2.0 * steady.report().cycles);
    }

    #[test]
    fn dependent_loads_cost_more() {
        // Two cores streaming the same cold addresses; one with pointer-chase
        // semantics.
        let mut indep = core();
        let mut dep = core();
        dep.set_dependent(true);
        for i in 0..1000u64 {
            let addr = i * 4096; // always miss to DRAM
            indep.mem_read(addr);
            dep.mem_read(addr);
        }
        assert!(dep.report().cycles > 2.0 * indep.report().cycles);
        assert_eq!(dep.report().l3_misses, indep.report().l3_misses);
    }

    #[test]
    fn hot_loads_hit_l1() {
        let mut c = core();
        for _ in 0..100 {
            c.mem_read(0x100);
        }
        assert_eq!(c.report().l1_misses, 1);
        assert_eq!(c.report().loads, 100);
    }

    #[test]
    fn take_report_resets_counters_keeps_state() {
        let mut c = core();
        c.mem_read(0x100);
        let r1 = c.take_report();
        assert_eq!(r1.loads, 1);
        assert_eq!(r1.l1_misses, 1);
        // Cache state persisted: the same line now hits.
        c.mem_read(0x100);
        assert_eq!(c.report().l1_misses, 0);
    }

    #[test]
    fn stores_do_not_stall() {
        let mut c = core();
        c.mem_write(0x10_0000); // cold line, but store-buffered
        let store_cycles = c.take_report().cycles;
        c.mem_read(0x20_0000); // cold load pays (overlapped) latency
        let load_cycles = c.take_report().cycles;
        assert!(load_cycles > store_cycles);
    }

    #[test]
    fn phases_attribute_independently() {
        let mut c = core();
        c.set_phase(phase::COMPUTE);
        c.instr(InstrClass::Alu, 100);
        c.set_phase(phase::HASH);
        c.instr(InstrClass::Alu, 400);
        c.set_phase(phase::OVERFLOW);
        c.instr(InstrClass::Alu, 50);

        assert_eq!(c.phase_report(phase::COMPUTE).instructions, 100);
        assert_eq!(c.phase_report(phase::HASH).instructions, 400);
        assert_eq!(c.phase_report(phase::OVERFLOW).instructions, 50);
        assert_eq!(c.report().instructions, 550);

        let phases = c.take_phase_reports();
        assert_eq!(phases[phase::HASH].instructions, 400);
        assert_eq!(c.report().instructions, 0);
    }
}
