//! Single-core timing model: turns micro-events into cycles.

use crate::branch::BranchPredictor;
use crate::cache::{CacheHierarchy, HitLevel};
use crate::config::MachineConfig;
use crate::events::{phase, EventSink, InstrClass};
use crate::report::KernelReport;
use crate::trace::{opcode, TraceBuf};

/// One simulated core: a branch predictor, a private cache hierarchy
/// (L1 + L2 + an L3 slice), and a latency accounting model.
///
/// The cycle model is additive-with-overlap: every instruction pays its
/// effective issue cost (sub-cycle values model superscalar issue), branch
/// mispredictions pay a pipeline-flush penalty, and loads pay the cache
/// hierarchy's load-to-use latency discounted by `mlp_overlap` — except for
/// *dependent* loads (pointer chasing, flagged by the instrumented hash
/// table), which cannot overlap and pay the full latency. This is the same
/// first-order decomposition ZSim's OoO model converges to for these
/// loop-dominated kernels.
///
/// Counters are kept per attribution [`phase`], so the harness can split a
/// kernel's cycles into compute / hash / overflow shares (Fig. 2b and the
/// overflow-cost claim in Section IV-C).
#[derive(Debug)]
pub struct CoreModel {
    predictor: BranchPredictor,
    caches: CacheHierarchy,
    cfg: MachineConfig,
    phases: [KernelReport; phase::COUNT],
    current_phase: usize,
    /// When true, subsequent loads are treated as serially dependent
    /// (pointer chases) and pay unoverlapped latency.
    dependent_loads: bool,
}

impl CoreModel {
    /// Builds a core for the given machine configuration.
    pub fn new(cfg: &MachineConfig) -> Self {
        let mut caches = CacheHierarchy::new(cfg.l1, cfg.l2, cfg.l3_slice(), cfg.line_bytes);
        caches.set_prefetch(cfg.prefetch_next_line);
        Self {
            predictor: BranchPredictor::new(
                cfg.predictor,
                cfg.predictor_table_bits,
                cfg.predictor_history_bits,
            ),
            caches,
            cfg: cfg.clone(),
            phases: Default::default(),
            current_phase: phase::COMPUTE,
            dependent_loads: false,
        }
    }

    /// Finishes the current kernel: returns the total report (all phases
    /// summed) and resets counters. Predictor and cache state persist, as
    /// they do across kernel invocations on real hardware.
    pub fn take_report(&mut self) -> KernelReport {
        let total = KernelReport::sum(self.phases.iter());
        self.phases = Default::default();
        total
    }

    /// Finishes the current kernel returning per-phase reports
    /// (indexed by the [`phase`] constants) and resets counters.
    pub fn take_phase_reports(&mut self) -> [KernelReport; phase::COUNT] {
        std::mem::take(&mut self.phases)
    }

    /// Read-only total of accumulated counters.
    pub fn report(&self) -> KernelReport {
        KernelReport::sum(self.phases.iter())
    }

    /// Read-only per-phase counters.
    pub fn phase_report(&self, p: usize) -> &KernelReport {
        &self.phases[p]
    }

    /// The machine configuration this core models.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    #[inline]
    fn cur(&mut self) -> &mut KernelReport {
        &mut self.phases[self.current_phase]
    }

    fn mem_access(&mut self, addr: u64, write: bool) {
        let level = self.caches.access(addr);
        let raw = self.caches.latency(level, &self.cfg.latencies);
        // Stores retire through the store buffer; charge issue cost only.
        // Loads pay load-to-use latency, overlapped unless dependent.
        let stall = if write {
            0.0
        } else if self.dependent_loads {
            raw
        } else {
            raw * (1.0 - self.cfg.mlp_overlap)
        };
        let issue = self.cfg.mem_issue_cycles;

        let r = self.cur();
        r.instructions += 1;
        if write {
            r.stores += 1;
        } else {
            r.loads += 1;
        }
        match level {
            HitLevel::L2 => r.l1_misses += 1,
            HitLevel::L3 => {
                r.l1_misses += 1;
                r.l2_misses += 1;
            }
            HitLevel::Memory => {
                r.l1_misses += 1;
                r.l2_misses += 1;
                r.l3_misses += 1;
            }
            HitLevel::L1 => {}
        }
        r.cycles += issue + stall;
    }

    /// Replays a recorded [`TraceBuf`] in one pass — the batched
    /// equivalent of feeding every event through the per-event
    /// [`EventSink`] methods in recording order.
    ///
    /// The reports this produces are **bit-identical** to the per-event
    /// path (same integer counters, same f64 cycle bits): every event
    /// performs the same arithmetic in the same order against the same
    /// predictor and cache state; phase and dependent-load markers are
    /// part of the stream, so attribution follows recording order even
    /// across buffer boundaries. What changes is the cost of getting
    /// there:
    ///
    /// - the integer counters are *not* read-modify-written per event;
    ///   the loop bumps flat per-(phase, opcode) tally tables with one
    ///   unconditional indexed add each, and the `KernelReport` fields
    ///   (instructions, loads, per-level misses, …) are derived from the
    ///   tallies once per buffer — sums of the same per-event `+= 1` /
    ///   `+= count` contributions, so the totals are exact;
    /// - per-event cycle charges come from hoisted cost tables built with
    ///   the per-event path's exact operand bits
    ///   ([`MachineConfig::class_cycles`], `issue + raw * mlp_keep`, …),
    ///   and stream markers charge `0.0 * arg` — an identity add on the
    ///   non-negative accumulator — so markers, loads, stores, and
    ///   predictor outcomes all take the *same* add sequence without
    ///   data-dependent branches;
    /// - memory events go through [`CacheHierarchy::access_mru`], whose
    ///   same-line fast path resolves the read-modify-write pairs and
    ///   sub-line scans that dominate hash-device streams in one compare.
    pub fn consume_batch(&mut self, buf: &TraceBuf) {
        let costs = self.cfg.class_cycles();
        let issue = self.cfg.mem_issue_cycles;
        let mlp_keep = 1.0 - self.cfg.mlp_overlap;
        let branch_cycles = self.cfg.branch_cycles;
        let penalty = self.cfg.mispredict_penalty;
        let lat = self.cfg.latencies;
        let lats = [lat.l1, lat.l2, lat.l3, lat.mem];
        // Memory-event cost per (dependent, is-store, hit level). Each
        // entry is built with the exact operations the per-event path
        // performs per access (`raw * mlp_keep`, then `issue + stall`;
        // stores add `issue + 0.0`, which is bitwise `issue`), so charging
        // table entries keeps cycle totals bit-identical while the replay
        // loop stays branch-free.
        let mut mem_cost = [[[0.0f64; 4]; 2]; 2];
        for (lv, &raw) in lats.iter().enumerate() {
            mem_cost[0][0][lv] = issue + raw * mlp_keep;
            mem_cost[1][0][lv] = issue + raw;
            mem_cost[0][1][lv] = issue;
            mem_cost[1][1][lv] = issue;
        }
        // Mispredict surcharge by predictor outcome: `x + 0.0` is bitwise
        // `x`, so the unconditional add matches the per-event path's
        // conditional one.
        let mp_cost = [0.0f64, penalty];
        // Cycle charge for the instruction/marker bucket, indexed by
        // opcode: class issue costs for `0..=6`, `0.0` for the markers
        // (whose `0.0 * arg` charge is an identity add).
        let mut other_cost = [0.0f64; 16];
        other_cost[..costs.len()].copy_from_slice(&costs);

        // Branch-free tallies: `tally[p][op]` accumulates the instruction
        // count for class opcodes and the event count for branch/load/
        // store opcodes (markers land in dead slots); `misslv[p][lv]`
        // counts memory events served per level. One indexed add per
        // event replaces the per-event path's read-modify-writes of up to
        // six `KernelReport` fields.
        let mut tally = [[0u64; 16]; phase::COUNT];
        let mut misslv = [[0u64; 4]; phase::COUNT];
        let mut mp = [0u64; phase::COUNT];
        let mut cyc = [0.0f64; phase::COUNT];
        for (p, r) in self.phases.iter().enumerate() {
            cyc[p] = r.cycles;
        }
        let mut cur = self.current_phase.min(phase::COUNT - 1);
        let mut dep = usize::from(self.dependent_loads);
        // The running phase's cycle accumulator lives in a register and
        // spills only on a phase switch, so the serial f64 add chain —
        // the replay loop's latency floor — avoids a store-forwarding
        // round-trip per event.
        let mut cyc_cur = cyc[cur];

        let ops = buf.ops();
        let args = &buf.args()[..ops.len()];
        for (&op, &arg) in ops.iter().zip(args) {
            let op = (op & 15) as usize;
            if op >> 1 == 4 {
                // READ (8) or WRITE (9); bit 0 selects the store costs.
                tally[cur][op] += 1;
                let lv = self.caches.access_mru(arg) as usize;
                misslv[cur][lv] += 1;
                cyc_cur += mem_cost[dep][op & 1][lv];
            } else if op == usize::from(opcode::BRANCH) {
                tally[cur][op] += 1;
                let m = self.predictor.resolve((arg >> 1) as u32, arg & 1 == 1);
                mp[cur] += u64::from(m);
                cyc_cur += branch_cycles;
                cyc_cur += mp_cost[usize::from(m)];
            } else {
                // Instruction classes and stream markers share this
                // bucket: the dependent-flag update is a branch-free
                // select, and the charge is `cost * count` for classes,
                // `0.0 * arg` — an identity add — for markers.
                tally[cur][op] = tally[cur][op].wrapping_add(arg);
                let is_dep = usize::from(op == usize::from(opcode::SET_DEPENDENT));
                dep = [dep, usize::from(arg != 0)][is_dep];
                if op == usize::from(opcode::SET_PHASE) {
                    cyc[cur] = cyc_cur;
                    cur = (arg as usize).min(phase::COUNT - 1);
                    cyc_cur = cyc[cur];
                }
                cyc_cur += other_cost[op] * arg as f64;
            }
        }
        cyc[cur] = cyc_cur;

        self.current_phase = cur;
        self.dependent_loads = dep != 0;
        for (p, r) in self.phases.iter_mut().enumerate() {
            let t = &tally[p];
            let class_instr: u64 = t[..=usize::from(opcode::INSTR_MAX)].iter().sum();
            r.instructions += class_instr + t[7] + t[8] + t[9];
            r.branches += t[7];
            r.mispredictions += mp[p];
            r.loads += t[8];
            r.stores += t[9];
            r.l1_misses += misslv[p][1] + misslv[p][2] + misslv[p][3];
            r.l2_misses += misslv[p][2] + misslv[p][3];
            r.l3_misses += misslv[p][3];
            r.cycles = cyc[p];
        }
    }
}

impl EventSink for CoreModel {
    fn instr(&mut self, class: InstrClass, count: u64) {
        let per = match class {
            InstrClass::Alu => self.cfg.alu_cycles,
            InstrClass::Float => self.cfg.float_cycles,
            InstrClass::Load | InstrClass::Store => self.cfg.mem_issue_cycles,
            InstrClass::Branch => self.cfg.branch_cycles,
            InstrClass::AsaAccumulate => self.cfg.asa_accumulate_cycles,
            InstrClass::AsaGather => self.cfg.asa_gather_cycles,
        };
        let r = self.cur();
        r.instructions += count;
        r.cycles += per * count as f64;
    }

    fn branch(&mut self, site: u32, taken: bool) {
        let mispredicted = self.predictor.resolve(site, taken);
        let branch_cycles = self.cfg.branch_cycles;
        let penalty = self.cfg.mispredict_penalty;
        let r = self.cur();
        r.instructions += 1;
        r.branches += 1;
        r.cycles += branch_cycles;
        if mispredicted {
            r.mispredictions += 1;
            r.cycles += penalty;
        }
    }

    fn mem_read(&mut self, addr: u64) {
        self.mem_access(addr, false);
    }

    fn mem_write(&mut self, addr: u64) {
        self.mem_access(addr, true);
    }

    fn set_dependent(&mut self, dependent: bool) {
        self.dependent_loads = dependent;
    }

    fn set_phase(&mut self, p: usize) {
        debug_assert!(p < phase::COUNT);
        self.current_phase = p.min(phase::COUNT - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventSink;

    fn core() -> CoreModel {
        CoreModel::new(&MachineConfig::baseline(1))
    }

    #[test]
    fn alu_cost_accumulates() {
        let mut c = core();
        c.instr(InstrClass::Alu, 300);
        assert_eq!(c.report().instructions, 300);
        assert!((c.report().cycles - 300.0 * 0.33).abs() < 1e-9);
    }

    #[test]
    fn predictable_branches_cheap_random_expensive() {
        let mut steady = core();
        for _ in 0..10_000 {
            steady.branch(1, true);
        }
        let mut noisy = core();
        let mut x = 0xdeadbeefu64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            noisy.branch(1, x & 1 == 1);
        }
        assert!(noisy.report().mispredictions > 20 * steady.report().mispredictions.max(1));
        assert!(noisy.report().cycles > 2.0 * steady.report().cycles);
    }

    #[test]
    fn dependent_loads_cost_more() {
        // Two cores streaming the same cold addresses; one with pointer-chase
        // semantics.
        let mut indep = core();
        let mut dep = core();
        dep.set_dependent(true);
        for i in 0..1000u64 {
            let addr = i * 4096; // always miss to DRAM
            indep.mem_read(addr);
            dep.mem_read(addr);
        }
        assert!(dep.report().cycles > 2.0 * indep.report().cycles);
        assert_eq!(dep.report().l3_misses, indep.report().l3_misses);
    }

    #[test]
    fn hot_loads_hit_l1() {
        let mut c = core();
        for _ in 0..100 {
            c.mem_read(0x100);
        }
        assert_eq!(c.report().l1_misses, 1);
        assert_eq!(c.report().loads, 100);
    }

    #[test]
    fn take_report_resets_counters_keeps_state() {
        let mut c = core();
        c.mem_read(0x100);
        let r1 = c.take_report();
        assert_eq!(r1.loads, 1);
        assert_eq!(r1.l1_misses, 1);
        // Cache state persisted: the same line now hits.
        c.mem_read(0x100);
        assert_eq!(c.report().l1_misses, 0);
    }

    #[test]
    fn stores_do_not_stall() {
        let mut c = core();
        c.mem_write(0x10_0000); // cold line, but store-buffered
        let store_cycles = c.take_report().cycles;
        c.mem_read(0x20_0000); // cold load pays (overlapped) latency
        let load_cycles = c.take_report().cycles;
        assert!(load_cycles > store_cycles);
    }

    #[test]
    fn phases_attribute_independently() {
        let mut c = core();
        c.set_phase(phase::COMPUTE);
        c.instr(InstrClass::Alu, 100);
        c.set_phase(phase::HASH);
        c.instr(InstrClass::Alu, 400);
        c.set_phase(phase::OVERFLOW);
        c.instr(InstrClass::Alu, 50);

        assert_eq!(c.phase_report(phase::COMPUTE).instructions, 100);
        assert_eq!(c.phase_report(phase::HASH).instructions, 400);
        assert_eq!(c.phase_report(phase::OVERFLOW).instructions, 50);
        assert_eq!(c.report().instructions, 550);

        let phases = c.take_phase_reports();
        assert_eq!(phases[phase::HASH].instructions, 400);
        assert_eq!(c.report().instructions, 0);
    }
}
