//! Aggregated simulation counters — the quantities the paper reports.

use serde::{Deserialize, Serialize};

/// Counters for one kernel run on one core (or merged across cores).
///
/// These are exactly the metrics in the paper's evaluation: total
/// instructions (Fig. 8a, 9), mispredicted branches (Fig. 8b, 10), CPI
/// (Fig. 8c, 11), and cycle-derived runtimes (Tables III–V).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelReport {
    /// Total retired instructions.
    pub instructions: u64,
    /// Conditional branches retired.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredictions: u64,
    /// Loads issued.
    pub loads: u64,
    /// Stores issued.
    pub stores: u64,
    /// L1D misses.
    pub l1_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// L3 misses (DRAM accesses).
    pub l3_misses: u64,
    /// Total cycles charged.
    pub cycles: f64,
}

impl KernelReport {
    /// Cycles per instruction; 0 when no instructions retired.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles / self.instructions as f64
        }
    }

    /// Wall-clock seconds at `freq_ghz`.
    pub fn seconds(&self, freq_ghz: f64) -> f64 {
        self.cycles / (freq_ghz * 1e9)
    }

    /// Branch misprediction rate in `[0,1]`.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.branches as f64
        }
    }

    /// Element-wise accumulation (summing two cores or two phases).
    pub fn merge(&mut self, other: &KernelReport) {
        self.instructions += other.instructions;
        self.branches += other.branches;
        self.mispredictions += other.mispredictions;
        self.loads += other.loads;
        self.stores += other.stores;
        self.l1_misses += other.l1_misses;
        self.l2_misses += other.l2_misses;
        self.l3_misses += other.l3_misses;
        self.cycles += other.cycles;
    }

    /// Sum of many reports.
    pub fn sum<'a, I: IntoIterator<Item = &'a KernelReport>>(reports: I) -> KernelReport {
        let mut total = KernelReport::default();
        for r in reports {
            total.merge(r);
        }
        total
    }

    /// Parallel combination: counters add, cycles take the maximum (bulk-
    /// synchronous cores finish together at the slowest core's time).
    pub fn parallel<'a, I: IntoIterator<Item = &'a KernelReport>>(reports: I) -> KernelReport {
        let mut total = KernelReport::default();
        let mut max_cycles = 0f64;
        for r in reports {
            let cycles = r.cycles;
            total.merge(r);
            max_cycles = max_cycles.max(cycles);
        }
        total.cycles = max_cycles;
        total
    }
}

/// A Baseline-vs-ASA comparison row, as printed by the harness.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Workload label (network name).
    pub label: String,
    /// Software-hash (Baseline) counters.
    pub baseline: KernelReport,
    /// ASA counters.
    pub asa: KernelReport,
}

impl ComparisonRow {
    /// Baseline/ASA cycle ratio — the paper's headline "speedup".
    pub fn speedup(&self) -> f64 {
        if self.asa.cycles == 0.0 {
            0.0
        } else {
            self.baseline.cycles / self.asa.cycles
        }
    }

    /// Fractional reduction in instruction count (Fig. 8a): positive when
    /// ASA executes fewer instructions.
    pub fn instruction_reduction(&self) -> f64 {
        reduction(
            self.baseline.instructions as f64,
            self.asa.instructions as f64,
        )
    }

    /// Fractional reduction in branch mispredictions (Fig. 8b).
    pub fn mispredict_reduction(&self) -> f64 {
        reduction(
            self.baseline.mispredictions as f64,
            self.asa.mispredictions as f64,
        )
    }

    /// Fractional reduction in CPI (Fig. 8c).
    pub fn cpi_reduction(&self) -> f64 {
        reduction(self.baseline.cpi(), self.asa.cpi())
    }
}

fn reduction(before: f64, after: f64) -> f64 {
    if before == 0.0 {
        0.0
    } else {
        (before - after) / before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(cycles: f64, instr: u64) -> KernelReport {
        KernelReport {
            instructions: instr,
            branches: instr / 5,
            mispredictions: instr / 50,
            loads: instr / 4,
            stores: instr / 10,
            l1_misses: instr / 20,
            l2_misses: instr / 40,
            l3_misses: instr / 80,
            cycles,
        }
    }

    #[test]
    fn cpi_and_seconds() {
        let r = sample(2000.0, 1000);
        assert!((r.cpi() - 2.0).abs() < 1e-12);
        assert!((r.seconds(2.0) - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn merge_adds() {
        let mut a = sample(100.0, 50);
        a.merge(&sample(50.0, 25));
        assert_eq!(a.instructions, 75);
        assert!((a.cycles - 150.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_takes_max_cycles() {
        let cores = [sample(100.0, 50), sample(300.0, 50), sample(200.0, 50)];
        let combined = KernelReport::parallel(cores.iter());
        assert_eq!(combined.instructions, 150);
        assert!((combined.cycles - 300.0).abs() < 1e-12);
    }

    #[test]
    fn comparison_metrics() {
        let row = ComparisonRow {
            label: "pokec".into(),
            baseline: sample(5000.0, 2000),
            asa: sample(1000.0, 1500),
        };
        assert!((row.speedup() - 5.0).abs() < 1e-12);
        assert!((row.instruction_reduction() - 0.25).abs() < 1e-12);
        assert!(row.cpi_reduction() > 0.0);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = KernelReport::default();
        assert_eq!(r.cpi(), 0.0);
        assert_eq!(r.mispredict_rate(), 0.0);
    }
}
