//! Set-associative cache hierarchy.
//!
//! The paper attributes part of the Baseline's CPI to "irregular memory
//! access patterns that are difficult for hardware prefetchers to predict
//! (e.g., to follow pointers connecting entries that hash to the same
//! bucket)". The hash-table model emits the synthetic addresses of bucket
//! heads and chain nodes; this module replays them through an
//! inclusive-enough three-level LRU hierarchy to charge realistic stall
//! cycles for pointer chasing.

use serde::{Deserialize, Serialize};

/// One set-associative, write-allocate, LRU cache level.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    line_shift: u32,
    /// `tags[set * ways + way]`, `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
    accesses: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Builds a cache of `capacity_bytes` with `ways` ways and
    /// `line_bytes`-byte lines.
    ///
    /// # Panics
    /// Panics unless the geometry divides evenly and `line_bytes` is a power
    /// of two (ZSim imposes the same power-of-two constraint, which is why
    /// the paper's Baseline L3 is 16MB instead of the native 20MB).
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(ways >= 1);
        let lines = capacity_bytes / line_bytes;
        assert!(
            lines >= ways && lines.is_multiple_of(ways),
            "capacity must hold a whole number of sets"
        );
        let sets = lines / ways;
        assert!(sets.is_power_of_two(), "set count must be 2^k");
        Self {
            sets,
            ways,
            line_shift: line_bytes.trailing_zeros(),
            tags: vec![u64::MAX; lines],
            stamps: vec![0; lines],
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Accesses `addr`; returns `true` on hit. Misses allocate the line,
    /// evicting the set's LRU way.
    pub fn access(&mut self, addr: u64) -> bool {
        self.access_slot(addr).0
    }

    /// Accesses `addr`; returns `(hit, slot)` where `slot` is the global
    /// `tags` index that now holds the line — the matching way on a hit,
    /// the refilled victim way on a miss.
    ///
    /// Tag match and LRU-victim selection are fused into a single pass
    /// over the set (the old two-pass `position` + `min_by_key` shape
    /// rescanned the stamps on every miss), with an MRU way-0 fast path:
    /// a hit in way 0 returns after one tag compare without reading any
    /// stamps. Ties on the victim stamp keep the old first-minimum
    /// (lowest-way) resolution, so hit/miss/eviction sequences are
    /// unchanged.
    #[inline]
    pub(crate) fn access_slot(&mut self, addr: u64) -> (bool, usize) {
        self.clock += 1;
        self.accesses += 1;
        let line = addr >> self.line_shift;
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.ways;
        // MRU way-0 fast path: skip the victim scan entirely.
        if self.tags[base] == line {
            self.stamps[base] = self.clock;
            return (true, base);
        }
        // Branch-free scan of the remaining ways: the tag match and the
        // LRU victim fold into conditional-move chains with a fixed trip
        // count, replacing a data-dependent early exit that mispredicts
        // once per non-MRU hit. Ties on the victim stamp keep the old
        // first-minimum (lowest-way) resolution, so hit/miss/eviction
        // sequences are unchanged.
        let mut hit_slot = usize::MAX;
        let mut victim = base;
        let mut victim_stamp = self.stamps[base];
        for slot in base + 1..base + self.ways {
            if self.tags[slot] == line {
                hit_slot = slot;
            }
            let stamp = self.stamps[slot];
            if stamp < victim_stamp {
                victim = slot;
                victim_stamp = stamp;
            }
        }
        if hit_slot != usize::MAX {
            self.stamps[hit_slot] = self.clock;
            return (true, hit_slot);
        }
        self.misses += 1;
        // Evict LRU (or fill an invalid way, which has stamp 0).
        self.tags[victim] = line;
        self.stamps[victim] = self.clock;
        (false, victim)
    }

    /// Re-touches the resident line at `slot` (a demand re-access of the
    /// line `access_slot` just returned): advances the clock, bumps the
    /// demand counter, and refreshes the LRU stamp — bit-identical to a
    /// full `access` of the same line, minus the tag scan.
    #[inline]
    pub(crate) fn touch(&mut self, slot: usize) {
        self.clock += 1;
        self.accesses += 1;
        self.stamps[slot] = self.clock;
    }

    /// Installs `addr`'s line without touching demand statistics
    /// (prefetch fill). Evicts the set's LRU way when absent. Uses the
    /// same fused single-pass scan as [`Self::access_slot`].
    pub fn fill(&mut self, addr: u64) {
        self.clock += 1;
        let line = addr >> self.line_shift;
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.ways;
        if self.tags[base] == line {
            self.stamps[base] = self.clock;
            return;
        }
        let mut victim = base;
        let mut victim_stamp = self.stamps[base];
        for slot in base + 1..base + self.ways {
            if self.tags[slot] == line {
                self.stamps[slot] = self.clock;
                return;
            }
            let stamp = self.stamps[slot];
            if stamp < victim_stamp {
                victim = slot;
                victim_stamp = stamp;
            }
        }
        self.tags[victim] = line;
        self.stamps[victim] = self.clock;
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate in `[0,1]`; 0 before any access.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * (1usize << self.line_shift)
    }
}

/// Latency (cycles) to resolve a load at each level.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CacheLatencies {
    /// L1 hit latency.
    pub l1: f64,
    /// L2 hit latency.
    pub l2: f64,
    /// L3 hit latency.
    pub l3: f64,
    /// Main-memory latency.
    pub mem: f64,
}

/// Where a memory access was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Served by the L1 data cache.
    L1,
    /// Served by the private L2.
    L2,
    /// Served by the (share of the) L3.
    L3,
    /// Served by DRAM.
    Memory,
}

/// A private L1+L2 backed by an L3 slice, as seen by one simulated core.
///
/// The real machine shares its L3; the model gives each core an equal slice
/// (capacity / cores), which matches ZSim's behaviour for the throughput
/// workloads here where every core streams a disjoint vertex range.
///
/// An optional next-line stream prefetcher can be enabled: every demand
/// miss also fills the following line. This is the mechanism the paper
/// says collision chains defeat ("irregular memory access patterns that
/// are difficult for hardware prefetchers to predict"); the ablation bench
/// quantifies exactly that by toggling it per device.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: SetAssocCache,
    l2: SetAssocCache,
    l3: SetAssocCache,
    prefetch_next_line: bool,
    prefetches_issued: u64,
    /// L1 line number of the most recent demand access (`u64::MAX` when
    /// unknown), kept for [`Self::access_mru`]'s same-line fast path.
    last_line: u64,
    /// Global L1 slot holding `last_line`; `usize::MAX` when invalid.
    last_slot: usize,
}

impl CacheHierarchy {
    /// Builds a hierarchy from per-level `(capacity, ways)` and a common
    /// line size, without prefetching.
    pub fn new(
        l1: (usize, usize),
        l2: (usize, usize),
        l3: (usize, usize),
        line_bytes: usize,
    ) -> Self {
        Self {
            l1: SetAssocCache::new(l1.0, l1.1, line_bytes),
            l2: SetAssocCache::new(l2.0, l2.1, line_bytes),
            l3: SetAssocCache::new(l3.0, l3.1, line_bytes),
            prefetch_next_line: false,
            prefetches_issued: 0,
            last_line: u64::MAX,
            last_slot: usize::MAX,
        }
    }

    /// Enables or disables the next-line prefetcher.
    pub fn set_prefetch(&mut self, enabled: bool) {
        self.prefetch_next_line = enabled;
    }

    /// Prefetches issued so far.
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetches_issued
    }

    /// Accesses `addr`, filling lines downward on miss; returns the level
    /// that served it.
    pub fn access(&mut self, addr: u64) -> HitLevel {
        let level = self.demand_access(addr);
        if self.prefetch_next_line && level != HitLevel::L1 {
            // Fill the next line quietly: no demand counters are touched.
            let line_bytes = 1u64 << self.l1.line_shift;
            self.prefetches_issued += 1;
            let next = addr.wrapping_add(line_bytes);
            self.l1.fill(next);
            self.l2.fill(next);
            if self.l1.ways == 1 {
                // A single-way fill can evict the line the MRU memo points
                // at (with >= 2 ways the just-stamped line is never the
                // LRU victim, so the memo stays valid).
                self.last_slot = usize::MAX;
            }
        }
        level
    }

    /// Demand access with a same-line fast path: when `addr` falls on the
    /// L1 line touched by the previous demand access, that line is still
    /// resident in the remembered way (nothing accessed the set since, and
    /// fills never evict the most-recently-stamped way of a multi-way
    /// set), so the full tag walk is skipped and only the clock, demand
    /// counter, and LRU stamp advance — bit-identical state and result to
    /// [`Self::access`].
    ///
    /// This is the batch replay kernel's entry point: read-modify-write
    /// pairs and sequential sub-line scans, which dominate the hash-device
    /// event streams, resolve in one compare.
    #[inline]
    pub fn access_mru(&mut self, addr: u64) -> HitLevel {
        if addr >> self.l1.line_shift == self.last_line && self.last_slot != usize::MAX {
            self.l1.touch(self.last_slot);
            return HitLevel::L1;
        }
        self.access(addr)
    }

    fn demand_access(&mut self, addr: u64) -> HitLevel {
        let (l1_hit, slot) = self.l1.access_slot(addr);
        // Either way the line is now resident at `slot` with the newest
        // stamp; remember it for `access_mru`.
        self.last_line = addr >> self.l1.line_shift;
        self.last_slot = slot;
        if l1_hit {
            HitLevel::L1
        } else if self.l2.access(addr) {
            HitLevel::L2
        } else if self.l3.access(addr) {
            HitLevel::L3
        } else {
            HitLevel::Memory
        }
    }

    /// Load-to-use latency for a hit at `level`.
    pub fn latency(&self, level: HitLevel, lat: &CacheLatencies) -> f64 {
        match level {
            HitLevel::L1 => lat.l1,
            HitLevel::L2 => lat.l2,
            HitLevel::L3 => lat.l3,
            HitLevel::Memory => lat.mem,
        }
    }

    /// Per-level statistics `(accesses, misses)` for L1, L2, L3.
    pub fn stats(&self) -> [(u64, u64); 3] {
        [
            (self.l1.accesses(), self.l1.misses()),
            (self.l2.accesses(), self.l2.misses()),
            (self.l3.accesses(), self.l3.misses()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = SetAssocCache::new(1024, 2, 64);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1010)); // same line
        assert_eq!(c.misses(), 1);
        assert_eq!(c.accesses(), 3);
    }

    #[test]
    fn lru_eviction_order() {
        // 2-way, 2 sets of 64B lines => capacity 256B.
        let mut c = SetAssocCache::new(256, 2, 64);
        // Three lines mapping to set 0: line numbers 0, 2, 4 (even lines).
        assert!(!c.access(0));
        assert!(!c.access(2 * 64));
        assert!(c.access(0)); // touch line 0: now line 2 is LRU
        assert!(!c.access(4 * 64)); // evicts 2
        assert!(c.access(0)); // still resident
        assert!(!c.access(2 * 64)); // was evicted
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = SetAssocCache::new(4096, 4, 64); // 64 lines
        for round in 0..4 {
            for i in 0..128u64 {
                let hit = c.access(i * 64);
                if round == 0 {
                    assert!(!hit);
                }
            }
        }
        // Sequential sweep over 2x capacity with LRU: every access misses.
        assert_eq!(c.miss_rate(), 1.0);
    }

    #[test]
    fn small_working_set_all_hits_after_warmup() {
        let mut c = SetAssocCache::new(4096, 4, 64);
        for _ in 0..10 {
            for i in 0..32u64 {
                c.access(i * 64);
            }
        }
        assert!(c.miss_rate() < 0.15);
    }

    #[test]
    fn hierarchy_fills_downward() {
        let mut h = CacheHierarchy::new((1024, 2), (4096, 4), (16384, 8), 64);
        assert_eq!(h.access(0x8000), HitLevel::Memory);
        assert_eq!(h.access(0x8000), HitLevel::L1);
        // Push L1 out with set-conflicting lines (stride 512B maps to L1 set 0
        // every time but alternates L2 sets, so L2 keeps the original line).
        for i in 1..5u64 {
            h.access(0x8000 + i * 512);
        }
        let lvl = h.access(0x8000);
        assert!(lvl == HitLevel::L2 || lvl == HitLevel::L3, "got {lvl:?}");
    }

    #[test]
    fn prefetcher_helps_streams_not_chases() {
        let mut seq = CacheHierarchy::new((1024, 2), (4096, 4), (16384, 8), 64);
        seq.set_prefetch(true);
        let mut chase = CacheHierarchy::new((1024, 2), (4096, 4), (16384, 8), 64);
        chase.set_prefetch(true);

        // Sequential stream: after each miss the prefetcher fills line+1,
        // so roughly every other line hits.
        let mut seq_misses = 0;
        for i in 0..256u64 {
            if seq.access(0x10_0000 + i * 64) != HitLevel::L1 {
                seq_misses += 1;
            }
        }
        // Pointer chase: strided pseudo-random lines never match line+1.
        let mut chase_misses = 0;
        let mut addr = 0x20_0000u64;
        for _ in 0..256 {
            if chase.access(addr) != HitLevel::L1 {
                chase_misses += 1;
            }
            addr = addr.wrapping_mul(6364136223846793005).wrapping_add(64) | 0x100_0000;
        }
        assert!(
            seq_misses * 2 <= chase_misses,
            "prefetcher should halve stream misses: seq {seq_misses}, chase {chase_misses}"
        );
        assert!(seq.prefetches_issued() > 0);
    }

    #[test]
    fn fill_does_not_count_as_demand() {
        let mut c = SetAssocCache::new(1024, 2, 64);
        c.fill(0x40);
        assert_eq!(c.accesses(), 0);
        assert_eq!(c.misses(), 0);
        assert!(c.access(0x40), "filled line must hit");
    }

    #[test]
    fn access_slot_reports_resident_way() {
        let mut c = SetAssocCache::new(1024, 2, 64);
        let (hit, slot) = c.access_slot(0x1000);
        assert!(!hit);
        // A second access to the same line must hit the very slot the
        // miss filled.
        assert_eq!(c.access_slot(0x1000), (true, slot));
    }

    #[test]
    fn touch_matches_full_access_on_resident_line() {
        let mut a = SetAssocCache::new(1024, 2, 64);
        let mut b = SetAssocCache::new(1024, 2, 64);
        let (_, slot) = a.access_slot(0x40);
        b.access(0x40);
        a.touch(slot);
        b.access(0x40);
        assert_eq!(a.accesses(), b.accesses());
        assert_eq!(a.misses(), b.misses());
        assert_eq!(a.tags, b.tags);
        assert_eq!(a.stamps, b.stamps);
        assert_eq!(a.clock, b.clock);
    }

    #[test]
    fn access_mru_matches_access_bitwise() {
        for prefetch in [false, true] {
            let mut plain = CacheHierarchy::new((1024, 2), (4096, 4), (16384, 8), 64);
            let mut mru = plain.clone();
            plain.set_prefetch(prefetch);
            mru.set_prefetch(prefetch);
            // Pseudo-random stream with frequent same-line repeats (the
            // read-modify-write pattern the fast path exists for).
            let mut x = 0x1234_5678_9abc_def0u64;
            let mut addr = 0u64;
            for i in 0..20_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if i % 3 != 0 {
                    addr = x % (1 << 18);
                }
                assert_eq!(plain.access(addr), mru.access_mru(addr), "event {i}");
            }
            assert_eq!(plain.stats(), mru.stats());
            assert_eq!(plain.prefetches_issued(), mru.prefetches_issued());
            assert_eq!(plain.l1.tags, mru.l1.tags);
            assert_eq!(plain.l1.stamps, mru.l1.stamps);
            assert_eq!(plain.l2.tags, mru.l2.tags);
            assert_eq!(plain.l3.tags, mru.l3.tags);
        }
    }

    #[test]
    fn access_mru_safe_with_single_way_prefetch() {
        // 1-way L1 with prefetch on: fills may evict the memoized line, so
        // the memo must be dropped rather than trusted.
        let mut plain = CacheHierarchy::new((256, 1), (4096, 4), (16384, 8), 64);
        let mut mru = plain.clone();
        plain.set_prefetch(true);
        mru.set_prefetch(true);
        let mut x = 0x0dd_ba11u64;
        let mut addr = 0u64;
        for i in 0..5_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if i % 2 == 0 {
                addr = x % (1 << 14);
            }
            assert_eq!(plain.access(addr), mru.access_mru(addr), "event {i}");
        }
        assert_eq!(plain.stats(), mru.stats());
    }

    #[test]
    fn capacity_reported() {
        let c = SetAssocCache::new(32 * 1024, 8, 64);
        assert_eq!(c.capacity_bytes(), 32 * 1024);
    }

    #[test]
    #[should_panic(expected = "set count must be 2^k")]
    fn geometry_validated() {
        SetAssocCache::new(3 * 1024, 2, 64);
    }
}
