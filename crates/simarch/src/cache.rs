//! Set-associative cache hierarchy.
//!
//! The paper attributes part of the Baseline's CPI to "irregular memory
//! access patterns that are difficult for hardware prefetchers to predict
//! (e.g., to follow pointers connecting entries that hash to the same
//! bucket)". The hash-table model emits the synthetic addresses of bucket
//! heads and chain nodes; this module replays them through an
//! inclusive-enough three-level LRU hierarchy to charge realistic stall
//! cycles for pointer chasing.

use serde::{Deserialize, Serialize};

/// One set-associative, write-allocate, LRU cache level.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    line_shift: u32,
    /// `tags[set * ways + way]`, `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
    accesses: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Builds a cache of `capacity_bytes` with `ways` ways and
    /// `line_bytes`-byte lines.
    ///
    /// # Panics
    /// Panics unless the geometry divides evenly and `line_bytes` is a power
    /// of two (ZSim imposes the same power-of-two constraint, which is why
    /// the paper's Baseline L3 is 16MB instead of the native 20MB).
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(ways >= 1);
        let lines = capacity_bytes / line_bytes;
        assert!(
            lines >= ways && lines.is_multiple_of(ways),
            "capacity must hold a whole number of sets"
        );
        let sets = lines / ways;
        assert!(sets.is_power_of_two(), "set count must be 2^k");
        Self {
            sets,
            ways,
            line_shift: line_bytes.trailing_zeros(),
            tags: vec![u64::MAX; lines],
            stamps: vec![0; lines],
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Accesses `addr`; returns `true` on hit. Misses allocate the line,
    /// evicting the set's LRU way.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        self.accesses += 1;
        let line = addr >> self.line_shift;
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.ways;
        let slots = &mut self.tags[base..base + self.ways];

        if let Some(way) = slots.iter().position(|&t| t == line) {
            self.stamps[base + way] = self.clock;
            return true;
        }
        self.misses += 1;
        // Evict LRU (or fill an invalid way, which has stamp 0).
        let victim = (0..self.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("ways >= 1");
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Installs `addr`'s line without touching demand statistics
    /// (prefetch fill). Evicts the set's LRU way when absent.
    pub fn fill(&mut self, addr: u64) {
        self.clock += 1;
        let line = addr >> self.line_shift;
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.ways;
        if let Some(way) = self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == line)
        {
            self.stamps[base + way] = self.clock;
            return;
        }
        let victim = (0..self.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("ways >= 1");
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate in `[0,1]`; 0 before any access.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * (1usize << self.line_shift)
    }
}

/// Latency (cycles) to resolve a load at each level.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CacheLatencies {
    /// L1 hit latency.
    pub l1: f64,
    /// L2 hit latency.
    pub l2: f64,
    /// L3 hit latency.
    pub l3: f64,
    /// Main-memory latency.
    pub mem: f64,
}

/// Where a memory access was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Served by the L1 data cache.
    L1,
    /// Served by the private L2.
    L2,
    /// Served by the (share of the) L3.
    L3,
    /// Served by DRAM.
    Memory,
}

/// A private L1+L2 backed by an L3 slice, as seen by one simulated core.
///
/// The real machine shares its L3; the model gives each core an equal slice
/// (capacity / cores), which matches ZSim's behaviour for the throughput
/// workloads here where every core streams a disjoint vertex range.
///
/// An optional next-line stream prefetcher can be enabled: every demand
/// miss also fills the following line. This is the mechanism the paper
/// says collision chains defeat ("irregular memory access patterns that
/// are difficult for hardware prefetchers to predict"); the ablation bench
/// quantifies exactly that by toggling it per device.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: SetAssocCache,
    l2: SetAssocCache,
    l3: SetAssocCache,
    prefetch_next_line: bool,
    prefetches_issued: u64,
}

impl CacheHierarchy {
    /// Builds a hierarchy from per-level `(capacity, ways)` and a common
    /// line size, without prefetching.
    pub fn new(
        l1: (usize, usize),
        l2: (usize, usize),
        l3: (usize, usize),
        line_bytes: usize,
    ) -> Self {
        Self {
            l1: SetAssocCache::new(l1.0, l1.1, line_bytes),
            l2: SetAssocCache::new(l2.0, l2.1, line_bytes),
            l3: SetAssocCache::new(l3.0, l3.1, line_bytes),
            prefetch_next_line: false,
            prefetches_issued: 0,
        }
    }

    /// Enables or disables the next-line prefetcher.
    pub fn set_prefetch(&mut self, enabled: bool) {
        self.prefetch_next_line = enabled;
    }

    /// Prefetches issued so far.
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetches_issued
    }

    /// Accesses `addr`, filling lines downward on miss; returns the level
    /// that served it.
    pub fn access(&mut self, addr: u64) -> HitLevel {
        let level = self.demand_access(addr);
        if self.prefetch_next_line && level != HitLevel::L1 {
            // Fill the next line quietly: no demand counters are touched.
            let line_bytes = 1u64 << self.l1.line_shift;
            self.prefetches_issued += 1;
            let next = addr.wrapping_add(line_bytes);
            self.l1.fill(next);
            self.l2.fill(next);
        }
        level
    }

    fn demand_access(&mut self, addr: u64) -> HitLevel {
        if self.l1.access(addr) {
            HitLevel::L1
        } else if self.l2.access(addr) {
            HitLevel::L2
        } else if self.l3.access(addr) {
            HitLevel::L3
        } else {
            HitLevel::Memory
        }
    }

    /// Load-to-use latency for a hit at `level`.
    pub fn latency(&self, level: HitLevel, lat: &CacheLatencies) -> f64 {
        match level {
            HitLevel::L1 => lat.l1,
            HitLevel::L2 => lat.l2,
            HitLevel::L3 => lat.l3,
            HitLevel::Memory => lat.mem,
        }
    }

    /// Per-level statistics `(accesses, misses)` for L1, L2, L3.
    pub fn stats(&self) -> [(u64, u64); 3] {
        [
            (self.l1.accesses(), self.l1.misses()),
            (self.l2.accesses(), self.l2.misses()),
            (self.l3.accesses(), self.l3.misses()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = SetAssocCache::new(1024, 2, 64);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1010)); // same line
        assert_eq!(c.misses(), 1);
        assert_eq!(c.accesses(), 3);
    }

    #[test]
    fn lru_eviction_order() {
        // 2-way, 2 sets of 64B lines => capacity 256B.
        let mut c = SetAssocCache::new(256, 2, 64);
        // Three lines mapping to set 0: line numbers 0, 2, 4 (even lines).
        assert!(!c.access(0));
        assert!(!c.access(2 * 64));
        assert!(c.access(0)); // touch line 0: now line 2 is LRU
        assert!(!c.access(4 * 64)); // evicts 2
        assert!(c.access(0)); // still resident
        assert!(!c.access(2 * 64)); // was evicted
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = SetAssocCache::new(4096, 4, 64); // 64 lines
        for round in 0..4 {
            for i in 0..128u64 {
                let hit = c.access(i * 64);
                if round == 0 {
                    assert!(!hit);
                }
            }
        }
        // Sequential sweep over 2x capacity with LRU: every access misses.
        assert_eq!(c.miss_rate(), 1.0);
    }

    #[test]
    fn small_working_set_all_hits_after_warmup() {
        let mut c = SetAssocCache::new(4096, 4, 64);
        for _ in 0..10 {
            for i in 0..32u64 {
                c.access(i * 64);
            }
        }
        assert!(c.miss_rate() < 0.15);
    }

    #[test]
    fn hierarchy_fills_downward() {
        let mut h = CacheHierarchy::new((1024, 2), (4096, 4), (16384, 8), 64);
        assert_eq!(h.access(0x8000), HitLevel::Memory);
        assert_eq!(h.access(0x8000), HitLevel::L1);
        // Push L1 out with set-conflicting lines (stride 512B maps to L1 set 0
        // every time but alternates L2 sets, so L2 keeps the original line).
        for i in 1..5u64 {
            h.access(0x8000 + i * 512);
        }
        let lvl = h.access(0x8000);
        assert!(lvl == HitLevel::L2 || lvl == HitLevel::L3, "got {lvl:?}");
    }

    #[test]
    fn prefetcher_helps_streams_not_chases() {
        let mut seq = CacheHierarchy::new((1024, 2), (4096, 4), (16384, 8), 64);
        seq.set_prefetch(true);
        let mut chase = CacheHierarchy::new((1024, 2), (4096, 4), (16384, 8), 64);
        chase.set_prefetch(true);

        // Sequential stream: after each miss the prefetcher fills line+1,
        // so roughly every other line hits.
        let mut seq_misses = 0;
        for i in 0..256u64 {
            if seq.access(0x10_0000 + i * 64) != HitLevel::L1 {
                seq_misses += 1;
            }
        }
        // Pointer chase: strided pseudo-random lines never match line+1.
        let mut chase_misses = 0;
        let mut addr = 0x20_0000u64;
        for _ in 0..256 {
            if chase.access(addr) != HitLevel::L1 {
                chase_misses += 1;
            }
            addr = addr.wrapping_mul(6364136223846793005).wrapping_add(64) | 0x100_0000;
        }
        assert!(
            seq_misses * 2 <= chase_misses,
            "prefetcher should halve stream misses: seq {seq_misses}, chase {chase_misses}"
        );
        assert!(seq.prefetches_issued() > 0);
    }

    #[test]
    fn fill_does_not_count_as_demand() {
        let mut c = SetAssocCache::new(1024, 2, 64);
        c.fill(0x40);
        assert_eq!(c.accesses(), 0);
        assert_eq!(c.misses(), 0);
        assert!(c.access(0x40), "filled line must hit");
    }

    #[test]
    fn capacity_reported() {
        let c = SetAssocCache::new(32 * 1024, 8, 64);
        assert_eq!(c.capacity_bytes(), 32 * 1024);
    }

    #[test]
    #[should_panic(expected = "set count must be 2^k")]
    fn geometry_validated() {
        SetAssocCache::new(3 * 1024, 2, 64);
    }
}
