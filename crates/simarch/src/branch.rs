//! Branch-direction predictors.
//!
//! The Baseline's dominant stall source in the paper is branch misprediction
//! inside hash-collision handling ("up to 59% decrease in the number of
//! mispredicted branches", Fig. 8b). To reproduce that effect the model runs
//! every instrumented branch through a real predictor state machine rather
//! than assuming a fixed misprediction rate: data-dependent key-comparison
//! branches genuinely thrash a gshare table, while the ASA path simply
//! stops executing them.

use serde::{Deserialize, Serialize};

/// Which predictor organization to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictorKind {
    /// Per-site 2-bit saturating counters (bimodal), no history.
    Bimodal,
    /// Global-history XOR site index into 2-bit counters (gshare) —
    /// approximates the Ivy Bridge predictor the paper simulates against.
    Gshare,
}

/// A 2-bit saturating counter branch predictor with optional global history.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    kind: PredictorKind,
    /// 2-bit counters, one per table slot; 0..=1 predict not-taken,
    /// 2..=3 predict taken.
    table: Vec<u8>,
    mask: u32,
    history: u32,
    history_mask: u32,
    predictions: u64,
    mispredictions: u64,
}

impl BranchPredictor {
    /// Creates a predictor with `2^table_bits` counters and
    /// `history_bits` of global history (ignored for bimodal).
    pub fn new(kind: PredictorKind, table_bits: u32, history_bits: u32) -> Self {
        assert!((4..=24).contains(&table_bits), "table_bits out of range");
        assert!(history_bits <= table_bits, "history must fit in the index");
        let size = 1usize << table_bits;
        Self {
            kind,
            table: vec![1u8; size], // weakly not-taken
            mask: (size - 1) as u32,
            history: 0,
            history_mask: (1u32 << history_bits).wrapping_sub(1),
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Default configuration: 12-bit gshare with 8 bits of history.
    pub fn default_gshare() -> Self {
        Self::new(PredictorKind::Gshare, 12, 8)
    }

    #[inline]
    fn index(&self, site: u32) -> usize {
        let idx = match self.kind {
            PredictorKind::Bimodal => site,
            PredictorKind::Gshare => site ^ (self.history & self.history_mask),
        };
        // Scramble the site so clustered ids spread over the table.
        ((idx.wrapping_mul(0x9E37_79B9)) & self.mask) as usize
    }

    /// Records a resolved branch; returns `true` if it was mispredicted.
    #[inline]
    pub fn resolve(&mut self, site: u32, taken: bool) -> bool {
        let idx = self.index(site);
        let counter = &mut self.table[idx];
        let c = *counter;
        let predicted_taken = c >= 2;
        let mispredicted = predicted_taken != taken;

        // Saturating 2-bit update, branchless: the outcome-dependent
        // select compiles to a conditional move, so noisy data-dependent
        // branches (the streams this predictor exists to model) don't
        // also thrash the *host's* predictor.
        let up = c + u8::from(c < 3);
        let down = c - u8::from(c > 0);
        *counter = if taken { up } else { down };
        if self.kind == PredictorKind::Gshare {
            self.history = ((self.history << 1) | taken as u32) & self.history_mask;
        }

        self.predictions += 1;
        self.mispredictions += mispredicted as u64;
        mispredicted
    }

    /// Branches resolved so far.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Mispredicted branches so far.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate in `[0, 1]`; 0 when no branches resolved.
    pub fn miss_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken() {
        let mut p = BranchPredictor::new(PredictorKind::Bimodal, 8, 0);
        for _ in 0..100 {
            p.resolve(42, true);
        }
        // After warm-up the counter saturates: only the first 1-2 miss.
        assert!(p.mispredictions() <= 2, "missed {}", p.mispredictions());
        assert_eq!(p.predictions(), 100);
    }

    #[test]
    fn random_pattern_misses_heavily() {
        let mut p = BranchPredictor::default_gshare();
        // Deterministic pseudo-random outcomes: xorshift parity.
        let mut x = 0x12345678u64;
        let mut outcomes = Vec::new();
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            outcomes.push(x & 1 == 1);
        }
        for &t in &outcomes {
            p.resolve(7, t);
        }
        // Unpredictable data-dependent branches should miss ~40-60%.
        assert!(
            p.miss_rate() > 0.3,
            "expected heavy misses on random data, got {}",
            p.miss_rate()
        );
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        // T,N,T,N... is hard for bimodal (counter oscillates) but easy for
        // gshare once the pattern enters history.
        let mut bimodal = BranchPredictor::new(PredictorKind::Bimodal, 10, 0);
        let mut gshare = BranchPredictor::new(PredictorKind::Gshare, 10, 4);
        for i in 0..2_000 {
            let taken = i % 2 == 0;
            bimodal.resolve(3, taken);
            gshare.resolve(3, taken);
        }
        assert!(
            gshare.miss_rate() < bimodal.miss_rate(),
            "gshare {} should beat bimodal {}",
            gshare.miss_rate(),
            bimodal.miss_rate()
        );
        assert!(gshare.miss_rate() < 0.05);
    }

    #[test]
    fn distinct_sites_do_not_interfere_bimodal() {
        let mut p = BranchPredictor::new(PredictorKind::Bimodal, 12, 0);
        for _ in 0..50 {
            p.resolve(1, true);
            p.resolve(2, false);
        }
        assert!(p.miss_rate() < 0.05);
    }

    #[test]
    #[should_panic(expected = "history must fit")]
    fn config_validated() {
        BranchPredictor::new(PredictorKind::Gshare, 8, 9);
    }
}
