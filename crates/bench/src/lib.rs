//! Experiment harness shared by the per-table/figure binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md's per-experiment index). This library
//! holds what they share: workload construction (the Table I stand-ins at
//! a configurable scale), simulation wrappers, and plain-text table
//! rendering so the output reads like the paper's tables.
//!
//! Scale: set `ASA_SCALE_DIV` (default 64) to control the down-scale
//! denominator of the synthetic networks; `ASA_SCALE_DIV=32` doubles
//! workload sizes, etc. All generation is seeded and deterministic.

pub mod regress;

use asa_graph::generators::{NetworkSpec, PaperNetwork};
use asa_graph::{CsrGraph, Partition};
use asa_infomap::instrumented::{simulate_infomap, Device, SimulatedRun};
use asa_infomap::InfomapConfig;
use asa_obs::{Obs, ObsConfig};
use asa_simarch::MachineConfig;

/// Compiler version captured by `build.rs` at compile time.
pub const RUSTC_VERSION: &str = env!("ASA_RUSTC_VERSION");

/// Reads the workload scale divisor from `ASA_SCALE_DIV` (default 64).
pub fn scale_div() -> usize {
    std::env::var("ASA_SCALE_DIV")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&d| d >= 1)
        .unwrap_or(64)
}

/// Generates the stand-in for one paper network at the harness scale,
/// caching the result under `target/asa-workloads/` so subsequent
/// experiment binaries start instantly. Delete that directory (or set
/// `ASA_NO_CACHE=1`) to force regeneration.
pub fn load_network(network: PaperNetwork) -> (CsrGraph, Partition) {
    let spec = NetworkSpec::new(network, scale_div());
    if std::env::var_os("ASA_NO_CACHE").is_some() {
        return spec.generate();
    }
    let dir = std::path::Path::new("target").join("asa-workloads");
    let stem = format!("{}-div{}-seed{}", network.name(), spec.scale_div, spec.seed);
    let graph_path = dir.join(format!("{stem}.graph"));
    let part_path = dir.join(format!("{stem}.part"));

    if let (Ok(gf), Ok(pf)) = (
        std::fs::File::open(&graph_path),
        std::fs::File::open(&part_path),
    ) {
        if let (Ok(graph), Ok(partition)) = (
            asa_graph::binio::read_graph(std::io::BufReader::new(gf)),
            asa_graph::binio::read_partition(std::io::BufReader::new(pf)),
        ) {
            return (graph, partition);
        }
        // Fall through and regenerate on any decode failure.
    }
    let (graph, partition) = spec.generate();
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::File::create(&graph_path)
            .and_then(|f| asa_graph::binio::write_graph(&graph, std::io::BufWriter::new(f)));
        let _ = std::fs::File::create(&part_path).and_then(|f| {
            asa_graph::binio::write_partition(&partition, std::io::BufWriter::new(f))
        });
    }
    (graph, partition)
}

/// Infomap configuration used across experiments (paper defaults).
pub fn infomap_config() -> InfomapConfig {
    InfomapConfig::default()
}

/// FNV-1a 64-bit hash (offline stand-in for a real digest — stable,
/// dependency-free, plenty for "did the config change?" provenance).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run-provenance metadata embedded in every `BENCH_*.json`: a hash of
/// the effective configuration (Infomap parameters + workload scale), the
/// compiler that built the binary, the rayon thread count, the dataset
/// name, and a wall-clock stamp. The schema-check test in
/// `tests/bench_json_schema.rs` enforces this shape on the committed
/// files.
pub fn run_metadata(dataset: &str, icfg: &InfomapConfig) -> serde_json::Value {
    let cfg_repr = format!("{icfg:?}|scale_div={}", scale_div());
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    // Resource accounting (ROADMAP item 2): every bench JSON certifies
    // its memory high-water mark and CPU split. Zeros off-Linux.
    let rs = asa_obs::resource::sample().unwrap_or_default();
    serde_json::json!({
        "config_hash": format!("{:016x}", fnv1a64(cfg_repr.as_bytes())),
        "rustc_version": RUSTC_VERSION,
        "threads": rayon::current_num_threads(),
        "dataset": dataset,
        "scale_div": scale_div(),
        "unix_time": unix_time,
        "peak_rss_bytes": rs.peak_rss_bytes,
        "cpu_user_s": rs.cpu_user_s,
        "cpu_sys_s": rs.cpu_sys_s,
    })
}

/// Telemetry switches shared by the experiment binaries.
///
/// Parsed from the command line (`--obs-out <path>`, `--trace-out <path>`,
/// `--progress`) with environment fallbacks (`ASA_OBS_OUT`,
/// `ASA_TRACE_OUT`, `ASA_PROGRESS=1`) so the `all` driver can forward them
/// to child experiment processes.
#[derive(Debug, Clone, Default)]
pub struct ObsArgs {
    /// JSONL event-trace destination (`--obs-out` / `ASA_OBS_OUT`).
    pub obs_out: Option<std::path::PathBuf>,
    /// Per-record heartbeat lines on stderr (`--progress` /
    /// `ASA_PROGRESS=1`).
    pub progress: bool,
    /// Chrome trace-event destination (`--trace-out` / `ASA_TRACE_OUT`).
    /// Attaches a flight recorder to the handle; export the snapshot at
    /// the end of the run with [`ObsArgs::export_trace`], then load the
    /// file in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
    pub trace_out: Option<std::path::PathBuf>,
    /// Prometheus-exposition destination (`--metrics-out` /
    /// `ASA_METRICS_OUT`). Attaches the continuous-telemetry collector;
    /// write the final scrape with [`ObsArgs::export_metrics`] at the end
    /// of the run.
    pub metrics_out: Option<std::path::PathBuf>,
    /// Live scrape endpoint bind address (`--metrics-addr` /
    /// `ASA_METRICS_ADDR`, e.g. `127.0.0.1:9184`). Also attaches the
    /// collector; the endpoint serves for the life of the process, so a
    /// `curl` mid-run sees current values — including `/flame.svg` and
    /// `/profile?seconds=N`, since the address also attaches the sampling
    /// profiler.
    pub metrics_addr: Option<String>,
    /// Folded-profile destination (`--prof-out` / `ASA_PROF_OUT`).
    /// Attaches the span-stack sampling profiler (interval
    /// `ASA_PROF_INTERVAL_MS`, default 10 ms); write the collapsed-format
    /// profile plus a sibling `.svg` flamegraph at the end of the run
    /// with [`ObsArgs::export_profile`].
    pub prof_out: Option<std::path::PathBuf>,
}

/// Per-thread flight-recorder ring bound used by `--trace-out`
/// (`ASA_TRACE_CAP` overrides; default 65536 events per thread).
pub fn trace_capacity() -> usize {
    std::env::var("ASA_TRACE_CAP")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&c| c > 0)
        .unwrap_or(1 << 16)
}

/// Sampling-profiler interval used by `--prof-out` and the diagnostics
/// endpoint (`ASA_PROF_INTERVAL_MS` overrides; default 10 ms).
pub fn prof_interval() -> std::time::Duration {
    let ms = std::env::var("ASA_PROF_INTERVAL_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(10);
    std::time::Duration::from_millis(ms)
}

/// Profile summary embedded in `BENCH_*.json` run metadata when the
/// sampling profiler is attached: total sample count plus the top-5
/// folded stacks by self time. `None` without a profiler.
pub fn profile_summary(obs: &Obs) -> Option<serde_json::Value> {
    let snap = obs.prof_snapshot()?;
    let top: Vec<serde_json::Value> = snap
        .top_stacks(5)
        .into_iter()
        .map(|(stack, count)| serde_json::json!({ "stack": stack, "count": count }))
        .collect();
    Some(serde_json::json!({
        "samples": snap.samples,
        "top": top,
    }))
}

/// Appends the [`profile_summary`] under a `"profile"` key of a
/// `run_metadata` object; the metadata passes through unchanged when no
/// profiler is attached (committed bench files stay profile-free).
pub fn with_profile_summary(mut meta: serde_json::Value, obs: &Obs) -> serde_json::Value {
    if let Some(profile) = profile_summary(obs) {
        if let serde_json::Value::Object(entries) = &mut meta {
            entries.push(("profile".to_string(), profile));
        }
    }
    meta
}

impl ObsArgs {
    /// Parses the process arguments, consuming nothing (the binaries keep
    /// their existing positional/flag handling).
    pub fn parse() -> Self {
        let argv: Vec<String> = std::env::args().collect();
        let path_flag = |flag: &str, env: &str| {
            let prefix = format!("{flag}=");
            let mut out = None;
            for (i, a) in argv.iter().enumerate() {
                if let Some(v) = a.strip_prefix(&prefix) {
                    out = Some(std::path::PathBuf::from(v));
                } else if a == flag {
                    out = argv.get(i + 1).map(std::path::PathBuf::from);
                }
            }
            out.or_else(|| std::env::var_os(env).map(std::path::PathBuf::from))
        };
        let obs_out = path_flag("--obs-out", "ASA_OBS_OUT");
        let trace_out = path_flag("--trace-out", "ASA_TRACE_OUT");
        let metrics_out = path_flag("--metrics-out", "ASA_METRICS_OUT");
        let metrics_addr = path_flag("--metrics-addr", "ASA_METRICS_ADDR")
            .map(|p| p.to_string_lossy().into_owned());
        let prof_out = path_flag("--prof-out", "ASA_PROF_OUT");
        let progress = argv.iter().any(|a| a == "--progress")
            || std::env::var("ASA_PROGRESS").is_ok_and(|v| v == "1");
        Self {
            obs_out,
            progress,
            trace_out,
            metrics_out,
            metrics_addr,
            prof_out,
        }
    }

    /// Builds the telemetry handle: disabled unless a JSONL path, a trace
    /// destination, or progress heartbeats were requested. With
    /// `--obs-out` the summary table also prints at flush so a trace run
    /// is self-describing; with `--trace-out` a flight recorder is
    /// attached.
    pub fn build(&self) -> Obs {
        let metrics = self.metrics_out.is_some() || self.metrics_addr.is_some();
        let prof = self.prof_out.is_some();
        let obs = ObsConfig {
            enabled: self.obs_out.is_some()
                || self.progress
                || self.trace_out.is_some()
                || metrics
                || prof,
            jsonl_path: self.obs_out.clone(),
            summary: self.obs_out.is_some() || self.progress,
            progress: self.progress,
            ring_capacity: 0,
            trace_capacity: if self.trace_out.is_some() {
                trace_capacity()
            } else {
                0
            },
            // Continuous telemetry rides along whenever an exposition
            // consumer exists (file or live endpoint).
            collector: metrics.then(asa_obs::TimeSeriesConfig::default),
            // The sampling profiler attaches for `--prof-out` (exported
            // at the end of the run) and whenever a live endpoint exists
            // — the endpoint's `/flame.svg` and `/profile` routes need it.
            profiler: (prof || self.metrics_addr.is_some()).then(prof_interval),
        }
        .build()
        .expect("create --obs-out file");
        if let Some(addr) = &self.metrics_addr {
            match asa_obs::expose::serve(addr, obs.clone()) {
                Ok(server) => {
                    eprintln!(
                        "serving metrics at http://{}/metrics (curl it mid-run)",
                        server.local_addr()
                    );
                    // The endpoint lives for the remainder of the process;
                    // forgetting the handle skips the stop-and-join on a
                    // thread that exits with the process anyway.
                    std::mem::forget(server);
                }
                Err(e) => eprintln!("failed to bind metrics endpoint {addr}: {e}"),
            }
        }
        obs
    }

    /// Renders the handle's registry as Prometheus text format to the
    /// `--metrics-out` path. No-op without a destination; call once at the
    /// end of the run (the collector keeps sampling until then).
    pub fn export_metrics(&self, obs: &Obs) {
        let Some(path) = &self.metrics_out else {
            return;
        };
        obs.stop_collector();
        match asa_obs::expose::write_to_file(obs, path) {
            Ok(()) => eprintln!("wrote Prometheus metrics to {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }

    /// Writes the sampling profiler's folded-stack profile
    /// (Brendan-Gregg collapsed format) to the `--prof-out` path plus a
    /// self-contained flamegraph SVG at the same path with an `.svg`
    /// extension. No-op without a destination; call once at the end of
    /// the run (the sampler keeps running until then).
    pub fn export_profile(&self, obs: &Obs) {
        let Some(path) = &self.prof_out else { return };
        obs.stop_profiler();
        let Some(snap) = obs.prof_snapshot() else {
            return;
        };
        match std::fs::write(path, snap.render_folded()) {
            Ok(()) => eprintln!(
                "wrote folded profile ({} samples, {} stacks) to {}",
                snap.samples,
                snap.stacks.len(),
                path.display()
            ),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
        let svg_path = path.with_extension("svg");
        let title = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("profile");
        match std::fs::write(&svg_path, asa_obs::render_flamegraph(&snap, title)) {
            Ok(()) => eprintln!("wrote flamegraph to {}", svg_path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", svg_path.display()),
        }
    }

    /// Writes the handle's flight-recorder snapshot as Chrome trace-event
    /// JSON to the `--trace-out` path. No-op without a destination or a
    /// recorder; call once at the end of the run.
    pub fn export_trace(&self, obs: &Obs) {
        let Some(path) = &self.trace_out else { return };
        let Some(snap) = obs.trace_snapshot() else {
            return;
        };
        let write = std::fs::File::create(path)
            .map(std::io::BufWriter::new)
            .and_then(|w| asa_obs::chrome::write_chrome_trace(&snap, w));
        match write {
            Ok(()) => eprintln!(
                "wrote Chrome trace ({} events, {} threads, {} dropped) to {} — load it in Perfetto",
                snap.num_events(),
                snap.threads.len(),
                snap.total_dropped(),
                path.display()
            ),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}

/// Simulates the FindBestCommunity kernel for a network on `cores`
/// simulated cores with the given device.
pub fn simulate(graph: &CsrGraph, cores: usize, device: Device) -> SimulatedRun {
    simulate_infomap(
        graph,
        &infomap_config(),
        &MachineConfig::baseline(cores),
        device,
    )
}

/// Renders a plain-text table with aligned columns.
///
/// When `ASA_JSON_DIR` is set, the table is additionally written as a JSON
/// document (`{title, headers, rows}`) into that directory, named by a
/// slug of the title — machine-readable results for downstream plotting.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    if let Some(dir) = std::env::var_os("ASA_JSON_DIR") {
        let _ = save_json(std::path::Path::new(&dir), title, headers, rows);
    }
    render_table_text(title, headers, rows)
}

/// JSON sidecar writer behind [`render_table`].
fn save_json(
    dir: &std::path::Path,
    title: &str,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let slug: String = title
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect::<String>()
        .split('-')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("-");
    let doc = serde_json::json!({
        "title": title,
        "headers": headers,
        "rows": rows,
    });
    std::fs::write(
        dir.join(format!("{}.json", &slug[..slug.len().min(80)])),
        serde_json::to_string_pretty(&doc)?,
    )
}

fn render_table_text(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("## {title}\n\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{:-<1$}|", "", w + 2));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Formats seconds with adaptive precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Formats a large count with thousands separators.
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

/// The five networks of the hash-operation comparison (Table V / Fig 6).
pub fn hash_networks() -> [PaperNetwork; 5] {
    PaperNetwork::hash_comparison_set()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            "Demo",
            &["name", "count"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        assert!(t.contains("## Demo"));
        assert!(t.contains("| longer | 22    |"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_count(1234567), "1,234,567");
        assert_eq!(fmt_count(42), "42");
        assert_eq!(fmt_pct(0.595), "59.5%");
        assert!(fmt_secs(2.5).starts_with("2.500"));
        assert!(fmt_secs(0.002).ends_with("ms"));
    }

    #[test]
    fn json_sidecar_written() {
        let dir = std::env::temp_dir().join("asa-json-test");
        let _ = std::fs::remove_dir_all(&dir);
        save_json(
            &dir,
            "Table V: demo!",
            &["a", "b"],
            &[vec!["1".into(), "2".into()]],
        )
        .unwrap();
        let path = dir.join("table-v-demo.json");
        let text = std::fs::read_to_string(path).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(doc["headers"][0], "a");
        assert_eq!(doc["rows"][0][1], "2");
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn run_metadata_shape() {
        let m = run_metadata("demo", &infomap_config());
        assert_eq!(m["config_hash"].as_str().unwrap().len(), 16);
        assert!(m["threads"].as_u64().unwrap() >= 1);
        assert_eq!(m["dataset"], "demo");
        assert!(!m["rustc_version"].as_str().unwrap().is_empty());
        assert_eq!(m["scale_div"].as_u64().unwrap() as usize, scale_div());
    }

    #[test]
    fn obs_args_default_disabled() {
        // No flags, no env in the test harness: the handle must be the
        // zero-cost disabled one.
        if std::env::var_os("ASA_OBS_OUT").is_none() && std::env::var_os("ASA_PROGRESS").is_none() {
            let obs = ObsArgs::default().build();
            assert!(!obs.enabled());
        }
    }

    #[test]
    fn scale_default() {
        // Unless the env var is set by the caller, default to 64.
        if std::env::var("ASA_SCALE_DIV").is_err() {
            assert_eq!(scale_div(), 64);
        }
    }
}
