//! Perf-regression sentinel over the committed `BENCH_*.json` files.
//!
//! Each benchmark binary (`hostperf`, `simthroughput`, `serve`, `stream`)
//! writes a JSON document whose committed copy at the repository root is
//! the performance baseline. This module extracts the *key* metrics from
//! those documents — SPA sweep time and speedup, simulator
//! ingest/charge/replay ns-per-event, serving p50/p95 latency, cache hit
//! rate, shed rate, and the streaming-update speedup/drift/fallback
//! triple — and compares a fresh run against the baseline under
//! per-metric noise tolerances.
//!
//! Tolerances come in two flavors: **relative** for time-like metrics
//! (machine-to-machine and run-to-run wall-clock noise scales with the
//! value) and **absolute** for rates (a shed rate of exactly `0.0` in the
//! baseline would make any relative bound vacuous or infinitely strict).
//! The `tol_scale` knob (CLI `--tol-scale`, env `ASA_REGRESS_TOL_SCALE`)
//! multiplies every tolerance, so CI can loosen the gate on noisy shared
//! runners without touching the per-metric defaults.
//!
//! The `regress` binary drives this: `regress --smoke` gates the committed
//! files themselves (parse + sanity + self-compare — it proves the sentinel
//! wiring without paying for a bench run), and `regress --fresh-dir <dir>`
//! compares freshly produced documents against the baseline, exiting
//! non-zero with a readable delta table on any regression.

use serde_json::Value;

/// Whether a tolerance bounds the ratio or the difference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Allowed fractional change: `0.5` lets the metric move 50% in the
    /// regressing direction before tripping. For time-like metrics.
    Relative(f64),
    /// Allowed additive change in the metric's own units. For rates in
    /// `[0, 1]`, where a zero baseline makes relative bounds meaningless.
    Absolute(f64),
}

/// Which direction of movement is a regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Times: a regression is the fresh value rising above baseline.
    LowerIsBetter,
    /// Speedups and hit rates: a regression is the fresh value falling.
    HigherIsBetter,
}

/// One extracted metric: a named scalar plus its comparison policy.
#[derive(Debug, Clone)]
pub struct MetricSpec {
    /// Stable dotted name, e.g. `hostperf.dblp-like.sweep_spa_seconds`.
    pub name: String,
    /// The extracted value.
    pub value: f64,
    /// Noise bound for the comparison.
    pub tolerance: Tolerance,
    /// Regressing direction.
    pub direction: Direction,
}

impl MetricSpec {
    fn time(name: String, value: f64) -> Self {
        MetricSpec {
            name,
            value,
            tolerance: Tolerance::Relative(0.5),
            direction: Direction::LowerIsBetter,
        }
    }

    fn speedup(name: String, value: f64) -> Self {
        MetricSpec {
            name,
            value,
            tolerance: Tolerance::Relative(0.3),
            direction: Direction::HigherIsBetter,
        }
    }

    fn rate(name: String, value: f64, direction: Direction) -> Self {
        MetricSpec {
            name,
            value,
            tolerance: Tolerance::Absolute(0.15),
            direction,
        }
    }

    /// A cross-run ratio (e.g. shard-scaling throughput): noisier than a
    /// single measurement, so it gets the loose relative bound.
    fn ratio(name: String, value: f64) -> Self {
        MetricSpec {
            name,
            value,
            tolerance: Tolerance::Relative(0.5),
            direction: Direction::HigherIsBetter,
        }
    }

    /// A memory footprint (peak RSS): lower is better, but allocator and
    /// machine variance dwarf wall-clock noise, so the bound only trips on
    /// a footprint that more than doubles. Shrinking never regresses.
    fn memory(name: String, value: f64) -> Self {
        MetricSpec {
            name,
            value,
            tolerance: Tolerance::Relative(1.0),
            direction: Direction::LowerIsBetter,
        }
    }
}

fn get_f64(doc: &Value, path: &[&str]) -> Option<f64> {
    let mut cur = doc;
    for key in path {
        cur = cur.get(key)?;
    }
    cur.as_f64()
}

/// Extracts the gated metrics from a `BENCH_hostperf.json` document: per
/// network, the SPA sweep seconds, the SPA-over-hash sweep speedup (the
/// paper's headline host-side numbers), and — when the document carries a
/// `--kernel-breakdown` section — the forced-scalar speedup, so both the
/// SIMD and the portable kernel claims are regression-gated.
pub fn extract_hostperf(doc: &Value) -> Vec<MetricSpec> {
    let mut out = Vec::new();
    let Some(networks) = doc.get("networks").and_then(Value::as_array) else {
        return out;
    };
    for nw in networks {
        let Some(name) = nw.get("network").and_then(Value::as_str) else {
            continue;
        };
        if let Some(v) = get_f64(nw, &["sweep_seconds", "spa"]) {
            out.push(MetricSpec::time(
                format!("hostperf.{name}.sweep_spa_seconds"),
                v,
            ));
        }
        if let Some(v) = get_f64(nw, &["sweep_speedup_spa_over_hash"]) {
            out.push(MetricSpec::speedup(
                format!("hostperf.{name}.sweep_speedup_spa_over_hash"),
                v,
            ));
        }
        if let Some(v) = get_f64(nw, &["sweep_speedup_spa_scalar_over_hash"]) {
            out.push(MetricSpec::speedup(
                format!("hostperf.{name}.sweep_speedup_spa_scalar_over_hash"),
                v,
            ));
        }
    }
    out
}

/// Extracts the gated metrics from a `BENCH_simthroughput.json` document:
/// the kernel-level ingest/charge/replay costs in ns per event.
pub fn extract_simthroughput(doc: &Value) -> Vec<MetricSpec> {
    let mut out = Vec::new();
    for key in [
        "ingest_ns_per_event",
        "charge_ns_per_event",
        "replay_ns_per_event",
    ] {
        if let Some(v) = get_f64(doc, &["kernel", key]) {
            out.push(MetricSpec::time(format!("simthroughput.{key}"), v));
        }
    }
    out
}

/// Extracts the gated metrics from a `BENCH_serve.json` document: per
/// offered-load level, p50/p95 latency (relative), cache hit rate and shed
/// rate (absolute — the rates sit in `[0, 1]` and are often exactly 0).
pub fn extract_serve(doc: &Value) -> Vec<MetricSpec> {
    let mut out = Vec::new();
    let Some(levels) = doc.get("levels").and_then(Value::as_array) else {
        return out;
    };
    for (i, level) in levels.iter().enumerate() {
        if let Some(v) = get_f64(level, &["latency_us", "p50"]) {
            out.push(MetricSpec::time(format!("serve.level{i}.p50_us"), v));
        }
        if let Some(v) = get_f64(level, &["latency_us", "p95"]) {
            out.push(MetricSpec::time(format!("serve.level{i}.p95_us"), v));
        }
        if let Some(v) = get_f64(level, &["cache_hit_rate"]) {
            out.push(MetricSpec::rate(
                format!("serve.level{i}.cache_hit_rate"),
                v,
                Direction::HigherIsBetter,
            ));
        }
        if let Some(v) = get_f64(level, &["shed_rate"]) {
            out.push(MetricSpec::rate(
                format!("serve.level{i}.shed_rate"),
                v,
                Direction::LowerIsBetter,
            ));
        }
    }
    // Shard-scaling curve: per shard count, the top (most overloaded)
    // level's latency, hit rate, and shed rate — direction-aware like the
    // level metrics above — plus the top-level throughput ratio of the
    // largest shard count over shards=1.
    if let Some(sweep) = doc.get("shard_sweep").and_then(Value::as_array) {
        let top =
            |entry: &Value| -> Option<Value> { entry.get("levels")?.as_array()?.last().cloned() };
        for entry in sweep {
            let Some(s) = entry.get("shards").and_then(Value::as_u64) else {
                continue;
            };
            let Some(level) = top(entry) else { continue };
            if let Some(v) = get_f64(&level, &["latency_us", "p50"]) {
                out.push(MetricSpec::time(format!("serve.shards{s}.top.p50_us"), v));
            }
            if let Some(v) = get_f64(&level, &["cache_hit_rate"]) {
                out.push(MetricSpec::rate(
                    format!("serve.shards{s}.top.cache_hit_rate"),
                    v,
                    Direction::HigherIsBetter,
                ));
            }
            if let Some(v) = get_f64(&level, &["shed_rate"]) {
                out.push(MetricSpec::rate(
                    format!("serve.shards{s}.top.shed_rate"),
                    v,
                    Direction::LowerIsBetter,
                ));
            }
        }
        let throughput_at = |want: u64| -> Option<f64> {
            sweep
                .iter()
                .find(|e| e.get("shards").and_then(Value::as_u64) == Some(want))
                .and_then(|e| get_f64(&top(e)?, &["throughput_rps"]))
        };
        let max_shards = sweep
            .iter()
            .filter_map(|e| e.get("shards").and_then(Value::as_u64))
            .max();
        if let Some(max) = max_shards.filter(|&m| m > 1) {
            if let (Some(one), Some(many)) = (throughput_at(1), throughput_at(max)) {
                if one > 0.0 {
                    out.push(MetricSpec::ratio(
                        format!("serve.scaling.shards{max}_over_1.top_throughput_ratio"),
                        many / one,
                    ));
                }
            }
        }
    }
    out
}

/// Extracts the gated metrics from a `BENCH_stream.json` document: the
/// dynamic-graph headline numbers. Speedup and fallback rate use the
/// standard speedup/rate policies; codelength drift gets a *tight*
/// absolute bound — the incremental path promises drift within the 1%
/// budget, so the gate must trip well before the generic 0.15 rate
/// tolerance would.
pub fn extract_stream(doc: &Value) -> Vec<MetricSpec> {
    let mut out = Vec::new();
    if let Some(v) = get_f64(doc, &["summary", "incremental_speedup"]) {
        out.push(MetricSpec::speedup("stream.incremental_speedup".into(), v));
    }
    if let Some(v) = get_f64(doc, &["summary", "max_drift"]) {
        out.push(MetricSpec {
            name: "stream.max_drift".into(),
            value: v,
            tolerance: Tolerance::Absolute(0.005),
            direction: Direction::LowerIsBetter,
        });
    }
    if let Some(v) = get_f64(doc, &["summary", "fallback_rate"]) {
        out.push(MetricSpec::rate(
            "stream.fallback_rate".into(),
            v,
            Direction::LowerIsBetter,
        ));
    }
    for key in ["mean_incremental_seconds", "mean_fresh_seconds"] {
        if let Some(v) = get_f64(doc, &["summary", key]) {
            out.push(MetricSpec::time(format!("stream.{key}"), v));
        }
    }
    if let Some(v) = get_f64(doc, &["seed_seconds"]) {
        out.push(MetricSpec::time("stream.seed_seconds".into(), v));
    }
    out
}

/// Dispatches on the document's `bench` field, then appends the run-wide
/// resource metric every bench shares: the process peak RSS from the
/// run-metadata block, gated with the loose memory bound (it only exists
/// in documents produced since resource accounting landed, and only on
/// hosts where procfs reports it — absent or zero means ungated).
pub fn extract_metrics(doc: &Value) -> Vec<MetricSpec> {
    let bench = doc.get("bench").and_then(Value::as_str);
    let mut out = match bench {
        Some("hostperf") => extract_hostperf(doc),
        Some("simthroughput") => extract_simthroughput(doc),
        Some("serve") => extract_serve(doc),
        Some("stream") => extract_stream(doc),
        _ => Vec::new(),
    };
    if let (Some(bench), Some(v)) = (bench, get_f64(doc, &["meta", "peak_rss_bytes"])) {
        if v > 0.0 {
            out.push(MetricSpec::memory(format!("{bench}.peak_rss_bytes"), v));
        }
    }
    out
}

/// Structural sanity of a baseline document's metrics: every gated metric
/// is present, finite, and in range (times and speedups strictly positive,
/// rates inside `[0, 1]`). This is what `--smoke` enforces on the
/// committed files.
pub fn sanity_errors(metrics: &[MetricSpec]) -> Vec<String> {
    let mut errors = Vec::new();
    if metrics.is_empty() {
        errors.push("no gated metrics extracted (wrong or empty document?)".to_string());
    }
    for m in metrics {
        if !m.value.is_finite() {
            errors.push(format!("{}: non-finite value {}", m.name, m.value));
            continue;
        }
        match m.tolerance {
            Tolerance::Relative(_) => {
                if m.value <= 0.0 {
                    errors.push(format!("{}: expected > 0, got {}", m.name, m.value));
                }
            }
            Tolerance::Absolute(_) => {
                if !(0.0..=1.0).contains(&m.value) {
                    errors.push(format!("{}: rate outside [0, 1]: {}", m.name, m.value));
                }
            }
        }
    }
    errors
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Metric name (shared between baseline and fresh).
    pub name: String,
    /// Baseline value, `None` when the metric only appeared fresh.
    pub baseline: Option<f64>,
    /// Fresh value, `None` when the fresh document lost the metric.
    pub fresh: Option<f64>,
    /// Signed fractional change `(fresh - baseline) / baseline` when both
    /// sides are present and the baseline is nonzero.
    pub change: Option<f64>,
    /// Whether this metric trips the gate.
    pub regressed: bool,
    /// Human-readable bound that was applied.
    pub bound: String,
}

fn exceeded(baseline: f64, fresh: f64, tol: Tolerance, dir: Direction, scale: f64) -> bool {
    match (tol, dir) {
        (Tolerance::Relative(t), Direction::LowerIsBetter) => fresh > baseline * (1.0 + t * scale),
        (Tolerance::Relative(t), Direction::HigherIsBetter) => {
            fresh < baseline * (1.0 - (t * scale).min(1.0))
        }
        (Tolerance::Absolute(t), Direction::LowerIsBetter) => fresh > baseline + t * scale,
        (Tolerance::Absolute(t), Direction::HigherIsBetter) => fresh < baseline - t * scale,
    }
}

fn bound_repr(tol: Tolerance, dir: Direction, scale: f64) -> String {
    let arrow = match dir {
        Direction::LowerIsBetter => "+",
        Direction::HigherIsBetter => "-",
    };
    match tol {
        Tolerance::Relative(t) => format!("{arrow}{:.0}%", t * scale * 100.0),
        Tolerance::Absolute(t) => format!("{arrow}{:.2} abs", t * scale),
    }
}

/// Compares fresh metrics against the baseline, metric by metric.
/// `tol_scale` multiplies every tolerance (1.0 = the defaults). A metric
/// present in the baseline but missing fresh counts as a regression — a
/// gate that silently loses its metrics is not a gate.
pub fn compare(baseline: &[MetricSpec], fresh: &[MetricSpec], tol_scale: f64) -> Vec<Delta> {
    let fresh_by_name: std::collections::HashMap<&str, &MetricSpec> =
        fresh.iter().map(|m| (m.name.as_str(), m)).collect();
    let mut deltas = Vec::with_capacity(baseline.len());
    for base in baseline {
        match fresh_by_name.get(base.name.as_str()) {
            Some(f) => {
                let regressed = exceeded(
                    base.value,
                    f.value,
                    base.tolerance,
                    base.direction,
                    tol_scale,
                );
                let change = (base.value != 0.0).then(|| (f.value - base.value) / base.value);
                deltas.push(Delta {
                    name: base.name.clone(),
                    baseline: Some(base.value),
                    fresh: Some(f.value),
                    change,
                    regressed,
                    bound: bound_repr(base.tolerance, base.direction, tol_scale),
                });
            }
            None => deltas.push(Delta {
                name: base.name.clone(),
                baseline: Some(base.value),
                fresh: None,
                change: None,
                regressed: true,
                bound: "present".to_string(),
            }),
        }
    }
    deltas
}

/// Renders the comparison as an aligned delta table; regressed rows are
/// marked `REGRESSED`, clean ones `ok`.
pub fn render_deltas(title: &str, deltas: &[Delta]) -> String {
    let fmt = |v: Option<f64>| v.map_or_else(|| "missing".to_string(), |v| format!("{v:.4}"));
    let rows: Vec<Vec<String>> = deltas
        .iter()
        .map(|d| {
            vec![
                d.name.clone(),
                fmt(d.baseline),
                fmt(d.fresh),
                d.change
                    .map_or_else(|| "-".to_string(), |c| format!("{:+.1}%", c * 100.0)),
                d.bound.clone(),
                if d.regressed { "REGRESSED" } else { "ok" }.to_string(),
            ]
        })
        .collect();
    crate::render_table(
        title,
        &[
            "metric", "baseline", "fresh", "change", "allowed", "verdict",
        ],
        &rows,
    )
}

/// The hottest profiled stack recorded in a bench document's
/// `meta.profile.top[0].stack`, when the run carried a profile.
fn top_profiled_stack(doc: &Value) -> Option<&str> {
    doc.get("meta")?
        .get("profile")?
        .get("top")?
        .as_array()?
        .first()?
        .get("stack")?
        .as_str()
}

/// Reports — never gates — a shift in the hottest profiled stack between
/// two bench documents. Profiles ride along in `meta.profile` only when a
/// run had the sampling profiler attached (`--prof-out` or a live metrics
/// endpoint), so committed baselines usually carry none; the note fires
/// when both sides have a profile and disagree on the top frame, or when
/// a fresh profile appears against an unprofiled baseline. The return
/// value is deliberately prose and not a [`MetricSpec`]: hot-stack
/// identity is far too noisy to gate on, but a changed hottest frame is
/// exactly the hint an operator wants printed next to a tripped time
/// gate.
pub fn profile_shift_note(baseline: &Value, fresh: &Value) -> Option<String> {
    match (top_profiled_stack(baseline), top_profiled_stack(fresh)) {
        (Some(b), Some(f)) if b != f => Some(format!(
            "hottest profiled stack shifted (informational, not gated)\n  \
             baseline: {b}\n  fresh:    {f}"
        )),
        (None, Some(f)) => Some(format!(
            "fresh run carries a profile (hottest stack: {f}); baseline has none"
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Fixtures go through the parser (the vendored `json!` macro does not
    // nest objects inside arrays), which also exercises the exact path the
    // `regress` binary takes on real files.
    fn hostperf_doc(spa_seconds: f64, speedup: f64) -> Value {
        serde_json::from_str(&format!(
            r#"{{
                "bench": "hostperf",
                "networks": [{{
                    "network": "dblp-like",
                    "sweep_seconds": {{"hash": 0.035, "spa": {spa_seconds}}},
                    "sweep_speedup_spa_over_hash": {speedup},
                    "sweep_speedup_spa_scalar_over_hash": {speedup}
                }}]
            }}"#
        ))
        .expect("fixture parses")
    }

    fn serve_doc(p95: f64, hit_rate: f64, shed_rate: f64) -> Value {
        serde_json::from_str(&format!(
            r#"{{
                "bench": "serve",
                "levels": [{{
                    "latency_us": {{"p50": 10000.0, "p95": {p95}}},
                    "cache_hit_rate": {hit_rate},
                    "shed_rate": {shed_rate}
                }}]
            }}"#
        ))
        .expect("fixture parses")
    }

    #[test]
    fn extraction_names_and_counts() {
        let host = extract_metrics(&hostperf_doc(0.023, 1.5));
        assert_eq!(host.len(), 3);
        assert_eq!(host[0].name, "hostperf.dblp-like.sweep_spa_seconds");
        assert_eq!(host[1].direction, Direction::HigherIsBetter);
        assert_eq!(
            host[2].name,
            "hostperf.dblp-like.sweep_speedup_spa_scalar_over_hash"
        );
        assert_eq!(host[2].direction, Direction::HigherIsBetter);

        let serve = extract_metrics(&serve_doc(56_000.0, 0.4, 0.0));
        let names: Vec<&str> = serve.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "serve.level0.p50_us",
                "serve.level0.p95_us",
                "serve.level0.cache_hit_rate",
                "serve.level0.shed_rate",
            ]
        );

        let sim = extract_metrics(
            &serde_json::from_str(
                r#"{
                    "bench": "simthroughput",
                    "kernel": {
                        "ingest_ns_per_event": 4.5,
                        "charge_ns_per_event": 11.7,
                        "replay_ns_per_event": 12.0
                    }
                }"#,
            )
            .expect("fixture parses"),
        );
        assert_eq!(sim.len(), 3);
    }

    fn sharded_serve_doc(hit4: f64, shed4: f64, tput4: f64) -> Value {
        serde_json::from_str(&format!(
            r#"{{
                "bench": "serve",
                "levels": [{{
                    "latency_us": {{"p50": 10000.0, "p95": 56000.0}},
                    "cache_hit_rate": 0.43,
                    "shed_rate": 0.32
                }}],
                "shard_sweep": [
                    {{"shards": 1, "levels": [{{
                        "latency_us": {{"p50": 10000.0, "p95": 56000.0}},
                        "cache_hit_rate": 0.43, "shed_rate": 0.32,
                        "throughput_rps": 20.0
                    }}]}},
                    {{"shards": 4, "levels": [{{
                        "latency_us": {{"p50": 8000.0, "p95": 40000.0}},
                        "cache_hit_rate": {hit4}, "shed_rate": {shed4},
                        "throughput_rps": {tput4}
                    }}]}}
                ]
            }}"#
        ))
        .expect("fixture parses")
    }

    #[test]
    fn shard_sweep_extraction_is_direction_aware() {
        let base = extract_metrics(&sharded_serve_doc(0.55, 0.05, 40.0));
        let names: Vec<&str> = base.iter().map(|m| m.name.as_str()).collect();
        assert!(names.contains(&"serve.shards1.top.shed_rate"));
        assert!(names.contains(&"serve.shards4.top.cache_hit_rate"));
        assert!(names.contains(&"serve.scaling.shards4_over_1.top_throughput_ratio"));
        assert!(sanity_errors(&base).is_empty());

        // Hit-rate collapse on the sharded top level regresses...
        let collapse = extract_metrics(&sharded_serve_doc(0.2, 0.05, 40.0));
        let deltas = compare(&base, &collapse, 1.0);
        assert!(
            deltas
                .iter()
                .find(|d| d.name == "serve.shards4.top.cache_hit_rate")
                .unwrap()
                .regressed
        );
        // ...a shed-rate explosion regresses (LowerIsBetter)...
        let sheds = extract_metrics(&sharded_serve_doc(0.55, 0.4, 40.0));
        assert!(
            compare(&base, &sheds, 1.0)
                .iter()
                .find(|d| d.name == "serve.shards4.top.shed_rate")
                .unwrap()
                .regressed
        );
        // ...and losing the scaling (ratio 2.0 -> 0.75) trips the gate,
        // while mild noise (2.0 -> 1.5) stays inside the loose bound.
        let flat = extract_metrics(&sharded_serve_doc(0.55, 0.05, 15.0));
        assert!(
            compare(&base, &flat, 1.0)
                .iter()
                .find(|d| d.name.starts_with("serve.scaling."))
                .unwrap()
                .regressed
        );
        let noisy = extract_metrics(&sharded_serve_doc(0.55, 0.05, 30.0));
        assert!(compare(&base, &noisy, 1.0).iter().all(|d| !d.regressed));
    }

    fn stream_doc(speedup: f64, max_drift: f64, fallback_rate: f64) -> Value {
        serde_json::from_str(&format!(
            r#"{{
                "bench": "stream",
                "seed_seconds": 2.5,
                "summary": {{
                    "incremental_speedup": {speedup},
                    "max_drift": {max_drift},
                    "fallback_rate": {fallback_rate},
                    "mean_incremental_seconds": 0.02,
                    "mean_fresh_seconds": 0.18
                }}
            }}"#
        ))
        .expect("fixture parses")
    }

    #[test]
    fn stream_extraction_is_direction_aware() {
        let base = extract_metrics(&stream_doc(8.0, 0.002, 0.0));
        let names: Vec<&str> = base.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "stream.incremental_speedup",
                "stream.max_drift",
                "stream.fallback_rate",
                "stream.mean_incremental_seconds",
                "stream.mean_fresh_seconds",
                "stream.seed_seconds",
            ]
        );
        assert!(sanity_errors(&base).is_empty());

        // A speedup collapse regresses (HigherIsBetter)...
        let slow = extract_metrics(&stream_doc(4.0, 0.002, 0.0));
        assert!(
            compare(&base, &slow, 1.0)
                .iter()
                .find(|d| d.name == "stream.incremental_speedup")
                .unwrap()
                .regressed
        );
        // ...drift escaping the budget trips the tight absolute bound,
        // while sub-budget noise does not...
        let drifted = extract_metrics(&stream_doc(8.0, 0.012, 0.0));
        assert!(
            compare(&base, &drifted, 1.0)
                .iter()
                .find(|d| d.name == "stream.max_drift")
                .unwrap()
                .regressed
        );
        let noisy = extract_metrics(&stream_doc(7.0, 0.005, 0.1));
        assert!(compare(&base, &noisy, 1.0).iter().all(|d| !d.regressed));
        // ...and a quality guard firing on most batches regresses the
        // fallback rate (LowerIsBetter, absolute: baseline is exactly 0).
        let falling = extract_metrics(&stream_doc(8.0, 0.002, 0.5));
        assert!(
            compare(&base, &falling, 1.0)
                .iter()
                .find(|d| d.name == "stream.fallback_rate")
                .unwrap()
                .regressed
        );
    }

    #[test]
    fn identical_runs_are_clean() {
        let m = extract_metrics(&hostperf_doc(0.023, 1.5));
        let deltas = compare(&m, &m, 1.0);
        assert!(deltas.iter().all(|d| !d.regressed), "{deltas:?}");
    }

    #[test]
    fn perturbed_time_metric_regresses() {
        // SPA sweep 2x slower: beyond the 50% relative tolerance.
        let base = extract_metrics(&hostperf_doc(0.023, 1.5));
        let fresh = extract_metrics(&hostperf_doc(0.046, 1.5));
        let deltas = compare(&base, &fresh, 1.0);
        let sweep = deltas
            .iter()
            .find(|d| d.name.ends_with("sweep_spa_seconds"))
            .unwrap();
        assert!(sweep.regressed, "{deltas:?}");
        // ... while the untouched speedup stays clean.
        assert!(
            !deltas
                .iter()
                .find(|d| d.name.ends_with("speedup_spa_over_hash"))
                .unwrap()
                .regressed
        );
        // The rendered table is readable: names, values, and verdicts.
        let table = render_deltas("regressions", &deltas);
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("sweep_spa_seconds"));
        assert!(table.contains("+100.0%"));
    }

    #[test]
    fn within_tolerance_noise_is_clean() {
        let base = extract_metrics(&hostperf_doc(0.023, 1.5));
        // 30% slower: inside the 50% relative bound.
        let fresh = extract_metrics(&hostperf_doc(0.030, 1.45));
        assert!(compare(&base, &fresh, 1.0).iter().all(|d| !d.regressed));
    }

    #[test]
    fn speedup_collapse_regresses() {
        let base = extract_metrics(&hostperf_doc(0.023, 1.5));
        let fresh = extract_metrics(&hostperf_doc(0.023, 0.9)); // -40%
        let deltas = compare(&base, &fresh, 1.0);
        assert!(deltas.iter().any(|d| d.regressed));
    }

    #[test]
    fn zero_baseline_shed_rate_uses_absolute_tolerance() {
        let base = extract_metrics(&serve_doc(56_000.0, 0.4, 0.0));
        // Shedding appears but stays under the 0.15 absolute bound.
        let mild = extract_metrics(&serve_doc(56_000.0, 0.4, 0.1));
        assert!(compare(&base, &mild, 1.0).iter().all(|d| !d.regressed));
        // Heavy shedding trips it.
        let heavy = extract_metrics(&serve_doc(56_000.0, 0.4, 0.4));
        let deltas = compare(&base, &heavy, 1.0);
        let shed = deltas
            .iter()
            .find(|d| d.name.ends_with("shed_rate"))
            .unwrap();
        assert!(shed.regressed);
    }

    #[test]
    fn hit_rate_collapse_regresses_and_tol_scale_loosens() {
        let base = extract_metrics(&serve_doc(56_000.0, 0.4, 0.0));
        let worse = extract_metrics(&serve_doc(56_000.0, 0.1, 0.0)); // -0.3 abs
        assert!(compare(&base, &worse, 1.0).iter().any(|d| d.regressed));
        // Scaling every tolerance 3x admits the same drop.
        assert!(compare(&base, &worse, 3.0).iter().all(|d| !d.regressed));
    }

    fn doc_with_rss(peak_rss: f64) -> Value {
        serde_json::from_str(&format!(
            r#"{{
                "bench": "simthroughput",
                "kernel": {{"ingest_ns_per_event": 4.5}},
                "meta": {{"peak_rss_bytes": {peak_rss}}}
            }}"#
        ))
        .expect("fixture parses")
    }

    #[test]
    fn peak_rss_gates_lower_is_better_with_loose_bound() {
        let base = extract_metrics(&doc_with_rss(100.0e6));
        let rss = base
            .iter()
            .find(|m| m.name == "simthroughput.peak_rss_bytes")
            .expect("peak RSS extracted from meta");
        assert_eq!(rss.direction, Direction::LowerIsBetter);
        assert!(sanity_errors(&base).is_empty());

        // 80% growth stays inside the doubling bound; 2.5x trips it;
        // shrinking to a quarter never does.
        let grown = extract_metrics(&doc_with_rss(180.0e6));
        assert!(compare(&base, &grown, 1.0).iter().all(|d| !d.regressed));
        let blown = extract_metrics(&doc_with_rss(250.0e6));
        assert!(
            compare(&base, &blown, 1.0)
                .iter()
                .find(|d| d.name.ends_with("peak_rss_bytes"))
                .unwrap()
                .regressed
        );
        let shrunk = extract_metrics(&doc_with_rss(25.0e6));
        assert!(compare(&base, &shrunk, 1.0).iter().all(|d| !d.regressed));

        // Pre-resource-accounting documents (no meta) simply go ungated.
        let legacy = extract_metrics(
            &serde_json::from_str(
                r#"{"bench": "simthroughput", "kernel": {"ingest_ns_per_event": 4.5}}"#,
            )
            .unwrap(),
        );
        assert!(legacy.iter().all(|m| !m.name.contains("peak_rss")));
    }

    #[test]
    fn missing_fresh_metric_is_a_regression() {
        let base = extract_metrics(&hostperf_doc(0.023, 1.5));
        let deltas = compare(&base, &[], 1.0);
        assert!(deltas.iter().all(|d| d.regressed));
        assert!(render_deltas("t", &deltas).contains("missing"));
    }

    #[test]
    fn sanity_flags_bad_baselines() {
        assert!(!sanity_errors(&[]).is_empty(), "empty set must fail");
        let good = extract_metrics(&serve_doc(56_000.0, 0.4, 0.0));
        assert!(sanity_errors(&good).is_empty());
        let bad = vec![
            MetricSpec::time("t".into(), -1.0),
            MetricSpec::rate("r".into(), 1.5, Direction::LowerIsBetter),
            MetricSpec::time("n".into(), f64::NAN),
        ];
        assert_eq!(sanity_errors(&bad).len(), 3);
    }

    fn doc_with_profile(stack: &str) -> Value {
        serde_json::from_str(&format!(
            r#"{{"bench":"hostperf","meta":{{"profile":{{"samples":12,
                "top":[{{"stack":"{stack}","count":9}},
                       {{"stack":"main;idle","count":3}}]}}}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn profile_shift_is_reported_but_never_gated() {
        let spa = doc_with_profile("hostperf;decide;spa.sweep");
        let hash = doc_with_profile("hostperf;decide;hash.sweep");
        let bare: Value = serde_json::from_str(r#"{"bench":"hostperf","meta":{}}"#).unwrap();

        assert!(profile_shift_note(&spa, &spa).is_none(), "same top frame");
        let note = profile_shift_note(&spa, &hash).expect("shift reported");
        assert!(note.contains("spa.sweep") && note.contains("hash.sweep"));
        assert!(note.contains("not gated"));
        let appeared = profile_shift_note(&bare, &spa).expect("new profile noted");
        assert!(appeared.contains("baseline has none"));
        assert!(profile_shift_note(&spa, &bare).is_none());
        assert!(profile_shift_note(&bare, &bare).is_none());
        // The profile block never feeds the gate: metric extraction is
        // identical with and without it.
        assert_eq!(extract_metrics(&spa).len(), extract_metrics(&bare).len());
    }
}
