//! Host-engine performance: SPA fast path vs the hash reference path.
//!
//! Times the three host kernels (PageRank, the `FindBestCommunity` sweeps,
//! and `Convert2SuperNode`) on the dblp-like and pokec-like stand-ins with
//! the accumulator forced to each path. Both paths produce the identical
//! decision stream, so partitions and codelengths must match bit-for-bit;
//! the run asserts that before reporting the sweep-phase speedup.
//!
//! Writes `BENCH_hostperf.json` into the working directory (override with
//! `ASA_HOSTPERF_OUT`); repetitions via `ASA_HOSTPERF_REPS` (default 5,
//! best-of reported).

use asa_bench::{fmt_secs, infomap_config, load_network, render_table, scale_div};
use asa_graph::generators::PaperNetwork;
use asa_infomap::config::AccumulatorKind;
use asa_infomap::{detect_communities, InfomapConfig, InfomapResult};

fn reps() -> usize {
    std::env::var("ASA_HOSTPERF_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(5)
}

/// Best-of-`reps` timings for one accumulator path (all repetitions agree
/// on the answer; the fastest sweep phase is reported).
struct PathTiming {
    result: InfomapResult,
    pagerank: f64,
    find_best: f64,
    convert: f64,
}

fn run_path(graph: &asa_graph::CsrGraph, kind: AccumulatorKind, reps: usize) -> PathTiming {
    let cfg = InfomapConfig {
        accumulator: kind,
        ..infomap_config()
    };
    let mut best: Option<PathTiming> = None;
    for _ in 0..reps {
        let result = detect_communities(graph, &cfg);
        let t = result.timings;
        let cur = PathTiming {
            pagerank: t.pagerank.as_secs_f64(),
            find_best: t.find_best.as_secs_f64(),
            convert: t.convert.as_secs_f64(),
            result,
        };
        match &best {
            Some(b) => {
                assert_eq!(
                    b.result.partition.labels(),
                    cur.result.partition.labels(),
                    "{kind:?} path must be deterministic across repetitions"
                );
                if cur.find_best < b.find_best {
                    best = Some(cur);
                }
            }
            None => best = Some(cur),
        }
    }
    best.unwrap()
}

fn main() {
    let reps = reps();
    let networks = [PaperNetwork::Dblp, PaperNetwork::Pokec];
    let mut rows = Vec::new();
    let mut docs = Vec::new();

    for network in networks {
        let (graph, _) = load_network(network);
        let hash = run_path(&graph, AccumulatorKind::Hash, reps);
        let spa = run_path(&graph, AccumulatorKind::Spa, reps);

        // Semantics first: the SPA fast path is a pure perf substitution.
        assert_eq!(
            hash.result.partition.labels(),
            spa.result.partition.labels(),
            "{} partitions diverged between accumulator paths",
            network.name()
        );
        assert_eq!(
            hash.result.codelength.to_bits(),
            spa.result.codelength.to_bits(),
            "{} codelengths diverged between accumulator paths",
            network.name()
        );

        let speedup = hash.find_best / spa.find_best;
        rows.push(vec![
            format!("{}-like", network.name()),
            format!("{}", graph.num_nodes()),
            format!("{}", graph.num_arcs()),
            fmt_secs(spa.pagerank),
            fmt_secs(hash.find_best),
            fmt_secs(spa.find_best),
            fmt_secs(spa.convert),
            format!("{speedup:.2}x"),
        ]);
        docs.push(serde_json::json!({
            "network": format!("{}-like", network.name()),
            "nodes": graph.num_nodes(),
            "arcs": graph.num_arcs(),
            "codelength": spa.result.codelength,
            "communities": spa.result.num_communities(),
            "identical_paths": true,
            "pagerank_seconds": spa.pagerank,
            "sweep_seconds": serde_json::json!({ "hash": hash.find_best, "spa": spa.find_best }),
            "convert_seconds": serde_json::json!({ "hash": hash.convert, "spa": spa.convert }),
            "sweep_speedup_spa_over_hash": speedup,
        }));
    }

    print!(
        "{}",
        render_table(
            "Host engine: SPA fast path vs hash path (best of reps)",
            &[
                "network",
                "nodes",
                "arcs",
                "PageRank",
                "sweeps (hash)",
                "sweeps (SPA)",
                "Convert2SuperNode",
                "sweep speedup",
            ],
            &rows,
        )
    );

    let out = std::env::var("ASA_HOSTPERF_OUT").unwrap_or_else(|_| "BENCH_hostperf.json".into());
    let doc = serde_json::json!({
        "bench": "hostperf",
        "scale_div": scale_div(),
        "reps": reps,
        "threads": "rayon default",
        "networks": docs,
    });
    std::fs::write(&out, serde_json::to_string_pretty(&doc).unwrap()).expect("write bench json");
    println!("\nwrote {out}");
}
