//! Host-engine performance: SPA fast path vs the hash reference path.
//!
//! Times the three host kernels (PageRank, the `FindBestCommunity` sweeps,
//! and `Convert2SuperNode`) on the dblp-like and pokec-like stand-ins with
//! the accumulator forced to each path. Both paths produce the identical
//! decision stream, so partitions and codelengths must match bit-for-bit;
//! the run asserts that before reporting the sweep-phase speedup.
//!
//! Writes `BENCH_hostperf.json` into the working directory (override with
//! `ASA_HOSTPERF_OUT`); repetitions via `ASA_HOSTPERF_REPS` (default 5,
//! best-of reported). `--smoke` shrinks to CI size (`ASA_SCALE_DIV=256`,
//! one repetition) unless the env vars already say otherwise.
//!
//! `--kernel-breakdown` adds two extra SPA legs per network — the
//! dispatched kernel (AVX2 where compiled with `--features simd` and the
//! CPU has it) and the forced-scalar portable kernel — reporting each
//! leg's sweep time and its accumulate/gather/scan phase split, asserting
//! all legs' partitions match the hash path bit-for-bit, and emitting
//! `kernel_breakdown` + `sweep_speedup_spa_scalar_over_hash` JSON fields.
//!
//! Telemetry: `--obs-out <path>` streams per-sweep convergence records
//! (sweep index, moves, codelength, ΔL, SPA-vs-hash path, scratch-pool
//! hit rate) as JSONL and prints the hierarchical phase-time summary at
//! exit; `--progress` adds per-sweep heartbeat lines on stderr. Both also
//! respect `ASA_OBS_OUT` / `ASA_PROGRESS=1`.
//!
//! `--trace-out <path>` (also `ASA_TRACE_OUT`) attaches the flight
//! recorder and writes a Chrome trace of the run for Perfetto.
//!
//! `--metrics-out <path>` / `ASA_METRICS_OUT` attaches the continuous-
//! telemetry collector and writes the final Prometheus exposition;
//! `ASA_METRICS_ADDR` additionally serves it live over HTTP.
//!
//! `--prof-out <path>` / `ASA_PROF_OUT` attaches the span-stack sampling
//! profiler and writes the folded-stack profile plus a sibling `.svg`
//! flamegraph at exit (`ASA_PROF_INTERVAL_MS` tunes the sample interval).
//!
//! `--obs-overhead` runs a dedicated overhead check instead of the bench:
//! the SPA sweep phase with obs fully disabled, versus enabled with a
//! no-op sink, versus the flight recorder attached, versus the continuous
//! -telemetry collector thread sampling at its default 250 ms resolution,
//! versus the sampling profiler attached at its default 10 ms interval —
//! failing if any instrumented run is more than `ASA_OBS_TOL` percent
//! slower (default 5). CI runs this as the overhead smoke gate.

use asa_bench::{
    fmt_secs, infomap_config, load_network, render_table, run_metadata, scale_div, ObsArgs,
};
use asa_graph::generators::PaperNetwork;
use asa_infomap::config::AccumulatorKind;
use asa_infomap::kernel;
use asa_infomap::{detect_communities_observed, InfomapConfig, InfomapResult};
use asa_obs::{record, NullSink, Obs};

fn reps() -> usize {
    std::env::var("ASA_HOSTPERF_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(5)
}

/// Best-of-`reps` timings for one accumulator path (all repetitions agree
/// on the answer; the fastest sweep phase is reported).
struct PathTiming {
    result: InfomapResult,
    pagerank: f64,
    find_best: f64,
    convert: f64,
}

fn run_path(
    graph: &asa_graph::CsrGraph,
    kind: AccumulatorKind,
    reps: usize,
    obs: &Obs,
) -> PathTiming {
    let cfg = InfomapConfig {
        accumulator: kind,
        ..infomap_config()
    };
    let mut best: Option<PathTiming> = None;
    for _ in 0..reps {
        let result = detect_communities_observed(graph, &cfg, obs);
        let t = result.timings;
        let cur = PathTiming {
            pagerank: t.pagerank.as_secs_f64(),
            find_best: t.find_best.as_secs_f64(),
            convert: t.convert.as_secs_f64(),
            result,
        };
        match &best {
            Some(b) => {
                assert_eq!(
                    b.result.partition.labels(),
                    cur.result.partition.labels(),
                    "{kind:?} path must be deterministic across repetitions"
                );
                if cur.find_best < b.find_best {
                    best = Some(cur);
                }
            }
            None => best = Some(cur),
        }
    }
    best.unwrap()
}

/// `--obs-overhead`: the disabled path vs three instrumented legs — an
/// enabled handle draining into a no-op sink, the same with the flight
/// recorder attached, and the same with the continuous-telemetry
/// collector thread sampling at its default resolution — on the SPA
/// sweep phase. Exits non-zero when any instrumented sweep is more than
/// the tolerance slower.
fn obs_overhead_check(reps: usize) {
    let tol_pct: f64 = std::env::var("ASA_OBS_TOL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5.0);
    let (graph, _) = load_network(PaperNetwork::Dblp);

    // Warm up caches/allocator so no side pays first-run costs.
    let _ = run_path(&graph, AccumulatorKind::Spa, 1, &Obs::disabled());

    let off = run_path(&graph, AccumulatorKind::Spa, reps, &Obs::disabled());
    let noop = Obs::new_enabled();
    noop.add_sink(Box::new(NullSink));
    let on = run_path(&graph, AccumulatorKind::Spa, reps, &noop);
    let traced = Obs::new_enabled();
    traced.add_sink(Box::new(NullSink));
    traced.attach_recorder(asa_bench::trace_capacity());
    let rec = run_path(&graph, AccumulatorKind::Spa, reps, &traced);
    let collected = Obs::new_enabled();
    collected.add_sink(Box::new(NullSink));
    collected.attach_collector(asa_obs::TimeSeriesConfig::default());
    let col = run_path(&graph, AccumulatorKind::Spa, reps, &collected);
    collected.stop_collector();
    let profiled = Obs::new_enabled();
    profiled.add_sink(Box::new(NullSink));
    profiled.attach_profiler(asa_bench::prof_interval());
    let prof = run_path(&graph, AccumulatorKind::Spa, reps, &profiled);
    profiled.stop_profiler();

    for (leg, timing) in [
        ("no-op sink", &on),
        ("recorder", &rec),
        ("collector", &col),
        ("profiler", &prof),
    ] {
        assert_eq!(
            off.result.partition.labels(),
            timing.result.partition.labels(),
            "telemetry ({leg}) must not change the answer"
        );
    }
    let mut failed = false;
    for (leg, timing) in [
        ("no-op sink", &on),
        ("recorder attached", &rec),
        ("collector attached", &col),
        ("profiler attached", &prof),
    ] {
        let overhead_pct = (timing.find_best / off.find_best - 1.0) * 100.0;
        println!(
            "obs overhead on {}-like SPA sweeps (best of {reps}): \
             disabled {} vs {leg} {} => {overhead_pct:+.2}% (tolerance {tol_pct}%)",
            PaperNetwork::Dblp.name(),
            fmt_secs(off.find_best),
            fmt_secs(timing.find_best),
        );
        if overhead_pct > tol_pct {
            eprintln!("obs overhead ({leg}) {overhead_pct:.2}% exceeds tolerance {tol_pct}%");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Whether `ASA_FORCE_SCALAR` asks for the portable kernel (the state to
/// restore after the breakdown's forced-scalar leg).
fn env_force_scalar() -> bool {
    std::env::var(kernel::FORCE_SCALAR_ENV)
        .map(|v| v != "0" && !v.is_empty())
        .unwrap_or(false)
}

/// One `--kernel-breakdown` leg: the dispatched (SIMD where compiled and
/// available) or forced-scalar sweep kernel, with its sweep time and
/// per-phase attribution.
struct KernelLeg {
    label: &'static str,
    kernel_path: &'static str,
    sweep_seconds: f64,
    breakdown: kernel::KernelBreakdown,
    result: InfomapResult,
}

/// Runs the SPA path twice for one leg: untimed (best-of-`reps` sweep
/// seconds, so phase-timing overhead never taints the headline numbers)
/// and once with per-phase attribution enabled for the gather/accumulate/
/// scan split.
fn run_kernel_leg(
    graph: &asa_graph::CsrGraph,
    label: &'static str,
    force_scalar: bool,
    reps: usize,
) -> KernelLeg {
    kernel::set_force_scalar(force_scalar || env_force_scalar());
    let kernel_path = kernel::kernel_path_name();
    let timing = run_path(graph, AccumulatorKind::Spa, reps, &Obs::disabled());
    kernel::set_phase_timing(true);
    let before = kernel::global_phase_times().snapshot();
    let timed = run_path(graph, AccumulatorKind::Spa, 1, &Obs::disabled());
    let after = kernel::global_phase_times().snapshot();
    kernel::set_phase_timing(false);
    kernel::set_force_scalar(env_force_scalar());
    assert_eq!(
        timing.result.partition.labels(),
        timed.result.partition.labels(),
        "phase timing must not change the answer ({label})"
    );
    KernelLeg {
        label,
        kernel_path,
        sweep_seconds: timing.find_best,
        breakdown: kernel::KernelBreakdown {
            accumulate_seconds: after.accumulate_seconds - before.accumulate_seconds,
            gather_seconds: after.gather_seconds - before.gather_seconds,
            scan_seconds: after.scan_seconds - before.scan_seconds,
        },
        result: timing.result,
    }
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        // CI-sized run: tiny scale, single repetition (env still wins).
        if std::env::var("ASA_SCALE_DIV").is_err() {
            std::env::set_var("ASA_SCALE_DIV", "256");
        }
        if std::env::var("ASA_HOSTPERF_REPS").is_err() {
            std::env::set_var("ASA_HOSTPERF_REPS", "1");
        }
    }
    let reps = reps();
    if std::env::args().any(|a| a == "--obs-overhead") {
        obs_overhead_check(reps);
        return;
    }
    let kernel_breakdown = std::env::args().any(|a| a == "--kernel-breakdown");
    let args = ObsArgs::parse();
    let obs = args.build();
    let _root = obs.span("hostperf");
    let networks = [PaperNetwork::Dblp, PaperNetwork::Pokec];
    let mut rows = Vec::new();
    let mut breakdown_rows = Vec::new();
    let mut docs = Vec::new();

    for network in networks {
        let graph = {
            let _sp = obs.span("load");
            load_network(network).0
        };
        record!(obs, "network", {
            "name": network.name(),
            "nodes": graph.num_nodes(),
            "arcs": graph.num_arcs(),
        });
        let hash = run_path(&graph, AccumulatorKind::Hash, reps, &obs);
        let spa = run_path(&graph, AccumulatorKind::Spa, reps, &obs);

        // Semantics first: the SPA fast path is a pure perf substitution.
        assert_eq!(
            hash.result.partition.labels(),
            spa.result.partition.labels(),
            "{} partitions diverged between accumulator paths",
            network.name()
        );
        assert_eq!(
            hash.result.codelength.to_bits(),
            spa.result.codelength.to_bits(),
            "{} codelengths diverged between accumulator paths",
            network.name()
        );

        let speedup = hash.find_best / spa.find_best;
        rows.push(vec![
            format!("{}-like", network.name()),
            format!("{}", graph.num_nodes()),
            format!("{}", graph.num_arcs()),
            fmt_secs(spa.pagerank),
            fmt_secs(hash.find_best),
            fmt_secs(spa.find_best),
            fmt_secs(spa.convert),
            format!("{speedup:.2}x"),
        ]);
        let mut doc = serde_json::json!({
            "network": format!("{}-like", network.name()),
            "nodes": graph.num_nodes(),
            "arcs": graph.num_arcs(),
            "codelength": spa.result.codelength,
            "communities": spa.result.num_communities(),
            "identical_paths": true,
            "pagerank_seconds": spa.pagerank,
            "sweep_seconds": serde_json::json!({ "hash": hash.find_best, "spa": spa.find_best }),
            "convert_seconds": serde_json::json!({ "hash": hash.convert, "spa": spa.convert }),
            "sweep_speedup_spa_over_hash": speedup,
        });

        if kernel_breakdown {
            let legs = [
                run_kernel_leg(&graph, "dispatched", false, reps),
                run_kernel_leg(&graph, "scalar", true, reps),
            ];
            let mut legs_json = Vec::new();
            for leg in &legs {
                // Partitions are bit-identical across hash / scalar SPA /
                // SIMD SPA — the dispatch is a pure perf substitution.
                assert_eq!(
                    hash.result.partition.labels(),
                    leg.result.partition.labels(),
                    "{} partitions diverged on the {} kernel leg",
                    network.name(),
                    leg.label
                );
                let leg_speedup = hash.find_best / leg.sweep_seconds;
                breakdown_rows.push(vec![
                    format!("{}-like", network.name()),
                    leg.label.to_string(),
                    leg.kernel_path.to_string(),
                    fmt_secs(leg.sweep_seconds),
                    fmt_secs(leg.breakdown.accumulate_seconds),
                    fmt_secs(leg.breakdown.gather_seconds),
                    fmt_secs(leg.breakdown.scan_seconds),
                    format!("{leg_speedup:.2}x"),
                ]);
                legs_json.push((
                    leg.label.to_string(),
                    serde_json::json!({
                        "kernel_path": leg.kernel_path,
                        "sweep_seconds": leg.sweep_seconds,
                        "accumulate_seconds": leg.breakdown.accumulate_seconds,
                        "gather_seconds": leg.breakdown.gather_seconds,
                        "scan_seconds": leg.breakdown.scan_seconds,
                    }),
                ));
            }
            if let serde_json::Value::Object(entries) = &mut doc {
                entries.push((
                    "kernel_breakdown".to_string(),
                    serde_json::Value::Object(legs_json),
                ));
                entries.push((
                    "sweep_speedup_spa_scalar_over_hash".to_string(),
                    serde_json::json!(hash.find_best / legs[1].sweep_seconds),
                ));
            }
        }
        docs.push(doc);
    }

    print!(
        "{}",
        render_table(
            "Host engine: SPA fast path vs hash path (best of reps)",
            &[
                "network",
                "nodes",
                "arcs",
                "PageRank",
                "sweeps (hash)",
                "sweeps (SPA)",
                "Convert2SuperNode",
                "sweep speedup",
            ],
            &rows,
        )
    );
    if kernel_breakdown {
        print!(
            "\n{}",
            render_table(
                "Sweep kernel breakdown (phase split from one attributed run)",
                &[
                    "network",
                    "leg",
                    "kernel path",
                    "sweeps",
                    "accumulate",
                    "gather",
                    "scan",
                    "vs hash",
                ],
                &breakdown_rows,
            )
        );
    }

    let out = std::env::var("ASA_HOSTPERF_OUT").unwrap_or_else(|_| "BENCH_hostperf.json".into());
    let doc = serde_json::json!({
        "bench": "hostperf",
        "scale_div": scale_div(),
        "reps": reps,
        "meta": asa_bench::with_profile_summary(
            run_metadata("dblp-like+soc-pokec-like", &infomap_config()),
            &obs,
        ),
        "networks": docs,
    });
    std::fs::write(&out, serde_json::to_string_pretty(&doc).unwrap()).expect("write bench json");
    println!("\nwrote {out}");
    drop(_root);
    args.export_trace(&obs);
    args.export_metrics(&obs);
    args.export_profile(&obs);
    let _ = obs.flush();
}
