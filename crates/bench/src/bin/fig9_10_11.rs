//! Figures 9, 10, 11 — per-core averages across core counts.
//!
//! For the Amazon- and DBLP-like networks at 1–16 simulated cores, the
//! average per-core instruction count (Fig. 9), branch misprediction count
//! (Fig. 10), and CPI (Fig. 11), Baseline vs ASA. Paper expectations:
//! 12–15% instruction reduction, 40–46% misprediction reduction, 20–21%
//! CPI reduction — each consistent across core counts.

use asa_accel::AsaConfig;
use asa_bench::{fmt_count, fmt_pct, load_network, render_table, simulate};
use asa_graph::generators::PaperNetwork;
use asa_infomap::instrumented::Device;

fn main() {
    for net in [PaperNetwork::Amazon, PaperNetwork::Dblp] {
        let (graph, _) = load_network(net);
        let mut rows9 = Vec::new();
        let mut rows10 = Vec::new();
        let mut rows11 = Vec::new();

        for cores in [1usize, 2, 4, 8, 16] {
            let base = simulate(&graph, cores, Device::SoftwareHash);
            let asa = simulate(&graph, cores, Device::Asa(AsaConfig::paper_default()));

            let red = |b: f64, a: f64| if b > 0.0 { (b - a) / b } else { 0.0 };
            rows9.push(vec![
                format!("{cores}"),
                fmt_count(base.instructions_per_core() as u64),
                fmt_count(asa.instructions_per_core() as u64),
                fmt_pct(red(
                    base.instructions_per_core(),
                    asa.instructions_per_core(),
                )),
            ]);
            rows10.push(vec![
                format!("{cores}"),
                fmt_count(base.mispredictions_per_core() as u64),
                fmt_count(asa.mispredictions_per_core() as u64),
                fmt_pct(red(
                    base.mispredictions_per_core(),
                    asa.mispredictions_per_core(),
                )),
            ]);
            rows11.push(vec![
                format!("{cores}"),
                format!("{:.3}", base.avg_core_cpi()),
                format!("{:.3}", asa.avg_core_cpi()),
                fmt_pct(red(base.avg_core_cpi(), asa.avg_core_cpi())),
            ]);
        }

        print!(
            "{}",
            render_table(
                &format!("Fig 9: avg instructions per core, {}-like", net.name()),
                &["cores", "Baseline", "ASA", "reduction"],
                &rows9,
            )
        );
        println!();
        print!(
            "{}",
            render_table(
                &format!(
                    "Fig 10: avg branch mispredictions per core, {}-like",
                    net.name()
                ),
                &["cores", "Baseline", "ASA", "reduction"],
                &rows10,
            )
        );
        println!();
        print!(
            "{}",
            render_table(
                &format!("Fig 11: avg CPI per core, {}-like", net.name()),
                &["cores", "Baseline", "ASA", "reduction"],
                &rows11,
            )
        );
        println!();
    }
    println!("paper expectation: instr -12% (amazon) / -15% (dblp); mispredicts -40% / -46%; CPI -20% / -21% — stable across cores");
}
