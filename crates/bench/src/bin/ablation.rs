//! Ablations of the design choices DESIGN.md calls out.
//!
//! 1. **CAM capacity** (extends Fig. 5/6): hash-op speedup and overflow
//!    share as the per-core CAM shrinks from 16 KB to 1 KB.
//! 2. **Branch predictor**: Baseline misprediction counts under bimodal vs
//!    gshare — how much of the software hash penalty survives a better
//!    predictor.
//! 3. **Hardware prefetching**: enabling a next-line stream prefetcher
//!    helps the open-addressing table (sequential probes) far more than
//!    the chained Baseline (pointer chases) — quantifying the paper's
//!    claim that collision chains defeat prefetchers.
//! 4. **Software table organization**: chained vs linear-probe vs ASA.

use asa_accel::{AsaConfig, EvictionPolicy};
use asa_bench::{fmt_count, fmt_pct, fmt_secs, infomap_config, load_network, render_table};
use asa_graph::generators::PaperNetwork;
use asa_infomap::instrumented::{simulate_infomap, Device};
use asa_simarch::{MachineConfig, PredictorKind};

fn main() {
    let (graph, _) = load_network(PaperNetwork::Pokec);
    let icfg = infomap_config();
    let mcfg = MachineConfig::baseline(1);

    // --- 1. CAM capacity sweep.
    let base = simulate_infomap(&graph, &icfg, &mcfg, Device::SoftwareHash);
    let mut rows = Vec::new();
    for kb in [1usize, 2, 4, 8, 16] {
        let asa = simulate_infomap(
            &graph,
            &icfg,
            &mcfg,
            Device::Asa(AsaConfig::with_cam_kb(kb)),
        );
        let stats = asa.asa_stats.expect("asa stats");
        rows.push(vec![
            format!("{kb} KB"),
            fmt_secs(asa.hash_seconds()),
            format!("{:.2}x", base.hash_seconds() / asa.hash_seconds()),
            fmt_pct(asa.overflow_share()),
            fmt_pct(stats.overflow_rate),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Ablation 1: CAM capacity vs speedup (soc-pokec-like, 1 core)",
            &[
                "CAM",
                "ASA hash (s)",
                "speedup vs baseline",
                "overflow time share",
                "gathers overflowed"
            ],
            &rows,
        )
    );
    println!();

    // --- 2. Branch predictor organization.
    let mut rows = Vec::new();
    for (name, kind, history) in [
        ("bimodal", PredictorKind::Bimodal, 0u32),
        ("gshare", PredictorKind::Gshare, 8),
    ] {
        let cfg = MachineConfig {
            predictor: kind,
            predictor_history_bits: history,
            ..MachineConfig::baseline(1)
        };
        let b = simulate_infomap(&graph, &icfg, &cfg, Device::SoftwareHash);
        let a = simulate_infomap(&graph, &icfg, &cfg, Device::Asa(AsaConfig::paper_default()));
        rows.push(vec![
            name.to_string(),
            fmt_count(b.total.mispredictions),
            fmt_count(a.total.mispredictions),
            fmt_pct(
                (b.total.mispredictions - a.total.mispredictions) as f64
                    / b.total.mispredictions.max(1) as f64,
            ),
            format!("{:.2}x", b.hash_seconds() / a.hash_seconds()),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Ablation 2: predictor organization (mispredictions, Baseline vs ASA)",
            &[
                "predictor",
                "Baseline mispredicts",
                "ASA mispredicts",
                "reduction",
                "hash speedup"
            ],
            &rows,
        )
    );
    println!();

    // --- 3. Next-line prefetcher.
    let mut rows = Vec::new();
    for device in [
        Device::SoftwareHash,
        Device::LinearProbe,
        Device::Asa(AsaConfig::paper_default()),
    ] {
        let off = simulate_infomap(&graph, &icfg, &mcfg, device);
        let pf_cfg = MachineConfig {
            prefetch_next_line: true,
            ..MachineConfig::baseline(1)
        };
        let on = simulate_infomap(&graph, &icfg, &pf_cfg, device);
        rows.push(vec![
            device.name().to_string(),
            fmt_count(off.total.l1_misses),
            fmt_count(on.total.l1_misses),
            fmt_pct(
                (off.total.l1_misses.saturating_sub(on.total.l1_misses)) as f64
                    / off.total.l1_misses.max(1) as f64,
            ),
            fmt_pct((off.total.cycles - on.total.cycles) / off.total.cycles),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Ablation 3: next-line prefetcher (L1 misses and cycles saved)",
            &[
                "device",
                "L1 misses (no pf)",
                "L1 misses (pf)",
                "miss reduction",
                "cycle reduction"
            ],
            &rows,
        )
    );
    println!();

    // --- 3b. CAM eviction policy: LRU (the ASA design) vs FIFO.
    let mut rows = Vec::new();
    for (name, policy) in [("LRU", EvictionPolicy::Lru), ("FIFO", EvictionPolicy::Fifo)] {
        // A 2KB CAM keeps eviction pressure high enough to differentiate.
        let cfg = AsaConfig {
            policy,
            ..AsaConfig::with_cam_kb(2)
        };
        let run = simulate_infomap(&graph, &icfg, &mcfg, Device::Asa(cfg));
        let stats = run.asa_stats.expect("asa stats");
        rows.push(vec![
            name.to_string(),
            fmt_secs(run.hash_seconds()),
            fmt_count(stats.evictions),
            fmt_pct(run.overflow_share()),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Ablation 3b: CAM eviction policy at 2KB (LRU = Chao et al.'s choice)",
            &["policy", "hash time", "evictions", "overflow time share"],
            &rows,
        )
    );
    println!();

    // --- 4. Table organization.
    let mut rows = Vec::new();
    for device in [
        Device::SoftwareHash,
        Device::LinearProbe,
        Device::Asa(AsaConfig::paper_default()),
    ] {
        let run = simulate_infomap(&graph, &icfg, &mcfg, device);
        rows.push(vec![
            device.name().to_string(),
            fmt_secs(run.hash_seconds()),
            fmt_count(run.total.instructions),
            fmt_count(run.total.mispredictions),
            format!("{:.3}", run.total.cpi()),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Ablation 4: accumulator organization (soc-pokec-like, 1 core)",
            &["device", "hash time", "instructions", "mispredicts", "CPI"],
            &rows,
        )
    );
    println!(
        "\nreading: ASA wins on every axis. The prefetcher cuts the Baseline's L1 misses \
         substantially yet recovers almost no cycles — the chained table's cost is \
         serialized pointer-chase latency and branch flushes, exactly the paper's \
         argument for why general-purpose memory-side tricks cannot substitute for ASA. \
         Open addressing trades pointer chases for full-table gather sweeps and loses \
         outright at Infomap's tiny per-vertex table sizes."
    );
}
