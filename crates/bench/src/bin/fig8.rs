//! Figure 8 — total instructions, branch mispredictions, and CPI for the
//! big networks, Baseline vs ASA (single core).
//!
//! Paper expectations: up to 24% fewer instructions (8a), up to 59% fewer
//! mispredicted branches (8b), and an 18–21% CPI reduction (8c) for
//! YouTube / Pokec / Orkut.

use asa_accel::AsaConfig;
use asa_bench::{fmt_count, fmt_pct, load_network, render_table, simulate};
use asa_graph::generators::PaperNetwork;
use asa_infomap::instrumented::Device;
use asa_simarch::report::ComparisonRow;

fn main() {
    let mut rows_instr = Vec::new();
    let mut rows_miss = Vec::new();
    let mut rows_cpi = Vec::new();

    for net in [
        PaperNetwork::YouTube,
        PaperNetwork::Pokec,
        PaperNetwork::Orkut,
    ] {
        let (graph, _) = load_network(net);
        let cmp = ComparisonRow {
            label: net.name().to_string(),
            baseline: simulate(&graph, 1, Device::SoftwareHash).total,
            asa: simulate(&graph, 1, Device::Asa(AsaConfig::paper_default())).total,
        };

        rows_instr.push(vec![
            cmp.label.clone(),
            fmt_count(cmp.baseline.instructions),
            fmt_count(cmp.asa.instructions),
            fmt_pct(cmp.instruction_reduction()),
        ]);
        rows_miss.push(vec![
            cmp.label.clone(),
            fmt_count(cmp.baseline.mispredictions),
            fmt_count(cmp.asa.mispredictions),
            fmt_pct(cmp.mispredict_reduction()),
        ]);
        rows_cpi.push(vec![
            cmp.label.clone(),
            format!("{:.3}", cmp.baseline.cpi()),
            format!("{:.3}", cmp.asa.cpi()),
            fmt_pct(cmp.cpi_reduction()),
        ]);
    }

    print!(
        "{}",
        render_table(
            "Fig 8a: total instructions, Baseline vs ASA (1 core)",
            &["network", "Baseline", "ASA", "reduction"],
            &rows_instr,
        )
    );
    println!();
    print!(
        "{}",
        render_table(
            "Fig 8b: mispredicted branches, Baseline vs ASA (1 core)",
            &["network", "Baseline", "ASA", "reduction"],
            &rows_miss,
        )
    );
    println!();
    print!(
        "{}",
        render_table(
            "Fig 8c: CPI, Baseline vs ASA (1 core)",
            &["network", "Baseline", "ASA", "reduction"],
            &rows_cpi,
        )
    );
    println!("\npaper expectation: instructions -24%, mispredictions up to -59%, CPI -(18-21)% on the big networks");
}
