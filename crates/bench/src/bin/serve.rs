//! Serving-layer load generator: open-loop arrivals against
//! [`asa_serve::ServeEngine`] at several offered-load levels, swept
//! across engine shard counts.
//!
//! The generator builds a pool of synthetic graphs (Barabási–Albert,
//! R-MAT, and LFR families at two sizes each), estimates a *single
//! worker's* service capacity from sequential runs, then drives a fresh
//! engine at several multiples of that capacity with fixed interarrival
//! times — open loop: submission never waits for completions, exactly the
//! arrival process that exposes queueing, degradation, and shedding
//! behaviour. The same absolute offered loads repeat for shards ∈
//! {1, 2, 4} (one worker per shard), so the scaling curve isolates what
//! sharding buys: aggregate queue capacity, replication, and stealing.
//!
//! Per level it reports exact p50/p95/p99 latency over the resolved
//! requests (computed from the collected samples, not histogram buckets)
//! with the queue-wait and service components separated, throughput,
//! cache hit rate, shed rate, and steal/replication counts. Writes
//! `BENCH_serve.json` into the working directory (override with
//! `ASA_SERVE_OUT`): the top-level `levels` array is the shards=1 curve
//! (the historical schema), `shard_sweep` carries every shard count.
//!
//! `--smoke` shrinks the graph pool and request counts for CI.
//! `--shards N` restricts the sweep to one shard count; `--no-steal`
//! disables work stealing (`--steal` re-enables it explicitly).
//! Telemetry: `--obs-out <path>` / `--progress` (also `ASA_OBS_OUT`,
//! `ASA_PROGRESS=1`) stream per-level records and the engine's serving
//! metrics (queue-depth gauges, per-class latency histograms, counters).
//! `--trace-out <path>` (also `ASA_TRACE_OUT`) attaches the flight
//! recorder, prints a tail-latency attribution for the slowest
//! `ASA_TAIL_PCT`% of requests (default 5%), and writes a Chrome trace —
//! load it at <https://ui.perfetto.dev>.

use std::sync::Arc;
use std::time::{Duration, Instant};

use asa_bench::{fmt_count, fmt_pct, fmt_secs, render_table, run_metadata, scale_div, ObsArgs};
use asa_graph::generators::{barabasi_albert, lfr_benchmark, rmat, LfrConfig, RmatConfig};
use asa_graph::CsrGraph;
use asa_infomap::{detect_communities, InfomapConfig};
use asa_obs::record;
use asa_serve::{Outcome, Request, ServeConfig, ServeEngine};

struct Workload {
    family: &'static str,
    graph: Arc<CsrGraph>,
}

/// Two sizes per family; `--smoke` keeps only the small ones.
fn build_pool(smoke: bool) -> Vec<Workload> {
    let mut pool = Vec::new();
    let ba_sizes: &[(usize, usize)] = if smoke {
        &[(800, 4)]
    } else {
        &[(3_000, 4), (8_000, 5)]
    };
    for (i, &(n, m)) in ba_sizes.iter().enumerate() {
        pool.push(Workload {
            family: "ba",
            graph: Arc::new(barabasi_albert(n, m, 42 + i as u64)),
        });
    }
    let rmat_scales: &[u32] = if smoke { &[9] } else { &[11, 12] };
    for (i, &scale) in rmat_scales.iter().enumerate() {
        pool.push(Workload {
            family: "rmat",
            graph: Arc::new(rmat(&RmatConfig::graph500(scale, 8), 7 + i as u64)),
        });
    }
    let lfr_sizes: &[usize] = if smoke { &[600] } else { &[1_200, 2_500] };
    for (i, &n) in lfr_sizes.iter().enumerate() {
        let cfg = LfrConfig {
            n,
            ..LfrConfig::default()
        };
        pool.push(Workload {
            family: "lfr",
            graph: Arc::new(lfr_benchmark(&cfg, 11 + i as u64).graph),
        });
    }
    pool
}

/// A few distinct configurations per graph, so the cache key space is
/// larger than the graph pool: repeated keys produce hits while the rest
/// keeps the workers busy enough for queueing behaviour to show.
fn config_variants() -> Vec<InfomapConfig> {
    [20usize, 12, 8]
        .iter()
        .map(|&max_sweeps| InfomapConfig {
            max_sweeps,
            ..InfomapConfig::default()
        })
        .collect()
}

/// Exact nearest-rank percentile over resolved-latency samples.
fn percentile_us(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64
}

/// p50/p95/p99 triple over unsorted microsecond samples.
fn pct_triple(samples: &mut [u64]) -> (f64, f64, f64) {
    samples.sort_unstable();
    (
        percentile_us(samples, 0.50),
        percentile_us(samples, 0.95),
        percentile_us(samples, 0.99),
    )
}

/// Mean sequential service time over one pass of the pool: the basis of
/// the single-worker capacity estimate (`1 / mean_service`).
fn estimate_service(pool: &[Workload], cfg: &InfomapConfig) -> Duration {
    let t = Instant::now();
    for w in pool {
        let _ = detect_communities(&w.graph, cfg);
    }
    t.elapsed() / pool.len() as u32
}

struct LevelReport {
    offered_rps: f64,
    requests: usize,
    resolved_with_result: usize,
    shed: usize,
    deadline_exceeded: usize,
    degraded: usize,
    throughput_rps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    queue_p50_us: f64,
    queue_p95_us: f64,
    queue_p99_us: f64,
    service_p50_us: f64,
    service_p95_us: f64,
    service_p99_us: f64,
    cache_hit_rate: f64,
    shed_rate: f64,
    queue_depth_max: u64,
    steals: u64,
    replications: u64,
    stolen_runs: usize,
}

impl LevelReport {
    fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "offered_rps": self.offered_rps,
            "requests": self.requests,
            "resolved_with_result": self.resolved_with_result,
            "shed": self.shed,
            "deadline_exceeded": self.deadline_exceeded,
            "degraded": self.degraded,
            "throughput_rps": self.throughput_rps,
            "latency_us": serde_json::json!({
                "p50": self.p50_us, "p95": self.p95_us, "p99": self.p99_us
            }),
            "queue_us": serde_json::json!({
                "p50": self.queue_p50_us, "p95": self.queue_p95_us, "p99": self.queue_p99_us
            }),
            "service_us": serde_json::json!({
                "p50": self.service_p50_us, "p95": self.service_p95_us, "p99": self.service_p99_us
            }),
            "cache_hit_rate": self.cache_hit_rate,
            "shed_rate": self.shed_rate,
            "queue_depth_max": self.queue_depth_max,
            "steals": self.steals,
            "replications": self.replications,
            "stolen_runs": self.stolen_runs,
        })
    }
}

#[allow(clippy::too_many_lines)]
fn run_level(
    pool: &[Workload],
    variants: &[InfomapConfig],
    offered_rps: f64,
    requests: usize,
    shards: usize,
    steal: bool,
    obs: &asa_obs::Obs,
) -> LevelReport {
    // Fresh engine per level: each level starts with a cold cache and
    // clean statistics, so levels are comparable. One worker per shard,
    // and per-shard queue bounds — aggregate capacity grows with shards.
    let engine = ServeEngine::start(ServeConfig {
        shards,
        workers: 1,
        steal,
        queue_capacity_interactive: 16,
        queue_capacity_batch: 32,
        cache_capacity: (pool.len() * variants.len()).div_ceil(2),
        degrade_depth: 8,
        obs: obs.clone(),
        ..ServeConfig::default()
    });

    let interarrival = Duration::from_secs_f64(1.0 / offered_rps);
    let start = Instant::now();
    let mut handles = Vec::with_capacity(requests);
    for i in 0..requests {
        // Open loop: submit at the scheduled instant regardless of how
        // far behind the engine is.
        let due = start + interarrival * i as u32;
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let workload = &pool[i % pool.len()];
        let config = variants[(i / pool.len()) % variants.len()].clone();
        let mut req = if i % 3 == 0 {
            Request::interactive(Arc::clone(&workload.graph))
        } else {
            Request::batch(Arc::clone(&workload.graph))
        }
        .with_config(config);
        if i % 8 == 0 {
            req = req.with_deadline(Duration::from_secs(10));
        }
        handles.push(engine.submit(req));
    }

    let mut latencies_us: Vec<u64> = Vec::with_capacity(requests);
    let mut queue_us: Vec<u64> = Vec::with_capacity(requests);
    let mut service_us: Vec<u64> = Vec::with_capacity(requests);
    let (mut resolved, mut shed, mut deadline_exceeded, mut degraded, mut hits) = (0, 0, 0, 0, 0);
    let mut stolen_runs = 0usize;
    for h in &handles {
        let response = h.wait();
        match response.outcome {
            Outcome::Ok(_) => resolved += 1,
            Outcome::Degraded { .. } => {
                resolved += 1;
                degraded += 1;
            }
            Outcome::Overloaded => shed += 1,
            Outcome::DeadlineExceeded => deadline_exceeded += 1,
        }
        if response.outcome.result().is_some() {
            latencies_us.push(response.total.as_micros() as u64);
            queue_us.push(response.queued.as_micros() as u64);
            service_us.push(response.service.as_micros() as u64);
            if response.cache_hit {
                hits += 1;
            }
            if response.stolen {
                stolen_runs += 1;
            }
        }
    }
    let elapsed = start.elapsed();
    let stats = engine.shutdown();

    let (p50_us, p95_us, p99_us) = pct_triple(&mut latencies_us);
    let (queue_p50_us, queue_p95_us, queue_p99_us) = pct_triple(&mut queue_us);
    let (service_p50_us, service_p95_us, service_p99_us) = pct_triple(&mut service_us);
    let report = LevelReport {
        offered_rps,
        requests,
        resolved_with_result: resolved,
        shed,
        deadline_exceeded,
        degraded,
        throughput_rps: resolved as f64 / elapsed.as_secs_f64(),
        p50_us,
        p95_us,
        p99_us,
        queue_p50_us,
        queue_p95_us,
        queue_p99_us,
        service_p50_us,
        service_p95_us,
        service_p99_us,
        cache_hit_rate: if resolved == 0 {
            0.0
        } else {
            hits as f64 / resolved as f64
        },
        shed_rate: shed as f64 / requests as f64,
        queue_depth_max: stats.queue_depth_max,
        steals: stats.steals,
        replications: stats.replications,
        stolen_runs,
    };
    record!(obs, "serve.level", {
        "shards": shards as u64,
        "offered_rps": report.offered_rps,
        "requests": report.requests,
        "throughput_rps": report.throughput_rps,
        "p50_us": report.p50_us,
        "p95_us": report.p95_us,
        "p99_us": report.p99_us,
        "queue_p50_us": report.queue_p50_us,
        "service_p50_us": report.service_p50_us,
        "cache_hit_rate": report.cache_hit_rate,
        "shed_rate": report.shed_rate,
        "steals": report.steals,
        "replications": report.replications,
    });
    report
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let steal = !argv.iter().any(|a| a == "--no-steal");
    let only_shards: Option<usize> = argv
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| argv.get(i + 1))
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1);
    let args = ObsArgs::parse();
    let obs = args.build();
    let _root = obs.span("serve-bench");

    let pool = {
        let _sp = obs.span("generate");
        build_pool(smoke)
    };
    let variants = config_variants();
    let requests_per_level = if smoke { 30 } else { 120 };
    let shard_counts: Vec<usize> = only_shards.map_or_else(|| vec![1, 2, 4], |n| vec![n]);

    // Anchor every shard count to the same absolute offered loads, based
    // on ONE worker's capacity: the scaling curve then shows what extra
    // shards buy at identical arrival processes.
    let mean_service = {
        let _sp = obs.span("capacity-estimate");
        estimate_service(&pool, &variants[0])
    };
    let capacity_rps = 1.0 / mean_service.as_secs_f64().max(1e-9);
    println!(
        "pool: {} graphs x {} configs, mean sequential service {}, \
         single-worker capacity {:.1} req/s; shards {:?}, steal {}",
        pool.len(),
        variants.len(),
        fmt_secs(mean_service.as_secs_f64()),
        capacity_rps,
        shard_counts,
        if steal { "on" } else { "off" },
    );

    // Under, at, and well past single-worker capacity. The cache absorbs
    // repeats, so the engine sustains more than the no-cache estimate;
    // the top level still drives shards=1 into degradation/shedding.
    let load_factors = [0.5, 2.0, 8.0];
    let mut sweep: Vec<(usize, Vec<LevelReport>)> = Vec::new();
    for &shards in &shard_counts {
        let mut reports = Vec::new();
        for &factor in &load_factors {
            let offered = (capacity_rps * factor).max(1.0);
            let _sp = obs.span("level");
            reports.push(run_level(
                &pool,
                &variants,
                offered,
                requests_per_level,
                shards,
                steal,
                &obs,
            ));
        }
        sweep.push((shards, reports));
    }

    for (shards, reports) in &sweep {
        let rows: Vec<Vec<String>> = reports
            .iter()
            .map(|r| {
                vec![
                    format!("{:.1}", r.offered_rps),
                    fmt_count(r.requests as u64),
                    format!("{:.1}", r.throughput_rps),
                    fmt_secs(r.p50_us / 1e6),
                    fmt_secs(r.queue_p50_us / 1e6),
                    fmt_secs(r.p99_us / 1e6),
                    fmt_pct(r.cache_hit_rate),
                    fmt_pct(r.shed_rate),
                    format!("{}", r.steals),
                    format!("{}", r.replications),
                    format!("{}", r.queue_depth_max),
                ]
            })
            .collect();
        print!(
            "{}",
            render_table(
                &format!("Serving layer: open-loop load sweep, {shards} shard(s)"),
                &[
                    "offered req/s",
                    "requests",
                    "done req/s",
                    "p50",
                    "p50 queued",
                    "p99",
                    "cache hits",
                    "shed",
                    "steals",
                    "replications",
                    "max depth",
                ],
                &rows,
            )
        );
    }

    let workloads: Vec<serde_json::Value> = pool
        .iter()
        .map(|w| {
            serde_json::json!({
                "family": w.family,
                "nodes": w.graph.num_nodes(),
                "arcs": w.graph.num_arcs(),
            })
        })
        .collect();
    let shard_sweep: Vec<serde_json::Value> = sweep
        .iter()
        .map(|(shards, reports)| {
            serde_json::json!({
                "shards": shards,
                "workers_per_shard": 1,
                "steal": steal,
                "levels": reports.iter().map(LevelReport::to_json).collect::<Vec<_>>(),
            })
        })
        .collect();
    let doc = serde_json::json!({
        "bench": "serve",
        "scale_div": scale_div(),
        "smoke": smoke,
        "meta": asa_bench::with_profile_summary(run_metadata("ba+rmat+lfr", &variants[0]), &obs),
        "workers": 1,
        "steal": steal,
        "shard_counts": shard_counts,
        "config_variants": variants.len(),
        "mean_service_seconds": mean_service.as_secs_f64(),
        "capacity_est_rps": capacity_rps,
        "workloads": workloads,
        // Historical schema: the first swept shard count's curve (the
        // shards=1 baseline unless `--shards` restricted the sweep).
        "levels": sweep[0].1.iter().map(LevelReport::to_json).collect::<Vec<_>>(),
        "shard_sweep": shard_sweep,
    });
    let out = std::env::var("ASA_SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    std::fs::write(&out, serde_json::to_string_pretty(&doc).unwrap()).expect("write bench json");
    println!("\nwrote {out}");
    drop(_root);

    // With `--trace-out` the recorder captured every request's stage
    // tiling across all levels: attribute the slowest tail before dumping
    // the Chrome trace for Perfetto.
    if let Some(snap) = obs.trace_snapshot() {
        let tail_pct = std::env::var("ASA_TAIL_PCT")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|p| *p > 0.0 && *p <= 100.0)
            .unwrap_or(5.0);
        print!(
            "\n{}",
            asa_obs::tail::TailReport::from_snapshot(&snap, "request", tail_pct).render()
        );
    }
    args.export_trace(&obs);
    args.export_metrics(&obs);
    args.export_profile(&obs);
    let _ = obs.flush();
}
