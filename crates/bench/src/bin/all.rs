//! Runs every experiment binary in sequence, mirroring the paper's
//! evaluation section end to end. Equivalent to running each `table*` /
//! `fig*` / `quality` binary yourself; this exists so
//! `cargo run -p asa-bench --release --bin all | tee results.txt`
//! regenerates the whole evaluation in one go.
//!
//! `--progress` turns on telemetry heartbeats: the driver emits one
//! summary-sink record per experiment (name, exit, seconds) and exports
//! `ASA_PROGRESS=1` so every child binary streams its own per-sweep
//! heartbeat lines through its summary sink.

use std::process::Command;
use std::time::Instant;

use asa_bench::ObsArgs;
use asa_obs::record;

fn main() {
    let args = ObsArgs::parse();
    let obs = args.build();
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    let bins = [
        "table1",
        "table2",
        "fig2",
        "fig4",
        "fig5",
        "table3_4",
        "table5",
        "fig7",
        "fig8",
        "fig9_10_11",
        "quality",
        "ablation",
        "distributed",
        "spgemm",
        "hierarchy",
        "simthroughput",
    ];
    for bin in bins {
        println!("\n{}", "=".repeat(72));
        println!("== {bin}");
        println!("{}\n", "=".repeat(72));
        let t = Instant::now();
        let mut cmd = Command::new(dir.join(bin));
        if args.progress {
            cmd.env("ASA_PROGRESS", "1");
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        record!(obs, "experiment", {
            "bin": bin,
            "ok": status.success(),
            "seconds": t.elapsed().as_secs_f64(),
        });
        if !status.success() {
            eprintln!("experiment {bin} failed with {status}");
            std::process::exit(1);
        }
    }
    let _ = obs.flush();
}
