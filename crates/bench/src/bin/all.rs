//! Runs every experiment binary in sequence, mirroring the paper's
//! evaluation section end to end. Equivalent to running each `table*` /
//! `fig*` / `quality` binary yourself; this exists so
//! `cargo run -p asa-bench --release --bin all | tee results.txt`
//! regenerates the whole evaluation in one go.
//!
//! Flags are forwarded to every child uniformly:
//! `--progress` turns on telemetry heartbeats (the driver emits one
//! summary-sink record per experiment and exports `ASA_PROGRESS=1` so
//! every child streams its own per-sweep heartbeat lines); `--obs-out
//! <path>` gives each child its own derived JSONL trace (`<stem>-<bin>`)
//! next to the driver's, via `ASA_OBS_OUT`; `--trace-out <path>` does the
//! same for Chrome flight-recorder traces via `ASA_TRACE_OUT` (binaries
//! that support it each write `<stem>-<bin>.<ext>`); `--metrics-out
//! <path>` does the same for Prometheus expositions via
//! `ASA_METRICS_OUT`, and `ASA_METRICS_ADDR` is forwarded verbatim
//! (children run sequentially, so they can share one bind address);
//! `--prof-out <path>` does the same for folded sampling profiles (and
//! their sibling `.svg` flamegraphs) via `ASA_PROF_OUT`;
//! `--smoke` is passed
//! through to the binaries that support it (`simthroughput`, `serve`).
//! `--shards <n>`, `--steal`, and `--no-steal` are forwarded to `serve`
//! so a sweep restricted to one shard count (or with stealing disabled)
//! can run through the full driver.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

use asa_bench::ObsArgs;
use asa_obs::record;

/// Binaries that accept `--smoke` for a reduced CI-sized run.
const SMOKE_AWARE: &[&str] = &["simthroughput", "serve"];

/// Derives a per-child trace path from the driver's `--obs-out` path:
/// `traces/run.jsonl` -> `traces/run-table1.jsonl`.
fn child_obs_path(base: &Path, bin: &str) -> PathBuf {
    let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    match base.extension().and_then(|s| s.to_str()) {
        Some(ext) => base.with_file_name(format!("{stem}-{bin}.{ext}")),
        None => base.with_file_name(format!("{stem}-{bin}")),
    }
}

/// Extracts the serve-only passthrough flags (`--shards <n>`,
/// `--steal` / `--no-steal`) from the driver's argv.
fn serve_flags(argv: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    if let Some(i) = argv.iter().position(|a| a == "--shards") {
        if let Some(v) = argv.get(i + 1) {
            out.push("--shards".into());
            out.push(v.clone());
        }
    }
    for flag in ["--steal", "--no-steal"] {
        if argv.iter().any(|a| a == flag) {
            out.push(flag.into());
        }
    }
    out
}

fn main() {
    let mut args = ObsArgs::parse();
    let argv: Vec<String> = std::env::args().collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    // Metrics destinations belong to the children, not the driver: each
    // child gets a derived sibling path, and the scrape address must stay
    // free for whichever child is currently running (they run one at a
    // time). Taking these before `build()` keeps the driver from binding
    // the port for the whole run or attaching a collector it never scrapes.
    let metrics_out = args.metrics_out.take();
    let metrics_addr = args.metrics_addr.take();
    // Profiles likewise belong to the children: each gets a derived
    // sibling folded-profile path (and writes its own `.svg` next to it).
    let prof_out = args.prof_out.take();
    let obs = args.build();
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    let bins = [
        "table1",
        "table2",
        "fig2",
        "fig4",
        "fig5",
        "table3_4",
        "table5",
        "fig7",
        "fig8",
        "fig9_10_11",
        "quality",
        "ablation",
        "distributed",
        "spgemm",
        "hierarchy",
        "simthroughput",
        "serve",
    ];
    for bin in bins {
        println!("\n{}", "=".repeat(72));
        println!("== {bin}");
        println!("{}\n", "=".repeat(72));
        let t = Instant::now();
        let mut cmd = Command::new(dir.join(bin));
        if args.progress {
            cmd.env("ASA_PROGRESS", "1");
        }
        if let Some(base) = &args.obs_out {
            cmd.env("ASA_OBS_OUT", child_obs_path(base, bin));
        }
        if let Some(base) = &args.trace_out {
            cmd.env("ASA_TRACE_OUT", child_obs_path(base, bin));
        }
        if let Some(base) = &metrics_out {
            cmd.env("ASA_METRICS_OUT", child_obs_path(base, bin));
        }
        if let Some(addr) = &metrics_addr {
            cmd.env("ASA_METRICS_ADDR", addr);
        }
        if let Some(base) = &prof_out {
            cmd.env("ASA_PROF_OUT", child_obs_path(base, bin));
        }
        if smoke && SMOKE_AWARE.contains(&bin) {
            cmd.arg("--smoke");
        }
        if bin == "serve" {
            cmd.args(serve_flags(&argv));
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        record!(obs, "experiment", {
            "bin": bin,
            "ok": status.success(),
            "seconds": t.elapsed().as_secs_f64(),
        });
        if !status.success() {
            eprintln!("experiment {bin} failed with {status}");
            std::process::exit(1);
        }
    }
    let _ = obs.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_obs_paths_are_distinct_and_sibling() {
        let base = PathBuf::from("traces/run.jsonl");
        let a = child_obs_path(&base, "table1");
        let b = child_obs_path(&base, "serve");
        assert_eq!(a, PathBuf::from("traces/run-table1.jsonl"));
        assert_eq!(b, PathBuf::from("traces/run-serve.jsonl"));
        assert_ne!(a, b);
        assert_eq!(
            child_obs_path(&PathBuf::from("trace"), "fig2"),
            PathBuf::from("trace-fig2")
        );
    }

    #[test]
    fn serve_flags_forwarded_verbatim() {
        let argv: Vec<String> = ["all", "--smoke", "--shards", "4", "--no-steal"]
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(serve_flags(&argv), vec!["--shards", "4", "--no-steal"]);
        let bare: Vec<String> = ["all", "--smoke"].iter().map(ToString::to_string).collect();
        assert!(serve_flags(&bare).is_empty());
    }
}
