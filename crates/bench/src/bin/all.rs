//! Runs every experiment binary in sequence, mirroring the paper's
//! evaluation section end to end. Equivalent to running each `table*` /
//! `fig*` / `quality` binary yourself; this exists so
//! `cargo run -p asa-bench --release --bin all | tee results.txt`
//! regenerates the whole evaluation in one go.

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    let bins = [
        "table1",
        "table2",
        "fig2",
        "fig4",
        "fig5",
        "table3_4",
        "table5",
        "fig7",
        "fig8",
        "fig9_10_11",
        "quality",
        "ablation",
        "distributed",
        "spgemm",
        "hierarchy",
        "simthroughput",
    ];
    for bin in bins {
        println!("\n{}", "=".repeat(72));
        println!("== {bin}");
        println!("{}\n", "=".repeat(72));
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("experiment {bin} failed with {status}");
            std::process::exit(1);
        }
    }
}
