//! Figure 2 — kernel and hash-operation cost breakdown.
//!
//! * Fig. 2a: share of total runtime per kernel (PageRank /
//!   FindBestCommunity / Convert2SuperNode / UpdateMembers), single-core
//!   wall clock, for the Pokec- and Orkut-like networks. The paper reports
//!   FindBestCommunity at 70–90%.
//! * Fig. 2b: share of FindBestCommunity spent on hash operations, from
//!   the simulated Baseline (the paper reports 50–65%).

use asa_bench::{fmt_pct, fmt_secs, infomap_config, load_network, render_table, simulate};
use asa_graph::generators::PaperNetwork;
use asa_infomap::instrumented::Device;
use asa_infomap::Infomap;

fn main() {
    let networks = [PaperNetwork::Pokec, PaperNetwork::Orkut];

    // Wall-clock timing is sensitive to allocator/page state left behind by
    // a previous network's run, so each Fig 2a measurement runs in a fresh
    // child process (`fig2 <network>` prints one CSV row and exits).
    if let Some(name) = std::env::args().nth(1) {
        let net = networks
            .into_iter()
            .find(|n| n.name() == name)
            .expect("unknown network argument");
        let (graph, _) = load_network(net);
        // The paper: "all the plots illustrated in Fig. 2 are single-core
        // execution" — pin to one thread. Wall clock is sensitive to host
        // allocator/page state, so take the fastest of three runs.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("single-thread pool");
        let best = (0..3)
            .map(|_| {
                pool.install(|| Infomap::new(infomap_config()).run(&graph))
                    .timings
            })
            .min_by(|a, b| {
                a.total()
                    .partial_cmp(&b.total())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("three runs");
        println!(
            "ROW,{},{},{},{},{},{}",
            net.name(),
            best.total().as_secs_f64(),
            best.pagerank.as_secs_f64(),
            best.find_best.as_secs_f64(),
            best.convert.as_secs_f64(),
            best.update.as_secs_f64()
        );
        return;
    }

    let exe = std::env::current_exe().expect("current exe");
    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    for net in networks {
        // Fig 2a in a fresh child process.
        let out = std::process::Command::new(&exe)
            .arg(net.name())
            .output()
            .expect("child run");
        assert!(out.status.success(), "fig2 child failed for {}", net.name());
        let stdout = String::from_utf8_lossy(&out.stdout);
        let row = stdout
            .lines()
            .find(|l| l.starts_with("ROW,"))
            .expect("child row");
        let cells: Vec<f64> = row.split(',').skip(2).map(|c| c.parse().unwrap()).collect();
        let (total, pagerank, find_best, convert, update) =
            (cells[0].max(1e-12), cells[1], cells[2], cells[3], cells[4]);
        rows_a.push(vec![
            net.name().to_string(),
            fmt_secs(total),
            fmt_pct(pagerank / total),
            fmt_pct(find_best / total),
            fmt_pct(convert / total),
            fmt_pct(update / total),
        ]);

        // Fig 2b: hash share of the simulated FindBestCommunity kernel.
        let (graph, _) = load_network(net);
        let sim = simulate(&graph, 1, Device::SoftwareHash);
        rows_b.push(vec![
            net.name().to_string(),
            fmt_secs(sim.kernel_seconds()),
            fmt_secs(sim.hash_seconds()),
            fmt_pct(sim.hash_share()),
        ]);
    }

    print!(
        "{}",
        render_table(
            "Fig 2a: kernel time breakdown (single run, wall clock)",
            &[
                "network",
                "total",
                "PageRank",
                "FindBestCommunity",
                "Convert2SuperNode",
                "UpdateMembers",
            ],
            &rows_a,
        )
    );
    println!();
    print!(
        "{}",
        render_table(
            "Fig 2b: hash operations within FindBestCommunity (simulated Baseline, 1 core)",
            &["network", "kernel time", "hash-ops time", "hash share"],
            &rows_b,
        )
    );
    println!(
        "\npaper expectation: FindBestCommunity 70-90% of total; hash ops 50-65% of the kernel"
    );
}
