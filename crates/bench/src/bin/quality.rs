//! Quality comparison on the LFR benchmark (paper Section I claim).
//!
//! The paper's motivation: "Infomap ... delivers better quality results in
//! the LFR benchmark compared to modularity-based algorithms." This bench
//! sweeps the LFR mixing parameter µ and reports NMI against the planted
//! partition for Infomap, Louvain, and label propagation.

use asa_baselines::{label_propagation, louvain, normalized_mutual_information, LouvainConfig};
use asa_bench::render_table;
use asa_graph::generators::{lfr_benchmark, LfrConfig};
use asa_infomap::{detect_communities, InfomapConfig};

fn main() {
    let mut rows = Vec::new();
    for mu10 in [1usize, 2, 3, 4, 5, 6] {
        let mu = mu10 as f64 / 10.0;
        let lfr = lfr_benchmark(
            &LfrConfig {
                n: 2000,
                mu,
                ..Default::default()
            },
            42 + mu10 as u64,
        );
        let truth = &lfr.ground_truth;

        let infomap = detect_communities(&lfr.graph, &InfomapConfig::default());
        let plain = detect_communities(
            &lfr.graph,
            &InfomapConfig {
                outer_loops: 1,
                ..Default::default()
            },
        );
        let louv = louvain(&lfr.graph, &LouvainConfig::default());
        let lp = label_propagation(&lfr.graph, 30, 7);

        rows.push(vec![
            format!("{mu:.1}"),
            format!(
                "{:.3}",
                normalized_mutual_information(&infomap.partition, truth)
            ),
            format!(
                "{:.3}",
                normalized_mutual_information(&plain.partition, truth)
            ),
            format!(
                "{:.3}",
                normalized_mutual_information(&louv.partition, truth)
            ),
            format!("{:.3}", normalized_mutual_information(&lp, truth)),
            format!("{}", infomap.num_communities()),
            format!("{}", truth.num_communities()),
        ]);
    }
    print!(
        "{}",
        render_table(
            "LFR quality sweep: NMI vs planted partition (n=2000)",
            &[
                "mu",
                "Infomap NMI",
                "Infomap (no refine)",
                "Louvain NMI",
                "LabelProp NMI",
                "Infomap #comms",
                "true #comms",
            ],
            &rows,
        )
    );
    println!("\npaper expectation (from refs [18], [1]): Infomap tracks the planted partition at least as well as modularity methods until mixing gets severe");
}
