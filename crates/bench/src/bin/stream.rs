//! Streaming-update benchmark: the incremental Infomap path against
//! fresh full runs over a mutating LFR graph.
//!
//! An LFR base graph seeds an [`IncrementalState`] with one full run,
//! then absorbs K delta batches of mixed inserts and deletes. Edits are
//! skewed toward two "hot" communities (where a social graph's churn
//! concentrates), with a tail of random cross-graph edits. After every
//! batch the harness times the incremental re-optimization *and* a fresh
//! full run on the merged graph at the same configuration, reporting
//! per-batch wall times, the codelength drift between the two answers,
//! frontier/ripple telemetry, and the quality guard's fallback rate.
//!
//! Writes `BENCH_stream.json` (override with `ASA_STREAM_OUT`); the
//! committed run gates the subsystem's acceptance criteria via the
//! schema test and `regress`: per-batch incremental updates ≥ 3× faster
//! than fresh runs with codelength drift ≤ 1%. `--smoke` shrinks the
//! graph and batch count for CI. Telemetry flags as in the other
//! benches: `--obs-out`, `--progress`, `--trace-out`, `--metrics-out`
//! (the `infomap.incr.*` gauges land in the Prometheus exposition).

use std::sync::Arc;
use std::time::Instant;

use asa_bench::{fmt_count, fmt_secs, render_table, run_metadata, scale_div, ObsArgs};
use asa_graph::delta::EdgeDelta;
use asa_graph::generators::{lfr_benchmark, LfrConfig};
use asa_graph::{NodeId, Partition};
use asa_infomap::incremental::{IncrementalConfig, IncrementalState};
use asa_infomap::{detect_communities, CancelToken, InfomapConfig};
use asa_obs::record;

/// Deterministic xorshift64* stream for edit generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    /// True with probability `num/den`.
    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next() % den < num
    }
}

/// The members of the two largest ground-truth communities: the churn
/// hotspot the edit stream skews toward.
fn hot_members(partition: &Partition) -> Vec<NodeId> {
    let mut sizes = vec![0usize; partition.num_communities()];
    for &label in partition.labels() {
        sizes[label as usize] += 1;
    }
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_unstable_by_key(|&c| std::cmp::Reverse(sizes[c]));
    let hot: Vec<u32> = order.into_iter().take(2).map(|c| c as u32).collect();
    partition
        .labels()
        .iter()
        .enumerate()
        .filter(|(_, l)| hot.contains(l))
        .map(|(u, _)| u as NodeId)
        .collect()
}

/// One mixed insert/delete batch: ~3:1 inserts to deletes, 80% of edits
/// confined to the hot communities. Deletes target arcs that exist in
/// the current merged graph, so they actually remove weight.
fn make_batch(rng: &mut Rng, state: &IncrementalState, hot: &[NodeId], edits: usize) -> EdgeDelta {
    let merged = state.merged();
    let n = merged.num_nodes();
    let (offsets, targets, _) = merged.out_csr();
    let mut delta = EdgeDelta::new();
    for _ in 0..edits {
        let in_hot = rng.chance(4, 5);
        let pick = |rng: &mut Rng| -> NodeId {
            if in_hot {
                hot[rng.below(hot.len())]
            } else {
                rng.below(n) as NodeId
            }
        };
        if rng.chance(3, 4) {
            let (u, v) = (pick(rng), pick(rng));
            if u != v {
                delta.insert(u, v, 1.0);
            }
        } else {
            // Delete a live arc of a picked vertex, when it has any.
            let u = pick(rng);
            let (lo, hi) = (
                offsets[u as usize] as usize,
                offsets[u as usize + 1] as usize,
            );
            if lo < hi {
                let v = targets[lo + rng.below(hi - lo)];
                if u != v {
                    delta.delete(u, v);
                }
            }
        }
    }
    delta
}

struct BatchReport {
    batch: usize,
    ops: usize,
    incremental: bool,
    fallback: Option<&'static str>,
    frontier_size: usize,
    ripple_rounds: usize,
    incremental_seconds: f64,
    fresh_seconds: f64,
    incremental_codelength: f64,
    fresh_codelength: f64,
    /// Relative codelength excess of the incremental answer over the
    /// fresh one (0 for fallbacks: those *are* the fresh run).
    drift: f64,
}

impl BatchReport {
    fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "batch": self.batch,
            "ops": self.ops,
            "incremental": self.incremental,
            "fallback": self.fallback,
            "frontier_size": self.frontier_size,
            "ripple_rounds": self.ripple_rounds,
            "incremental_seconds": self.incremental_seconds,
            "fresh_seconds": self.fresh_seconds,
            "incremental_codelength": self.incremental_codelength,
            "fresh_codelength": self.fresh_codelength,
            "drift": self.drift,
        })
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let args = ObsArgs::parse();
    let obs = args.build();
    let _root = obs.span("stream-bench");

    let (n, batches, edits_per_batch) = if smoke { (800, 5, 16) } else { (5_000, 16, 40) };
    let lfr_cfg = LfrConfig {
        n,
        ..LfrConfig::default()
    };
    let lfr = {
        let _sp = obs.span("generate");
        lfr_benchmark(&lfr_cfg, 23)
    };
    let base = Arc::new(lfr.graph);
    let hot = hot_members(&lfr.ground_truth);
    let icfg = InfomapConfig::default();
    let cancel = CancelToken::none();

    let t = Instant::now();
    let (mut state, seed_result) = {
        let _sp = obs.span("seed");
        IncrementalState::new(
            Arc::clone(&base),
            icfg.clone(),
            IncrementalConfig::default(),
            &obs,
            &cancel,
        )
    };
    let seed_seconds = t.elapsed().as_secs_f64();
    println!(
        "base: lfr n={} arcs={} | seeded in {} at codelength {:.4} bits, {} modules",
        base.num_nodes(),
        base.num_arcs(),
        fmt_secs(seed_seconds),
        seed_result.codelength,
        seed_result.num_communities(),
    );

    let mut rng = Rng(0x5eed_5eed_5eed_5eed);
    let mut reports: Vec<BatchReport> = Vec::with_capacity(batches);
    for batch in 0..batches {
        let delta = make_batch(&mut rng, &state, &hot, edits_per_batch);
        let ops = delta.num_ops();
        let _sp = obs.span("batch");
        let t = Instant::now();
        let out = state.apply(&delta, &obs, &cancel);
        let incremental_seconds = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let fresh = {
            let _sp = obs.span("fresh");
            detect_communities(state.merged(), &icfg)
        };
        let fresh_seconds = t.elapsed().as_secs_f64();
        let drift = if out.incremental() {
            (state.codelength() - fresh.codelength) / fresh.codelength
        } else {
            0.0
        };
        record!(obs, "stream.batch", {
            "batch": batch as u64,
            "ops": ops as u64,
            "incremental": out.incremental(),
            "frontier_size": out.frontier_size as u64,
            "ripple_rounds": out.ripple_rounds as u64,
            "incremental_seconds": incremental_seconds,
            "fresh_seconds": fresh_seconds,
            "drift": drift,
        });
        reports.push(BatchReport {
            batch,
            ops,
            incremental: out.incremental(),
            fallback: out.fallback.map(|f| f.name()),
            frontier_size: out.frontier_size,
            ripple_rounds: out.ripple_rounds,
            incremental_seconds,
            fresh_seconds,
            incremental_codelength: out.result.codelength,
            fresh_codelength: fresh.codelength,
            drift,
        });
    }

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.batch),
                fmt_count(r.ops as u64),
                if r.incremental {
                    "incremental".into()
                } else {
                    format!("fallback:{}", r.fallback.unwrap_or("?"))
                },
                fmt_count(r.frontier_size as u64),
                format!("{}", r.ripple_rounds),
                fmt_secs(r.incremental_seconds),
                fmt_secs(r.fresh_seconds),
                format!("{:.2}x", r.fresh_seconds / r.incremental_seconds.max(1e-12)),
                format!("{:+.4}%", r.drift * 100.0),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Streaming updates: incremental vs fresh full runs",
            &["batch", "ops", "path", "frontier", "ripples", "incr", "fresh", "speedup", "drift",],
            &rows,
        )
    );

    let incr: Vec<&BatchReport> = reports.iter().filter(|r| r.incremental).collect();
    let fallbacks = reports.len() - incr.len();
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let mean_incremental_seconds = mean(
        &incr
            .iter()
            .map(|r| r.incremental_seconds)
            .collect::<Vec<_>>(),
    );
    let mean_fresh_seconds = mean(&incr.iter().map(|r| r.fresh_seconds).collect::<Vec<_>>());
    let incremental_speedup = mean_fresh_seconds / mean_incremental_seconds.max(1e-12);
    let max_drift = incr.iter().map(|r| r.drift.max(0.0)).fold(0.0, f64::max);
    let mean_drift = mean(&incr.iter().map(|r| r.drift).collect::<Vec<_>>());
    let fallback_rate = fallbacks as f64 / reports.len().max(1) as f64;
    println!(
        "\nsummary: {} incremental / {} fallback batches | speedup {:.2}x | \
         max drift {:+.4}% | fallback rate {:.1}%",
        incr.len(),
        fallbacks,
        incremental_speedup,
        max_drift * 100.0,
        fallback_rate * 100.0,
    );

    let doc = serde_json::json!({
        "bench": "stream",
        "scale_div": scale_div(),
        "smoke": smoke,
        "meta": asa_bench::with_profile_summary(run_metadata("lfr-stream", &icfg), &obs),
        "nodes": base.num_nodes(),
        "arcs": base.num_arcs(),
        "batches": batches,
        "edits_per_batch": edits_per_batch,
        "hot_vertices": hot.len(),
        "seed_seconds": seed_seconds,
        "seed_codelength": seed_result.codelength,
        "drift_budget": IncrementalConfig::default().drift_budget,
        "batch_reports": reports.iter().map(BatchReport::to_json).collect::<Vec<_>>(),
        "summary": serde_json::json!({
            "incremental_batches": incr.len(),
            "fallbacks": fallbacks,
            "mean_incremental_seconds": mean_incremental_seconds,
            "mean_fresh_seconds": mean_fresh_seconds,
            "incremental_speedup": incremental_speedup,
            "max_drift": max_drift,
            "mean_drift": mean_drift,
            "fallback_rate": fallback_rate,
        }),
    });
    let out = std::env::var("ASA_STREAM_OUT").unwrap_or_else(|_| "BENCH_stream.json".into());
    std::fs::write(&out, serde_json::to_string_pretty(&doc).unwrap()).expect("write bench json");
    println!("wrote {out}");
    drop(_root);
    args.export_trace(&obs);
    args.export_metrics(&obs);
    args.export_profile(&obs);
    let _ = obs.flush();
}
