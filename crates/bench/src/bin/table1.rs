//! Table I — the network dataset inventory.
//!
//! Prints the paper's reported sizes next to the synthetic stand-ins
//! actually used (at `ASA_SCALE_DIV`), including the stand-ins' measured
//! degree statistics so the power-law match is visible.

use asa_bench::{fmt_count, load_network, render_table, scale_div};
use asa_graph::clustering::{average_clustering, degree_assortativity};
use asa_graph::connectivity::connected_components;
use asa_graph::generators::PaperNetwork;
use asa_graph::GraphStats;

fn main() {
    let div = scale_div();
    println!("Table I reproduction (stand-ins at 1/{div} paper scale)\n");

    let mut rows = Vec::new();
    let mut struct_rows = Vec::new();
    for net in PaperNetwork::all() {
        let (graph, truth) = load_network(net);
        let stats = GraphStats::of(&graph);
        rows.push(vec![
            net.name().to_string(),
            fmt_count(net.paper_vertices() as u64),
            fmt_count(net.paper_edges() as u64),
            fmt_count(stats.num_nodes as u64),
            fmt_count(stats.num_edges as u64),
            format!("{:.1}", net.avg_degree()),
            format!("{:.1}", stats.avg_degree),
            stats
                .power_law_alpha
                .map(|a| format!("{a:.2}"))
                .unwrap_or_else(|| "-".into()),
            fmt_count(truth.num_communities() as u64),
        ]);
        let comps = connected_components(&graph);
        struct_rows.push(vec![
            net.name().to_string(),
            format!("{}", stats.max_degree),
            format!("{:.3}", average_clustering(&graph)),
            format!("{:+.3}", degree_assortativity(&graph)),
            format!(
                "{} ({:.1}% in largest)",
                comps.count,
                100.0 * comps.largest as f64 / stats.num_nodes.max(1) as f64
            ),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Table I: datasets (paper vs synthetic stand-in)",
            &[
                "network",
                "paper |V|",
                "paper |E|",
                "standin |V|",
                "standin |E|",
                "paper avg deg",
                "standin avg deg",
                "alpha fit",
                "planted comms",
            ],
            &rows,
        )
    );
    println!();
    print!(
        "{}",
        render_table(
            "Stand-in structure (clustering / mixing / connectivity)",
            &[
                "network",
                "max degree",
                "avg clustering",
                "assortativity",
                "components"
            ],
            &struct_rows,
        )
    );
}
