//! Figure 7 — FindBestCommunity timing breakdown across core counts.
//!
//! For the Amazon- and DBLP-like networks and 1–16 simulated cores: the
//! per-core-average hash-operation time under the Baseline and under ASA,
//! plus the reduction. The paper reports 68–70% (Amazon) and 75–77% (DBLP)
//! reductions, consistent across core counts.

use asa_accel::AsaConfig;
use asa_bench::{fmt_pct, fmt_secs, load_network, render_table, simulate};
use asa_graph::generators::PaperNetwork;
use asa_infomap::instrumented::Device;

fn main() {
    for net in [PaperNetwork::Amazon, PaperNetwork::Dblp] {
        let (graph, _) = load_network(net);
        let mut rows = Vec::new();
        for cores in [1usize, 2, 4, 8, 16] {
            let base = simulate(&graph, cores, Device::SoftwareHash);
            let asa = simulate(&graph, cores, Device::Asa(AsaConfig::paper_default()));
            let (tb, ta) = (base.hash_seconds(), asa.hash_seconds());
            let other_b = base.kernel_seconds() - tb;
            rows.push(vec![
                format!("{cores}"),
                fmt_secs(tb),
                fmt_secs(ta),
                fmt_pct((tb - ta) / tb),
                fmt_secs(other_b.max(0.0)),
            ]);
        }
        print!(
            "{}",
            render_table(
                &format!(
                    "Fig 7: HashOperations time per core, Baseline vs ASA, {}-like",
                    net.name()
                ),
                &[
                    "cores",
                    "Baseline hash (s)",
                    "ASA hash (s)",
                    "reduction",
                    "Baseline non-hash (s)",
                ],
                &rows,
            )
        );
        println!();
    }
    println!("paper expectation: 68-70% hash-time reduction for amazon, 75-77% for dblp, stable across core counts");
}
