//! Hierarchical map equation (Rosvall & Bergstrom 2011) — the multilevel
//! extension the original Infomap grew after the two-level formulation the
//! paper accelerates. Scores the optimizer's nested level partitions
//! hierarchically and compares against flat codelengths on a network with
//! modules-within-modules.

use asa_bench::{infomap_config, load_network, render_table};
use asa_graph::generators::PaperNetwork;
use asa_graph::{GraphBuilder, Partition};
use asa_infomap::flow::FlowNetwork;
use asa_infomap::hierarchy::{hierarchical_codelength, hierarchy_from_levels, Hierarchy};
use asa_infomap::{detect_communities, InfomapConfig};

fn nested_demo() -> (asa_graph::CsrGraph, Partition, Partition) {
    // 6 super-modules of 3 cliques of 6 vertices.
    let (clique, per_super, supers) = (6usize, 3usize, 6usize);
    let n = clique * per_super * supers;
    let mut b = GraphBuilder::undirected(n);
    for s in 0..supers {
        for c in 0..per_super {
            let base = (s * per_super + c) * clique;
            for i in 0..clique {
                for j in (i + 1)..clique {
                    b.add_edge((base + i) as u32, (base + j) as u32, 1.0);
                }
            }
        }
        for c in 0..per_super {
            let a = (s * per_super + c) * clique;
            let d = (s * per_super + (c + 1) % per_super) * clique;
            b.add_edge(a as u32, d as u32, 1.0);
        }
    }
    for s in 0..supers {
        let a = s * per_super * clique;
        let d = ((s + 1) % supers) * per_super * clique;
        b.add_edge(a as u32, d as u32, 0.25);
    }
    let fine = Partition::from_labels((0..n as u32).map(|u| u / clique as u32).collect());
    let coarse = Partition::from_labels(
        (0..n as u32)
            .map(|u| u / (clique * per_super) as u32)
            .collect(),
    );
    (b.build(), fine, coarse)
}

fn main() {
    // --- Synthetic modules-within-modules: nested coding wins.
    let (graph, fine, coarse) = nested_demo();
    let flow = FlowNetwork::from_graph(&graph, &infomap_config());
    let rows = vec![
        vec![
            "flat, clique level".into(),
            format!(
                "{:.4}",
                hierarchical_codelength(&flow, &Hierarchy::flat(fine.clone()))
            ),
        ],
        vec![
            "flat, super level".into(),
            format!(
                "{:.4}",
                hierarchical_codelength(&flow, &Hierarchy::flat(coarse.clone()))
            ),
        ],
        vec![
            "two-level nested".into(),
            format!(
                "{:.4}",
                hierarchical_codelength(&flow, &Hierarchy::new(vec![fine, coarse]))
            ),
        ],
    ];
    print!(
        "{}",
        render_table(
            "Hierarchical map equation on a modules-within-modules network (bits/step)",
            &["coding", "codelength"],
            &rows,
        )
    );
    println!();

    // --- Score the optimizer's own hierarchy on a Table I stand-in.
    let (net, _) = load_network(PaperNetwork::Dblp);
    let cfg = InfomapConfig {
        outer_loops: 1, // keep level partitions strictly nested
        ..Default::default()
    };
    let result = detect_communities(&net, &cfg);
    let net_flow = FlowNetwork::from_graph(&net, &cfg);
    let h = hierarchy_from_levels(&result.level_partitions);
    let rows = vec![
        vec![
            "flat (final partition)".into(),
            format!("{:.4}", result.codelength),
        ],
        vec![
            format!("hierarchical ({} levels)", h.depth()),
            format!("{:.4}", hierarchical_codelength(&net_flow, &h)),
        ],
    ];
    print!(
        "{}",
        render_table(
            "dblp-like: flat vs hierarchical coding of the optimizer's levels",
            &["coding", "codelength"],
            &rows,
        )
    );
    println!("\nreading: nested coding strictly beats either flat level on true two-scale structure; on single-scale LFR stand-ins the extra index codebooks may not pay for themselves");
}
