//! Simulator throughput: inline per-event charging vs the batched trace
//! pipeline (SoA record + block replay, optionally overlapped).
//!
//! Two measurements on the dblp-like stand-in with the Baseline
//! (software hash) device:
//!
//! **End-to-end modes.** The full simulated Infomap schedule under each
//! [`SimMode`], asserting first that all three modes produce bit-identical
//! counters, partitions, and codelengths — the batched paths are pure
//! perf substitutions — then reporting simulation-engine seconds and
//! wall clock per mode. The pipelined mode's overlap shows up here only
//! when the host has spare cores for the sim threads.
//!
//! **Replay kernels.** A prefix of the real per-core event stream is
//! captured once ([`capture_trace`]), then pushed through the three
//! per-event cost boundaries on identical buffers:
//!
//! - `inline charge` — the per-event path: every event walks the full
//!   core model ([`TraceBuf::replay_per_event`] into a [`CoreModel`]),
//!   which is exactly what the inline engine pays on the workload thread
//!   per event;
//! - `batched replay` — [`CoreModel::consume_batch`], the block replay
//!   kernel the sim threads run; its reports are asserted bit-identical
//!   to the inline charge right here;
//! - `pipeline ingest` — per-event sink calls into a recycled
//!   [`TraceBuf`]: the only per-event cost the batched pipeline leaves
//!   on the workload thread (replay happens off the critical path, on
//!   sim threads when cores allow).
//!
//! The headline events/sec compares `pipeline ingest` against `inline
//! charge`: the throughput at which each path accepts workload events.
//! The non-smoke run asserts the batched pipeline sustains >= 2x the
//! inline per-event rate.
//!
//! Writes `BENCH_simthroughput.json` into the working directory (override
//! with `ASA_SIMTHROUGHPUT_OUT`); repetitions via `ASA_SIMTHROUGHPUT_REPS`
//! (default 3, best-of reported); emulated cores via `ASA_SIM_CORES`
//! (default 4). Pass `--smoke` for a seconds-long CI run on a small
//! planted graph (1 rep, no throughput floor asserted).

use asa_bench::{
    fmt_count, fmt_secs, infomap_config, load_network, render_table, run_metadata, scale_div,
    ObsArgs,
};
use asa_graph::generators::{planted_partition, PaperNetwork, PlantedConfig};
use asa_graph::CsrGraph;
use asa_infomap::instrumented::{
    capture_trace, simulate_infomap_obs, Device, SimMode, SimulatedRun,
};
use asa_obs::{record, Obs};
use asa_simarch::events::phase;
use asa_simarch::{CoreModel, MachineConfig, SimPipelineConfig, TraceBuf};

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(default)
}

/// One mode's best-of-reps measurement.
struct ModeTiming {
    run: SimulatedRun,
    wall_seconds: f64,
}

fn run_mode(
    graph: &CsrGraph,
    mcfg: &MachineConfig,
    mode: &SimMode,
    reps: usize,
    obs: &Obs,
) -> ModeTiming {
    let icfg = infomap_config();
    let mut best: Option<ModeTiming> = None;
    for _ in 0..reps {
        let start = std::time::Instant::now();
        let run = simulate_infomap_obs(graph, &icfg, mcfg, Device::SoftwareHash, mode, obs);
        let wall_seconds = start.elapsed().as_secs_f64();
        let cur = ModeTiming { run, wall_seconds };
        match &best {
            Some(b) => {
                assert_eq!(
                    b.run.partition.labels(),
                    cur.run.partition.labels(),
                    "{} mode must be deterministic across repetitions",
                    mode.name()
                );
                if cur.run.sim_seconds < b.run.sim_seconds {
                    best = Some(cur);
                }
            }
            None => best = Some(cur),
        }
    }
    best.unwrap()
}

/// Bitwise equality of everything a simulated run reports.
fn assert_identical(a: &SimulatedRun, b: &SimulatedRun) {
    let what = format!("{} vs {}", a.sim_mode, b.sim_mode);
    assert_eq!(
        a.partition.labels(),
        b.partition.labels(),
        "{what}: partition"
    );
    assert_eq!(
        a.codelength.to_bits(),
        b.codelength.to_bits(),
        "{what}: codelength"
    );
    assert_eq!(
        a.total.instructions, b.total.instructions,
        "{what}: instructions"
    );
    assert_eq!(a.total.branches, b.total.branches, "{what}: branches");
    assert_eq!(
        a.total.mispredictions, b.total.mispredictions,
        "{what}: mispredictions"
    );
    assert_eq!(a.total.loads, b.total.loads, "{what}: loads");
    assert_eq!(a.total.stores, b.total.stores, "{what}: stores");
    assert_eq!(a.total.l1_misses, b.total.l1_misses, "{what}: l1_misses");
    assert_eq!(a.total.l2_misses, b.total.l2_misses, "{what}: l2_misses");
    assert_eq!(a.total.l3_misses, b.total.l3_misses, "{what}: l3_misses");
    assert_eq!(
        a.total.cycles.to_bits(),
        b.total.cycles.to_bits(),
        "{what}: cycles"
    );
    for (p, (ra, rb)) in a.phase_totals.iter().zip(b.phase_totals.iter()).enumerate() {
        assert_eq!(
            ra.cycles.to_bits(),
            rb.cycles.to_bits(),
            "{what}: phase {p} cycles"
        );
    }
}

/// Replay-kernel timings over the captured stream (seconds, best-of).
struct KernelTiming {
    events: usize,
    charge_seconds: f64,
    replay_seconds: f64,
    ingest_seconds: f64,
}

/// Times the three per-event cost boundaries on the captured per-core
/// buffers, asserting along the way that `consume_batch` reproduces the
/// per-event path's phase reports bit for bit on the real stream.
fn time_kernels(traces: &[Vec<TraceBuf>], mcfg: &MachineConfig, passes: usize) -> KernelTiming {
    let events = traces.iter().flatten().map(TraceBuf::len).sum();
    let mut best = KernelTiming {
        events,
        charge_seconds: f64::MAX,
        replay_seconds: f64::MAX,
        ingest_seconds: f64::MAX,
    };
    for _ in 0..passes.max(1) {
        let mut charge = 0.0f64;
        let mut replay = 0.0f64;
        let mut ingest = 0.0f64;
        for bufs in traces {
            let mut batched = CoreModel::new(mcfg);
            let t = std::time::Instant::now();
            for b in bufs {
                batched.consume_batch(b);
            }
            replay += t.elapsed().as_secs_f64();

            let mut per_event = CoreModel::new(mcfg);
            let t = std::time::Instant::now();
            for b in bufs {
                b.replay_per_event(&mut per_event);
            }
            charge += t.elapsed().as_secs_f64();

            let mut sink = TraceBuf::with_capacity(32 * 1024);
            let t = std::time::Instant::now();
            for b in bufs {
                sink.clear();
                b.replay_per_event(&mut sink);
            }
            ingest += t.elapsed().as_secs_f64();

            let a = batched.take_phase_reports();
            let b = per_event.take_phase_reports();
            for p in 0..phase::COUNT {
                assert_eq!(
                    a[p].instructions, b[p].instructions,
                    "phase {p} instructions"
                );
                assert_eq!(a[p].branches, b[p].branches, "phase {p} branches");
                assert_eq!(
                    a[p].mispredictions, b[p].mispredictions,
                    "phase {p} mispredictions"
                );
                assert_eq!(a[p].loads, b[p].loads, "phase {p} loads");
                assert_eq!(a[p].stores, b[p].stores, "phase {p} stores");
                assert_eq!(a[p].l1_misses, b[p].l1_misses, "phase {p} l1_misses");
                assert_eq!(a[p].l2_misses, b[p].l2_misses, "phase {p} l2_misses");
                assert_eq!(a[p].l3_misses, b[p].l3_misses, "phase {p} l3_misses");
                assert_eq!(
                    a[p].cycles.to_bits(),
                    b[p].cycles.to_bits(),
                    "phase {p} cycles"
                );
            }
        }
        best.charge_seconds = best.charge_seconds.min(charge);
        best.replay_seconds = best.replay_seconds.min(replay);
        best.ingest_seconds = best.ingest_seconds.min(ingest);
    }
    best
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke {
        1
    } else {
        env_usize("ASA_SIMTHROUGHPUT_REPS", 3)
    };
    let cores = env_usize("ASA_SIM_CORES", 4);
    let obs = ObsArgs::parse().build();
    let _root = obs.span("simthroughput");

    let (graph, workload) = if smoke {
        let g = planted_partition(
            &PlantedConfig {
                communities: 6,
                community_size: 40,
                k_in: 10.0,
                k_out: 1.0,
            },
            17,
        )
        .0;
        (g, "planted-smoke".to_string())
    } else {
        let (g, _) = load_network(PaperNetwork::Dblp);
        (g, format!("{}-like", PaperNetwork::Dblp.name()))
    };

    let mcfg = MachineConfig::baseline(cores);
    let modes: [(&str, SimMode); 3] = [
        ("inline", SimMode::Inline),
        (
            "batched",
            SimMode::Batched {
                buffer_events: 32 * 1024,
            },
        ),
        (
            "pipelined",
            SimMode::Pipelined(SimPipelineConfig::default()),
        ),
    ];

    let timings: Vec<ModeTiming> = modes
        .iter()
        .map(|(name, m)| {
            record!(obs, "mode_start", { "mode": *name, "reps": reps });
            run_mode(&graph, &mcfg, m, reps, &obs)
        })
        .collect();

    // Semantics before speed: all three modes are the same simulation.
    assert_identical(&timings[0].run, &timings[1].run);
    assert_identical(&timings[0].run, &timings[2].run);
    let events = timings[1].run.events;
    assert!(events > 0, "batched mode must record trace events");
    assert_eq!(
        events, timings[2].run.events,
        "batched and pipelined must record the same stream"
    );

    let inline_sim = timings[0].run.sim_seconds;
    let mut rows = Vec::new();
    let mut docs = Vec::new();
    for ((name, _), t) in modes.iter().zip(&timings) {
        let rate = events as f64 / t.run.sim_seconds;
        let speedup = inline_sim / t.run.sim_seconds;
        rows.push(vec![
            (*name).to_string(),
            fmt_secs(t.run.sim_seconds),
            fmt_secs(t.wall_seconds),
            format!("{:.1}M/s", rate / 1e6),
            format!("{speedup:.2}x"),
        ]);
        docs.push(serde_json::json!({
            "mode": name,
            "sim_seconds": t.run.sim_seconds,
            "wall_seconds": t.wall_seconds,
            "events_per_sec": rate,
            "speedup_vs_inline": speedup,
        }));
    }

    print!(
        "{}",
        render_table(
            &format!(
                "End-to-end on {workload} ({} events, {cores} simulated cores, best of {reps})",
                fmt_count(events)
            ),
            &["mode", "sim time", "wall clock", "events/sec", "speedup"],
            &rows,
        )
    );

    // Replay kernels on a captured prefix of the same per-core streams.
    let icfg = infomap_config();
    let per_core_limit = if smoke { 2_000_000 } else { 4_000_000 };
    let traces = capture_trace(
        &graph,
        &icfg,
        cores,
        Device::SoftwareHash,
        32 * 1024,
        per_core_limit,
    );
    let kernel_passes = if smoke { 2 } else { 5 };
    let k = time_kernels(&traces, &mcfg, kernel_passes);
    let kev = k.events as f64;
    let charge_rate = kev / k.charge_seconds;
    let replay_rate = kev / k.replay_seconds;
    let ingest_rate = kev / k.ingest_seconds;
    let ingest_speedup = ingest_rate / charge_rate;
    let replay_speedup = replay_rate / charge_rate;

    let krows = vec![
        vec![
            "inline charge".to_string(),
            format!("{:.2}ns", k.charge_seconds * 1e9 / kev),
            format!("{:.1}M/s", charge_rate / 1e6),
            "1.00x".to_string(),
        ],
        vec![
            "batched replay".to_string(),
            format!("{:.2}ns", k.replay_seconds * 1e9 / kev),
            format!("{:.1}M/s", replay_rate / 1e6),
            format!("{replay_speedup:.2}x"),
        ],
        vec![
            "pipeline ingest".to_string(),
            format!("{:.2}ns", k.ingest_seconds * 1e9 / kev),
            format!("{:.1}M/s", ingest_rate / 1e6),
            format!("{ingest_speedup:.2}x"),
        ],
    ];
    print!(
        "\n{}",
        render_table(
            &format!(
                "Replay kernels on captured {workload} stream ({} events, best of {kernel_passes}; reports bit-identical)",
                fmt_count(k.events as u64)
            ),
            &["path", "cost/event", "events/sec", "vs inline"],
            &krows,
        )
    );

    if !smoke {
        assert!(
            ingest_speedup >= 2.0,
            "batched pipeline must sustain >= 2x the inline per-event rate \
             on the workload side, got {ingest_speedup:.2}x"
        );
    }

    let out = std::env::var("ASA_SIMTHROUGHPUT_OUT")
        .unwrap_or_else(|_| "BENCH_simthroughput.json".into());
    let kernel_doc = serde_json::json!({
        "captured_events": k.events,
        "replay_identical": true,
        "charge_ns_per_event": k.charge_seconds * 1e9 / kev,
        "replay_ns_per_event": k.replay_seconds * 1e9 / kev,
        "ingest_ns_per_event": k.ingest_seconds * 1e9 / kev,
        "inline_events_per_sec": charge_rate,
        "batched_replay_events_per_sec": replay_rate,
        "pipeline_ingest_events_per_sec": ingest_rate,
        "replay_speedup_vs_inline": replay_speedup,
        "ingest_speedup_vs_inline": ingest_speedup,
    });
    let doc = serde_json::json!({
        "bench": "simthroughput",
        "workload": workload,
        "scale_div": scale_div(),
        "nodes": graph.num_nodes(),
        "arcs": graph.num_arcs(),
        "sim_cores": cores,
        "reps": reps,
        "smoke": smoke,
        "device": "baseline",
        "events": events,
        "identical_modes": true,
        "meta": run_metadata(&workload, &infomap_config()),
        "modes": docs,
        "kernel": kernel_doc,
    });
    std::fs::write(&out, serde_json::to_string_pretty(&doc).unwrap()).expect("write bench json");
    println!("\nwrote {out}");
    drop(_root);
    let _ = obs.flush();
}
