//! Table V + Figure 6 — hash-operation time, Baseline vs ASA, and speedup.
//!
//! Single-core simulated time spent in hash operations (accumulate +
//! gather + overflow merge) for the five comparison networks. The paper
//! reports 3.28× (Amazon) to 5.56× (Pokec) speedups, and overflow handling
//! at 9.86% / 13.31% of ASA time for Pokec / Orkut.

use asa_accel::AsaConfig;
use asa_bench::{fmt_pct, fmt_secs, hash_networks, load_network, render_table, simulate};
use asa_infomap::instrumented::Device;

fn main() {
    let mut rows = Vec::new();
    let mut fig6 = Vec::new();
    let mut overflow_rows = Vec::new();

    for net in hash_networks() {
        let (graph, _) = load_network(net);
        let base = simulate(&graph, 1, Device::SoftwareHash);
        let asa = simulate(&graph, 1, Device::Asa(AsaConfig::paper_default()));
        assert_eq!(
            base.partition.labels(),
            asa.partition.labels(),
            "device must not change the detected communities"
        );

        let (tb, ta) = (base.hash_seconds(), asa.hash_seconds());
        rows.push(vec![net.name().to_string(), fmt_secs(tb), fmt_secs(ta)]);
        fig6.push(vec![net.name().to_string(), format!("{:.2}x", tb / ta)]);
        overflow_rows.push(vec![
            net.name().to_string(),
            fmt_pct(asa.overflow_share()),
            asa.asa_stats
                .map(|s| fmt_pct(s.overflow_rate))
                .unwrap_or_else(|| "-".into()),
        ]);
    }

    print!(
        "{}",
        render_table(
            "Table V: time spent on hash operations, Baseline vs ASA (1 core, simulated)",
            &["network", "Baseline (s)", "ASA (s)"],
            &rows,
        )
    );
    println!();
    print!(
        "{}",
        render_table(
            "Fig 6: ASA speedup on hash operations",
            &["network", "speedup"],
            &fig6,
        )
    );
    println!();
    print!(
        "{}",
        render_table(
            "Overflow handling within ASA time (Section IV-C)",
            &[
                "network",
                "overflow share of hash time",
                "gathers overflowed"
            ],
            &overflow_rows,
        )
    );
    println!("\npaper expectation: speedups 3.28x (amazon) to 5.56x (pokec); overflow ~9.9% (pokec) and ~13.3% (orkut) of ASA time");
}
