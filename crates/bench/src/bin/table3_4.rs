//! Tables III & IV — Native vs Baseline per-iteration runtimes (YouTube).
//!
//! The paper validates ZSim by running the same Infomap binary natively and
//! under simulation and comparing per-iteration `FindBestCommunity` times
//! on 1 and 2 cores. Here "Native" is the identical kernel schedule run on
//! the host with the software hash device and a null event sink (wall
//! clock), and "Baseline" is the simulated time of the modeled machine.
//! Absolute agreement depends on the host CPU; the structural expectation
//! that carries from the paper is the *decreasing per-iteration runtime*
//! (the active vertex set shrinks) and a stable native/simulated ratio.

use asa_bench::{fmt_secs, infomap_config, load_network, render_table, simulate};
use asa_graph::generators::PaperNetwork;
use asa_infomap::instrumented::{native_infomap, Device};

fn main() {
    let (graph, _) = load_network(PaperNetwork::YouTube);
    let icfg = infomap_config();

    for cores in [1usize, 2] {
        let native = native_infomap(&graph, &icfg, cores, Device::SoftwareHash);
        let sim = simulate(&graph, cores, Device::SoftwareHash);

        // Level-0 (vertex phase) sweeps are the paper's "iterations".
        let sim_level0: Vec<f64> = sim
            .sweeps
            .iter()
            .filter(|s| s.level == 0)
            .map(|s| s.combined.seconds(sim.machine.freq_ghz))
            .collect();
        let native_level0: &[f64] =
            &native.sweep_seconds[..sim_level0.len().min(native.sweep_seconds.len())];

        let mut rows = Vec::new();
        for (i, (&nat, &simt)) in native_level0.iter().zip(sim_level0.iter()).enumerate() {
            let diff = if nat > 0.0 {
                format!("{:.0}%", ((simt - nat) / nat * 100.0).abs())
            } else {
                "-".into()
            };
            rows.push(vec![
                format!("{}", i + 1),
                fmt_secs(nat),
                fmt_secs(simt),
                diff,
            ]);
        }
        print!(
            "{}",
            render_table(
                &format!(
                    "Table {}: Native vs Baseline per iteration, {} core(s), youtube-like",
                    if cores == 1 { "III" } else { "IV" },
                    cores
                ),
                &["iteration", "Native (s)", "Baseline (s)", "% diff"],
                &rows,
            )
        );
        // Structural check mirrored from the paper: times decrease.
        let decreasing = native_level0.windows(2).filter(|w| w[1] <= w[0]).count();
        println!(
            "decreasing native iterations: {}/{}\n",
            decreasing,
            native_level0.len().saturating_sub(1)
        );
    }
    println!("paper expectation: per-iteration runtime shrinks monotonically; ZSim tracked native within ~13% on their testbed (our native column is a Rust host, so the ratio differs but stays stable across iterations)");
}
