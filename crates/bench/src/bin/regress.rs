//! Perf-regression sentinel CLI.
//!
//! ```text
//! regress --smoke [--baseline-dir DIR]
//! regress --fresh-dir DIR [--baseline-dir DIR] [--tol-scale X]
//! ```
//!
//! `--smoke` gates the committed `BENCH_*.json` baselines themselves:
//! every file must parse, yield its gated metrics, pass the sanity checks
//! (finite, in range), and self-compare clean. It runs in milliseconds and
//! is wired into CI so a bad baseline (or broken extraction) fails the
//! build immediately.
//!
//! For a real comparison, rerun the benchmark binaries with
//! `ASA_BENCH_JSON_DIR` (or copy their `BENCH_*.json` outputs) into a
//! fresh directory, then point `--fresh-dir` at it. Exit codes: 0 clean,
//! 1 regression detected (delta table on stdout), 2 usage or missing /
//! unreadable files.
//!
//! `--tol-scale` (env `ASA_REGRESS_TOL_SCALE`) multiplies every noise
//! tolerance; see `asa_bench::regress` for the per-metric defaults.
//!
//! Runs that had the sampling profiler attached (`--prof-out`) embed a
//! `meta.profile` summary; when the hottest sampled stack shifts between
//! baseline and fresh, an informational note is printed alongside the
//! delta table. The note never gates.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use asa_bench::regress::{
    compare, extract_metrics, profile_shift_note, render_deltas, sanity_errors,
};

const BENCH_FILES: [&str; 4] = [
    "BENCH_hostperf.json",
    "BENCH_simthroughput.json",
    "BENCH_serve.json",
    "BENCH_stream.json",
];

/// Repository root — the committed baseline directory.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn load_doc(dir: &Path, file: &str) -> Result<serde_json::Value, String> {
    let path = dir.join(file);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {}: {e:?}", path.display()))
}

fn arg_value(argv: &[String], flag: &str) -> Option<String> {
    let prefix = format!("{flag}=");
    let mut out = None;
    for (i, a) in argv.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&prefix) {
            out = Some(v.to_string());
        } else if a == flag {
            out = argv.get(i + 1).cloned();
        }
    }
    out
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let baseline_dir = arg_value(&argv, "--baseline-dir").map_or_else(repo_root, PathBuf::from);
    let fresh_dir = arg_value(&argv, "--fresh-dir").map(PathBuf::from);
    let tol_scale = arg_value(&argv, "--tol-scale")
        .or_else(|| std::env::var("ASA_REGRESS_TOL_SCALE").ok())
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(1.0);

    if !smoke && fresh_dir.is_none() {
        eprintln!(
            "usage: regress --smoke | regress --fresh-dir DIR [--baseline-dir DIR] [--tol-scale X]"
        );
        return ExitCode::from(2);
    }

    let mut failed = false;
    for file in BENCH_FILES {
        let baseline_doc = match load_doc(&baseline_dir, file) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("regress: {e}");
                return ExitCode::from(2);
            }
        };
        let baseline = extract_metrics(&baseline_doc);
        let errors = sanity_errors(&baseline);
        if !errors.is_empty() {
            for e in &errors {
                eprintln!("regress: {file}: {e}");
            }
            failed = true;
            continue;
        }

        let (fresh, fresh_doc, title) = match &fresh_dir {
            Some(dir) => match load_doc(dir, file) {
                Ok(d) => {
                    let m = extract_metrics(&d);
                    (m, Some(d), format!("{file}: fresh vs committed baseline"))
                }
                Err(e) => {
                    eprintln!("regress: {e}");
                    return ExitCode::from(2);
                }
            },
            // Smoke mode: the baseline self-compares, proving the full
            // extract → compare → render path on the committed files.
            None => (
                baseline.clone(),
                None,
                format!("{file}: baseline self-check"),
            ),
        };
        let deltas = compare(&baseline, &fresh, tol_scale);
        let regressions = deltas.iter().filter(|d| d.regressed).count();
        if regressions > 0 || fresh_dir.is_some() {
            println!("{}", render_deltas(&title, &deltas));
            // Informational only — a shifted hot stack never trips the gate,
            // but it is the first thing to look at when a time gate does.
            if let Some(doc) = &fresh_doc {
                if let Some(note) = profile_shift_note(&baseline_doc, doc) {
                    println!("{file}: {note}");
                }
            }
        } else {
            println!(
                "{file}: {} metrics sane, self-compare clean (tol-scale {tol_scale})",
                deltas.len()
            );
        }
        if regressions > 0 {
            eprintln!("regress: {file}: {regressions} metric(s) regressed");
            failed = true;
        }
    }

    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
