//! `promlint` — strict validation of a Prometheus text-format exposition
//! produced by `--metrics-out` (or any scrape saved to a file).
//!
//! Usage: `promlint <metrics.prom> [more.prom ...]`
//!
//! Runs [`asa_obs::expose::validate`] over each file and prints a
//! per-file summary (`families / samples / histograms`). Any violation —
//! duplicate or interleaved families, non-cumulative or unterminated
//! histogram buckets, `_count` mismatches, undeclared samples, invalid
//! names, NaN values — is listed and the process exits non-zero. CI runs
//! this against the `serve --smoke` scrape so format drift in the
//! exposition renderer is caught at the gate, not in a dashboard.

use asa_obs::expose;

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: promlint <metrics.prom> [more.prom ...]");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match expose::validate(&text) {
            Ok(summary) => println!(
                "{path}: OK ({} families, {} samples, {} histograms)",
                summary.families, summary.samples, summary.histograms
            ),
            Err(errors) => {
                eprintln!("{path}: {} violation(s)", errors.len());
                for e in &errors {
                    eprintln!("  {e}");
                }
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
