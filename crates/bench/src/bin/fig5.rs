//! Figure 5 — CAM capacity vs vertex coverage.
//!
//! For each network, the fraction of vertices whose neighbour list fits in
//! a core-local CAM of 1, 2, 4, and 8 KB (16-byte entries). The paper's
//! headline claims: 1 KB already covers >82% of vertices, 8 KB covers >99%.

use asa_bench::{fmt_pct, load_network, render_table};
use asa_graph::degree::{cam_coverage, DegreeKind};
use asa_graph::generators::PaperNetwork;

fn main() {
    let capacities = [1024usize, 2048, 4096, 8192];
    let mut rows = Vec::new();
    let mut min_1kb = f64::INFINITY;
    let mut min_8kb = f64::INFINITY;

    for net in PaperNetwork::all() {
        let (graph, _) = load_network(net);
        let cov = cam_coverage(&graph, &capacities, 16, DegreeKind::Out);
        min_1kb = min_1kb.min(cov[0].fraction_covered);
        min_8kb = min_8kb.min(cov[3].fraction_covered);
        rows.push(vec![
            net.name().to_string(),
            fmt_pct(cov[0].fraction_covered),
            fmt_pct(cov[1].fraction_covered),
            fmt_pct(cov[2].fraction_covered),
            fmt_pct(cov[3].fraction_covered),
        ]);
    }

    print!(
        "{}",
        render_table(
            "Fig 5: fraction of vertices whose neighbour list fits in the CAM",
            &[
                "network",
                "1KB (64 ent)",
                "2KB (128)",
                "4KB (256)",
                "8KB (512)"
            ],
            &rows,
        )
    );
    println!();
    println!(
        "worst-case coverage: 1KB -> {}, 8KB -> {}",
        fmt_pct(min_1kb),
        fmt_pct(min_8kb)
    );
    println!("paper expectation: >82% at 1KB, >99% at 8KB");
}
