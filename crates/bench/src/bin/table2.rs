//! Table II — machine configurations: native vs simulated Baseline.
//!
//! The native column documents the paper's testbed (Intel Ivy Bridge,
//! 20 MB L3); the Baseline column is what the simulator models (16 MB L3 —
//! power-of-two cache sizes, the same constraint ZSim imposes).

use asa_bench::render_table;
use asa_simarch::MachineConfig;

fn row(item: &str, native: String, baseline: String) -> Vec<String> {
    vec![item.to_string(), native, baseline]
}

fn main() {
    let native = MachineConfig::native(8);
    let baseline = MachineConfig::baseline(8);

    let kb = |b: usize| format!("{}KB", b / 1024);
    let mb = |b: usize| format!("{}MB", b / 1024 / 1024);

    let rows = vec![
        row(
            "Processor",
            format!("{} cores, {:.1}GHz", native.cores, native.freq_ghz),
            format!("{} cores, {:.1}GHz", baseline.cores, baseline.freq_ghz),
        ),
        row(
            "L1 data cache",
            format!("{}, {}-way", kb(native.l1.0), native.l1.1),
            format!("{}, {}-way", kb(baseline.l1.0), baseline.l1.1),
        ),
        row(
            "L2 (private)",
            format!("{}, {}-way", kb(native.l2.0), native.l2.1),
            format!("{}, {}-way", kb(baseline.l2.0), baseline.l2.1),
        ),
        row(
            "L3 (shared)",
            mb(native.l3.0),
            format!("{} (power-of-two constraint)", mb(baseline.l3.0)),
        ),
        row(
            "Memory latency",
            format!("{} cycles", native.latencies.mem),
            format!("{} cycles", baseline.latencies.mem),
        ),
        row(
            "Branch predictor",
            format!("{:?}", native.predictor),
            format!(
                "{:?}, 2^{} entries, {} history bits, {}-cycle flush",
                baseline.predictor,
                baseline.predictor_table_bits,
                baseline.predictor_history_bits,
                baseline.mispredict_penalty
            ),
        ),
        row(
            "ASA",
            "n/a".into(),
            format!(
                "accumulate {} cyc, gather {} cyc/entry, 8KB CAM/core",
                baseline.asa_accumulate_cycles, baseline.asa_gather_cycles
            ),
        ),
    ];

    print!(
        "{}",
        render_table(
            "Table II: machine configurations (Native vs Baseline)",
            &["item", "Native", "Baseline (simulated)"],
            &rows,
        )
    );
}
