//! Figure 4 — power-law degree distributions of the social networks.
//!
//! Prints log-binned (degree, vertex-count) series for the LiveJournal-,
//! Pokec-, and YouTube-like networks, plus the MLE power-law exponent. On
//! log-log axes these series are the paper's Fig. 4 panels.

use asa_bench::{load_network, render_table};
use asa_graph::degree::{DegreeHistogram, DegreeKind};
use asa_graph::generators::PaperNetwork;

fn main() {
    for net in [
        PaperNetwork::LiveJournal,
        PaperNetwork::Pokec,
        PaperNetwork::YouTube,
    ] {
        let (graph, _) = load_network(net);
        let hist = DegreeHistogram::of(&graph, DegreeKind::Out);
        let alpha = hist
            .power_law_alpha(((2.0 * hist.mean()).ceil() as usize).max(2))
            .map(|a| format!("{a:.2}"))
            .unwrap_or_else(|| "-".into());

        let rows: Vec<Vec<String>> = hist
            .log_binned(2.0)
            .into_iter()
            .map(|(deg, count)| {
                vec![
                    format!("{deg:.1}"),
                    format!("{count:.2}"),
                    format!("{:.3e}", count / graph.num_nodes() as f64),
                ]
            })
            .collect();
        print!(
            "{}",
            render_table(
                &format!(
                    "Fig 4: degree distribution, {} (max degree {}, mean {:.1}, alpha {})",
                    net.name(),
                    hist.max_degree(),
                    hist.mean(),
                    alpha,
                ),
                &["degree (bin centre)", "vertices per degree", "fraction"],
                &rows,
            )
        );
        println!();
    }
    println!("paper expectation: straight-line decay on log-log axes (power law), majority of vertices at minimal degree");
}
