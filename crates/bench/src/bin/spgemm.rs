//! ASA's original workload: SpGEMM (Chao et al., TACO 2022).
//!
//! The paper generalizes ASA's interface beyond SpGEMM; this experiment
//! closes the loop by running SpGEMM through the *same* generalized
//! interface and machine model used for Infomap. Workloads: `A²` of
//! scale-free adjacency matrices (skewed row lengths — the hard case) and
//! uniform random matrices (the easy case).

use asa_accel::AsaConfig;
use asa_bench::{fmt_count, fmt_secs, render_table};
use asa_graph::generators::{barabasi_albert, erdos_renyi};
use asa_hashsim::ChainedAccumulator;
use asa_simarch::{CoreModel, MachineConfig};
use asa_spgemm::{spgemm, spgemm_flops, CsrMatrix};

fn main() {
    let mcfg = MachineConfig::baseline(1);
    let workloads: Vec<(&str, CsrMatrix)> = vec![
        (
            "BA n=2000 m=3 (A^2, scale-free)",
            CsrMatrix::from_graph(&barabasi_albert(2000, 3, 7)),
        ),
        (
            "BA n=1000 m=8 (A^2, denser hubs)",
            CsrMatrix::from_graph(&barabasi_albert(1000, 8, 8)),
        ),
        (
            "ER n=1500 (A^2, uniform)",
            CsrMatrix::from_graph(&erdos_renyi(1500, 9000, 9)),
        ),
        ("uniform 600x600 d=2%", CsrMatrix::random(600, 600, 0.02, 4)),
    ];

    let mut rows = Vec::new();
    for (name, a) in &workloads {
        let mut base_core = CoreModel::new(&mcfg);
        let c1 = spgemm(a, a, &mut ChainedAccumulator::new(), &mut base_core);
        let base = base_core.take_report();

        let mut asa_core = CoreModel::new(&mcfg);
        let c2 = spgemm(a, a, &mut asa_core_device(), &mut asa_core);
        let asa = asa_core.take_report();
        assert_eq!(c1, c2, "devices disagree on {name}");

        rows.push(vec![
            name.to_string(),
            fmt_count(a.nnz() as u64),
            fmt_count(spgemm_flops(a, a)),
            fmt_secs(base.seconds(mcfg.freq_ghz)),
            fmt_secs(asa.seconds(mcfg.freq_ghz)),
            format!("{:.2}x", base.cycles / asa.cycles),
        ]);
    }
    print!(
        "{}",
        render_table(
            "SpGEMM (A*A), software hash Baseline vs ASA, 1 simulated core",
            &["workload", "nnz(A)", "mul-adds", "Baseline", "ASA", "speedup"],
            &rows,
        )
    );
    println!(
        "\nChao et al. report ASA consistently outperforming software hashing on SpGEMM; \
         the shape to match is a clear win on every workload, attenuating when hub rows \
         overflow the CAM and fall back to the software sort-and-merge (the dense-hub case)"
    );
}

fn asa_core_device() -> asa_accel::AsaAccumulator {
    asa_accel::AsaAccumulator::new(AsaConfig::paper_default())
}
